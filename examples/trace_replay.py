#!/usr/bin/env python3
"""Replay an application swap trace through the XFM timing emulator.

The paper's §7 methodology in miniature: run the web front-end on the
functional far-memory stack to *generate* a swap trace, then replay that
trace through the refresh-window timing emulator to see how the side
channel handles it — and crank the intensity until it saturates. Also
shows saving/loading traces, so a trace captured once can be re-analyzed
under different hardware configurations.

Run:  python examples/trace_replay.py
"""

from repro.core.emulator import EmulatorConfig, XfmEmulator
from repro.sfm import SfmBackend
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE
from repro.workloads import SwapTrace
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig

TRACE_PATH = "/tmp/xfm_replay_trace.jsonl"


def generate_trace() -> SwapTrace:
    backend = SfmBackend(capacity_bytes=512 * PAGE_SIZE)
    runtime = FarMemoryRuntime(
        backend,
        local_capacity_pages=48,
        controller=ColdScanController(cold_threshold_s=3.0, scan_period_s=2.0),
    )
    frontend = WebFrontend(
        runtime,
        WebFrontendConfig(num_pages=192, lookups_per_s=40, seed=8),
    )
    frontend.run(duration_s=60.0)
    runtime.trace.save(TRACE_PATH)
    return runtime.trace


def main() -> None:
    print("generating a swap trace from 60 s of web front-end traffic...")
    trace = generate_trace()
    print(
        f"captured {len(trace)} events over {trace.duration_s:.0f}s "
        f"(mean compression ratio {trace.mean_compression_ratio():.2f}); "
        f"saved to {TRACE_PATH}"
    )

    reloaded = SwapTrace.load(TRACE_PATH)
    print(f"reloaded {len(reloaded)} events from disk\n")

    header = (
        f"{'time compression':>18s}{'fallback %':>12s}{'random %':>10s}"
        f"{'NMA MBps':>10s}{'p95 us':>9s}"
    )
    print("replaying through the refresh-window emulator:")
    print(header)
    print("-" * len(header))
    for scale in (1_000.0, 10_000.0, 50_000.0, 200_000.0):
        config = EmulatorConfig(accesses_per_ref=2, spm_bytes=2 << 20)
        report = XfmEmulator(config).run_trace(reloaded, time_scale=scale)
        p95_us = report.latency_percentiles_ms.get(95, 0.0) * 1000
        print(
            f"{scale:>17,.0f}x"
            f"{100 * report.fallback_fraction:>11.2f}%"
            f"{100 * report.random_fraction:>9.1f}%"
            f"{report.nma_bandwidth_bps / 1e6:>10.1f}"
            f"{p95_us:>9.1f}"
        )
    print(
        "\nreading: the application's real swap intensity rides the side"
        "\nchannel for free; only at tens-of-thousands-fold compression of"
        "\nits timeline does the refresh budget saturate and CPU fallbacks"
        "\nappear."
    )


if __name__ == "__main__":
    main()
