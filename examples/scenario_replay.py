#!/usr/bin/env python3
"""Record a swap trace once, replay it against every far-memory config.

The scenario zoo's core promise: a workload recorded from one live tier
run becomes a portable artifact that replays — byte-identically, with
deterministic stats — against any backend or pipeline configuration.
This demo records a small keyed-churn workload through a
``TraceRecorder``-wrapped 3-tier pipeline, saves/loads the versioned
artifact, replays it against three different targets, and proves both
determinism (two replays, identical stats) and portability (every
target serves back the exact recorded page bytes).

Run:  python examples/scenario_replay.py
"""

import json
import random
import tempfile
from pathlib import Path

from repro.scenarios import (
    ScenarioTrace,
    TraceRecorder,
    load_scenario,
    replay_trace,
    trace_fingerprint,
)
from repro.sfm.page import PAGE_SIZE
from repro.tiering import TierPipeline, make_tier
from repro.tiering.policy import LruDemotion
from repro.workloads.corpus import corpus_pages


def record_workload(seed: int = 7) -> ScenarioTrace:
    """A keyed-churn workload recorded from a live pipeline run."""
    pipeline = TierPipeline.build(
        cpu_capacity_bytes=4 * PAGE_SIZE,
        xfm_capacity_bytes=4 * PAGE_SIZE,
        dfm_capacity_bytes=64 * PAGE_SIZE,
        demotion=LruDemotion(watermark_fraction=0.6),
    )
    recorder = TraceRecorder(pipeline, name="demo-churn", seed=seed)
    rng = random.Random(seed)
    pages = corpus_pages("json-records", 24, seed=seed)
    live = {}
    for step in range(120):
        roll = rng.random()
        if roll < 0.5 or not live:
            key = step % 32
            if recorder.store(key, pages[key % len(pages)]):
                live[key] = True
        elif roll < 0.85:
            key = rng.choice(sorted(live))
            if recorder.load(key) is not None:
                live.pop(key)  # loads are exclusive
        else:
            recorder.promote_key(rng.choice(sorted(live)))
    return recorder.trace


def main() -> None:
    trace = record_workload()
    print(f"recorded {len(trace)} events over {len(trace.pages)} unique "
          f"pages from a live 3-tier pipeline run")

    # The artifact round-trips through the versioned on-disk format.
    with tempfile.TemporaryDirectory() as tmp:
        path = trace.save(Path(tmp) / "demo.trace.jsonl.gz")
        size = path.stat().st_size
        reloaded = ScenarioTrace.load(path)
    assert trace_fingerprint(reloaded) == trace_fingerprint(trace)
    print(f"artifact round-trip: {size} bytes on disk, fingerprint "
          f"{trace_fingerprint(reloaded)}")

    # Backend-portable: the same trace replays cleanly against flat
    # backends and pipelines alike — recorded page bytes come back
    # digest-identical from every target.
    print("\nbackend-portable replay (same trace, three targets):")
    for kind in ("cpu", "dfm", "pipeline"):
        report = replay_trace(
            reloaded, make_tier(kind), backend_name=kind
        )
        assert report.clean, f"{kind} replay corrupted pages"
        print(f"  {kind:9s}: clean={report.clean} "
              f"stores={report.stores} loads={report.loads} "
              f"bytes_moved={report.bytes_moved} "
              f"amat={report.amat_s * 1e6:.2f}us")

    # Deterministic across replays: identical stats, twice.
    first = replay_trace(reloaded, make_tier("pipeline"),
                         backend_name="pipeline").as_dict()
    second = replay_trace(reloaded, make_tier("pipeline"),
                          backend_name="pipeline").as_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    print("\ndeterministic across replays: two pipeline replays produced "
          "identical stats")

    # The shipped zoo works the same way.
    zoo_trace = load_scenario("kv-cache")
    report = replay_trace(zoo_trace, make_tier("dfm"), backend_name="dfm")
    print(f"\nshipped zoo scenario 'kv-cache': {len(zoo_trace)} events, "
          f"replayed clean={report.clean} on dfm")


if __name__ == "__main__":
    main()
