#!/usr/bin/env python3
"""DFM vs SFM cost & carbon study (the §3 analysis, Fig. 3).

Sweeps promotion rates and deployment horizons through the first-order
model (EQ1–EQ5) and prints the break-even landscape: when does software-
defined far memory stop being cheaper than buying disaggregated DRAM or
PMem, and what the XFM-accelerated variant changes.

Run:  python examples/cost_study.py
"""

from repro.analysis.report import format_table
from repro.costmodel import (
    CostParams,
    MemoryKind,
    dfm_cost_usd,
    dfm_emission_kg,
    integrated_accel_breakeven_promotion,
    sfm_cost_usd,
    sfm_emission_kg,
)
from repro.costmodel.breakeven import (
    sfm_vs_dfm_cost_breakeven,
    sfm_vs_dfm_emission_breakeven,
)


def cost_landscape(params: CostParams) -> str:
    rows = []
    for promo in (0.05, 0.1, 0.2, 0.5, 1.0):
        cost_be = sfm_vs_dfm_cost_breakeven(params, promo)
        cost_be_pmem = sfm_vs_dfm_cost_breakeven(params, promo, MemoryKind.PMEM)
        emission_be = sfm_vs_dfm_emission_breakeven(params, promo)
        rows.append(
            [
                f"{int(promo * 100)}%",
                "never" if cost_be is None else f"{cost_be:.1f}",
                "never" if cost_be_pmem is None else f"{cost_be_pmem:.1f}",
                "never" if emission_be is None else f"{emission_be:.1f}",
            ]
        )
    return format_table(
        [
            "promotion rate",
            "cost BE vs DRAM-DFM (yr)",
            "cost BE vs PMem-DFM (yr)",
            "CO2 BE vs DRAM-DFM (yr)",
        ],
        rows,
        title="CPU-SFM break-even landscape (512 GB far memory)",
    )


def five_year_bill(params: CostParams) -> str:
    rows = []
    horizon = 5.0
    for label, fn in (("cost ($)", "cost"), ("emissions (kgCO2e)", "emission")):
        dfm_dram = (
            dfm_cost_usd(params, 1.0, horizon)
            if fn == "cost"
            else dfm_emission_kg(params, 1.0, horizon)
        )
        dfm_pmem = (
            dfm_cost_usd(params, 1.0, horizon, MemoryKind.PMEM)
            if fn == "cost"
            else dfm_emission_kg(params, 1.0, horizon, MemoryKind.PMEM)
        )
        sfm_cpu = (
            sfm_cost_usd(params, 0.2, horizon)
            if fn == "cost"
            else sfm_emission_kg(params, 0.2, horizon)
        )
        sfm_xfm = (
            sfm_cost_usd(params, 0.2, horizon, accelerated=True)
            if fn == "cost"
            else sfm_emission_kg(params, 0.2, horizon, accelerated=True)
        )
        rows.append(
            [
                label,
                round(dfm_dram, 1),
                round(dfm_pmem, 1),
                round(sfm_cpu, 1),
                round(sfm_xfm, 2),
            ]
        )
    return format_table(
        ["5-year total", "DFM DRAM", "DFM PMem", "SFM CPU @20%", "SFM XFM @20%"],
        rows,
        title="Five-year bill for 512 GB of far memory",
    )


def fleet_table() -> str:
    from repro.costmodel.fleet import FleetConfig, savings_summary

    config = FleetConfig(num_servers=10_000)
    reports = savings_summary(config)
    rows = []
    for name, report in reports.items():
        rows.append(
            [
                name,
                round(report.dram_avoided_gb / 1e6, 2),
                round(report.capital_saved_usd / 1e6, 2),
                round(report.dataplane_cost_usd / 1e6, 3),
                round(report.net_usd / 1e6, 2),
                round(report.net_kg / 1e6, 2),
            ]
        )
    return format_table(
        [
            "data plane",
            "DRAM avoided (PB)",
            "capital saved ($M)",
            "data plane ($M)",
            "net ($M)",
            "net CO2e (kt)",
        ],
        rows,
        title=(
            "Fleet view: 10k servers x 512 GB, 30% cold @ 3x ratio, "
            "15% promotion, 5 years"
        ),
    )


def main() -> None:
    params = CostParams()
    print(cost_landscape(params))
    print()
    print(five_year_bill(params))
    print()
    print(fleet_table())
    print(
        "note the carbon column: with CPU compression the fleet's data\n"
        "plane emits more than the avoided DRAM embodies — the carbon\n"
        "case for SFM *requires* acceleration, which is XFM's thesis.\n"
    )
    accel_be = integrated_accel_breakeven_promotion(params)
    print(
        f"integrated (QAT-class) accelerator pays off above a "
        f"{100 * accel_be:.1f}% promotion rate (paper: ~6%)."
    )
    print(
        "headline: SFM@100% promotion takes "
        f"{sfm_vs_dfm_cost_breakeven(params, 1.0):.1f} years to reach "
        "DRAM-DFM's cost (paper: 8.5); the XFM-accelerated SFM never "
        "reaches its emissions."
    )


if __name__ == "__main__":
    main()
