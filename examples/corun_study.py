#!/usr/bin/env python3
"""Co-run interference study (the Fig. 11 experiment, interactive form).

Runs a SPEC-like job mix against SFM antagonists under the three
configurations of §8 — Baseline-CPU, Host-Lockout-NMA, XFM — and prints
per-workload slowdowns, SFM throughput, and XFM's combined-performance
improvement as the antagonist's promotion rate sweeps upward.

Run:  python examples/corun_study.py
"""

from repro.analysis.report import format_table
from repro.interference.corun import (
    AntagonistConfig,
    CorunConfig,
    SfmMode,
    simulate_corun,
    xfm_improvement_pct,
)


def per_workload_table(config: CorunConfig) -> str:
    results = {mode: simulate_corun(config, mode) for mode in SfmMode}
    names = [w.name for w in results[SfmMode.BASELINE_CPU].workloads]
    rows = []
    for index, name in enumerate(names):
        rows.append(
            [name]
            + [
                round(results[mode].workloads[index].degradation_pct, 2)
                for mode in SfmMode
            ]
        )
    rows.append(
        ["(SFM throughput loss)"]
        + [round(results[mode].sfm_degradation_pct, 2) for mode in SfmMode]
    )
    return format_table(
        ["workload"] + [f"{mode.value} deg%" for mode in SfmMode],
        rows,
        title="per-workload runtime degradation (vs antagonist-free co-run)",
    )


def promotion_sweep() -> str:
    rows = []
    for promo in (0.05, 0.10, 0.14, 0.20, 0.30):
        config = CorunConfig(
            antagonist=AntagonistConfig(promotion_rate=promo)
        )
        baseline = simulate_corun(config, SfmMode.BASELINE_CPU)
        rows.append(
            [
                f"{int(promo * 100)}%",
                round(baseline.spec_max_degradation_pct, 2),
                round(baseline.sfm_degradation_pct, 2),
                round(xfm_improvement_pct(config, SfmMode.BASELINE_CPU), 2),
                round(
                    xfm_improvement_pct(config, SfmMode.HOST_LOCKOUT_NMA), 2
                ),
            ]
        )
    return format_table(
        [
            "promotion",
            "SPEC max deg% (baseline)",
            "SFM deg% (baseline)",
            "XFM gain vs baseline %",
            "XFM gain vs lockout %",
        ],
        rows,
        title="antagonist-intensity sweep (default 8-job mix)",
    )


def main() -> None:
    print(per_workload_table(CorunConfig()))
    print()
    print(promotion_sweep())
    print(
        "\nreading: Baseline-CPU hurts both sides (cache pollution + channel"
        "\ntraffic); Host-Lockout-NMA spares the SFM but stalls every rank"
        "\naccess; XFM's refresh side-channel interferes with neither."
    )


if __name__ == "__main__":
    main()
