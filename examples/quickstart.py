#!/usr/bin/env python3
"""Quickstart: swap pages through the baseline SFM and through XFM.

Demonstrates the core API in ~60 lines: build pages from a realistic
corpus, swap them out through (a) the baseline CPU backend and (b) the
XFM backend, and compare what each costs — CPU cycles and DDR-channel
traffic — for identical functional behaviour.

Run:  python examples/quickstart.py
"""

from repro import PAGE_SIZE, Page, SfmBackend, XfmBackend, corpus_pages
from repro._units import pretty_bytes


def build_pages(num_pages: int):
    """Fixed-schema JSON record pages: realistically compressible data."""
    data = corpus_pages("json-records", num_pages, seed=7)
    return data, [
        Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(data)
    ]


def exercise(backend, pages):
    accepted = sum(1 for page in pages if backend.swap_out(page).accepted)
    # Promote the first few back in and verify the contents survived.
    for page in pages[:4]:
        if page.swapped:
            backend.swap_in(page)
    return accepted


def main() -> None:
    num_pages = 32
    originals, baseline_pages = build_pages(num_pages)
    _, xfm_pages = build_pages(num_pages)

    baseline = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
    xfm = XfmBackend(capacity_bytes=64 * PAGE_SIZE)

    exercise(baseline, baseline_pages)
    exercise(xfm, xfm_pages)

    for page, original in zip(baseline_pages[:4], originals[:4]):
        assert page.data == original, "baseline corrupted a page!"
    for page, original in zip(xfm_pages[:4], originals[:4]):
        assert page.data == original, "XFM corrupted a page!"

    print("identical functional behaviour, very different cost:\n")
    header = f"{'':24s}{'baseline CPU SFM':>20s}{'XFM':>16s}"
    print(header)
    print("-" * len(header))
    rows = [
        ("pages stored", baseline.stored_pages(), xfm.stored_pages()),
        (
            "mean compression ratio",
            f"{baseline.stats.mean_compression_ratio:.2f}",
            f"{xfm.stats.mean_compression_ratio:.2f}",
        ),
        (
            "CPU compress cycles",
            f"{baseline.stats.cpu_compress_cycles:,.0f}",
            f"{xfm.stats.cpu_compress_cycles:,.0f}",
        ),
        (
            "DDR channel traffic",
            pretty_bytes(baseline.ledger.channel_bytes()),
            pretty_bytes(xfm.ledger.channel_bytes()),
        ),
        (
            "on-DIMM (NMA) traffic",
            pretty_bytes(baseline.ledger.total("nma")),
            pretty_bytes(xfm.ledger.total("nma")),
        ),
        (
            "offloaded compressions",
            baseline.stats.offloaded_compressions,
            xfm.stats.offloaded_compressions,
        ),
    ]
    for label, base_value, xfm_value in rows:
        print(f"{label:24s}{str(base_value):>20s}{str(xfm_value):>16s}")
    print(
        "\nNote: XFM's swap-ins above used CPU_Fallback (the default demand-"
        "fault path);\npass do_offload=True via xfm_swap_in() for prefetch "
        "promotions."
    )


if __name__ == "__main__":
    main()
