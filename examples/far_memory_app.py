#!/usr/bin/env python3
"""A web front-end running on application-integrated far memory.

Reproduces the paper's §7 workload seam end to end: a synthetic web
front-end (Zipf point lookups + periodic analytics scans over JSON-record
pages) runs on an AIFM-like runtime whose backend is either the baseline
CPU SFM or XFM. The runtime's cold-scan controller demotes idle pages;
scans announce themselves to the prefetcher, which uses XFM's
``do_offload`` promotion path.

Run:  python examples/far_memory_app.py              # CPU-vs-XFM compare
      python examples/far_memory_app.py <tier>       # one tier only
      (tiers: cpu, xfm, xfm-mc, dfm, pipeline — every backend speaks the
       same FarMemoryTier protocol, so the app code never changes)
"""

import sys

from repro import (
    PAGE_SIZE,
    DfmBackend,
    MultiChannelXfmBackend,
    SfmBackend,
    TierPipeline,
    XfmBackend,
)
from repro._units import pretty_bytes
from repro.analysis.report import format_stats, format_tier_stats
from repro.sfm.controller import ColdScanController
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig

SIMULATED_SECONDS = 90.0

#: Tier name -> zero-arg backend factory (all FarMemoryTier-conformant).
TIER_FACTORIES = {
    "cpu": lambda: SfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "xfm": lambda: XfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "xfm-mc": lambda: MultiChannelXfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "dfm": lambda: DfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "pipeline": lambda: TierPipeline.build(
        cpu_capacity_bytes=128 * PAGE_SIZE,
        xfm_capacity_bytes=128 * PAGE_SIZE,
        dfm_capacity_bytes=256 * PAGE_SIZE,
    ),
}


def run_app(backend):
    runtime = FarMemoryRuntime(
        backend,
        local_capacity_pages=96,
        controller=ColdScanController(cold_threshold_s=6.0, scan_period_s=3.0),
    )
    frontend = WebFrontend(
        runtime,
        WebFrontendConfig(
            num_pages=256,
            lookups_per_s=40,
            write_fraction=0.15,
            scan_period_s=15.0,
            scan_burst_pages=48,
            prefetch_lookahead=16,
            seed=5,
        ),
    )
    report = frontend.run(duration_s=SIMULATED_SECONDS)
    return runtime, report


def describe(name, runtime, report):
    backend = runtime.backend
    trace = runtime.trace
    far_bytes = max(1, backend.stored_pages()) * PAGE_SIZE
    print(f"\n--- {name} ---")
    print(f"lookups served        : {report.lookups}")
    print(f"analytics scans       : {report.scans}")
    print(f"swap-outs / swap-ins  : {report.swap_outs} / {report.swap_ins}")
    print(f"demand faults         : {report.demand_faults} "
          f"(fault rate {100 * report.fault_rate:.2f}%)")
    print(f"prefetch promotions   : {report.prefetch_promotions}")
    print(f"mean compression ratio: {backend.stats.mean_compression_ratio:.2f}")
    print(f"observed promotion rate: "
          f"{100 * trace.promotion_rate(far_bytes):.1f}%/min")
    print(f"DDR channel traffic   : {pretty_bytes(backend.ledger.channel_bytes())}")
    print(f"on-DIMM (NMA) traffic : {pretty_bytes(backend.ledger.total('nma'))}")
    if hasattr(backend, "driver"):
        stats = backend.driver.stats
        print(f"driver MMIO writes    : {stats.mmio_writes} "
              f"(capacity syncs: {stats.capacity_syncs})")
        print(f"offloads (comp/decomp): "
              f"{backend.stats.offloaded_compressions} / "
              f"{backend.stats.offloaded_decompressions}")


def run_single_tier(tier: str) -> None:
    """Run the same app on one named tier (or the 3-tier pipeline)."""
    print(f"simulating {SIMULATED_SECONDS:.0f}s of web front-end traffic "
          f"on the {tier!r} tier...")
    backend = TIER_FACTORIES[tier]()
    runtime, report = run_app(backend)
    describe(tier, runtime, report)
    print()
    if isinstance(backend, TierPipeline):
        print(format_tier_stats(backend, title="per-tier counters"))
    else:
        print(format_stats(backend.stats, title=f"swap counters ({tier})"))


def main() -> None:
    tier = sys.argv[1] if len(sys.argv) > 1 else None
    if tier is not None:
        if tier not in TIER_FACTORIES:
            raise SystemExit(
                f"unknown tier {tier!r}; have {', '.join(TIER_FACTORIES)}"
            )
        run_single_tier(tier)
        return
    print(f"simulating {SIMULATED_SECONDS:.0f}s of web front-end traffic "
          "on two far-memory backends...")
    baseline_runtime, baseline_report = run_app(
        SfmBackend(capacity_bytes=512 * PAGE_SIZE)
    )
    xfm_runtime, xfm_report = run_app(
        XfmBackend(capacity_bytes=512 * PAGE_SIZE)
    )
    describe("baseline CPU SFM", baseline_runtime, baseline_report)
    describe("XFM", xfm_runtime, xfm_report)

    saved = (
        baseline_runtime.backend.ledger.channel_bytes()
        - xfm_runtime.backend.ledger.channel_bytes()
    )
    print(
        f"\nXFM kept {pretty_bytes(max(0, saved))} of swap traffic off the "
        "DDR channel\n(demand faults still use CPU_Fallback by design, §6)."
    )
    print()
    print(
        format_stats(
            [baseline_runtime.backend.stats, xfm_runtime.backend.stats],
            title="swap counters (both backends, merged)",
        )
    )
    xfm_runtime.trace.save("/tmp/xfm_webfrontend_trace.jsonl")
    print("swap trace written to /tmp/xfm_webfrontend_trace.jsonl")


if __name__ == "__main__":
    main()
