#!/usr/bin/env python3
"""zswap-style OS integration over an XFM backend.

Drives the frontswap-shaped store/load/invalidate surface the way a
kernel's swap path would: a mix of compressible pages, same-value-filled
pages (zswap's fast path), incompressible pages (rejected to the "swap
device"), pool-limit pressure, and a swapoff. Shows the debugfs-style
statistics and where the work happened (NMA vs channel).

Run:  python examples/zswap_frontend.py
"""

import random

from repro import PAGE_SIZE, XfmBackend
from repro._units import pretty_bytes
from repro.sfm.zswap import ZswapFrontend
from repro.workloads.corpus import corpus_pages


def main() -> None:
    random.seed(11)
    backend = XfmBackend(capacity_bytes=128 * PAGE_SIZE)
    zswap = ZswapFrontend(
        backend,
        total_ram_bytes=512 * PAGE_SIZE,
        max_pool_percent=20,  # the Linux default
    )

    compressible = corpus_pages("json-records", 48, seed=3)
    incompressible = corpus_pages("random-bytes", 8, seed=3)
    zero = bytes(PAGE_SIZE)

    kept, rejected = 0, 0
    swap_device = {}  # where rejected pages would land

    offset = 0
    for page in compressible:
        if zswap.store(0, offset, page):
            kept += 1
        else:
            swap_device[(0, offset)] = page
            rejected += 1
        offset += 1
    for page in incompressible:
        if zswap.store(0, offset, page):
            kept += 1
        else:
            swap_device[(0, offset)] = page
            rejected += 1
        offset += 1
    for _ in range(6):
        zswap.store(0, offset, zero)
        kept += 1
        offset += 1

    print("after a swap-out burst:")
    print(f"  pages kept by zswap      : {kept}")
    print(f"  rejected to swap device  : {rejected}")
    stats = zswap.stats
    print(f"  same_filled_pages        : {stats.same_filled_pages}")
    print(f"  reject_compress_poor     : {stats.reject_compress_poor}")
    print(f"  reject_pool_limit        : {stats.reject_pool_limit}")
    print(f"  pool usage / limit       : "
          f"{pretty_bytes(zswap.pool_usage_bytes())} / "
          f"{pretty_bytes(zswap.pool_limit_bytes())}")
    print(f"  DDR channel traffic      : "
          f"{pretty_bytes(backend.ledger.channel_bytes())}")
    print(f"  on-DIMM (NMA) traffic    : "
          f"{pretty_bytes(backend.ledger.total('nma'))}")

    # Fault a few pages back in and verify content end to end.
    hits = 0
    for probe in random.sample(range(offset), 20):
        page = zswap.load(0, probe)
        if page is None:
            page = swap_device.get((0, probe))
        else:
            hits += 1
        assert page is not None, "page lost!"
    print(f"\nfaulted 20 pages back in: {hits} zswap hits, "
          f"{20 - hits} from the swap device; all contents verified.")

    dropped = zswap.invalidate_area(0)
    print(f"swapoff: invalidated {dropped} remaining zswap pages; "
          f"pool now {pretty_bytes(zswap.pool_usage_bytes())}.")


if __name__ == "__main__":
    main()
