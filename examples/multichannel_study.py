#!/usr/bin/env python3
"""Multi-channel compression study (the Fig. 8 experiment, interactive).

Takes real synthetic-corpus pages, stripes them across 1/2/4 DIMMs at the
256 B channel-interleave granularity, compresses each DIMM's stripe
independently with the Deflate-style codec, applies the same-offset
placement rule, and reports what interleaving costs: ratio retention,
savings loss, and the split between window-shrink and fragmentation
effects. Also demonstrates the gather-decompress (CPU_Fallback) path.

Run:  python examples/multichannel_study.py
"""

from repro.analysis.report import format_table
from repro.core.multichannel import MultiChannelLayout, measure_corpus
from repro.workloads.corpus import corpus_pages

CORPORA = (
    "text-english",
    "source-code",
    "json-records",
    "server-log",
    "db-btree",
    "heap-pointers",
    "float-matrix",
    "random-bytes",
)


def main() -> None:
    rows = []
    retention = []
    for corpus in CORPORA:
        pages = corpus_pages(corpus, 6, seed=17)
        report = measure_corpus(corpus, pages)
        rows.append(
            [
                corpus,
                round(report.stored_ratio[1], 2),
                round(report.stored_ratio[2], 2),
                round(report.stored_ratio[4], 2),
                round(report.payload_ratio[4], 2),
                round(100 * report.ratio_retention(4), 1),
            ]
        )
        if report.stored_ratio[1] > 1.3:
            retention.append(report.ratio_retention(4))
    print(
        format_table(
            [
                "corpus",
                "1-DIMM",
                "2-DIMM",
                "4-DIMM",
                "4-DIMM (no frag)",
                "retained@4 %",
            ],
            rows,
            title="compression ratio vs DIMM interleaving (deflate)",
        )
    )
    print(
        f"\nmean ratio retained at 4 DIMMs: "
        f"{100 * sum(retention) / len(retention):.1f}% (paper: 86.2%)"
    )

    # Demonstrate the scatter/compress and gather/decompress paths.
    layout = MultiChannelLayout(num_dimms=4)
    page = corpus_pages("json-records", 1, seed=17)[0]
    compressed = layout.compress_page(page)
    print(
        f"\none 4 KiB json page -> per-DIMM segments "
        f"{[len(s) for s in compressed.segments]} bytes"
        f"\nsame-offset slot consumes {compressed.stored_bytes} bytes "
        f"({compressed.fragmentation_bytes} internal fragmentation)"
    )
    restored = layout.decompress_page(compressed)
    assert restored == page
    print("gather-decompress (CPU_Fallback path) restored the page exactly.")


if __name__ == "__main__":
    main()
