"""Setuptools shim.

The environment has no ``wheel`` package, so PEP 517 editable installs
(which build a wheel) fail; this shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` take the legacy develop path. Plain ``pip install -e .``
also works on systems with ``wheel`` available.
"""

from setuptools import setup

setup()
