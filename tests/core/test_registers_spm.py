"""MMIO register file and scratchpad memory tests."""

import pytest

from repro.core.registers import RegisterFile, Registers
from repro.core.spm import ScratchpadMemory, SpmTag
from repro.errors import ConfigError, MmioError, SpmFullError


class TestRegisterFile:
    def test_all_registers_start_zero(self):
        regs = RegisterFile()
        for reg in Registers:
            assert regs.mmio_read(int(reg)) == 0

    def test_host_write_and_read(self):
        regs = RegisterFile()
        regs.mmio_write(int(Registers.SFM_BASE), 0x1000)
        assert regs.mmio_read(int(Registers.SFM_BASE)) == 0x1000

    def test_read_only_enforced(self):
        regs = RegisterFile()
        for reg in (
            Registers.SP_CAPACITY,
            Registers.CRQ_HEAD,
            Registers.CRQ_FREE,
            Registers.STATUS,
        ):
            with pytest.raises(MmioError):
                regs.mmio_write(int(reg), 1)

    def test_device_side_bypasses_protection(self):
        regs = RegisterFile()
        regs.device_set(Registers.SP_CAPACITY, 12345)
        assert regs.mmio_read(int(Registers.SP_CAPACITY)) == 12345
        assert regs[Registers.SP_CAPACITY] == 12345

    def test_unknown_offset_rejected(self):
        regs = RegisterFile()
        with pytest.raises(MmioError):
            regs.mmio_read(0x999)
        with pytest.raises(MmioError):
            regs.mmio_write(0x999, 1)

    def test_negative_value_rejected(self):
        with pytest.raises(MmioError):
            RegisterFile().mmio_write(int(Registers.CTRL), -1)


class TestScratchpad:
    def test_admit_reserves_bytes(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        entry = spm.admit(4096)
        assert spm.used_bytes == 4096
        assert spm.free_bytes == 4096
        assert entry.tag is SpmTag.PENDING

    def test_full_raises(self):
        spm = ScratchpadMemory(capacity_bytes=4096)
        spm.admit(4096)
        with pytest.raises(SpmFullError):
            spm.admit(1)
        assert spm.rejections == 1

    def test_complete_resizes_to_output(self):
        """Compression shrinks the reservation to the blob size."""
        spm = ScratchpadMemory(capacity_bytes=8192)
        entry = spm.admit(4096)
        spm.complete(entry.entry_id, output_bytes=1200)
        assert spm.used_bytes == 1200
        assert entry.tag is SpmTag.COMPLETED

    def test_double_complete_rejected(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        entry = spm.admit(100)
        spm.complete(entry.entry_id)
        with pytest.raises(ConfigError):
            spm.complete(entry.entry_id)

    def test_release_returns_capacity(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        entry = spm.admit(3000)
        spm.release(entry.entry_id)
        assert spm.used_bytes == 0
        assert len(spm) == 0

    def test_unknown_entry_rejected(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        with pytest.raises(ConfigError):
            spm.release(42)

    def test_tag_filtered_listing(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        a = spm.admit(100)
        b = spm.admit(200)
        spm.complete(b.entry_id)
        assert [e.entry_id for e in spm.entries(SpmTag.PENDING)] == [a.entry_id]
        assert [e.entry_id for e in spm.entries(SpmTag.COMPLETED)] == [b.entry_id]

    def test_peak_tracking(self):
        spm = ScratchpadMemory(capacity_bytes=8192)
        a = spm.admit(4000)
        spm.admit(4000)
        spm.release(a.entry_id)
        assert spm.peak_used == 8000
        assert spm.occupancy() == pytest.approx(4000 / 8192)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigError):
            ScratchpadMemory(capacity_bytes=0)
        spm = ScratchpadMemory(capacity_bytes=100)
        with pytest.raises(ConfigError):
            spm.admit(0)
