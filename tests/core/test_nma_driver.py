"""Near-memory accelerator and driver tests."""

import pytest

from repro.core.driver import IOCTL_PARAMSET, XfmDriver
from repro.core.nma import FPGA_PROTOTYPE, NearMemoryAccelerator, NmaConfig
from repro.core.registers import Registers
from repro.core.spm import SpmTag
from repro.errors import ConfigError, QueueFullError, SpmFullError


@pytest.fixture
def nma():
    return NearMemoryAccelerator(NmaConfig(spm_bytes=16 * 4096, crq_depth=4))


@pytest.fixture
def driver(nma):
    return XfmDriver(nma)


class TestQueue:
    def test_submit_and_pop(self, nma):
        request = nma.submit(
            is_compress=True, source_row=10, dest_row=None, input_bytes=4096
        )
        assert nma.queue_depth == 1
        popped = nma.pop_request()
        assert popped is request
        assert nma.queue_depth == 0
        assert nma.pop_request() is None

    def test_queue_full(self, nma):
        for i in range(4):
            nma.submit(True, i, None, 4096)
        with pytest.raises(QueueFullError):
            nma.submit(True, 9, None, 4096)

    def test_registers_mirror_queue(self, nma):
        assert nma.registers[Registers.CRQ_FREE] == 4
        nma.submit(True, 0, None, 4096)
        assert nma.registers[Registers.CRQ_FREE] == 3


class TestTimedEngine:
    def test_stage_and_advance_to_completion(self, nma):
        request = nma.submit(True, 0, None, 4096)
        nma.pop_request()
        entry = nma.stage_input(request)
        assert entry.tag is SpmTag.PENDING
        # 4096 B at 14.8 GBps = ~277 ns of engine time.
        done = nma.advance(1000.0, output_bytes_of=lambda e: 1024)
        assert [e.entry_id for e in done] == [entry.entry_id]
        assert entry.tag is SpmTag.COMPLETED
        assert nma.spm.used_bytes == 1024
        assert nma.completed_ops == 1

    def test_partial_progress_carries_over(self, nma):
        request = nma.submit(True, 0, None, 4096)
        nma.pop_request()
        nma.stage_input(request)
        assert nma.advance(100.0) == []
        assert len(nma.advance(500.0)) == 1

    def test_fifo_engine_ordering(self, nma):
        first = nma.submit(True, 0, None, 4096)
        second = nma.submit(True, 1, None, 4096)
        nma.pop_request(), nma.pop_request()
        e1 = nma.stage_input(first)
        e2 = nma.stage_input(second)
        done = nma.advance(300.0)
        assert [e.entry_id for e in done] == [e1.entry_id]
        done = nma.advance(300.0)
        assert [e.entry_id for e in done] == [e2.entry_id]

    def test_decompress_uses_decompress_rate(self):
        config = NmaConfig(compress_gbps=1.0, decompress_gbps=2.0)
        assert config.compress_time_ns(4096) == 2 * config.decompress_time_ns(4096)

    def test_fpga_prototype_speeds(self):
        assert FPGA_PROTOTYPE.compress_gbps == pytest.approx(1.4)
        assert FPGA_PROTOTYPE.decompress_gbps == pytest.approx(1.7)

    def test_status_register_reflects_idle(self, nma):
        assert nma.registers[Registers.STATUS] & 0x1
        request = nma.submit(True, 0, None, 4096)
        nma.pop_request()
        nma.stage_input(request)
        assert not nma.registers[Registers.STATUS] & 0x1

    def test_functional_mode_round_trip(self, nma, json_pages):
        blob = nma.compress_page(json_pages[0])
        assert nma.decompress_blob(blob) == json_pages[0]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            NmaConfig(compress_gbps=0)
        with pytest.raises(ConfigError):
            NmaConfig(crq_depth=0)


class TestDriver:
    def test_paramset_via_ioctl(self, driver, nma):
        driver.ioctl(IOCTL_PARAMSET, (0x4000, 1 << 30))
        assert nma.registers[Registers.SFM_BASE] == 0x4000
        assert nma.registers[Registers.SFM_SIZE] == 1 << 30
        assert driver.sfm_region == (0x4000, 1 << 30)

    def test_unknown_ioctl_rejected(self, driver):
        with pytest.raises(ConfigError):
            driver.ioctl(0xDEAD, None)

    def test_submit_compress_reaches_queue(self, driver, nma):
        driver.submit_compress(source_row=3, input_bytes=4096)
        assert nma.queue_depth == 1
        assert driver.stats.submissions == 1

    def test_lazy_tracking_avoids_mmio_reads(self, driver):
        """The common case must not synchronize with hardware (§6)."""
        for i in range(8):
            driver.submit_compress(source_row=i, input_bytes=4096)
            driver.nma.pop_request()  # keep CRQ drained
        assert driver.stats.capacity_syncs == 0

    def test_sync_on_inferred_full_then_fallback(self, driver, nma):
        # Fill the SPM for real (through the device path, so the
        # SP_Capacity_Register reflects it) and exhaust the inferred bound.
        for i in range(16):
            request = nma.submit(True, i, None, 4096)
            nma.pop_request()
            nma.stage_input(request)
        driver._inferred_spm_used = 16 * 4096
        with pytest.raises(SpmFullError):
            driver.submit_compress(source_row=0, input_bytes=4096)
        assert driver.stats.capacity_syncs == 1
        assert driver.stats.rejected_submissions == 1

    def test_sync_recovers_when_device_freed(self, driver, nma):
        """If the device freed SPM since the bound was set, the sync read
        resets the bound and the submission proceeds."""
        driver._inferred_spm_used = nma.spm.capacity_bytes
        driver.submit_compress(source_row=0, input_bytes=4096)
        assert driver.stats.capacity_syncs == 1
        assert driver.stats.rejected_submissions == 0

    def test_notify_release_tightens_bound(self, driver):
        driver.submit_compress(source_row=0, input_bytes=4096)
        bound = driver._inferred_spm_used
        driver.notify_release(4096)
        assert driver._inferred_spm_used == bound - 4096

    def test_paramset_validation(self, driver):
        with pytest.raises(ConfigError):
            driver.xfm_paramset(sfm_base=0, sfm_size=0)
