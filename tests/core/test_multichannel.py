"""Multi-channel mode tests (Fig. 8 / Fig. 9)."""

import pytest

from repro.core.multichannel import (
    CompressedPage,
    MultiChannelLayout,
    measure_corpus,
)
from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


class TestSplitGather:
    def test_split_round_robin(self):
        layout = MultiChannelLayout(num_dimms=4)
        data = bytes(
            byte
            for chunk in range(16)
            for byte in [chunk] * 256
        )
        streams = layout.split(data)
        assert len(streams) == 4
        assert streams[0][:256] == bytes([0]) * 256
        assert streams[1][:256] == bytes([1]) * 256
        assert streams[0][256:512] == bytes([4]) * 256

    def test_gather_inverts_split(self, json_pages):
        for num_dimms in (1, 2, 4):
            layout = MultiChannelLayout(num_dimms=num_dimms)
            assert layout.gather(layout.split(json_pages[0])) == json_pages[0]

    def test_wrong_page_size_rejected(self):
        with pytest.raises(ConfigError):
            MultiChannelLayout(num_dimms=4).split(b"short")

    def test_window_shrinks_with_dimms(self):
        assert MultiChannelLayout(num_dimms=1).window_size == 4096
        assert MultiChannelLayout(num_dimms=2).window_size == 2048
        assert MultiChannelLayout(num_dimms=4).window_size == 1024

    def test_indivisible_config_rejected(self):
        with pytest.raises(ConfigError):
            MultiChannelLayout(num_dimms=3)


class TestCompressedPage:
    def test_round_trip(self, json_pages):
        layout = MultiChannelLayout(num_dimms=4)
        compressed = layout.compress_page(json_pages[0])
        assert layout.decompress_page(compressed) == json_pages[0]

    def test_same_offset_placement_fragmentation(self):
        page = CompressedPage(segments=(b"a" * 100, b"b" * 300), original_len=4096)
        assert page.payload_bytes == 400
        assert page.stored_bytes == 600  # 2 DIMMs x max(100, 300)
        assert page.fragmentation_bytes == 200

    def test_layout_mismatch_rejected(self, json_pages):
        compressed = MultiChannelLayout(num_dimms=2).compress_page(json_pages[0])
        with pytest.raises(ConfigError):
            MultiChannelLayout(num_dimms=4).decompress_page(compressed)


class TestSplitGatherProperty:
    def test_split_gather_inverse_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(deadline=None, max_examples=30)
        @given(
            seed_chunk=st.binary(min_size=1, max_size=128),
            num_dimms=st.sampled_from([1, 2, 4, 8]),
        )
        def check(seed_chunk, num_dimms):
            data = (seed_chunk * (PAGE_SIZE // len(seed_chunk) + 1))[
                :PAGE_SIZE
            ]
            layout = MultiChannelLayout(num_dimms=num_dimms)
            streams = layout.split(data)
            # Stripes partition the page evenly...
            assert sum(len(s) for s in streams) == PAGE_SIZE
            assert len({len(s) for s in streams}) == 1
            # ...and gather is the exact inverse.
            assert layout.gather(streams) == data

        check()

    def test_full_round_trip_property(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(deadline=None, max_examples=10)
        @given(
            chunk=st.binary(min_size=1, max_size=64),
            num_dimms=st.sampled_from([2, 4]),
        )
        def check(chunk, num_dimms):
            data = (chunk * (PAGE_SIZE // len(chunk) + 1))[:PAGE_SIZE]
            layout = MultiChannelLayout(num_dimms=num_dimms)
            assert layout.decompress_page(layout.compress_page(data)) == data

        check()


class TestMeasurement:
    def test_ratio_degrades_with_dimm_count(self, json_pages):
        report = measure_corpus("json", json_pages, verify=True)
        assert report.stored_ratio[1] >= report.stored_ratio[2]
        assert report.stored_ratio[2] >= report.stored_ratio[4]

    def test_payload_ratio_isolates_window_effect(self, json_pages):
        report = measure_corpus("json", json_pages)
        for dimms in (2, 4):
            assert report.payload_ratio[dimms] >= report.stored_ratio[dimms]

    def test_savings_reduction_in_paper_ballpark(self, json_pages, text_pages):
        """§8: 2-DIMM cuts savings ~5%, 4-DIMM ~14% (corpus averages)."""
        for pages in (json_pages, text_pages):
            report = measure_corpus("c", pages)
            r2 = report.savings_reduction_vs_inorder(2)
            r4 = report.savings_reduction_vs_inorder(4)
            assert 0.0 <= r2 <= 0.35
            assert r2 <= r4 <= 0.6

    def test_ratio_retention(self, json_pages):
        report = measure_corpus("json", json_pages)
        assert 0.5 <= report.ratio_retention(4) <= 1.0
