"""Multi-DIMM XFM system tests (functional multi-channel mode)."""

import pytest

from repro.core.nma import NmaConfig
from repro.core.system import MultiChannelXfmBackend, XfmDimm
from repro.errors import ConfigError, SfmError
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.corpus import corpus_pages


def _pages(buffers):
    return [
        Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(buffers)
    ]


@pytest.fixture
def backend():
    return MultiChannelXfmBackend(
        capacity_bytes=128 * PAGE_SIZE, num_dimms=4
    )


class TestStripedSwap:
    def test_round_trip_content(self, backend, json_pages):
        pages = _pages(json_pages)
        for page, original in zip(pages, json_pages):
            assert backend.swap_out(page).accepted
            assert page.swapped
        for page, original in zip(pages, json_pages):
            assert backend.swap_in(page) == original

    def test_round_trip_with_offload(self, backend, json_pages):
        pages = _pages(json_pages)
        for page in pages:
            backend.swap_out(page)
        for page, original in zip(pages, json_pages):
            assert backend.swap_in(page, do_offload=True) == original
        assert backend.stats.offloaded_decompressions == 4 * len(pages)

    def test_segments_land_on_every_dimm(self, backend, json_pages):
        backend.swap_out(_pages(json_pages)[0])
        for dimm in backend.dimms:
            assert dimm.region.stored_bytes() > 0

    def test_same_offset_fragmentation_tracked(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        assert backend.fragmentation_bytes >= 0
        backend.swap_in(page)
        assert backend.fragmentation_bytes == 0

    def test_incompressible_rejected(self, backend, random_pages):
        outcome = backend.swap_out(_pages(random_pages)[0])
        assert not outcome.accepted
        assert outcome.reason == "incompressible"
        for dimm in backend.dimms:
            assert dimm.region.stored_bytes() == 0

    def test_pool_full_rolls_back_all_dimms(self, json_pages):
        backend = MultiChannelXfmBackend(
            capacity_bytes=4 * PAGE_SIZE, num_dimms=4
        )
        pages = _pages(corpus_pages("json-records", 16, seed=31))
        reasons = [backend.swap_out(p).reason for p in pages]
        assert "pool-full" in reasons
        # No partial stripes: every DIMM holds the same entry count.
        counts = {len(d.region) for d in backend.dimms}
        assert len(counts) == 1

    def test_offload_keeps_channel_clean(self, backend, json_pages):
        backend.swap_out(_pages(json_pages)[0])
        assert backend.ledger.channel_bytes() == 0
        assert backend.ledger.total("nma") > 0

    def test_cpu_gather_path_charges_channel(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        backend.swap_in(page)  # default CPU gather-decompress
        assert backend.ledger.channel_bytes() > 0
        assert backend.stats.cpu_fallback_decompressions == 4


class TestStateMachine:
    def test_double_swap_out_rejected(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        with pytest.raises(SfmError):
            backend.swap_out(page)

    def test_swap_in_resident_rejected(self, backend, json_pages):
        with pytest.raises(SfmError):
            backend.swap_in(_pages(json_pages)[0])

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MultiChannelXfmBackend(capacity_bytes=PAGE_SIZE, num_dimms=0)
        with pytest.raises(ConfigError):
            MultiChannelXfmBackend(capacity_bytes=PAGE_SIZE + 1, num_dimms=2)


class TestAccounting:
    def test_effective_ratio_below_single_dimm(self, json_pages):
        """Striping + same-offset placement costs ratio vs 1-DIMM mode."""
        single = MultiChannelXfmBackend(
            capacity_bytes=128 * PAGE_SIZE, num_dimms=1
        )
        quad = MultiChannelXfmBackend(
            capacity_bytes=128 * PAGE_SIZE, num_dimms=4
        )
        for p in _pages(json_pages):
            single.swap_out(p)
        for p in _pages(json_pages):
            quad.swap_out(p)
        assert single.effective_ratio() >= quad.effective_ratio() > 1.0

    def test_per_dimm_occupancy(self, backend, json_pages):
        for p in _pages(json_pages):
            backend.swap_out(p)
        occupancy = backend.per_dimm_occupancy()
        assert set(occupancy) == {0, 1, 2, 3}
        assert all(0 < v <= 1 for v in occupancy.values())

    def test_compact_runs_on_all_dimms(self, backend, json_pages):
        pages = _pages(corpus_pages("json-records", 12, seed=37))
        for p in pages:
            backend.swap_out(p)
        for p in pages[::2]:
            backend.swap_in(p)
        assert backend.compact() >= 0

    def test_dimm_regions_isolated(self, backend):
        assert backend.capacity_bytes == 128 * PAGE_SIZE
        assert backend.dimms[0].region is not backend.dimms[1].region

    def test_dimm_builder(self):
        from repro.compression.deflate import DeflateCodec

        dimm = XfmDimm.build(
            index=2,
            region_bytes=8 * PAGE_SIZE,
            nma_config=NmaConfig(),
            codec=DeflateCodec(window_size=1024),
        )
        assert dimm.driver.sfm_region == (2 << 40, 8 * PAGE_SIZE)
