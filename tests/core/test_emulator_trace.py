"""Trace-driven emulator tests (the §7 trace pipeline end-to-end)."""

import pytest

from repro.core.emulator import EmulatorConfig, XfmEmulator
from repro.errors import ConfigError
from repro.sfm.backend import SfmBackend
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.traces import SWAP_IN, SWAP_OUT, SwapTrace
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig


def _dense_trace(ops: int, mean_gap_s: float, seed: int = 0) -> SwapTrace:
    import random

    rng = random.Random(seed)
    trace = SwapTrace()
    t = 0.0
    for i in range(ops):
        t += rng.expovariate(1.0 / mean_gap_s)
        kind = SWAP_OUT if rng.random() < 0.6 else SWAP_IN
        trace.record(t, kind, i * PAGE_SIZE)
    return trace


class TestRunTrace:
    def test_empty_trace(self):
        report = XfmEmulator(EmulatorConfig()).run_trace(SwapTrace())
        assert report.total_ops == 0
        assert report.fallback_fraction == 0.0

    def test_light_trace_no_fallbacks(self):
        trace = _dense_trace(ops=500, mean_gap_s=1e-4)
        report = XfmEmulator(
            EmulatorConfig(accesses_per_ref=3)
        ).run_trace(trace)
        assert report.fallback_fraction == 0.0
        assert report.completed_ops > 0

    def test_time_scale_compresses_load(self):
        """Compressing trace time raises arrival intensity -> fallbacks."""
        trace = _dense_trace(ops=4000, mean_gap_s=1e-4, seed=2)
        relaxed = XfmEmulator(
            EmulatorConfig(accesses_per_ref=1, spm_bytes=1 << 20)
        ).run_trace(trace, time_scale=1.0)
        squeezed = XfmEmulator(
            EmulatorConfig(accesses_per_ref=1, spm_bytes=1 << 20)
        ).run_trace(trace, time_scale=100.0)
        assert squeezed.fallback_fraction >= relaxed.fallback_fraction
        assert squeezed.fallback_fraction > 0.2

    def test_offload_fraction_filters_swap_ins(self):
        trace = SwapTrace()
        for i in range(200):
            trace.record(i * 1e-5, SWAP_IN, i * PAGE_SIZE)
        all_offload = XfmEmulator(
            EmulatorConfig(decompress_offload_fraction=1.0)
        ).run_trace(trace)
        no_offload = XfmEmulator(
            EmulatorConfig(decompress_offload_fraction=0.0)
        ).run_trace(trace)
        assert no_offload.total_ops == 0
        assert all_offload.total_ops == 200

    def test_bad_time_scale_rejected(self):
        with pytest.raises(ConfigError):
            XfmEmulator(EmulatorConfig()).run_trace(SwapTrace(), time_scale=0)

    def test_webfrontend_trace_feeds_emulator(self):
        """Full §7 pipeline: app -> AIFM trace -> timing emulator."""
        backend = SfmBackend(capacity_bytes=256 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=32,
            controller=ColdScanController(
                cold_threshold_s=3.0, scan_period_s=2.0
            ),
        )
        frontend = WebFrontend(
            runtime, WebFrontendConfig(num_pages=128, lookups_per_s=30, seed=9)
        )
        frontend.run(duration_s=40.0)
        assert len(runtime.trace) > 0
        report = XfmEmulator(EmulatorConfig(accesses_per_ref=3)).run_trace(
            runtime.trace, time_scale=5000.0
        )
        assert report.total_ops > 0
        assert report.conditional_accesses > 0
