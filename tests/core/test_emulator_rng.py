"""Regression: the emulator's three RNG consumers must draw from
independent streams.

The original code built all three generators with
``np.random.default_rng(cfg.seed)``, so arrival sampling, trace offload
sampling, and in-simulation draws consumed *identical* random sequences
— correlated in lockstep. The fix derives child streams with
``np.random.SeedSequence(seed).spawn(3)``.
"""

import numpy as np

from repro.core.emulator import EmulatorConfig, XfmEmulator


def _emulator(**overrides):
    cfg = EmulatorConfig(sim_time_s=0.01, **overrides)
    return XfmEmulator(config=cfg)


def test_child_streams_differ_pairwise():
    arrival, trace, sim = _emulator()._spawn_rngs()
    draws = {
        name: rng.random(64).tolist()
        for name, rng in (("arrival", arrival), ("trace", trace), ("sim", sim))
    }
    assert draws["arrival"] != draws["trace"]
    assert draws["arrival"] != draws["sim"]
    assert draws["trace"] != draws["sim"]


def test_streams_match_seedsequence_spawn():
    """The derivation is pinned: SeedSequence(seed).spawn(3), in order
    (arrival, trace, sim). A silent change here would shift every
    emulator-derived figure."""
    seeds = np.random.SeedSequence(1234).spawn(3)
    expected = [np.random.default_rng(s).random(16).tolist() for s in seeds]
    actual = [
        rng.random(16).tolist() for rng in _emulator(seed=1234)._spawn_rngs()
    ]
    assert actual == expected


def test_spawn_is_deterministic_per_seed():
    first = [rng.random(16).tolist() for rng in _emulator(seed=7)._spawn_rngs()]
    second = [rng.random(16).tolist() for rng in _emulator(seed=7)._spawn_rngs()]
    third = [rng.random(16).tolist() for rng in _emulator(seed=8)._spawn_rngs()]
    assert first == second
    assert first != third


def test_run_reproducible_and_seed_sensitive():
    base = _emulator(seed=42).run()
    again = _emulator(seed=42).run()
    other = _emulator(seed=43).run()
    assert base.total_ops == again.total_ops
    assert base.fallback_ops == again.fallback_ops
    assert base.conditional_accesses == again.conditional_accesses
    assert base.random_accesses == again.random_accesses
    assert base.nma_bytes_moved == again.nma_bytes_moved
    assert (
        base.total_ops,
        base.conditional_accesses,
        base.random_accesses,
        base.nma_bytes_moved,
    ) != (
        other.total_ops,
        other.conditional_accesses,
        other.random_accesses,
        other.nma_bytes_moved,
    )
