"""Refresh-window scheduler tests: budgets, conditional matching, randoms."""

import pytest

from repro.core.refresh_channel import AccessKind, WindowScheduler
from repro.dram.device import DDR5_32GB, timings_for_device
from repro.dram.refresh import RefreshScheduler
from repro.errors import ConfigError


def _scheduler(accesses_per_ref=3, random_per_ref=1, random_age_refs=0):
    refresh = RefreshScheduler(DDR5_32GB, timings_for_device(DDR5_32GB))
    return WindowScheduler(
        refresh=refresh,
        accesses_per_ref=accesses_per_ref,
        random_per_ref=random_per_ref,
        random_age_refs=random_age_refs,
    )


def _row_for_slot(slot):
    return slot * DDR5_32GB.rows_refreshed_per_trfc


class TestConditionalMatching:
    def test_row_served_at_its_slot(self):
        scheduler = _scheduler(random_per_ref=0)
        scheduler.submit(AccessKind.READ, _row_for_slot(5), current_ref=0)
        assert scheduler.drain(4) == []
        executed = scheduler.drain(5)
        assert len(executed) == 1
        assert executed[0].conditional
        assert executed[0].waited_refs == 5

    def test_budget_caps_window(self):
        scheduler = _scheduler(accesses_per_ref=2, random_per_ref=0)
        for _ in range(5):
            scheduler.submit(AccessKind.READ, _row_for_slot(3), current_ref=0)
        assert len(scheduler.drain(3)) == 2
        assert scheduler.pending_count == 3

    def test_unserved_wait_for_next_cycle(self):
        scheduler = _scheduler(accesses_per_ref=1, random_per_ref=0)
        for _ in range(2):
            scheduler.submit(AccessKind.READ, _row_for_slot(0), current_ref=0)
        assert len(scheduler.drain(0)) == 1
        # Slot 0 recurs one retention cycle (8192 REFs) later.
        assert scheduler.drain(1) == []
        assert len(scheduler.drain(8192)) == 1


class TestFlexiblePlacement:
    def test_flexible_served_immediately_and_conditionally(self):
        scheduler = _scheduler()
        scheduler.submit(AccessKind.WRITE, None, current_ref=0, nbytes=2048)
        executed = scheduler.drain(0)
        assert len(executed) == 1
        assert executed[0].conditional
        assert executed[0].request.nbytes == 2048

    def test_flexible_has_priority(self):
        scheduler = _scheduler(accesses_per_ref=1, random_per_ref=0)
        scheduler.submit(AccessKind.READ, _row_for_slot(2), current_ref=0)
        scheduler.submit(AccessKind.WRITE, None, current_ref=0)
        executed = scheduler.drain(2)
        assert executed[0].request.row is None


class TestRandomAccesses:
    def test_random_serves_mismatched_row(self):
        scheduler = _scheduler(accesses_per_ref=3, random_per_ref=1)
        # Slot 100's row; window 0 does not match, so a random slot fires
        # (work-conserving default).
        scheduler.submit(AccessKind.READ, _row_for_slot(100), current_ref=0)
        executed = scheduler.drain(0)
        assert len(executed) == 1
        assert not executed[0].conditional

    def test_random_budget_capped(self):
        scheduler = _scheduler(accesses_per_ref=3, random_per_ref=1)
        for slot in (100, 200, 300):
            scheduler.submit(AccessKind.READ, _row_for_slot(slot), current_ref=0)
        executed = scheduler.drain(0)
        assert len(executed) == 1  # only one random per tRFC

    def test_random_disabled(self):
        scheduler = _scheduler(random_per_ref=0)
        scheduler.submit(AccessKind.READ, _row_for_slot(100), current_ref=0)
        assert scheduler.drain(0) == []

    def test_age_gate_defers_randoms(self):
        scheduler = _scheduler(random_age_refs=50)
        scheduler.submit(AccessKind.READ, _row_for_slot(100), current_ref=0)
        assert scheduler.drain(10) == []
        assert len(scheduler.drain(60)) == 1

    def test_pressure_overrides_age_gate(self):
        scheduler = _scheduler(random_age_refs=10_000)
        scheduler.submit(AccessKind.READ, _row_for_slot(100), current_ref=0)
        assert scheduler.drain(0, pressure=False) == []
        assert len(scheduler.drain(1, pressure=True)) == 1

    def test_subarray_conflict_defers_random(self):
        scheduler = _scheduler()
        # Window 0 refreshes rows 0..15 (subarray 0). A random access to
        # another row of subarray 0 must wait.
        scheduler.submit(AccessKind.READ, 100, current_ref=0)
        assert scheduler.drain(0) == []
        # Slots 0..31 all refresh subarray-0 rows (512 rows / 16 per REF),
        # so the random stays deferred until slot 32's window.
        assert scheduler.drain(31) == []
        executed = scheduler.drain(32)
        assert len(executed) == 1
        assert not executed[0].conditional

    def test_oldest_random_first(self):
        scheduler = _scheduler()
        first = scheduler.submit(AccessKind.READ, _row_for_slot(100), 0)
        scheduler.submit(AccessKind.READ, _row_for_slot(200), 1)
        executed = scheduler.drain(2)
        assert executed[0].request.request_id == first.request_id


class TestBookkeeping:
    def test_pending_count(self):
        scheduler = _scheduler()
        scheduler.submit(AccessKind.READ, _row_for_slot(1), 0)
        scheduler.submit(AccessKind.WRITE, None, 0)
        assert scheduler.pending_count == 2
        scheduler.drain(1)
        assert scheduler.pending_count == 0

    def test_oldest_wait(self):
        scheduler = _scheduler(random_per_ref=0)
        scheduler.submit(AccessKind.READ, _row_for_slot(500), 10)
        assert scheduler.oldest_wait_refs(25) == 15

    def test_conditional_pop_cleans_heap(self):
        scheduler = _scheduler()
        scheduler.submit(AccessKind.READ, _row_for_slot(5), 0)
        scheduler.drain(5)
        assert scheduler.oldest_wait_refs(100) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            _scheduler(accesses_per_ref=0)
        with pytest.raises(ConfigError):
            _scheduler(accesses_per_ref=1, random_per_ref=2)
