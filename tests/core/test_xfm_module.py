"""Protocol-level XFM module tests: scheduler decisions vs bank FSMs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.refresh_channel import AccessKind
from repro.core.xfm_module import XfmModule
from repro.dram.commands import CommandKind
from repro.dram.device import DDR5_8GB, timings_for_device
from repro.errors import DramProtocolError


class TestWindowExecution:
    def test_flexible_access_executes_first_window(self):
        module = XfmModule()
        module.submit_write(None, nbytes=2048)
        executed = module.step()
        assert len(executed) == 1
        assert executed[0].conditional
        assert module.host_window_clean()

    def test_fixed_row_waits_for_its_slot(self):
        module = XfmModule()
        rows_per_ref = module.device.rows_refreshed_per_trfc
        module.scheduler.random_per_ref = 0
        module.submit_read(rows_per_ref * 3)  # slot 3
        assert module.step() == []
        assert module.step() == []
        assert module.step() == []
        executed = module.step()  # window 3
        assert len(executed) == 1
        assert executed[0].conditional

    def test_random_access_validated_against_subarrays(self):
        module = XfmModule()
        # Row in a distant subarray: a legal random in window 0.
        module.submit_read(512 * 8)
        executed = module.step()
        assert len(executed) == 1
        assert not executed[0].conditional

    def test_command_trace_recorded(self):
        module = XfmModule()
        module.submit_write(None)
        module.submit_read(512 * 8)
        module.run(2)
        kinds = [command.kind for command in module.commands]
        assert kinds.count(CommandKind.REF) == 2
        assert CommandKind.NMA_WR in kinds
        assert CommandKind.NMA_RD in kinds
        times = [command.time_ns for command in module.commands]
        assert times == sorted(times)

    def test_window_budget_respected(self):
        module = XfmModule(accesses_per_ref=3)
        for _ in range(10):
            module.submit_write(None)
        executed = module.step()
        assert len(executed) == 3

    def test_overcommitted_budget_detected(self):
        """A budget beyond the device's tRFC capacity must trip the
        protocol check, not silently succeed."""
        module = XfmModule(
            device=DDR5_8GB,
            timings=timings_for_device(DDR5_8GB),
            accesses_per_ref=4,  # 8 Gb part fits only 2 page accesses
        )
        for _ in range(4):
            module.submit_write(None)
        with pytest.raises(DramProtocolError):
            module.step()

    def test_host_clean_after_every_window(self):
        module = XfmModule()
        for i in range(20):
            if i % 3 == 0:
                module.submit_write(None, nbytes=1024)
            if i % 5 == 0:
                module.submit_read((i * 137) % module.device.rows_per_bank)
            module.step()
            assert module.host_window_clean()


@settings(deadline=None, max_examples=25)
@given(
    operations=st.lists(
        st.tuples(
            st.booleans(),  # read or write
            st.one_of(st.none(), st.integers(0, DDR5_8GB.rows_per_bank - 1)),
        ),
        max_size=30,
    ),
    seed=st.integers(0, 1000),
)
def test_module_protocol_safety_property(operations, seed):
    """Property: for any submission pattern, every access the scheduler
    executes is protocol-legal (no DramProtocolError), windows never
    overrun tRFC, and the host view is clean after every window."""
    module = XfmModule(
        device=DDR5_8GB,
        timings=timings_for_device(DDR5_8GB),
        accesses_per_ref=2,
    )
    pending = list(operations)
    for step_index in range(40):
        if pending and step_index % 2 == 0:
            is_read, row = pending.pop()
            if is_read:
                module.submit_read(row, nbytes=1024)
            else:
                module.submit_write(row, nbytes=1024)
        module.step(pressure=bool(seed % 2))
        assert module.host_window_clean()
