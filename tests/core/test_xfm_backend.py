"""XFM backend tests: offload paths, fallbacks, drop-in behaviour."""

import pytest

from repro.core.backend import XfmBackend
from repro.core.nma import NearMemoryAccelerator, NmaConfig
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page


def _pages(buffers):
    return [
        Page(vaddr=i * PAGE_SIZE, data=data) for i, data in enumerate(buffers)
    ]


@pytest.fixture
def backend():
    return XfmBackend(capacity_bytes=32 * PAGE_SIZE)


class TestOffloadedSwapOut:
    def test_content_round_trip(self, backend, json_pages):
        pages = _pages(json_pages)
        for page, original in zip(pages, json_pages):
            assert backend.xfm_swap_out(page).accepted
            assert page.swapped
        for page, original in zip(pages, json_pages):
            assert backend.xfm_swap_in(page) == original

    def test_no_cpu_cycles_charged(self, backend, json_pages):
        backend.xfm_swap_out(_pages(json_pages)[0])
        assert backend.stats.cpu_compress_cycles == 0.0
        assert backend.stats.offloaded_compressions == 1

    def test_no_channel_traffic_for_offload(self, backend, json_pages):
        """The headline property: offloaded swaps never touch the DDR
        channel (Fig. 1 / Fig. 11)."""
        backend.xfm_swap_out(_pages(json_pages)[0])
        assert backend.ledger.channel_bytes() == 0
        assert backend.ledger.total("nma") > 0

    def test_spm_left_empty_after_ops(self, backend, json_pages):
        for page in _pages(json_pages):
            backend.xfm_swap_out(page)
        assert backend.nma.spm.used_bytes == 0

    def test_incompressible_rejected_without_storing(self, backend, random_pages):
        page = _pages(random_pages)[0]
        outcome = backend.xfm_swap_out(page)
        assert not outcome.accepted
        assert outcome.reason == "incompressible"
        assert backend.nma.spm.used_bytes == 0

    def test_pool_full_rejected(self, json_pages):
        backend = XfmBackend(capacity_bytes=PAGE_SIZE)
        reasons = [
            backend.xfm_swap_out(p).reason for p in _pages(json_pages * 3)
        ]
        assert "pool-full" in reasons


class TestCpuFallback:
    def test_queue_exhaustion_falls_back_to_cpu(self, json_pages):
        nma = NearMemoryAccelerator(NmaConfig(crq_depth=1))
        backend = XfmBackend(capacity_bytes=32 * PAGE_SIZE, nma=nma)
        # Occupy the only CRQ slot so the next submit fails.
        nma.submit(True, 0, None, PAGE_SIZE)
        page = _pages(json_pages)[0]
        outcome = backend.xfm_swap_out(page)
        assert outcome.accepted
        assert backend.stats.cpu_fallback_compressions == 1
        assert backend.stats.cpu_compress_cycles > 0
        assert backend.ledger.channel_bytes() > 0

    def test_spm_exhaustion_falls_back(self, json_pages):
        nma = NearMemoryAccelerator(NmaConfig(spm_bytes=PAGE_SIZE))
        backend = XfmBackend(capacity_bytes=32 * PAGE_SIZE, nma=nma)
        # Fill the SPM through the device path so the capacity register
        # reflects the occupancy the driver's sync read will see.
        staged = nma.submit(True, 0, None, PAGE_SIZE)
        nma.pop_request()
        nma.stage_input(staged)
        backend.driver._inferred_spm_used = PAGE_SIZE
        page = _pages(json_pages)[0]
        outcome = backend.xfm_swap_out(page)
        assert outcome.accepted
        assert backend.stats.cpu_fallback_compressions == 1


class TestSwapInPolicy:
    def test_default_swap_in_uses_cpu(self, backend, json_pages):
        """§6: CPU_Fallback is the default for swap-ins (fault latency)."""
        page = _pages(json_pages)[0]
        backend.xfm_swap_out(page)
        backend.ledger.reset()
        backend.xfm_swap_in(page)
        assert backend.stats.cpu_fallback_decompressions == 1
        assert backend.ledger.channel_bytes() > 0

    def test_prefetch_swap_in_offloads(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.xfm_swap_out(page)
        backend.ledger.reset()
        data = backend.xfm_swap_in(page, do_offload=True)
        assert data == json_pages[0]
        assert backend.stats.offloaded_decompressions == 1
        assert backend.ledger.channel_bytes() == 0


class TestDropInCompatibility:
    def test_is_an_sfm_backend(self, backend):
        assert isinstance(backend, SfmBackend)

    def test_baseline_api_routes_through_nma(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        assert backend.stats.offloaded_compressions == 1
        assert backend.swap_in(page) == json_pages[0]

    def test_xfm_compact(self, backend, json_pages):
        pages = _pages(json_pages)
        for page in pages:
            backend.xfm_swap_out(page)
        backend.xfm_swap_in(pages[1])
        assert backend.xfm_compact() >= 0

    def test_driver_region_configured(self, backend):
        base, size = backend.driver.sfm_region
        assert base == 0
        assert size == backend.capacity_bytes
