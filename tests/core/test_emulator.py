"""XFM emulator tests: the Fig. 12 behaviours."""

import pytest

from repro.core.emulator import EmulatorConfig, XfmEmulator, fallback_sweep
from repro.errors import ConfigError


def _run(**overrides):
    defaults = dict(sim_time_s=0.04, seed=7)
    defaults.update(overrides)
    return XfmEmulator(EmulatorConfig(**defaults)).run()


class TestConfig:
    def test_ops_per_second_split(self):
        config = EmulatorConfig(
            sfm_capacity_bytes=512e9,
            promotion_rate=1.0,
            decompress_offload_fraction=0.5,
            num_ranks=8,
        )
        compress, decompress = config.ops_per_second_per_rank()
        assert compress == pytest.approx(512e9 / 60 / 4096 / 8)
        assert decompress == pytest.approx(compress / 2)

    def test_blob_size(self):
        assert EmulatorConfig(compression_ratio=4.0).blob_bytes == 1024

    def test_promotion_rate_validated(self):
        with pytest.raises(ConfigError):
            XfmEmulator(EmulatorConfig(promotion_rate=0.0))


class TestFig12Behaviours:
    def test_three_accesses_eliminate_fallbacks(self):
        """§8: 3 accesses/REF + 8 MB SPM -> zero fallbacks at 50% and 100%."""
        for promo in (0.5, 1.0):
            report = _run(
                promotion_rate=promo,
                accesses_per_ref=3,
                spm_bytes=8 << 20,
            )
            assert report.fallback_fraction == 0.0

    def test_one_access_insufficient_at_100pct(self):
        report = _run(promotion_rate=1.0, accesses_per_ref=1, spm_bytes=8 << 20)
        assert report.fallback_fraction > 0.3

    def test_fallbacks_decrease_with_spm(self):
        small = _run(promotion_rate=1.0, accesses_per_ref=2, spm_bytes=1 << 20)
        large = _run(promotion_rate=1.0, accesses_per_ref=2, spm_bytes=8 << 20)
        assert large.fallback_fraction < small.fallback_fraction

    def test_fallbacks_decrease_with_budget(self):
        one = _run(promotion_rate=1.0, accesses_per_ref=1)
        three = _run(promotion_rate=1.0, accesses_per_ref=3)
        assert three.fallback_fraction < one.fallback_fraction

    def test_majority_conditional(self):
        report = _run(promotion_rate=1.0, accesses_per_ref=3)
        assert report.random_fraction < 0.5
        assert report.conditional_accesses > report.random_accesses

    def test_random_rate_scales_with_promotion(self):
        low = _run(promotion_rate=0.5, accesses_per_ref=3)
        high = _run(promotion_rate=1.0, accesses_per_ref=3)
        per_s_low = low.random_accesses / low.sim_time_s
        per_s_high = high.random_accesses / high.sim_time_s
        assert per_s_high > per_s_low * 1.5

    def test_conditional_energy_saving_positive(self):
        report = _run(promotion_rate=1.0, accesses_per_ref=3)
        assert 0.0 < report.conditional_energy_saving < 0.15
        assert report.nma_energy_j >= report.all_conditional_energy_j


class TestAccounting:
    def test_determinism(self):
        a = _run(seed=42)
        b = _run(seed=42)
        assert a.fallback_ops == b.fallback_ops
        assert a.conditional_accesses == b.conditional_accesses

    def test_bandwidth_positive(self):
        report = _run()
        assert report.nma_bandwidth_bps > 0

    def test_spm_peak_bounded_by_capacity(self):
        report = _run(spm_bytes=2 << 20)
        assert report.spm_peak_bytes <= 2 << 20

    def test_completed_plus_fallback_bounded(self):
        report = _run()
        assert report.completed_ops + report.fallback_ops <= report.total_ops

    def test_mean_latency_reported(self):
        report = _run(accesses_per_ref=3)
        assert report.mean_latency_ms > 0

    def test_latency_percentiles_ordered(self):
        report = _run(accesses_per_ref=3)
        percentiles = report.latency_percentiles_ms
        assert set(percentiles) == {50, 95, 99}
        assert percentiles[50] <= percentiles[95] <= percentiles[99]

    def test_fig10_minimum_latency(self):
        """Fig. 10: an asynchronous XFM operation spans at least two
        refresh intervals (read in one window, writeback in a later one),
        so the median completion latency is >= ~2 x tREFI."""
        report = _run(accesses_per_ref=3, promotion_rate=0.5)
        trefi_ms = report.config.resolved_timings().trefi_ns / 1e6
        assert report.latency_percentiles_ms[50] >= 1.9 * trefi_ms


class TestSweep:
    def test_sweep_grid_size(self):
        reports = fallback_sweep(
            spm_sizes_mib=(1, 8),
            accesses_per_ref=(1, 3),
            promotion_rate=0.5,
            sim_time_s=0.02,
        )
        assert len(reports) == 4
        configs = {
            (r.config.spm_bytes >> 20, r.config.accesses_per_ref)
            for r in reports
        }
        assert configs == {(1, 1), (1, 3), (8, 1), (8, 3)}
