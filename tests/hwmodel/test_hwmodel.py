"""Hardware-overhead model tests (Tables 2-3, CACTI study, energy)."""

import pytest

from repro.dram.device import DDR5_16GB, DDR5_32GB, DDR5_8GB
from repro.errors import ConfigError
from repro.hwmodel.cacti import BankModModel
from repro.hwmodel.energy import SwapEnergyModel
from repro.hwmodel.fpga import (
    DEVICE_BRAM,
    DEVICE_FFS,
    DEVICE_LUTS,
    FpgaComponent,
    xfm_fpga_design,
)


class TestTable2:
    def test_totals_reproduce_table2(self):
        """Table 2: 435467 LUTs (83.30%), 94135 FFs (9.00%), 51 BRAM (5.18%)."""
        util = xfm_fpga_design().utilization()
        assert util["LUTs"]["used"] == 435467
        assert util["LUTs"]["percent"] == pytest.approx(83.30, abs=0.01)
        assert util["FFs"]["used"] == 94135
        assert util["FFs"]["percent"] == pytest.approx(9.00, abs=0.01)
        assert util["BRAM"]["used"] == 51
        assert util["BRAM"]["percent"] == pytest.approx(5.18, abs=0.01)

    def test_compression_logic_dominates_luts(self):
        """§8 attributes the high LUT count to the (de)compression logic."""
        design = xfm_fpga_design()
        compression_luts = sum(
            c.luts for c in design.components if "deflate" in c.name
        )
        assert compression_luts / design.total("luts") > 0.8

    def test_negative_resources_rejected(self):
        with pytest.raises(ConfigError):
            FpgaComponent(name="bad", luts=-1, ffs=0, bram=0, dynamic_w=0.0)


class TestTable3:
    def test_power_reproduces_table3(self):
        """Table 3: 5.718 W dynamic (81%), 1.306 W static (19%), 7.024 W."""
        power = xfm_fpga_design().power()
        assert power["dynamic_w"] == pytest.approx(5.718)
        assert power["static_w"] == pytest.approx(1.306)
        assert power["total_w"] == pytest.approx(7.024)
        assert power["dynamic_pct"] == pytest.approx(81.0, abs=0.5)

    def test_breakdown_covers_components(self):
        names = {row["name"] for row in xfm_fpga_design().breakdown()}
        assert "deflate-compressor" in names
        assert "scratchpad-spm" in names

    def test_spm_uram_scales(self):
        small = next(
            c for c in xfm_fpga_design(spm_mib=2.0).components
            if c.name == "scratchpad-spm"
        )
        large = next(
            c for c in xfm_fpga_design(spm_mib=8.0).components
            if c.name == "scratchpad-spm"
        )
        assert large.uram == 4 * small.uram

    def test_device_totals(self):
        assert (DEVICE_LUTS, DEVICE_FFS, DEVICE_BRAM) == (522720, 1045440, 984)

    def test_uram_feasibility_bounds_spm(self):
        """The prototype's 2 MiB SPM fits the device URAM; Fig. 12's
        8 MiB configuration exceeds it (an ASIC argument, not an error)."""
        assert xfm_fpga_design(spm_mib=2.0).uram_feasible()
        assert not xfm_fpga_design(spm_mib=8.0).uram_feasible()


class TestCactiModel:
    def test_paper_overheads_for_8gb_device(self):
        """§8: ~0.15% area, ~0.002% power for the 8 Gb DDR4-class chip."""
        model = BankModModel(device=DDR5_8GB)
        assert model.area_overhead() == pytest.approx(0.0015, rel=0.1)
        assert model.power_overhead() == pytest.approx(0.00002, rel=0.25)

    def test_overhead_stable_across_devices(self):
        overheads = [
            BankModModel(device=d).area_overhead()
            for d in (DDR5_8GB, DDR5_16GB, DDR5_32GB)
        ]
        assert max(overheads) < 0.003
        assert min(overheads) > 0.0005

    def test_area_scales_with_subarrays(self):
        base = BankModModel(device=DDR5_8GB)
        assert base.added_area_f2() == pytest.approx(
            base.device.subarrays_per_bank
            * (
                base.row_address_bits * base.latch_area_f2
                + base.io_groups_per_subarray * base.select_area_f2
                + base.wiring_area_f2
            )
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            BankModModel(device=DDR5_8GB, periphery_fraction=1.5)


class TestSwapEnergy:
    def test_movement_saving_69pct(self):
        assert SwapEnergyModel().movement_saving() == pytest.approx(0.69, abs=0.01)

    def test_xfm_swap_cheaper(self):
        model = SwapEnergyModel()
        assert model.xfm_swap_out_j() < model.cpu_swap_out_j()
        assert model.xfm_swap_in_j() < model.cpu_swap_in_j()
        assert model.total_saving() > 0.9

    def test_conditional_cheaper_than_random(self):
        model = SwapEnergyModel()
        assert model.xfm_swap_out_j(conditional=True) < model.xfm_swap_out_j(
            conditional=False
        )
