"""DFM backend and interconnect tests."""

import pytest

from repro.dfm import CXL_LINK, DfmBackend, PCIE4_X8, RDMA_LINK, InterconnectModel
from repro.errors import ConfigError, SfmError
from repro.sfm.backend import SfmBackend
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.corpus import corpus_pages


class TestInterconnect:
    def test_latency_ordering(self):
        """CXL < PCIe < RDMA for small accesses (§2.1's tiers)."""
        assert (
            CXL_LINK.page_swap_latency_s()
            < PCIE4_X8.page_swap_latency_s()
            < RDMA_LINK.page_swap_latency_s()
        )

    def test_pcie_energy_matches_paper_constant(self):
        """EQ2.1: 88 pJ/B = 2.44e-8 kWh/GB."""
        kwh_per_gb = PCIE4_X8.transfer_energy_j(10 ** 9) / 3.6e6
        assert kwh_per_gb == pytest.approx(2.44e-8, rel=0.01)

    def test_transfer_time_components(self):
        link = InterconnectModel("t", 100.0, bandwidth_gbps=4.0, pj_per_byte=1.0)
        assert link.transfer_time_ns(4096) == pytest.approx(100.0 + 1024.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            InterconnectModel("bad", -1.0, 1.0, 1.0)


class TestDfmBackend:
    def test_round_trip(self, json_pages):
        backend = DfmBackend(capacity_bytes=16 * PAGE_SIZE)
        page = Page(vaddr=0, data=json_pages[0])
        outcome = backend.swap_out(page)
        assert outcome.accepted
        assert outcome.compressed_len == PAGE_SIZE  # no compression
        assert backend.swap_in(page) == json_pages[0]

    def test_capacity_is_static(self, json_pages):
        backend = DfmBackend(capacity_bytes=2 * PAGE_SIZE)
        pages = [
            Page(vaddr=i * PAGE_SIZE, data=json_pages[i % len(json_pages)])
            for i in range(4)
        ]
        outcomes = [backend.swap_out(p) for p in pages]
        assert [o.accepted for o in outcomes] == [True, True, False, False]
        assert outcomes[2].reason == "pool-full"

    def test_accepts_incompressible_pages(self, random_pages):
        """DFM doesn't care about compressibility — SFM's reject case."""
        backend = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        page = Page(vaddr=0, data=random_pages[0])
        assert backend.swap_out(page).accepted

    def test_no_cpu_cycles(self, json_pages):
        backend = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        page = Page(vaddr=0, data=json_pages[0])
        backend.swap_out(page)
        backend.swap_in(page)
        assert backend.stats.total_cpu_cycles == 0.0

    def test_link_accounting(self, json_pages):
        backend = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        page = Page(vaddr=0, data=json_pages[0])
        backend.swap_out(page)
        backend.swap_in(page)
        assert backend.ledger.total("dfm_link") == 2 * PAGE_SIZE
        assert backend.link_energy_j > 0
        assert backend.link_busy_s > 0

    def test_swap_in_faster_than_sfm_cpu(self, json_pages):
        """The latency trade §2.1 describes: DFM fetch beats CPU
        decompression."""
        dfm = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        sfm = SfmBackend(capacity_bytes=8 * PAGE_SIZE)
        assert dfm.swap_latency_s("in") < sfm.swap_latency_s("in")

    def test_effective_capacity_vs_sfm(self, json_pages):
        """SFM frees more local memory per pool byte (compression gain)."""
        sfm = SfmBackend(capacity_bytes=8 * PAGE_SIZE)
        dfm = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        for i, data in enumerate(json_pages[:4]):
            sfm.swap_out(Page(vaddr=i * PAGE_SIZE, data=data))
            dfm.swap_out(Page(vaddr=i * PAGE_SIZE, data=data))
        # Same pages stored; SFM's pool footprint is a fraction of DFM's.
        sfm_footprint = sfm.zpool.used_slabs() * PAGE_SIZE
        assert sfm_footprint < 4 * PAGE_SIZE
        assert dfm.stored_pages() == 4

    def test_state_machine_errors(self, json_pages):
        backend = DfmBackend(capacity_bytes=8 * PAGE_SIZE)
        page = Page(vaddr=0, data=json_pages[0])
        with pytest.raises(SfmError):
            backend.swap_in(page)
        backend.swap_out(page)
        with pytest.raises(SfmError):
            backend.swap_out(page)

    def test_runtime_runs_on_dfm(self):
        """Drop-in proof: the AIFM runtime works over the DFM tier too."""
        backend = DfmBackend(capacity_bytes=64 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=8,
            controller=ColdScanController(
                cold_threshold_s=5.0, scan_period_s=1.0
            ),
        )
        data = corpus_pages("server-log", 16, seed=71)
        vaddrs = runtime.allocate(data, now_s=0.0)
        runtime.maintain(now_s=100.0)
        assert runtime.resident_pages() == 8
        for vaddr in vaddrs:
            assert runtime.read(vaddr, now_s=101.0) == data[vaddr // PAGE_SIZE]
