"""zsmalloc-style pool unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, EntryNotFoundError, ZpoolFullError
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zpool import Zpool


@pytest.fixture
def pool():
    return Zpool(capacity_bytes=8 * PAGE_SIZE)


class TestStoreLoad:
    def test_round_trip(self, pool):
        blob = b"compressed!" * 30
        handle = pool.store(blob)
        assert pool.load(handle) == blob
        assert handle in pool

    def test_packs_multiple_per_slab(self, pool):
        handles = [pool.store(b"x" * 1000) for _ in range(4)]
        assert pool.used_slabs() == 1
        for handle in handles:
            assert pool.load(handle) == b"x" * 1000

    def test_empty_blob_rejected(self, pool):
        with pytest.raises(ConfigError):
            pool.store(b"")

    def test_oversized_blob_rejected(self, pool):
        with pytest.raises(ConfigError):
            pool.store(bytes(PAGE_SIZE + 1))

    def test_capacity_enforced(self):
        pool = Zpool(capacity_bytes=2 * PAGE_SIZE)
        pool.store(bytes([1]) * PAGE_SIZE)
        pool.store(bytes([2]) * PAGE_SIZE)
        with pytest.raises(ZpoolFullError):
            pool.store(bytes([3]) * PAGE_SIZE)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Zpool(capacity_bytes=100)


class TestFree:
    def test_free_returns_length(self, pool):
        handle = pool.store(b"y" * 123)
        assert pool.free(handle) == 123
        assert handle not in pool

    def test_unknown_handle_raises(self, pool):
        with pytest.raises(EntryNotFoundError):
            pool.free(999)
        with pytest.raises(EntryNotFoundError):
            pool.load(999)

    def test_empty_slab_released(self, pool):
        handle = pool.store(b"z" * 2000)
        assert pool.used_slabs() == 1
        pool.free(handle)
        assert pool.used_slabs() == 0

    def test_freed_space_reusable(self):
        pool = Zpool(capacity_bytes=PAGE_SIZE)
        h1 = pool.store(bytes([1]) * 2000)
        h2 = pool.store(bytes([2]) * 2000)
        pool.free(h1)
        h3 = pool.store(bytes([3]) * 2000)
        assert pool.load(h2) == bytes([2]) * 2000
        assert pool.load(h3) == bytes([3]) * 2000


class TestCompaction:
    def test_compaction_consolidates_holes(self):
        pool = Zpool(capacity_bytes=PAGE_SIZE)
        handles = [pool.store(bytes([i]) * 1000) for i in range(1, 5)]
        pool.free(handles[0])
        pool.free(handles[2])
        # 2096 free but fragmented: 1000 + 1000 + tail 96.
        with_compaction = pool.store(bytes([9]) * 1900)
        assert pool.load(with_compaction) == bytes([9]) * 1900
        assert pool.compactions >= 1

    def test_migration_releases_slabs(self):
        pool = Zpool(capacity_bytes=4 * PAGE_SIZE)
        handles = [pool.store(bytes([i % 251 + 1]) * 1500) for i in range(8)]
        # Free most objects, leaving one small object in each slab.
        for handle in handles[1::2]:
            pool.free(handle)
        slabs_before = pool.used_slabs()
        pool.compact()
        assert pool.used_slabs() <= slabs_before
        for index, handle in enumerate(handles[0::2]):
            assert pool.load(handle) == bytes([(index * 2) % 251 + 1]) * 1500

    def test_compaction_counts_memcpy_bytes(self):
        pool = Zpool(capacity_bytes=2 * PAGE_SIZE)
        h1 = pool.store(b"a" * 1000)
        h2 = pool.store(b"b" * 1000)
        pool.free(h1)
        moved = pool.compact()
        assert moved >= 1000
        assert pool.compaction_memcpy_bytes == moved
        assert pool.load(h2) == b"b" * 1000


class TestAccounting:
    def test_stored_bytes(self, pool):
        pool.store(b"a" * 100)
        pool.store(b"b" * 200)
        assert pool.stored_bytes() == 300

    def test_occupancy_and_fragmentation(self, pool):
        assert pool.occupancy() == 0.0
        pool.store(b"a" * 2048)
        assert pool.occupancy() == pytest.approx(0.5)
        assert pool.fragmentation() == pytest.approx(0.5)

    def test_entry_snapshot(self, pool):
        handle = pool.store(b"c" * 64)
        entry = pool.entry(handle)
        assert entry.length == 64
        assert entry.handle == handle


@settings(deadline=None, max_examples=40)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(1, 3000)),
        min_size=1,
        max_size=60,
    )
)
def test_zpool_model_property(operations):
    """Store/free interleavings match a dict model; contents never corrupt;
    stored bytes never exceed the slab footprint."""
    pool = Zpool(capacity_bytes=16 * PAGE_SIZE)
    model = {}
    counter = 0
    live = []
    for is_store, size in operations:
        if is_store or not live:
            counter += 1
            blob = bytes([counter % 251 + 1]) * size
            try:
                handle = pool.store(blob)
            except ZpoolFullError:
                continue
            model[handle] = blob
            live.append(handle)
        else:
            handle = live.pop(size % len(live))
            pool.free(handle)
            del model[handle]
    for handle, blob in model.items():
        assert pool.load(handle) == blob
    assert pool.stored_bytes() == sum(len(b) for b in model.values())
    assert pool.stored_bytes() <= pool.used_slabs() * PAGE_SIZE
