"""zswap-style frontend tests."""

import pytest

from repro.core.backend import XfmBackend
from repro.errors import ConfigError
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zswap import ZswapFrontend
from repro.workloads.corpus import corpus_pages


@pytest.fixture
def frontend():
    backend = SfmBackend(capacity_bytes=32 * PAGE_SIZE)
    return ZswapFrontend(
        backend, total_ram_bytes=256 * PAGE_SIZE, max_pool_percent=20
    )


class TestStoreLoad:
    def test_store_then_load(self, frontend, json_pages):
        assert frontend.store(0, 7, json_pages[0])
        assert (0, 7) in frontend
        assert frontend.load(0, 7) == json_pages[0]
        assert (0, 7) not in frontend
        assert frontend.stats.loads == 1

    def test_load_unknown_returns_none(self, frontend):
        assert frontend.load(0, 99) is None

    def test_incompressible_rejected(self, frontend, random_pages):
        assert not frontend.store(0, 1, random_pages[0])
        assert frontend.stats.reject_compress_poor == 1

    def test_same_filled_optimization(self, frontend):
        """All-zero (or same-byte) pages bypass the pool entirely."""
        zero = bytes(PAGE_SIZE)
        ones = bytes([0xAB]) * PAGE_SIZE
        assert frontend.store(0, 1, zero)
        assert frontend.store(0, 2, ones)
        assert frontend.stats.same_filled_pages == 2
        assert frontend.backend.zpool.stored_bytes() == 0
        assert frontend.load(0, 1) == zero
        assert frontend.load(0, 2) == ones

    def test_restore_replaces_stale_copy(self, frontend, json_pages):
        frontend.store(0, 3, json_pages[0])
        frontend.store(0, 3, json_pages[1])
        assert frontend.load(0, 3) == json_pages[1]

    def test_bad_size_rejected(self, frontend):
        with pytest.raises(ConfigError):
            frontend.store(0, 0, b"short")


class TestPoolLimit:
    def test_pool_limit_rejects(self):
        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        frontend = ZswapFrontend(
            backend, total_ram_bytes=40 * PAGE_SIZE, max_pool_percent=10
        )  # limit = 4 pages of pool
        pages = corpus_pages("json-records", 24, seed=51)
        results = [
            frontend.store(0, i, page) for i, page in enumerate(pages)
        ]
        assert not all(results)
        assert frontend.stats.reject_pool_limit > 0
        assert frontend.pool_usage_bytes() <= frontend.pool_limit_bytes() + PAGE_SIZE

    def test_limit_config_validated(self):
        backend = SfmBackend(capacity_bytes=8 * PAGE_SIZE)
        with pytest.raises(ConfigError):
            ZswapFrontend(backend, total_ram_bytes=PAGE_SIZE, max_pool_percent=0)


class TestInvalidate:
    def test_invalidate_page_frees_pool(self, frontend, json_pages):
        frontend.store(0, 5, json_pages[0])
        used = frontend.backend.zpool.stored_bytes()
        assert used > 0
        frontend.invalidate_page(0, 5)
        assert frontend.backend.zpool.stored_bytes() == 0
        assert frontend.load(0, 5) is None
        assert frontend.stats.invalidates == 1

    def test_invalidate_same_filled(self, frontend):
        frontend.store(0, 6, bytes(PAGE_SIZE))
        frontend.invalidate_page(0, 6)
        assert frontend.load(0, 6) is None

    def test_invalidate_area_is_swapoff(self, frontend, json_pages):
        for i, page in enumerate(json_pages[:4]):
            frontend.store(1, i, page)
        frontend.store(2, 0, json_pages[4])
        dropped = frontend.invalidate_area(1)
        assert dropped == 4
        assert frontend.load(2, 0) == json_pages[4]

    def test_invalidate_missing_is_noop(self, frontend):
        frontend.invalidate_page(0, 12345)
        assert frontend.stats.invalidates == 0


class TestOverXfm:
    def test_works_over_xfm_backend(self, json_pages):
        backend = XfmBackend(capacity_bytes=32 * PAGE_SIZE)
        frontend = ZswapFrontend(
            backend, total_ram_bytes=256 * PAGE_SIZE
        )
        assert frontend.store(0, 0, json_pages[0])
        assert backend.stats.offloaded_compressions == 1
        assert backend.ledger.channel_bytes() == 0
        assert frontend.load(0, 0) == json_pages[0]
