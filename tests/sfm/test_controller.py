"""Cold-page controller tests (Google-style scan, Meta-style pressure)."""

import pytest

from repro.errors import ConfigError
from repro.sfm.controller import ColdScanController, PressureController
from repro.sfm.page import PAGE_SIZE, Page


def _pages(last_access_times):
    return [
        Page(vaddr=i * PAGE_SIZE, data=bytes(PAGE_SIZE), last_access_s=t)
        for i, t in enumerate(last_access_times)
    ]


class TestColdScan:
    def test_selects_only_cold_pages(self):
        controller = ColdScanController(cold_threshold_s=120.0)
        pages = _pages([0.0, 100.0, 199.0, 50.0])
        cold = controller.scan(pages, now_s=200.0)
        # Idle times are 200/100/1/150 s; only pages 0 and 3 pass 120 s.
        assert [p.vaddr // PAGE_SIZE for p in cold] == [0, 3]

    def test_coldest_first_ordering(self):
        controller = ColdScanController(cold_threshold_s=10.0)
        pages = _pages([30.0, 10.0, 20.0])
        cold = controller.scan(pages, now_s=100.0)
        assert [p.last_access_s for p in cold] == [10.0, 20.0, 30.0]

    def test_swapped_pages_excluded(self):
        controller = ColdScanController(cold_threshold_s=10.0)
        pages = _pages([0.0, 0.0])
        pages[0].swapped = True
        pages[0].data = None
        assert controller.scan(pages, now_s=100.0) == [pages[1]]

    def test_scan_period_gating(self):
        controller = ColdScanController(scan_period_s=60.0)
        assert controller.due(0.0)
        controller.scan([], now_s=0.0)
        assert not controller.due(30.0)
        assert controller.due(60.0)

    def test_candidate_cap(self):
        controller = ColdScanController(
            cold_threshold_s=1.0, max_candidates_per_scan=2
        )
        assert len(controller.scan(_pages([0.0] * 10), now_s=100.0)) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ColdScanController(cold_threshold_s=0.0)


class TestPressureController:
    def test_threshold_shrinks_when_quiet(self):
        controller = PressureController(initial_threshold_s=120.0)
        controller.maybe_adjust(now_s=61.0)
        assert controller.threshold_s < 120.0

    def test_threshold_grows_on_refault_storm(self):
        controller = PressureController(
            initial_threshold_s=120.0, target_refaults_per_min=2.0
        )
        for _ in range(10):
            controller.record_refault(swapped_for_s=5.0)
        controller.maybe_adjust(now_s=61.0)
        assert controller.threshold_s > 120.0

    def test_old_swaps_do_not_count_as_refaults(self):
        controller = PressureController(
            initial_threshold_s=120.0, target_refaults_per_min=2.0
        )
        for _ in range(10):
            controller.record_refault(swapped_for_s=600.0)
        controller.maybe_adjust(now_s=61.0)
        assert controller.threshold_s < 120.0

    def test_threshold_bounded(self):
        controller = PressureController(
            initial_threshold_s=30.0,
            min_threshold_s=15.0,
            max_threshold_s=60.0,
        )
        now = 0.0
        for _ in range(20):
            now += 61.0
            for _ in range(50):
                controller.record_refault(swapped_for_s=1.0)
            controller.maybe_adjust(now_s=now)
        assert controller.threshold_s == 60.0

    def test_scan_uses_adaptive_threshold(self):
        controller = PressureController(initial_threshold_s=100.0)
        pages = _pages([0.0, 150.0])
        cold = controller.scan(pages, now_s=200.0)
        assert pages[0] in cold

    def test_no_adjust_within_period(self):
        controller = PressureController(initial_threshold_s=120.0)
        controller.maybe_adjust(now_s=30.0)
        assert controller.threshold_s == 120.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            PressureController(initial_threshold_s=5.0, min_threshold_s=10.0)
        with pytest.raises(ConfigError):
            PressureController(growth=0.5)


class TestPage:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigError):
            Page(vaddr=100)

    def test_size_enforced(self):
        with pytest.raises(ConfigError):
            Page(vaddr=0, data=b"short")

    def test_touch_and_idle(self):
        page = Page(vaddr=0, data=bytes(PAGE_SIZE))
        page.touch(10.0)
        assert page.access_count == 1
        assert page.idle_s(25.0) == 15.0
        assert page.is_cold(200.0, threshold_s=120.0)
        assert not page.is_cold(100.0, threshold_s=120.0)
