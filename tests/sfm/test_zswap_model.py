"""Model-based property test: the zswap frontend vs a reference dict.

Hypothesis drives arbitrary store/load/invalidate interleavings against
the frontend while a plain dict models what a correct zswap must answer:
``load`` returns exactly the last stored page or None, never a stale or
foreign page, across fill-modes (compressible / same-filled) and
pool-pressure rejections.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zswap import ZswapFrontend
from repro.workloads.corpus import corpus_pages

_PAGES = corpus_pages("json-records", 6, seed=97)
_FILLS = [bytes(PAGE_SIZE), bytes([0x5A]) * PAGE_SIZE]


def _page_for(index: int) -> bytes:
    pool = _PAGES + _FILLS
    return pool[index % len(pool)]


@settings(deadline=None, max_examples=40)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["store", "load", "invalidate"]),
            st.integers(0, 11),   # offset
            st.integers(0, 7),    # page selector
        ),
        max_size=80,
    )
)
def test_zswap_matches_reference_model(operations):
    frontend = ZswapFrontend(
        SfmBackend(capacity_bytes=32 * PAGE_SIZE),
        total_ram_bytes=64 * PAGE_SIZE,
        max_pool_percent=50,
    )
    model = {}
    for op, offset, selector in operations:
        if op == "store":
            data = _page_for(selector)
            kept = frontend.store(0, offset, data)
            if kept:
                model[offset] = data
            else:
                # A rejected store means zswap holds nothing for the slot
                # (any previous copy was invalidated by the re-store).
                model.pop(offset, None)
        elif op == "load":
            got = frontend.load(0, offset)
            expected = model.pop(offset, None)
            assert got == expected
        else:
            frontend.invalidate_page(0, offset)
            model.pop(offset, None)
    # Drain: everything the model still holds must load back exactly.
    for offset, expected in sorted(model.items()):
        assert frontend.load(0, offset) == expected
    # And the frontend must now be empty.
    for offset in range(12):
        assert frontend.load(0, offset) is None
    assert frontend.stats.stored_pages == 0
