"""Baseline CPU SFM backend tests."""

import pytest

from repro.compression import LzFastCodec
from repro.errors import ConfigError, SfmError
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page


def _pages(buffers):
    return [
        Page(vaddr=i * PAGE_SIZE, data=data) for i, data in enumerate(buffers)
    ]


@pytest.fixture
def backend():
    return SfmBackend(capacity_bytes=16 * PAGE_SIZE)


class TestSwapOut:
    def test_accepts_compressible_page(self, backend, json_pages):
        page = _pages(json_pages)[0]
        outcome = backend.swap_out(page)
        assert outcome.accepted
        assert outcome.compressed_len < PAGE_SIZE
        assert outcome.ratio > 1.0
        assert page.swapped and page.data is None
        assert backend.contains(page.vaddr)

    def test_rejects_incompressible_page(self, backend, random_pages):
        page = _pages(random_pages)[0]
        outcome = backend.swap_out(page)
        assert not outcome.accepted
        assert outcome.reason == "incompressible"
        assert not page.swapped
        assert backend.stats.rejected == 1

    def test_rejects_when_pool_full(self, json_pages):
        backend = SfmBackend(capacity_bytes=PAGE_SIZE)
        pages = _pages(json_pages * 4)
        reasons = [backend.swap_out(p).reason for p in pages]
        assert "pool-full" in reasons

    def test_double_swap_out_rejected(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        with pytest.raises(SfmError):
            backend.swap_out(page)

    def test_swap_out_without_data_rejected(self, backend):
        with pytest.raises(SfmError):
            backend.swap_out(Page(vaddr=0, data=None))

    def test_charges_cpu_cycles_and_channel_traffic(self, backend, json_pages):
        page = _pages(json_pages)[0]
        outcome = backend.swap_out(page)
        expected = backend.codec.spec.compress_cycles_per_byte * PAGE_SIZE
        assert backend.stats.cpu_compress_cycles == pytest.approx(expected)
        snapshot = backend.ledger.snapshot()
        assert snapshot["sfm_cpu:read"] == PAGE_SIZE
        assert snapshot["sfm_cpu:write"] == outcome.compressed_len


class TestSwapIn:
    def test_content_preserved(self, backend, json_pages):
        pages = _pages(json_pages)
        for page in pages:
            backend.swap_out(page)
        for page, original in zip(pages, json_pages):
            assert backend.swap_in(page) == original
            assert not page.swapped

    def test_swap_in_not_swapped_rejected(self, backend, json_pages):
        page = _pages(json_pages)[0]
        with pytest.raises(SfmError):
            backend.swap_in(page)

    def test_pool_space_released(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        backend.swap_in(page)
        assert backend.stored_pages() == 0
        assert backend.zpool.stored_bytes() == 0

    def test_peek_does_not_promote(self, backend, json_pages):
        page = _pages(json_pages)[0]
        backend.swap_out(page)
        assert backend.peek(page.vaddr) == json_pages[0]
        assert page.swapped


class TestAccounting:
    def test_effective_bytes_freed_positive_for_compressible(
        self, backend, json_pages
    ):
        for page in _pages(json_pages):
            backend.swap_out(page)
        assert backend.effective_bytes_freed() > 0

    def test_mean_compression_ratio(self, backend, json_pages):
        for page in _pages(json_pages):
            backend.swap_out(page)
        assert backend.stats.mean_compression_ratio > 1.5

    def test_swap_latency(self, backend):
        out = backend.swap_latency_s("out")
        into = backend.swap_latency_s("in")
        assert out > into > 0
        with pytest.raises(ConfigError):
            backend.swap_latency_s("sideways")

    def test_compact_charges_traffic(self, backend, json_pages):
        pages = _pages(json_pages)
        for page in pages:
            backend.swap_out(page)
        backend.swap_in(pages[0])
        before = backend.ledger.total("sfm_cpu")
        backend.compact()
        assert backend.ledger.total("sfm_cpu") >= before

    def test_custom_codec(self, json_pages):
        backend = SfmBackend(
            capacity_bytes=8 * PAGE_SIZE, codec=LzFastCodec()
        )
        page = _pages(json_pages)[0]
        assert backend.swap_out(page).accepted
        assert backend.swap_in(page) == json_pages[0]
