"""Red-black tree unit and invariant (hypothesis) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EntryNotFoundError
from repro.sfm.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        tree = RedBlackTree()
        assert len(tree) == 0
        assert 5 not in tree
        assert tree.get(5) is None
        assert tree.min_key() is None

    def test_insert_lookup(self):
        tree = RedBlackTree()
        tree.insert(10, "a")
        tree.insert(5, "b")
        tree.insert(20, "c")
        assert tree.lookup(10) == "a"
        assert tree.lookup(5) == "b"
        assert 20 in tree
        assert len(tree) == 3

    def test_insert_replaces(self):
        tree = RedBlackTree()
        tree.insert(1, "x")
        tree.insert(1, "y")
        assert tree.lookup(1) == "y"
        assert len(tree) == 1

    def test_lookup_missing_raises(self):
        with pytest.raises(EntryNotFoundError):
            RedBlackTree().lookup(42)

    def test_delete(self):
        tree = RedBlackTree()
        for k in range(20):
            tree.insert(k, k)
        assert tree.delete(7) == 7
        assert 7 not in tree
        assert len(tree) == 19

    def test_delete_missing_raises(self):
        with pytest.raises(EntryNotFoundError):
            RedBlackTree().delete(1)

    def test_ordered_iteration(self):
        tree = RedBlackTree()
        for k in [5, 3, 8, 1, 9, 2]:
            tree.insert(k, str(k))
        assert tree.keys() == [1, 2, 3, 5, 8, 9]
        assert list(tree.items())[0] == (1, "1")

    def test_floor(self):
        tree = RedBlackTree()
        for k in [10, 20, 30]:
            tree.insert(k, k)
        assert tree.floor(25) == (20, 20)
        assert tree.floor(10) == (10, 10)
        assert tree.floor(5) is None

    def test_min_key(self):
        tree = RedBlackTree()
        for k in [7, 3, 9]:
            tree.insert(k, k)
        assert tree.min_key() == 3


class TestInvariantsDirected:
    def test_ascending_insert(self):
        tree = RedBlackTree()
        for k in range(200):
            tree.insert(k, k)
            tree.check_invariants()

    def test_descending_insert(self):
        tree = RedBlackTree()
        for k in reversed(range(200)):
            tree.insert(k, k)
        tree.check_invariants()

    def test_black_height_logarithmic(self):
        tree = RedBlackTree()
        for k in range(1024):
            tree.insert(k, k)
        # Black height of a 1024-node RB tree is at most ~log2(n)+1.
        assert tree.check_invariants() <= 12

    def test_delete_all(self):
        tree = RedBlackTree()
        keys = list(range(100))
        for k in keys:
            tree.insert(k, k)
        for k in keys:
            tree.delete(k)
            tree.check_invariants()
        assert len(tree) == 0


@settings(deadline=None, max_examples=60)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(0, 200)),
        max_size=200,
    )
)
def test_rbtree_invariants_property(operations):
    """Arbitrary insert/delete interleavings preserve RB invariants and
    mirror a dict+sorted reference model."""
    tree = RedBlackTree()
    model = {}
    for is_insert, key in operations:
        if is_insert:
            tree.insert(key, key * 2)
            model[key] = key * 2
        elif key in model:
            assert tree.delete(key) == model.pop(key)
        else:
            with pytest.raises(EntryNotFoundError):
                tree.delete(key)
    tree.check_invariants()
    assert tree.keys() == sorted(model)
    for key, value in model.items():
        assert tree.lookup(key) == value
