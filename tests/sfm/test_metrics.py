"""Swap statistics and bandwidth ledger tests."""

import pytest

from repro.errors import ConfigError
from repro.sfm.metrics import (
    BandwidthLedger,
    SwapStats,
    gb_swapped_per_min,
    promotion_rate,
)


class TestSwapStats:
    def test_mean_ratio(self):
        stats = SwapStats(
            bytes_out_uncompressed=8192, bytes_out_compressed=2048
        )
        assert stats.mean_compression_ratio == 4.0

    def test_mean_ratio_empty(self):
        assert SwapStats().mean_compression_ratio == 0.0

    def test_fallback_fraction(self):
        stats = SwapStats(
            cpu_fallback_compressions=1, offloaded_compressions=3
        )
        assert stats.fallback_fraction == 0.25

    def test_fallback_fraction_empty(self):
        assert SwapStats().fallback_fraction == 0.0

    def test_total_cycles(self):
        stats = SwapStats(cpu_compress_cycles=10.0, cpu_decompress_cycles=5.0)
        assert stats.total_cpu_cycles == 15.0

    def test_digest_cache_hit_rate_denominator_is_lookups(self):
        """Regression: the hit rate is hits / (hits + misses) — cache
        lookups — NOT hits / swap-outs. Same-filled pages and
        cache-disabled runs perform no lookup, so swap-out counts must
        not dilute the rate."""
        stats = SwapStats(
            swap_outs=100, digest_cache_hits=3, digest_cache_misses=1
        )
        assert stats.digest_cache_hit_rate == 0.75

    def test_digest_cache_hit_rate_no_lookups(self):
        assert SwapStats(swap_outs=10).digest_cache_hit_rate == 0.0

    def test_digest_cache_lookup_rate(self):
        stats = SwapStats(
            swap_outs=3,
            rejected=1,
            digest_cache_hits=1,
            digest_cache_misses=1,
        )
        assert stats.digest_cache_lookup_rate == 0.5

    def test_digest_cache_lookup_rate_cache_enabled_backend(self):
        """With the cache on, every backend swap-out attempt hashes the
        page first, so the lookup rate is exactly 1.0."""
        from repro.sfm.backend import SfmBackend
        from repro.sfm.page import PAGE_SIZE, Page

        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        for i in range(4):
            backend.swap_out(
                Page(vaddr=i * PAGE_SIZE, data=bytes([i % 3]) * PAGE_SIZE)
            )
        assert backend.stats.digest_cache_lookup_rate == 1.0
        assert backend.stats.digest_cache_hit_rate == 0.25  # page 3 == page 0

    def test_merge_and_as_dict(self):
        merged = SwapStats.merged(
            [SwapStats(swap_outs=2), SwapStats(swap_outs=3, swap_ins=1)]
        )
        assert merged.swap_outs == 5
        assert merged.as_dict()["swap_ins"] == 1


class TestBandwidthLedger:
    def test_record_and_totals(self):
        ledger = BandwidthLedger()
        ledger.record("sfm_cpu", "read", 100)
        ledger.record("sfm_cpu", "write", 50)
        ledger.record("nma", "read", 1000)
        assert ledger.total("sfm_cpu") == 150
        assert ledger.total("nma") == 1000

    def test_channel_bytes_excludes_nma(self):
        """The central XFM accounting rule: NMA traffic never crosses the
        DDR channel."""
        ledger = BandwidthLedger()
        ledger.record("app", "read", 10)
        ledger.record("sfm_cpu", "write", 20)
        ledger.record("nma", "write", 999)
        assert ledger.channel_bytes() == 30

    def test_direction_validated(self):
        with pytest.raises(ConfigError):
            BandwidthLedger().record("app", "sideways", 1)

    def test_bandwidth(self):
        ledger = BandwidthLedger()
        ledger.record("app", "read", 10_000_000)
        assert ledger.bandwidth_bps("app", 2.0) == 5_000_000

    def test_bandwidth_zero_window(self):
        assert BandwidthLedger().bandwidth_bps("app", 0.0) == 0.0

    def test_reset(self):
        ledger = BandwidthLedger()
        ledger.record("app", "read", 1)
        ledger.reset()
        assert ledger.snapshot() == {}


class TestPromotionRate:
    def test_eq1(self):
        assert gb_swapped_per_min(512.0, 0.2) == pytest.approx(102.4)

    def test_paper_example(self):
        """§2.1: 20% promotion on 512 GB = ~102 GB accessed per minute."""
        assert promotion_rate(102.4e9, 512e9) == pytest.approx(0.2)

    def test_zero_capacity(self):
        assert promotion_rate(100.0, 0.0) == 0.0
