"""``swap_out_batch`` semantics on the flat backend: outcome-for-outcome
equivalence with the scalar path, digest-cache dedup behaviour, and the
deferral rule for subclasses that override scalar ``swap_out``."""

import pytest

from repro.compression.base import batch_stats
from repro.core.backend import XfmBackend
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.corpus import corpus_pages

CAP = 64 * PAGE_SIZE


def _pages(n, seed=3):
    return [
        Page(vaddr=i * PAGE_SIZE, data=data)
        for i, data in enumerate(corpus_pages("json-records", n, seed=seed))
    ]


class TestEquivalence:
    def test_batch_outcomes_match_scalar(self):
        scalar = SfmBackend(capacity_bytes=CAP, page_cache_entries=0)
        batched = SfmBackend(capacity_bytes=CAP, page_cache_entries=0)
        batch_pages = _pages(8)
        scalar_out = [scalar.swap_out(p) for p in _pages(8)]
        batch_out = batched.swap_out_batch(batch_pages)
        assert [o.accepted for o in batch_out] == [
            o.accepted for o in scalar_out
        ]
        assert [o.compressed_len for o in batch_out] == [
            o.compressed_len for o in scalar_out
        ]
        # And the stored bytes round-trip identically.
        for page, original in zip(batch_pages, _pages(8)):
            batched.swap_in(page)
            assert page.data == original.data

    def test_batch_uses_codec_batch_path(self):
        backend = SfmBackend(capacity_bytes=CAP, page_cache_entries=0)
        batch_stats.reset()
        backend.swap_out_batch(_pages(6))
        assert batch_stats.compress_batch_calls == 1
        assert batch_stats.compress_batch_pages == 6
        assert batch_stats.compress_scalar_fallback_calls == 0

    def test_empty_batch(self):
        backend = SfmBackend(capacity_bytes=CAP)
        assert backend.swap_out_batch([]) == []


class TestDigestDedup:
    def test_duplicate_pages_within_batch_hit_cache(self):
        backend = SfmBackend(capacity_bytes=CAP, page_cache_entries=64)
        data = corpus_pages("json-records", 1, seed=5)[0]
        pages = [
            Page(vaddr=i * PAGE_SIZE, data=data) for i in range(4)
        ]
        batch_stats.reset()
        outcomes = backend.swap_out_batch(pages)
        assert all(o.accepted for o in outcomes)
        # Only the first duplicate is compressed; the other three dedupe
        # against it (in-batch or via the digest cache).
        assert batch_stats.compress_batch_pages == 1
        for page in pages:
            backend.swap_in(page)
            assert page.data == data

    def test_batch_probe_does_not_perturb_scalar_equivalence(self):
        """A batch over pages already resident in the digest cache must
        produce the same outcomes as scalar swap_out would."""
        seed_pages = _pages(4, seed=11)
        a = SfmBackend(capacity_bytes=CAP, page_cache_entries=64)
        b = SfmBackend(capacity_bytes=CAP, page_cache_entries=64)
        for backend in (a, b):
            for p in _pages(4, seed=11):
                backend.swap_out(p)
                backend.swap_in(p)
        again = _pages(4, seed=11)
        scalar_out = [a.swap_out(p) for p in again]
        batch_out = b.swap_out_batch(_pages(4, seed=11))
        assert [o.accepted for o in batch_out] == [
            o.accepted for o in scalar_out
        ]
        assert len(seed_pages) == 4


class TestSubclassDeferral:
    def test_xfm_backend_routes_through_its_scalar_override(self):
        """XfmBackend overrides scalar ``swap_out`` (accelerator
        scheduling); the batch entry point must defer to it rather than
        bypass the override with precompressed blobs."""
        assert type(XfmBackend).__mro__  # sanity: it's a class
        assert XfmBackend.swap_out is not SfmBackend.swap_out
        backend = XfmBackend(capacity_bytes=CAP)
        pages = _pages(5)
        batch_stats.reset()
        outcomes = backend.swap_out_batch(pages)
        assert all(o.accepted for o in outcomes)
        # Deferral means no base-batch precompression happened here.
        assert batch_stats.compress_batch_calls == 0
        for page in pages:
            backend.swap_in(page)
            assert page.data is not None

    def test_double_swap_still_raises_in_batch(self):
        from repro.errors import SfmError

        backend = SfmBackend(capacity_bytes=CAP, page_cache_entries=0)
        page = _pages(1)[0]
        backend.swap_out(page)
        with pytest.raises(SfmError):
            backend.swap_out_batch([page])
