"""zswap writeback (shrink) path tests."""

import pytest

from repro.errors import ConfigError
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zswap import ZswapFrontend
from repro.workloads.corpus import corpus_pages


def _frontend_with_device(max_pool_percent=10, total_pages=40):
    backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
    swap_device = {}

    def writeback(swap_type, offset, data):
        swap_device[(swap_type, offset)] = data

    frontend = ZswapFrontend(
        backend,
        total_ram_bytes=total_pages * PAGE_SIZE,
        max_pool_percent=max_pool_percent,
        writeback=writeback,
    )
    return frontend, swap_device


class TestWriteback:
    def test_pressure_evicts_instead_of_rejecting(self):
        frontend, swap_device = _frontend_with_device()
        pages = corpus_pages("json-records", 24, seed=81)
        results = [
            frontend.store(0, i, page) for i, page in enumerate(pages)
        ]
        # With writeback enabled, stores keep succeeding under pressure.
        assert all(results)
        assert frontend.stats.reject_pool_limit == 0
        assert frontend.stats.written_back > 0
        assert swap_device

    def test_lru_victims_chosen(self):
        frontend, swap_device = _frontend_with_device()
        pages = corpus_pages("json-records", 24, seed=82)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
        # The oldest offsets land on the swap device first.
        evicted_offsets = sorted(offset for _, offset in swap_device)
        assert evicted_offsets[0] == 0
        assert max(evicted_offsets) < 24

    def test_written_back_content_is_exact(self):
        frontend, swap_device = _frontend_with_device()
        pages = corpus_pages("server-log", 24, seed=83)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
        for (swap_type, offset), data in swap_device.items():
            assert data == pages[offset]

    def test_every_page_recoverable_from_somewhere(self):
        """The kernel contract: a page is in zswap XOR on the device."""
        frontend, swap_device = _frontend_with_device()
        pages = corpus_pages("db-btree", 24, seed=84)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
        for i, original in enumerate(pages):
            got = frontend.load(0, i)
            if got is None:
                got = swap_device[(0, i)]
            assert got == original

    def test_pool_stays_under_limit(self):
        frontend, _ = _frontend_with_device()
        pages = corpus_pages("xml-config", 30, seed=85)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
            assert (
                frontend.pool_usage_bytes()
                <= frontend.pool_limit_bytes() + PAGE_SIZE
            )

    def test_shrink_requires_callback(self, json_pages):
        backend = SfmBackend(capacity_bytes=16 * PAGE_SIZE)
        frontend = ZswapFrontend(
            backend, total_ram_bytes=256 * PAGE_SIZE
        )
        with pytest.raises(ConfigError):
            frontend.shrink()

    def test_without_callback_rejects_as_before(self):
        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        frontend = ZswapFrontend(
            backend,
            total_ram_bytes=40 * PAGE_SIZE,
            max_pool_percent=10,
        )
        pages = corpus_pages("json-records", 24, seed=86)
        results = [
            frontend.store(0, i, page) for i, page in enumerate(pages)
        ]
        assert not all(results)
        assert frontend.stats.reject_pool_limit > 0
        assert frontend.stats.written_back == 0
