"""Digest-keyed compressed-page cache: accounting and store-path wiring.

The cache is content-addressed, so correctness hinges on three facts:
identical content hits (and reuses the exact blob bytes), any mutation
misses (no invalidation protocol to get wrong), and the zswap
same-filled fast path never touches it (those pages bypass the backend
entirely, as in the kernel).
"""

import pytest

from repro.errors import ConfigError
from repro.sfm.backend import SfmBackend
from repro.sfm.digest_cache import (
    DIGEST_CYCLES_PER_BYTE,
    DIGEST_SIZE,
    DigestPageCache,
    page_digest,
)
from repro.sfm.page import PAGE_SIZE, Page
from repro.sfm.zswap import ZswapFrontend


def _page(vaddr, data):
    return Page(vaddr=vaddr, data=data)


@pytest.fixture
def backend():
    return SfmBackend(capacity_bytes=64 * PAGE_SIZE)


class TestDigestPageCache:
    def test_digest_is_content_keyed(self):
        a = bytes(range(256)) * 16
        assert len(page_digest(a)) == DIGEST_SIZE
        assert page_digest(a) == page_digest(bytes(a))
        mutated = bytearray(a)
        mutated[100] ^= 1
        assert page_digest(a) != page_digest(bytes(mutated))

    def test_lru_eviction(self):
        cache = DigestPageCache(max_entries=2)
        cache.put(b"a", b"blob-a")
        cache.put(b"b", b"blob-b")
        assert cache.get(b"a") == b"blob-a"  # refreshes a's position
        cache.put(b"c", b"blob-c")  # evicts b, the LRU entry
        assert b"b" not in cache
        assert cache.get(b"a") == b"blob-a"
        assert cache.get(b"c") == b"blob-c"
        assert len(cache) == 2

    def test_put_refreshes_existing_key(self):
        cache = DigestPageCache(max_entries=2)
        cache.put(b"a", b"old")
        cache.put(b"b", b"blob-b")
        cache.put(b"a", b"new")
        cache.put(b"c", b"blob-c")  # must evict b, not the refreshed a
        assert cache.get(b"a") == b"new"
        assert b"b" not in cache

    def test_invalidate_and_clear(self):
        cache = DigestPageCache()
        cache.put(b"a", b"blob")
        assert cache.invalidate(b"a")
        assert not cache.invalidate(b"a")
        cache.put(b"a", b"blob")
        cache.clear()
        assert len(cache) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            DigestPageCache(max_entries=0)


class TestBackendHitMissAccounting:
    def test_first_store_misses_then_identical_content_hits(
        self, backend, json_pages
    ):
        data = json_pages[0]
        backend.swap_out(_page(0, data))
        assert backend.stats.digest_cache_misses == 1
        assert backend.stats.digest_cache_hits == 0

        # A different page with byte-identical content: hit.
        backend.swap_out(_page(PAGE_SIZE, bytes(data)))
        assert backend.stats.digest_cache_misses == 1
        assert backend.stats.digest_cache_hits == 1
        assert backend.stats.digest_cache_hit_rate == pytest.approx(0.5)

    def test_hit_reuses_exact_blob_and_skips_compressor(
        self, backend, json_pages
    ):
        data = json_pages[0]
        first = backend.swap_out(_page(0, data))
        compresses = []
        original = backend._compress
        backend._compress = lambda d: compresses.append(d) or original(d)
        second = backend.swap_out(_page(PAGE_SIZE, data))
        assert compresses == []  # blob came from the cache
        assert second.compressed_len == first.compressed_len
        # Both copies decompress to the original content.
        assert backend.swap_in(
            _resident(backend, PAGE_SIZE)
        ) == data

    def test_hit_charges_hash_not_compressor_cycles(self, backend, json_pages):
        data = json_pages[0]
        backend.swap_out(_page(0, data))
        before = backend.stats.cpu_compress_cycles
        backend.swap_out(_page(PAGE_SIZE, data))
        charged = backend.stats.cpu_compress_cycles - before
        assert charged == pytest.approx(DIGEST_CYCLES_PER_BYTE * PAGE_SIZE)
        assert charged < backend.codec.spec.compress_cycles_per_byte * PAGE_SIZE

    def test_mutated_page_misses(self, backend, json_pages):
        data = json_pages[0]
        backend.swap_out(_page(0, data))
        mutated = bytearray(data)
        mutated[17] ^= 0xFF
        backend.swap_out(_page(PAGE_SIZE, bytes(mutated)))
        assert backend.stats.digest_cache_misses == 2
        assert backend.stats.digest_cache_hits == 0

    def test_disabled_cache_counts_nothing(self, json_pages):
        backend = SfmBackend(
            capacity_bytes=64 * PAGE_SIZE, page_cache_entries=0
        )
        assert backend.page_cache is None
        backend.swap_out(_page(0, json_pages[0]))
        backend.swap_out(_page(PAGE_SIZE, json_pages[0]))
        assert backend.stats.digest_cache_hits == 0
        assert backend.stats.digest_cache_misses == 0
        assert backend.stats.digest_cache_hit_rate == 0.0

    def test_incompressible_result_is_cached_too(self, backend, random_pages):
        """A repeated incompressible page is rejected both times but only
        compressed once: the cached blob re-trips the size threshold."""
        data = random_pages[0]
        assert not backend.swap_out(_page(0, data)).accepted
        compresses = []
        original = backend._compress
        backend._compress = lambda d: compresses.append(d) or original(d)
        assert not backend.swap_out(_page(PAGE_SIZE, data)).accepted
        assert compresses == []
        assert backend.stats.digest_cache_hits == 1


def _resident(backend, vaddr):
    page = Page(vaddr=vaddr, data=None)
    page.swapped = True
    return page


class TestZswapInteraction:
    def _frontend(self, backend):
        return ZswapFrontend(
            backend, total_ram_bytes=1024 * PAGE_SIZE, max_pool_percent=50
        )

    def test_store_invalidate_store_of_mutated_page(
        self, backend, json_pages
    ):
        front = self._frontend(backend)
        data = json_pages[0]
        assert front.store(0, 7, data)
        front.invalidate_page(0, 7)
        mutated = bytearray(data)
        mutated[0] ^= 0x55
        # The slot is reused with new content: must miss (content key
        # changed), must store the mutated bytes, and must load them back.
        assert front.store(0, 7, bytes(mutated))
        assert backend.stats.digest_cache_misses == 2
        assert backend.stats.digest_cache_hits == 0
        assert front.load(0, 7) == bytes(mutated)

    def test_restore_of_identical_page_hits(self, backend, json_pages):
        front = self._frontend(backend)
        data = json_pages[0]
        assert front.store(0, 7, data)
        front.invalidate_page(0, 7)
        assert front.store(0, 7, data)
        assert backend.stats.digest_cache_hits == 1
        assert front.load(0, 7) == data

    def test_same_filled_pages_bypass_the_cache(self, backend):
        """zswap intercepts same-value-filled pages before the backend:
        they must neither populate nor consult the digest cache."""
        front = self._frontend(backend)
        zero_page = bytes(PAGE_SIZE)
        ones_page = bytes([0xAA]) * PAGE_SIZE
        assert front.store(0, 1, zero_page)
        assert front.store(0, 2, zero_page)
        assert front.store(0, 3, ones_page)
        assert front.stats.same_filled_pages == 3
        assert backend.stats.digest_cache_hits == 0
        assert backend.stats.digest_cache_misses == 0
        assert len(backend.page_cache) == 0
        assert front.load(0, 1) == zero_page
        assert front.load(0, 3) == ones_page
