"""Offload-policy tests (§3.2's decompression-offload conditions)."""

import pytest

from repro.errors import ConfigError
from repro.sfm.policy import (
    OffloadPolicy,
    io_amplification_ratio,
    writeback_probability,
)


class TestAmplification:
    def test_floor_is_blob_fraction(self):
        assert io_amplification_ratio(4.0, 0.0) == pytest.approx(0.25)

    def test_writeback_adds_round_trip(self):
        assert io_amplification_ratio(4.0, 1.0) == pytest.approx(2.25)

    def test_monotone_in_writeback(self):
        low = io_amplification_ratio(3.0, 0.1)
        high = io_amplification_ratio(3.0, 0.9)
        assert high > low

    def test_validation(self):
        with pytest.raises(ConfigError):
            io_amplification_ratio(0.0, 0.5)
        with pytest.raises(ConfigError):
            io_amplification_ratio(3.0, 1.5)


class TestWritebackProbability:
    def test_immediate_use_stays_cached(self):
        assert writeback_probability(0.0, 0.0) == 0.0

    def test_long_use_distance_evicts(self):
        assert writeback_probability(1.0, 0.0) > 0.99

    def test_contention_accelerates_eviction(self):
        quiet = writeback_probability(0.02, 0.0)
        contended = writeback_probability(0.02, 1.0)
        assert contended > quiet

    def test_validation(self):
        with pytest.raises(ConfigError):
            writeback_probability(-1.0, 0.0)
        with pytest.raises(ConfigError):
            writeback_probability(0.1, 2.0)


class TestPolicy:
    def test_demand_fault_uses_cpu_when_nma_slower(self):
        """§6's default: the fault path avoids XFM's datapath latency."""
        policy = OffloadPolicy(
            nma_decompress_latency_s=30e-6, cpu_decompress_latency_s=8e-6
        )
        assert not policy.should_offload(
            compression_ratio=3.0,
            use_distance_s=1.0,
            llc_contention=1.0,
            latency_critical=True,
        )

    def test_demand_fault_offloads_with_fast_nma(self):
        policy = OffloadPolicy(
            nma_decompress_latency_s=2e-6, cpu_decompress_latency_s=8e-6
        )
        assert policy.should_offload(3.0, 0.0, 0.0, latency_critical=True)

    def test_prefetch_with_long_use_distance_offloads(self):
        """Prefetched pages have long use distances by construction: the
        decompressed page would be written back anyway, so the NMA path
        saves the whole round trip."""
        policy = OffloadPolicy()
        assert policy.should_offload(
            compression_ratio=3.0,
            use_distance_s=0.5,
            llc_contention=0.5,
            latency_critical=False,
        )

    def test_immediate_consumer_keeps_cpu_path(self):
        """If the decompressed bytes are consumed straight from cache,
        offloading saves nothing (§3.2 condition 2)."""
        policy = OffloadPolicy()
        assert not policy.should_offload(
            compression_ratio=3.0,
            use_distance_s=0.0,
            llc_contention=0.0,
            latency_critical=False,
        )

    def test_traffic_saved_scales_with_distance(self):
        policy = OffloadPolicy()
        near = policy.traffic_saved_bytes(3.0, 0.001, 0.2)
        far = policy.traffic_saved_bytes(3.0, 0.5, 0.2)
        assert far > near > 0
