"""Fleet-scale savings model tests."""

import pytest

from repro.costmodel.fleet import (
    FleetConfig,
    dram_avoided_per_server_gb,
    fleet_savings,
    savings_summary,
)
from repro.errors import ConfigError


class TestDramAvoided:
    def test_google_constants(self):
        """30% cold at 3x ratio frees ~20% of DRAM (the §3.1 deployment)."""
        config = FleetConfig(dram_per_server_gb=512.0)
        per_server = dram_avoided_per_server_gb(config)
        assert per_server == pytest.approx(512 * 0.30 * (2 / 3))
        assert per_server / 512 == pytest.approx(0.20)

    def test_ratio_one_frees_nothing(self):
        with pytest.raises(ConfigError):
            FleetConfig(compression_ratio=1.0)

    def test_higher_ratio_frees_more(self):
        low = dram_avoided_per_server_gb(FleetConfig(compression_ratio=2.0))
        high = dram_avoided_per_server_gb(FleetConfig(compression_ratio=4.0))
        assert high > low


class TestFleetSavings:
    def test_xfm_dataplane_cheaper_than_cpu(self):
        reports = savings_summary()
        assert (
            reports["sfm-xfm"].dataplane_cost_usd
            < reports["sfm-cpu"].dataplane_cost_usd / 10
        )
        assert (
            reports["sfm-xfm"].dataplane_emission_kg
            < reports["sfm-cpu"].dataplane_emission_kg / 10
        )

    def test_dollars_net_positive_for_both_data_planes(self):
        """At the fleet promotion rate (~15%) the tier pays for itself in
        dollars with either data plane — the paper's economic argument."""
        for report in savings_summary().values():
            assert report.net_usd > 0

    def test_carbon_requires_acceleration(self):
        """With the literal EQ5 CPU energy, fleet-scale CPU compression
        emits more than the avoided DRAM embodies; only the accelerated
        (XFM) data plane is carbon-net-positive — the same conclusion as
        the paper's "ideal, accelerated SFM" framing (EXPERIMENTS.md
        deviation 1)."""
        reports = savings_summary()
        assert reports["sfm-xfm"].net_kg > 0
        assert reports["sfm-xfm"].net_kg > reports["sfm-cpu"].net_kg

    def test_scales_linearly_in_servers(self):
        small = fleet_savings(FleetConfig(num_servers=1000))
        large = fleet_savings(FleetConfig(num_servers=10_000))
        assert large.dram_avoided_gb == pytest.approx(
            10 * small.dram_avoided_gb
        )
        assert large.net_usd == pytest.approx(10 * small.net_usd, rel=1e-6)

    def test_capital_saved_magnitude(self):
        """10k servers x 512 GB x 20% freed ~ 1 PB of avoided DRAM."""
        report = fleet_savings(FleetConfig())
        assert report.dram_avoided_gb == pytest.approx(1_024_000, rel=0.01)
        assert report.capital_saved_usd > 5e6

    def test_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(num_servers=0)
        with pytest.raises(ConfigError):
            FleetConfig(cold_fraction=0.0)
        with pytest.raises(ConfigError):
            fleet_savings(FleetConfig(), horizon_years=0.0)

    def test_report_accessors(self):
        report = fleet_savings(FleetConfig(num_servers=100))
        assert report.per_server_dram_saved_gb == pytest.approx(
            report.dram_avoided_gb / 100
        )
