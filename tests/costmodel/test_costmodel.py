"""Cost/carbon model tests: equations, calibration targets, break-evens."""

import pytest

from repro.costmodel import (
    CostParams,
    MemoryKind,
    breakeven_years,
    dfm_cost_usd,
    dfm_emission_kg,
    fig3_series,
    integrated_accel_breakeven_promotion,
    sfm_cost_usd,
    sfm_emission_kg,
)
from repro.costmodel.accel import IntegratedAccelerator, cores_needed_for_sfm
from repro.costmodel.breakeven import (
    sfm_vs_dfm_cost_breakeven,
    sfm_vs_dfm_emission_breakeven,
)
from repro.costmodel.capital import dfm_idle_energy_kwh, sfm_cpu_cost_usd
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def params():
    return CostParams()


class TestEq1(object):
    def test_gb_swapped_per_min(self, params):
        """EQ1 with the §2.1 example: 20% of 512 GB = ~102 GB/min."""
        assert params.gb_swapped_per_min(0.2) == pytest.approx(102.4)

    def test_promotion_rate_validated(self, params):
        with pytest.raises(ConfigError):
            params.gb_swapped_per_min(1.5)


class TestCpuQuantities:
    def test_cc_available_eq33(self, params):
        assert params.cc_available_per_min() == pytest.approx(
            2.6e9 * 8 * 60
        )

    def test_cpu_fraction_at_full_promotion(self, params):
        """512 GB/min at 7.65e9 cycles/GB needs ~3.1 E5-2670 sockets."""
        assert params.cpu_fraction_needed(1.0) == pytest.approx(3.14, abs=0.05)

    def test_footnote_bandwidth(self, params):
        """§3.3 footnote: 100% promotion on 512 GB is ~8.5 GBps."""
        assert params.gb_swapped_per_min(1.0) / 60 == pytest.approx(8.53, abs=0.01)

    def test_cpu_energy_per_gb(self, params):
        # 115 W at ~2.72 GB/s -> ~42 J/GB.
        assert params.cpu_energy_kwh_per_gb() * 3.6e6 == pytest.approx(
            42.3, abs=1.0
        )

    def test_nma_energy_much_cheaper(self, params):
        assert params.nma_energy_kwh_per_gb() < params.cpu_energy_kwh_per_gb() / 20


class TestCosts:
    def test_dfm_dominated_by_upfront(self, params):
        year0 = dfm_cost_usd(params, 1.0, 0.0)
        year5 = dfm_cost_usd(params, 1.0, 5.0)
        assert year0 == pytest.approx(512 * params.dram_cost_per_gb)
        assert year5 < year0 * 1.2

    def test_pmem_cheaper_than_dram(self, params):
        dram = dfm_cost_usd(params, 1.0, 1.0, MemoryKind.DRAM)
        pmem = dfm_cost_usd(params, 1.0, 1.0, MemoryKind.PMEM)
        assert pmem < dram

    def test_sfm_cost_grows_linearly(self, params):
        y1 = sfm_cost_usd(params, 1.0, 1.0)
        y2 = sfm_cost_usd(params, 1.0, 2.0)
        y3 = sfm_cost_usd(params, 1.0, 3.0)
        assert y2 - y1 == pytest.approx(y3 - y2)

    def test_sfm_scales_with_promotion(self, params):
        assert sfm_cost_usd(params, 0.2, 5.0) < sfm_cost_usd(params, 1.0, 5.0)

    def test_accelerated_sfm_is_cheapest(self, params):
        assert sfm_cost_usd(params, 1.0, 5.0, accelerated=True) < (
            sfm_cost_usd(params, 1.0, 5.0) * 0.1
        )

    def test_cpu_cost_eq31(self, params):
        assert sfm_cpu_cost_usd(params, 1.0) == pytest.approx(
            params.cpu_fraction_needed(1.0) * 500.0
        )

    def test_idle_energy_counts_dimms(self, params):
        # 512 GB of 64 GB DIMMs -> 8 DIMMs x 4 W.
        kwh = dfm_idle_energy_kwh(params, MemoryKind.DRAM, 1.0)
        assert kwh == pytest.approx(8 * 4 / 1000 * 8760, rel=0.01)

    def test_negative_years_rejected(self, params):
        with pytest.raises(ConfigError):
            dfm_cost_usd(params, 1.0, -1.0)


class TestBreakevens:
    def test_paper_headline_8_5_years(self, params):
        """§3.1: SFM at 100% promotion breaks even with DRAM-DFM at ~8.5y."""
        years = sfm_vs_dfm_cost_breakeven(params, 1.0)
        assert years == pytest.approx(8.5, abs=0.25)

    def test_sfm20_beats_pmem_for_decades(self, params):
        """§3.1: at 20% promotion SFM may beat even PMem-based DFM."""
        years = sfm_vs_dfm_cost_breakeven(params, 0.2, MemoryKind.PMEM)
        assert years is None or years > 10.0

    def test_accelerated_sfm_emission_never_breaks_even(self, params):
        """The 'ideal, accelerated SFM' never reaches DRAM-DFM emissions
        in (far more than) a 5-year server lifetime."""
        years = sfm_vs_dfm_emission_breakeven(
            params, 1.0, accelerated=True
        )
        assert years is None

    def test_cpu_sfm_emission_crosses_eventually(self, params):
        years = sfm_vs_dfm_emission_breakeven(params, 0.2)
        assert years is not None and years > 1.0

    def test_solver_detects_immediate_crossing(self):
        assert breakeven_years(lambda t: 10.0, lambda t: 5.0) == 0.0

    def test_solver_bisects(self):
        years = breakeven_years(lambda t: t, lambda t: 5.0)
        assert years == pytest.approx(5.0, abs=0.01)


class TestEmissions:
    def test_dram_embodied_dominates(self, params):
        assert dfm_emission_kg(params, 1.0, 0.0) == pytest.approx(
            512 * 1.01
        )

    def test_pmem_embodied_lower(self, params):
        dram = dfm_emission_kg(params, 1.0, 0.0, MemoryKind.DRAM)
        pmem = dfm_emission_kg(params, 1.0, 0.0, MemoryKind.PMEM)
        assert pmem / dram == pytest.approx(0.62 / 1.01)

    def test_sfm_operational_grows(self, params):
        assert sfm_emission_kg(params, 1.0, 2.0) > sfm_emission_kg(
            params, 1.0, 1.0
        )


class TestFig3Series:
    def test_series_structure(self):
        series = fig3_series()
        assert set(series) == {
            "dfm-dram", "dfm-pmem", "sfm-20", "sfm-xfm-20",
            "sfm-100", "sfm-xfm-100",
        }
        assert series["dfm-dram"].normalized == [1.0] * 10

    def test_sfm_lines_rise_toward_dfm(self):
        series = fig3_series()
        sfm = series["sfm-100"].normalized
        assert sfm == sorted(sfm)
        assert sfm[0] < 1.0

    def test_emission_metric(self):
        series = fig3_series(metric="emission")
        # Accelerated SFM emissions stay far below the DFM reference.
        assert all(v < 0.1 for v in series["sfm-xfm-100"].normalized)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ConfigError):
            fig3_series(metric="latency")


class TestIntegratedAccel:
    def test_breakeven_near_paper_estimate(self):
        """§3.2 puts the integrated-accelerator crossover at ~6%; the
        equations with a 1-core management cost give ~4%."""
        assert 0.02 <= integrated_accel_breakeven_promotion() <= 0.08

    def test_qat_sustains_full_promotion(self, params):
        accel = IntegratedAccelerator()
        assert accel.can_sustain(params, 1.0)

    def test_cores_needed_linear(self, params):
        assert cores_needed_for_sfm(params, 0.5) == pytest.approx(
            cores_needed_for_sfm(params, 1.0) / 2
        )
