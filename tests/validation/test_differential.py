"""Emulator-vs-xfm_module differential oracle.

The acceptance bar from the validation issue: the harness replays >= 3
seeded offload batches through both the optimistic window engine and the
FSM-protocol-checked :class:`~repro.core.xfm_module.XfmModule`, asserting
identical serviced-request counts and zero
:class:`~repro.errors.DramProtocolError` — any protocol violation in the
module path propagates out of :func:`differential_offload_check` and
fails the test.
"""

import random

import pytest

from repro.validation.generators import OffloadOp, gen_offload_batch
from repro.validation.oracles import (
    check_command_trace,
    differential_offload_check,
    replay_batch_module,
    replay_batch_optimistic,
)

DIFFERENTIAL_SEEDS = (101, 202, 303, 404)


@pytest.mark.parametrize("seed", DIFFERENTIAL_SEEDS)
def test_seeded_batches_agree(seed):
    batch = gen_offload_batch(random.Random(seed))
    optimistic, checked = differential_offload_check(batch)
    assert optimistic.serviced > 0
    assert optimistic.serviced == checked.serviced
    assert optimistic.conditional == checked.conditional
    assert optimistic.random == checked.random
    assert optimistic.order == checked.order
    assert optimistic.per_window == checked.per_window
    assert optimistic.bytes_moved == checked.bytes_moved
    # Default budget is 3 accesses/REF with at most 1 random: the
    # conditional kind must dominate, as in the paper's Fig. 12.
    assert checked.conditional >= checked.random


def test_agreement_under_queue_pressure():
    batch = gen_offload_batch(random.Random(7), max_ops_per_ref=5)
    optimistic, checked = differential_offload_check(batch, pressure=True)
    assert optimistic.serviced > 0
    assert optimistic.serviced == checked.serviced
    assert optimistic.order == checked.order


def test_module_trace_revalidates_independently():
    batch = gen_offload_batch(random.Random(11), num_refs=48)
    checked, module = replay_batch_module(batch)
    assert module.host_window_clean()
    stats = check_command_trace(module)
    assert stats.nma_accesses == checked.serviced
    # One REF command per advanced window.
    assert stats.refresh_windows == module._ref_index


def test_empty_batch_services_nothing():
    optimistic, checked = differential_offload_check([], num_refs=16)
    assert optimistic.serviced == checked.serviced == 0
    assert optimistic.per_window == {}


def test_flexible_only_batch_is_all_conditional():
    batch = [
        OffloadOp(ref=r, is_write=bool(r % 2), row=None, nbytes=4096)
        for r in range(12)
    ]
    optimistic = replay_batch_optimistic(batch)
    assert optimistic.serviced == len(batch)
    assert optimistic.random == 0
    _, checked = differential_offload_check(batch)
    assert checked.random == 0
