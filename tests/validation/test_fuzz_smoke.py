"""Fuzz smoke: seeded generators driven against the real implementations.

Marked ``fuzz`` so CI can select it separately (``-m fuzz``) and cap it
with ``FUZZ_TIME_BUDGET_S`` (total seconds, split evenly across the
targets here). Any failure prints a single ``case_seed=`` integer that
reproduces the exact case via
``fuzz_reproduce(generate, check, case_seed=...)``.
"""

import os
import random

import pytest

from repro.compression.deflate import DeflateCodec
from repro.compression.lzfast import LzFastCodec
from repro.compression.zstd_like import ZstdLikeCodec
from repro.core.registers import RegisterFile, Registers
from repro.errors import EntryNotFoundError, MmioError, ZpoolFullError
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool
from repro.validation.fuzz import Fuzzer, case_seed
from repro.validation.generators import (
    gen_offload_batch,
    gen_page,
    gen_rbtree_ops,
    gen_register_program,
    gen_zpool_ops,
)
from repro.validation.hooks import validation
from repro.validation.oracles import check_roundtrip, differential_offload_check

ROOT_SEED = 20260806
_NUM_TARGETS = 6
_TOTAL_BUDGET_S = float(os.environ.get("FUZZ_TIME_BUDGET_S", "6"))


def _fuzzer(offset: int, runs: int = 200) -> Fuzzer:
    return Fuzzer(
        seed=ROOT_SEED + offset,
        runs=runs,
        time_budget_s=_TOTAL_BUDGET_S / _NUM_TARGETS,
    )


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "codec",
    [DeflateCodec(), LzFastCodec(), ZstdLikeCodec()],
    ids=lambda codec: codec.name,
)
def test_fuzz_codec_roundtrips(codec):
    report = _fuzzer(hash(codec.name) % 1000).run(
        gen_page, lambda page: check_roundtrip(codec, page)
    )
    assert report.cases_run > 0


@pytest.mark.fuzz
def test_fuzz_rbtree_vs_shadow_dict():
    def check(ops):
        tree = RedBlackTree()
        shadow = {}
        with validation():
            for op in ops:
                if op[0] == "insert":
                    _, key, value = op
                    tree.insert(key, value)
                    shadow[key] = value
                elif op[0] == "delete":
                    _, key = op
                    if key in shadow:
                        assert tree.delete(key) == shadow.pop(key)
                    else:
                        try:
                            tree.delete(key)
                        except EntryNotFoundError:
                            pass
                        else:
                            raise AssertionError(
                                f"delete({key}) should have raised"
                            )
                else:
                    _, key = op
                    assert tree.get(key) == shadow.get(key)
        assert tree.keys() == sorted(shadow)

    report = _fuzzer(1).run(lambda rng: gen_rbtree_ops(rng, n=150), check)
    assert report.cases_run > 0


@pytest.mark.fuzz
def test_fuzz_zpool_vs_shadow_map():
    def check(ops):
        pool = Zpool(capacity_bytes=32 * 1024)
        shadow = {}
        with validation():
            for op in ops:
                if op[0] == "store":
                    _, length, fill = op
                    try:
                        shadow[pool.store(bytes([fill]) * length)] = (
                            bytes([fill]) * length
                        )
                    except ZpoolFullError:
                        pass
                elif op[0] == "free" and shadow:
                    handle = sorted(shadow)[op[1] % len(shadow)]
                    pool.free(handle)
                    del shadow[handle]
                elif op[0] == "load" and shadow:
                    handle = sorted(shadow)[op[1] % len(shadow)]
                    assert pool.load(handle) == shadow[handle]
                elif op[0] == "compact":
                    pool.compact()
            for handle, blob in shadow.items():
                assert pool.load(handle) == blob

    report = _fuzzer(2).run(lambda rng: gen_zpool_ops(rng, n=80), check)
    assert report.cases_run > 0


@pytest.mark.fuzz
def test_fuzz_register_file_protocol():
    known = {int(register) for register in Registers}
    read_only = {
        int(Registers.SP_CAPACITY),
        int(Registers.CRQ_HEAD),
        int(Registers.CRQ_FREE),
        int(Registers.STATUS),
    }

    def check(ops):
        regs = RegisterFile()
        for op in ops:
            if op[0] == "read":
                _, offset = op
                if offset in known:
                    assert regs.mmio_read(offset) >= 0
                else:
                    try:
                        regs.mmio_read(offset)
                    except MmioError:
                        pass
                    else:
                        raise AssertionError(f"read 0x{offset:x} must raise")
            elif op[0] == "write":
                _, offset, value = op
                legal = offset in known - read_only and value >= 0
                try:
                    regs.mmio_write(offset, value)
                except MmioError:
                    assert not legal
                else:
                    assert legal
                    assert regs.mmio_read(offset) == value
            else:
                _, offset, value = op
                regs.device_set(Registers(offset), value)
                assert regs[Registers(offset)] == value

    report = _fuzzer(3).run(gen_register_program, check)
    assert report.cases_run > 0


@pytest.mark.fuzz
def test_fuzz_differential_offload_batches():
    def check(batch):
        optimistic, checked = differential_offload_check(batch, num_refs=48)
        assert optimistic.serviced == checked.serviced

    report = _fuzzer(4, runs=40).run(
        lambda rng: gen_offload_batch(rng, num_refs=24), check
    )
    assert report.cases_run > 0


@pytest.mark.fuzz
def test_fuzz_case_stream_is_deterministic():
    fuzzer = _fuzzer(5)
    first = [
        gen_page(random.Random(case_seed(fuzzer.seed, index)))
        for index in range(5)
    ]
    second = [
        gen_page(random.Random(case_seed(fuzzer.seed, index)))
        for index in range(5)
    ]
    assert first == second
