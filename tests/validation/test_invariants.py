"""Randomized invariant churn: structural checkers fire after every
mutation (via the checkpoints wired into the data structures) while a
shadow model cross-checks observable behaviour."""

import random

import pytest

from repro.core.nma import NearMemoryAccelerator, NmaConfig
from repro.core.registers import Registers
from repro.core.xfm_module import XfmModule
from repro.errors import EntryNotFoundError, ZpoolFullError
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool
from repro.validation.generators import gen_rbtree_ops, gen_zpool_ops
from repro.validation.hooks import checkpoint, validation, validation_enabled
from repro.validation.invariants import InvariantViolation

CHURN_SEED = 0xC0FFEE


def test_rbtree_10k_churn_checked_after_every_mutation():
    rng = random.Random(CHURN_SEED)
    ops = gen_rbtree_ops(rng, n=10_000, key_space=256)
    tree = RedBlackTree()
    shadow = {}
    with validation():
        assert validation_enabled()
        for op in ops:
            if op[0] == "insert":
                _, key, value = op
                tree.insert(key, value)  # checkpoint fires in insert()
                shadow[key] = value
            elif op[0] == "delete":
                _, key = op
                if key in shadow:
                    assert tree.delete(key) == shadow.pop(key)
                else:
                    with pytest.raises(EntryNotFoundError):
                        tree.delete(key)
            else:
                _, key = op
                assert tree.get(key) == shadow.get(key)
    assert tree.keys() == sorted(shadow)
    assert len(tree) == len(shadow)


def test_zpool_churn_with_compaction_preserves_entries():
    rng = random.Random(CHURN_SEED + 1)
    ops = gen_zpool_ops(rng, n=600)
    pool = Zpool(capacity_bytes=64 * 1024)
    shadow = {}  # handle -> blob
    with validation():
        for op in ops:
            if op[0] == "store":
                _, length, fill = op
                blob = bytes([fill]) * length
                try:
                    handle = pool.store(blob)
                except ZpoolFullError:
                    continue
                shadow[handle] = blob
            elif op[0] == "free" and shadow:
                handles = sorted(shadow)
                handle = handles[op[1] % len(handles)]
                assert pool.free(handle) == len(shadow.pop(handle))
            elif op[0] == "load" and shadow:
                handles = sorted(shadow)
                handle = handles[op[1] % len(handles)]
                assert pool.load(handle) == shadow[handle]
            elif op[0] == "compact":
                pool.compact()
                # Compaction must preserve every live blob byte-exactly.
                for handle, blob in shadow.items():
                    assert pool.load(handle) == blob
    for handle, blob in shadow.items():
        assert pool.load(handle) == blob
    assert len(pool) == len(shadow)


def test_rbtree_corruption_is_caught():
    tree = RedBlackTree()
    for key in range(16):
        tree.insert(key, key)
    tree._size += 1  # desync the cached size from the node count
    with validation():
        with pytest.raises(InvariantViolation):
            checkpoint(tree)


def test_zpool_corruption_is_caught():
    pool = Zpool(capacity_bytes=16 * 1024)
    handle = pool.store(b"x" * 100)
    slab_index, offset, length = pool._locator[handle]
    pool._locator[handle] = (slab_index, offset + 8, length)
    with validation():
        with pytest.raises(InvariantViolation):
            checkpoint(pool)


def test_checkpoint_is_inert_when_disabled():
    tree = RedBlackTree()
    tree.insert(1, "a")
    tree._size += 7  # corrupt — but validation is off, so no check runs
    assert not validation_enabled()
    checkpoint(tree)  # must not raise
    tree._size -= 7


def test_nma_register_mirror_desync_is_caught():
    nma = NearMemoryAccelerator(NmaConfig(spm_bytes=1 << 20, crq_depth=8))
    with validation():
        request = nma.submit(True, source_row=1, dest_row=None, input_bytes=4096)
        nma.stage_input(request)
        nma.advance(1e9)
        # Device-side mirror lies about SPM capacity -> caught.
        nma.registers.device_set(Registers.SP_CAPACITY, 12345)
        with pytest.raises(InvariantViolation):
            checkpoint(nma)


def test_nma_lifecycle_under_validation():
    nma = NearMemoryAccelerator(NmaConfig(spm_bytes=1 << 20, crq_depth=8))
    with validation():
        for i in range(4):
            nma.submit(True, source_row=i, dest_row=None, input_bytes=4096)
        while (request := nma.pop_request()) is not None:
            nma.stage_input(request)
        for entry in nma.advance(1e9, output_bytes_of=lambda e: 1024):
            nma.release(entry.entry_id)
    assert nma.completed_ops == 4
    assert nma.registers[Registers.SP_CAPACITY] == nma.spm.free_bytes


def test_xfm_module_checked_every_window():
    module = XfmModule()
    with validation():
        for ref in range(8):
            module.submit_read(None, nbytes=4096)
            module.step()  # checkpoint at the end of every window
    assert module.host_window_clean()
