"""Golden-snapshot regression tests for the analysis layer.

The fig. 8 and fig. 12 generators must render byte-identically to the
committed ``benchmarks/results/*.txt`` artifacts (which the benches
write via the same :mod:`repro.analysis.goldens` renderers). A diff here
means the paper-reproduction numbers moved — regenerate the goldens by
rerunning the benches only after confirming the shift is intentional.
"""

from pathlib import Path

import pytest

from repro.analysis.figures import fig8_ratios, fig12_fallbacks
from repro.analysis.goldens import (
    FIG8_GOLDEN_KWARGS,
    FIG12_GOLDEN_KWARGS,
    fig8_table,
    fig12_table,
)
from repro.workloads.corpus import CORPUS_NAMES

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _golden(name: str) -> str:
    path = RESULTS / name
    if not path.exists():
        pytest.skip(f"golden file {path} not committed")
    return path.read_text()


def test_fig08_matches_golden():
    reports = fig8_ratios(corpora=tuple(CORPUS_NAMES), **FIG8_GOLDEN_KWARGS)
    rendered = fig8_table(reports) + "\n"
    golden = _golden("fig08_multichannel.txt")
    assert rendered == golden, (
        "fig. 8 output drifted from benchmarks/results/fig08_multichannel.txt"
        " — rerun the bench to regenerate if the change is intentional"
    )


def test_fig12_matches_golden():
    grid = fig12_fallbacks(**FIG12_GOLDEN_KWARGS)
    rendered = fig12_table(grid) + "\n"
    golden = _golden("fig12_fallbacks.txt")
    assert rendered == golden, (
        "fig. 12 output drifted from benchmarks/results/fig12_fallbacks.txt"
        " — rerun the bench to regenerate if the change is intentional"
    )
