"""The fuzz micro-framework itself: single-seed reproduction, shrinking,
and time budgets."""

import random

import pytest

from repro.validation.fuzz import (
    FuzzFailure,
    Fuzzer,
    case_seed,
    fuzz_reproduce,
    shrink_candidates,
)


def test_case_seed_is_pure_and_distinct():
    assert case_seed(1234, 0) == case_seed(1234, 0)
    seeds = {case_seed(1234, i) for i in range(500)}
    assert len(seeds) == 500
    assert case_seed(1234, 0) != case_seed(1235, 0)


def test_failure_carries_single_reproduction_seed():
    def generate(rng):
        return [rng.randrange(200) for _ in range(rng.randint(1, 30))]

    def check(case):
        assert all(value < 199 for value in case)

    fuzzer = Fuzzer(seed=99, runs=2_000)
    with pytest.raises(FuzzFailure) as excinfo:
        fuzzer.run(generate, check)
    failure = excinfo.value
    # The printed message contains the one integer needed to reproduce.
    assert f"case_seed={failure.case_seed}" in str(failure)
    assert failure.seed == 99
    assert failure.case_seed == case_seed(99, failure.run)
    # Regenerating from the single seed gives the identical case ...
    regenerated = generate(random.Random(failure.case_seed))
    assert regenerated == failure.case
    # ... and fuzz_reproduce re-raises the original property failure.
    with pytest.raises(AssertionError):
        fuzz_reproduce(generate, check, case_seed=failure.case_seed)


def test_shrinking_minimizes_list_case():
    def generate(rng):
        return [rng.randrange(400) for _ in range(rng.randint(5, 40))]

    def check(case):
        assert all(value <= 50 for value in case)

    with pytest.raises(FuzzFailure) as excinfo:
        Fuzzer(seed=7, runs=500).run(generate, check)
    shrunk = excinfo.value.shrunk
    # Greedy shrink reaches a single still-failing element.
    assert len(shrunk) == 1
    assert shrunk[0] > 50
    with pytest.raises(AssertionError):
        check(shrunk)


def test_shrinking_minimizes_bytes_case():
    def generate(rng):
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 64)))

    def check(case):
        assert len(case) < 5

    with pytest.raises(FuzzFailure) as excinfo:
        Fuzzer(seed=3, runs=500).run(generate, check)
    assert len(excinfo.value.shrunk) == 5


def test_time_budget_stops_generation():
    def generate(rng):
        return rng.random()

    report = Fuzzer(seed=1, runs=10**7, time_budget_s=0.05).run(
        generate, lambda case: None
    )
    assert report.stopped_by_budget
    assert 0 < report.cases_run < 10**7
    assert report.elapsed_s >= 0.05


def test_passing_run_reports_all_cases():
    report = Fuzzer(seed=5, runs=50).run(
        lambda rng: rng.randrange(10), lambda case: None
    )
    assert report.cases_run == 50
    assert not report.stopped_by_budget


def test_reproduce_returns_case_when_fixed():
    case = fuzz_reproduce(
        lambda rng: rng.randrange(100),
        lambda value: None,
        case_seed=case_seed(42, 0),
    )
    assert isinstance(case, int)


def test_shrink_candidates_cover_core_types():
    assert list(shrink_candidates([])) == []
    assert b"" in list(shrink_candidates(b"abc"))
    assert 0 in list(shrink_candidates(17))
    assert False in list(shrink_candidates(True))
    # Tuples shrink to tuples.
    assert all(
        isinstance(candidate, tuple)
        for candidate in shrink_candidates((1, 2, 3))
    )
