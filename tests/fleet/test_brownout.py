"""Brownout controller: hysteresis, residency, enter/exit actions."""

import pytest

from repro.errors import ConfigError
from repro.fleet.brownout import BrownoutConfig, BrownoutController
from repro.sim import CLOCK


def _window(controller, sheds, serves):
    for _ in range(sheds):
        controller.record(shed=True)
    for _ in range(serves):
        controller.record(shed=False)
    controller.evaluate_window()


@pytest.fixture
def config():
    return BrownoutConfig(
        enter_shed_rate=0.10,
        exit_shed_rate=0.02,
        enter_windows=2,
        exit_windows=3,
        window_ns=1000.0,
    )


class TestHysteresis:
    def test_single_bad_window_does_not_enter(self, config):
        with CLOCK.scoped(start_ns=0.0):
            ctl = BrownoutController(config)
            _window(ctl, sheds=5, serves=5)  # 50% shed, one window
            assert not ctl.active
            _window(ctl, sheds=0, serves=10)  # streak broken
            _window(ctl, sheds=5, serves=5)
            assert not ctl.active

    def test_consecutive_bad_windows_enter(self, config):
        with CLOCK.scoped(start_ns=0.0):
            fired = []
            ctl = BrownoutController(config, on_enter=lambda: fired.append("in"))
            _window(ctl, sheds=5, serves=5)
            _window(ctl, sheds=5, serves=5)
            assert ctl.active
            assert fired == ["in"]
            assert ctl.entries == 1

    def test_exit_needs_consecutive_quiet_windows(self, config):
        with CLOCK.scoped(start_ns=0.0):
            fired = []
            ctl = BrownoutController(config, on_exit=lambda: fired.append("out"))
            _window(ctl, sheds=5, serves=5)
            _window(ctl, sheds=5, serves=5)
            assert ctl.active
            _window(ctl, sheds=0, serves=10)
            _window(ctl, sheds=0, serves=10)
            _window(ctl, sheds=1, serves=9)  # 10% > exit rate: streak resets
            _window(ctl, sheds=0, serves=10)
            _window(ctl, sheds=0, serves=10)
            assert ctl.active
            _window(ctl, sheds=0, serves=10)
            assert not ctl.active
            assert fired == ["out"]

    def test_empty_windows_count_toward_exit(self, config):
        # A fully-shed-quiet system (nothing offered at all) must still
        # recover: empty windows read as zero shed rate.
        with CLOCK.scoped(start_ns=0.0):
            ctl = BrownoutController(config)
            _window(ctl, sheds=5, serves=5)
            _window(ctl, sheds=5, serves=5)
            assert ctl.active
            for _ in range(3):
                ctl.evaluate_window()
            assert not ctl.active

    def test_residency_accumulates_sim_time(self, config):
        with CLOCK.scoped(start_ns=0.0):
            ctl = BrownoutController(config)
            _window(ctl, sheds=5, serves=5)
            _window(ctl, sheds=5, serves=5)
            entered_at = CLOCK.now_ns()
            CLOCK.advance_ns(5000.0)
            assert ctl.total_residency_ns() == pytest.approx(
                CLOCK.now_ns() - entered_at
            )
            for _ in range(3):
                ctl.evaluate_window()
            assert not ctl.active
            closed = ctl.total_residency_ns()
            CLOCK.advance_ns(1e6)
            assert ctl.total_residency_ns() == pytest.approx(closed)

    def test_counters_on_transitions(self, config):
        with CLOCK.scoped(start_ns=0.0):
            ctl = BrownoutController(config)
            _window(ctl, sheds=5, serves=5)
            _window(ctl, sheds=5, serves=5)
            for _ in range(3):
                ctl.evaluate_window()
            values = {
                tuple(sorted(m.labels)): m.value
                for m in ctl.registry.metrics()
                if m.name == "fleet.brownout.transitions"
            }
            assert values[(("to", "brownout"),)] == 1
            assert values[(("to", "normal"),)] == 1


class TestConfigValidation:
    def test_rejects_inverted_thresholds(self):
        with pytest.raises(ConfigError):
            BrownoutConfig(enter_shed_rate=0.01, exit_shed_rate=0.05)

    def test_rejects_zero_windows(self):
        with pytest.raises(ConfigError):
            BrownoutConfig(enter_windows=0)
        with pytest.raises(ConfigError):
            BrownoutConfig(window_ns=0.0)
