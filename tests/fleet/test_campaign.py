"""Acceptance: the deterministic overload and failover campaigns.

These are the ISSUE's acceptance criteria, asserted under a fixed seed:
under a 5x arrival spike the fleet sheds rather than queueing
unboundedly (admitted-request spike p99 within 3x the steady p99, shed
rate > 0 during the spike, 0 after recovery), a chaos-killed shard
fails over with zero acknowledged-data loss, and the whole report is
byte-identical across repeat runs.
"""

import json

import pytest

from repro.fleet.harness import FleetConfig, format_report, run_fleet

#: Test-sized campaign: ~2900 arrivals, ~1.5 s host time.
SPIKE_CONFIG = FleetConfig(
    seed=7,
    shards=2,
    steady_rate_rps=17_500.0,
    steady_ns=30e6,
    spike_ns=20e6,
    drain_guard_ns=10e6,
    recovery_ns=30e6,
)

KILL_CONFIG = FleetConfig(
    seed=11,
    shards=3,
    steady_rate_rps=17_500.0,
    steady_ns=30e6,
    spike_ns=20e6,
    drain_guard_ns=10e6,
    recovery_ns=30e6,
    kill_shard_at_ns=45e6,  # mid-spike, the worst moment
)


@pytest.fixture(scope="module")
def spike_reports():
    """The spike campaign run twice (repeat-determinism evidence)."""
    return run_fleet(SPIKE_CONFIG), run_fleet(SPIKE_CONFIG)


@pytest.fixture(scope="module")
def kill_report():
    return run_fleet(KILL_CONFIG)


class TestOverloadContract:
    def test_spike_sheds_instead_of_queueing_unboundedly(self, spike_reports):
        report = spike_reports[0]
        assert report["phases"]["spike"]["shed"] > 0
        assert report["phases"]["spike"]["shed_rate"] > 0.1
        assert report["verdict"]["spike_shed"] is True

    def test_admitted_spike_p99_stays_bounded(self, spike_reports):
        report = spike_reports[0]
        steady_p99 = report["phases"]["steady"]["latency_ns"]["p99"]
        spike_p99 = report["phases"]["spike"]["latency_ns"]["p99"]
        assert steady_p99 > 0
        assert spike_p99 <= 3 * steady_p99

    def test_recovery_is_shed_free(self, spike_reports):
        report = spike_reports[0]
        assert report["phases"]["recovery"]["shed"] == 0
        assert report["verdict"]["recovery_clean"] is True

    def test_steady_phase_never_sheds(self, spike_reports):
        assert spike_reports[0]["phases"]["steady"]["shed"] == 0

    def test_no_acknowledged_data_loss(self, spike_reports):
        verdict = spike_reports[0]["verdict"]
        assert verdict["acked_data_lost"] == 0
        assert verdict["silent_corruptions"] == 0
        assert spike_reports[0]["sweep"]["lost"] == 0
        assert spike_reports[0]["sweep"]["corrupt"] == 0

    def test_brownout_enters_under_spike_and_degrades(self, spike_reports):
        brownout = spike_reports[0]["brownout"]
        assert brownout["entries"] >= 1
        assert brownout["degraded_ops"] > 0
        assert 0.0 < brownout["residency_fraction"] < 1.0

    def test_retry_budget_bounds_amplification(self, spike_reports):
        report = spike_reports[0]
        budget = report["retry_budget"]
        # Retries happened, but the governor refused the storm: retry
        # traffic stayed a small fraction of admitted work.
        assert budget["retries_scheduled"] > 0
        assert budget["fast_fails"] > 0
        served = sum(report["phases"][p]["served"] for p in report["phases"])
        assert budget["spent"] <= 0.2 * served

    def test_per_tenant_fairness(self, spike_reports):
        # Equal shares + equal quotas: shedding must not starve anyone.
        ratio = spike_reports[0]["fairness"]["max_min_goodput_ratio"]
        assert 1.0 <= ratio < 1.5

    def test_availability_burn_dumps_flight_record(self, spike_reports):
        report = spike_reports[0]
        assert report["slo"]["fleet-availability"]["met"] is False
        assert any(
            name.startswith("flight_slo_burn")
            for name in report["flight_records"]
        )

    def test_latency_slos_hold_for_admitted_requests(self, spike_reports):
        # Shed-before-work means what *is* admitted still meets its
        # latency SLO even mid-overload.
        slo = spike_reports[0]["slo"]
        assert slo["fleet-store-latency"]["met"] is True
        assert slo["fleet-load-latency"]["met"] is True

    def test_report_is_byte_identical_across_runs(self, spike_reports):
        first, second = spike_reports
        a = json.dumps(first, indent=2, sort_keys=True)
        b = json.dumps(second, indent=2, sort_keys=True)
        assert a == b

    def test_format_report_renders(self, spike_reports):
        text = format_report(spike_reports[0])
        assert "fleet campaign" in text
        assert "verdict" in text


class TestFailoverContract:
    def test_killed_shard_relocates_with_zero_loss(self, kill_report):
        failover = kill_report["failover"]
        assert failover["relocated"] > 0
        assert failover["lost"] == 0

    def test_zero_acknowledged_loss_through_kill(self, kill_report):
        verdict = kill_report["verdict"]
        assert verdict["acked_data_lost"] == 0
        assert verdict["silent_corruptions"] == 0
        sweep = kill_report["sweep"]
        assert sweep["checked"] > 0
        assert sweep["lost"] == 0
        assert sweep["corrupt"] == 0

    def test_fleet_keeps_serving_after_kill(self, kill_report):
        # Recovery happens on the surviving shards: still shed-free.
        assert kill_report["phases"]["recovery"]["shed"] == 0
        assert kill_report["phases"]["recovery"]["served"] > 0

    def test_kill_campaign_deterministic(self):
        a = json.dumps(run_fleet(KILL_CONFIG), sort_keys=True)
        b = json.dumps(run_fleet(KILL_CONFIG), sort_keys=True)
        assert a == b


class TestReportArtifacts:
    def test_out_dir_writes_report_and_flight_dumps(self, tmp_path):
        config = FleetConfig(
            seed=3,
            shards=2,
            steady_rate_rps=17_500.0,
            steady_ns=8e6,
            spike_ns=8e6,
            drain_guard_ns=4e6,
            recovery_ns=8e6,
        )
        report = run_fleet(config, tmp_path)
        on_disk = json.loads(
            (tmp_path / "fleet_report.json").read_text(encoding="utf-8")
        )
        assert on_disk == json.loads(json.dumps(report))
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.json").exists()
        for name in report["flight_records"]:
            assert (tmp_path / name).exists()
