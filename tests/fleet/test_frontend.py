"""Frontend routing, shard queueing/shedding, and failover relocation."""

import pytest

from repro.errors import OverloadError
from repro.fleet.frontend import FleetFrontend, rendezvous_score
from repro.fleet.shard import FleetRequest
from repro.fleet.admission import TenantQuota
from repro.fleet.traffic import page_for
from repro.sim import CLOCK, EventScheduler


def _quota(name="t0", rate=1e9):
    # Effectively unlimited: these tests exercise queueing, not quotas.
    return TenantQuota(name=name, rate_per_s=rate, burst=1e6)


def _frontend(scheduler, shards=3, queue_depth=8, **kwargs):
    return FleetFrontend(
        tuple(f"shard-{i}" for i in range(shards)),
        (_quota(),),
        scheduler,
        queue_depth=queue_depth,
        **kwargs,
    )


def _store(rid, key, deadline_ns=1e9):
    now = CLOCK.now_ns()
    return FleetRequest(
        rid=rid, tenant="t0", op="store", key=key,
        arrival_ns=now, deadline_ns=now + deadline_ns,
        data=page_for(0, key),
    )


def _load(rid, key, deadline_ns=1e9):
    now = CLOCK.now_ns()
    return FleetRequest(
        rid=rid, tenant="t0", op="load", key=key,
        arrival_ns=now, deadline_ns=now + deadline_ns,
    )


class TestRouting:
    def test_rendezvous_score_is_deterministic(self):
        assert rendezvous_score(42, "shard-1") == rendezvous_score(
            42, "shard-1"
        )
        assert rendezvous_score(42, "shard-1") != rendezvous_score(
            42, "shard-2"
        )

    def test_route_spreads_keys(self):
        with CLOCK.scoped(start_ns=0.0):
            frontend = _frontend(EventScheduler(), shards=4)
            homes = {frontend.route(key) for key in range(200)}
            assert len(homes) == 4

    def test_membership_change_moves_only_victim_keys(self):
        # The rendezvous property failover depends on: killing a shard
        # must not reshuffle keys homed on the survivors.
        with CLOCK.scoped(start_ns=0.0):
            frontend = _frontend(EventScheduler(), shards=4)
            before = {key: frontend.route(key) for key in range(300)}
            frontend.shards["shard-2"].alive = False
            for key, home in before.items():
                if home != "shard-2":
                    assert frontend.route(key) == home
                else:
                    assert frontend.route(key) != "shard-2"


class TestServing:
    def test_store_then_load_round_trips(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler)
            done = []
            frontend.on_complete = done.append
            frontend.submit(_store(0, key=7))
            scheduler.run()
            assert done[0].status == "served"
            assert frontend.placement[7] == done[0].shard
            frontend.submit(_load(1, key=7))
            scheduler.run()
            assert done[1].status == "served"
            assert done[1].result == page_for(0, 7)
            assert 7 not in frontend.placement  # loads are exclusive

    def test_served_latency_includes_queue_wait(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=1)
            done = []
            frontend.on_complete = done.append
            for rid in range(3):
                frontend.submit(_store(rid, key=rid))
            scheduler.run()
            latencies = [r.latency_ns for r in done]
            # One busy server: each request waits behind its elders.
            assert latencies[0] < latencies[1] < latencies[2]

    def test_queue_full_sheds_at_submit_with_hint(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=1, queue_depth=2)
            frontend.submit(_store(0, key=0))
            frontend.submit(_store(1, key=1))
            with pytest.raises(OverloadError) as info:
                frontend.submit(_store(2, key=2))
            assert info.value.reason == "queue-full"
            assert info.value.retry_after_ns > 0

    def test_deadline_shed_before_work(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=1)
            done = []
            frontend.on_complete = done.append
            frontend.submit(_store(0, key=0))
            # Arrives second with a deadline the backlog already blows.
            frontend.submit(_store(1, key=1, deadline_ns=10.0))
            scheduler.run()
            by_rid = {r.rid: r for r in done}
            assert by_rid[0].status == "served"
            assert by_rid[1].status == "shed"
            assert by_rid[1].reason == "deadline"

    def test_dead_shard_sheds_at_submit(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=1)
            frontend.shards["shard-0"].kill()
            with pytest.raises(OverloadError) as info:
                frontend.submit(_store(0, key=0))
            assert info.value.reason == "shard-dead"


class TestFailover:
    def test_kill_relocates_every_acknowledged_page(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=3)
            done = []
            frontend.on_complete = done.append
            for rid in range(30):
                frontend.submit(_store(rid, key=rid))
                scheduler.run()
            assert all(r.status == "served" for r in done)
            victim_keys = [
                key for key, home in frontend.placement.items()
                if home == "shard-0"
            ]
            assert victim_keys  # the hash spreads 30 keys over 3 shards
            stats = frontend.kill_shard("shard-0")
            scheduler.run()
            assert stats["lost"] == 0
            assert stats["relocated"] == len(victim_keys)
            # Every acknowledged page still loads back byte-identical.
            for key in range(30):
                assert frontend.lookup(key) == page_for(0, key)

    def test_killed_shard_queue_fails_over_to_siblings(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = _frontend(scheduler, shards=2)
            done = []
            frontend.on_complete = done.append
            queued = []
            for rid in range(40):
                req = _store(rid, key=rid)
                frontend.submit(req)
                if req.shard == "shard-0":
                    queued.append(req.rid)
                if len(queued) >= 2:
                    break
            assert queued
            frontend.kill_shard("shard-0")
            scheduler.run()
            by_rid = {r.rid: r for r in done}
            for rid in queued:
                assert by_rid[rid].status == "served"
                assert by_rid[rid].shard == "shard-1"

    def test_brownout_switches_codec_for_degradable_only(self):
        with CLOCK.scoped(start_ns=0.0):
            scheduler = EventScheduler()
            frontend = FleetFrontend(
                ("shard-0",),
                (
                    TenantQuota(
                        name="gold", rate_per_s=1e9, burst=1e6, qos="premium"
                    ),
                    TenantQuota(name="best-effort", rate_per_s=1e9, burst=1e6),
                ),
                scheduler,
            )
            frontend._enter_brownout()
            shard = frontend.shards["shard-0"]
            assert shard.degraded
            assert shard.degraded_tenants == frozenset({"best-effort"})
            now = CLOCK.now_ns()
            for rid, tenant in ((0, "gold"), (1, "best-effort")):
                frontend.submit(
                    FleetRequest(
                        rid=rid, tenant=tenant, op="store", key=rid,
                        arrival_ns=now, deadline_ns=now + 1e9,
                        data=page_for(0, rid),
                    )
                )
            scheduler.run()
            assert shard.degraded_ops == 1  # best-effort only
            frontend._exit_brownout()
            assert not shard.degraded
            # Pages stored degraded still load back after exit.
            now = CLOCK.now_ns()
            load = FleetRequest(
                rid=2, tenant="best-effort", op="load", key=1,
                arrival_ns=now, deadline_ns=now + 1e9,
            )
            frontend.submit(load)
            scheduler.run()
            assert load.status == "served"
            assert load.result == page_for(0, 1)
