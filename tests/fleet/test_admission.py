"""Admission control: token buckets, tenant quotas, retry budget."""

import pytest

from repro.errors import ConfigError, OverloadError, RetryBudgetExhausted
from repro.fleet.admission import AdmissionController, TenantQuota, TokenBucket
from repro.fleet.retrybudget import RetryBudget
from repro.sim import CLOCK


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        with CLOCK.scoped(start_ns=0.0):
            bucket = TokenBucket(rate_per_s=1000.0, burst=3.0)
            assert bucket.try_take()
            assert bucket.try_take()
            assert bucket.try_take()
            assert not bucket.try_take()

    def test_refills_at_rate_against_sim_clock(self):
        with CLOCK.scoped(start_ns=0.0):
            # 1000/s = one token per simulated millisecond.
            bucket = TokenBucket(rate_per_s=1000.0, burst=1.0)
            assert bucket.try_take()
            assert not bucket.try_take()
            CLOCK.advance_ns(0.5e6)
            assert not bucket.try_take()
            CLOCK.advance_ns(0.5e6)
            assert bucket.try_take()

    def test_refill_caps_at_burst(self):
        with CLOCK.scoped(start_ns=0.0):
            bucket = TokenBucket(rate_per_s=1000.0, burst=2.0)
            CLOCK.advance_ns(60e9)  # a simulated minute of idle
            assert bucket.tokens == pytest.approx(2.0)

    def test_retry_after_names_the_refill_instant(self):
        with CLOCK.scoped(start_ns=0.0):
            bucket = TokenBucket(rate_per_s=1000.0, burst=1.0)
            assert bucket.try_take()
            hint = bucket.retry_after_ns()
            assert hint == pytest.approx(1e6)
            CLOCK.advance_ns(hint)
            assert bucket.try_take()

    def test_clock_snap_back_does_not_mint_tokens(self):
        # The event scheduler can rewind the shared clock between
        # events; a rewound interval must not be credited twice.
        with CLOCK.scoped(start_ns=0.0):
            bucket = TokenBucket(rate_per_s=1000.0, burst=5.0)
            for _ in range(5):
                assert bucket.try_take()
            CLOCK.advance_ns(2e6)  # earns 2 tokens
            assert bucket.tokens == pytest.approx(2.0)
            CLOCK.set_ns(0.5e6)  # snap-back
            assert bucket.tokens == pytest.approx(2.0)
            CLOCK.set_ns(2e6)  # replaying the same interval: no credit
            assert bucket.tokens == pytest.approx(2.0)

    def test_validates(self):
        with pytest.raises(ConfigError):
            TokenBucket(rate_per_s=0.0, burst=1.0)
        with pytest.raises(ConfigError):
            TokenBucket(rate_per_s=10.0, burst=0.5)


class TestAdmissionController:
    def _controller(self, **overrides):
        kwargs = dict(
            name="t0", rate_per_s=1000.0, burst=2.0, capacity_pages=3
        )
        kwargs.update(overrides)
        return AdmissionController((TenantQuota(**kwargs),))

    def test_admits_within_quota(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = self._controller()
            ctl.admit("t0", "store")  # no raise

    def test_rate_quota_sheds_with_retry_after(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = self._controller()
            ctl.admit("t0", "store")
            ctl.admit("t0", "store")
            with pytest.raises(OverloadError) as info:
                ctl.admit("t0", "store")
            assert info.value.reason == "rate-quota"
            assert info.value.retry_after_ns > 0
            CLOCK.advance_ns(info.value.retry_after_ns)
            ctl.admit("t0", "store")  # tokens exist at the hinted instant

    def test_capacity_quota_sheds_stores_not_loads(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = self._controller(burst=16.0)
            for _ in range(3):
                ctl.on_page_stored("t0")
            with pytest.raises(OverloadError) as info:
                ctl.admit("t0", "store")
            assert info.value.reason == "capacity-quota"
            ctl.admit("t0", "load")  # loads drain capacity; never capped
            ctl.on_page_released("t0")
            ctl.admit("t0", "store")

    def test_shed_counters_by_result(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = self._controller(burst=1.0)
            ctl.admit("t0", "store")
            with pytest.raises(OverloadError):
                ctl.admit("t0", "store")
            snap = {
                (m.name, tuple(sorted(m.labels))): m.value
                for m in ctl.registry.metrics()
            }
            key = ("fleet.admission", (("result", "admitted"), ("tenant", "t0")))
            assert snap[key] == 1
            key = ("fleet.admission", (("result", "shed-rate"), ("tenant", "t0")))
            assert snap[key] == 1

    def test_unknown_tenant_is_config_error(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = self._controller()
            with pytest.raises(ConfigError):
                ctl.admit("nobody", "store")

    def test_degradable_excludes_premium(self):
        with CLOCK.scoped(start_ns=0.0):
            ctl = AdmissionController(
                (
                    TenantQuota(name="gold", rate_per_s=10.0, qos="premium"),
                    TenantQuota(name="b", rate_per_s=10.0),
                    TenantQuota(name="a", rate_per_s=10.0),
                )
            )
            assert ctl.degradable_tenants() == ("a", "b")


class TestRetryBudget:
    def test_spend_drains_then_refuses(self):
        budget = RetryBudget(initial=2.0, earn_fraction=0.0)
        budget.spend()
        budget.spend()
        with pytest.raises(RetryBudgetExhausted) as info:
            budget.spend(retry_after_ns=123.0)
        assert info.value.reason == "retry-budget"
        assert info.value.retry_after_ns == 123.0
        assert budget.spent == 2
        assert budget.refused == 1

    def test_earn_fraction_bounds_retry_amplification(self):
        # 10 admitted requests at earn_fraction=0.1 fund exactly one
        # retry — the governor's no-amplification algebra.
        budget = RetryBudget(initial=0.0, earn_fraction=0.1)
        for _ in range(10):
            budget.earn()
        budget.spend()
        with pytest.raises(RetryBudgetExhausted):
            budget.spend()

    def test_earn_caps(self):
        budget = RetryBudget(initial=0.0, earn_fraction=1.0, cap=3.0)
        for _ in range(100):
            budget.earn()
        assert budget.balance == pytest.approx(3.0)

    def test_validates(self):
        with pytest.raises(ConfigError):
            RetryBudget(earn_fraction=1.5)
        with pytest.raises(ConfigError):
            RetryBudget(initial=10.0, cap=5.0)
