"""CLI entry-point tests."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_is_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DDR5-32Gb" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out and "Dynamic" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_budget(self, capsys):
        assert main(["budget"]) == 0
        assert "locked_fraction" in capsys.readouterr().out

    @pytest.mark.parametrize("name", ["fig1", "fig3", "table1"])
    def test_fast_experiments_run(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_export_writes_figure_data(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "data")]) == 0
        written = {p.name for p in (tmp_path / "data").iterdir()}
        assert written == {
            "fig1.csv", "fig3.json", "fig8.csv", "fig11.json", "fig12.csv",
        }
