"""CLI entry-point tests."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def _report_field(out: str, key: str) -> str:
    """Value of one ``key : value`` line in a rendered replay report."""
    for line in out.splitlines():
        if ":" in line and line.split(":")[0].strip() == key:
            return line.split(":", 1)[1].strip()
    raise AssertionError(f"no {key!r} line in output:\n{out}")


class TestCli:
    def test_list_is_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "available experiments" in out
        for name in EXPERIMENTS:
            assert name in out

    def test_single_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DDR5-32Gb" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "LUTs" in out and "Dynamic" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_budget(self, capsys):
        assert main(["budget"]) == 0
        assert "locked_fraction" in capsys.readouterr().out

    @pytest.mark.parametrize("name", ["fig1", "fig3", "table1"])
    def test_fast_experiments_run(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_export_writes_figure_data(self, tmp_path, capsys):
        assert main(["export", str(tmp_path / "data")]) == 0
        written = {p.name for p in (tmp_path / "data").iterdir()}
        assert written == {
            "fig1.csv", "fig3.json", "fig8.csv", "fig11.json", "fig12.csv",
        }


class TestReplayCli:
    def test_replay_shipped_scenario_exits_clean(self, capsys):
        assert main(["replay", "kv-cache", "--backend", "dfm"]) == 0
        out = capsys.readouterr().out
        assert "scenario" in out and "kv-cache" in out
        assert "amat" in out

    def test_replay_writes_telemetry_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        assert main(
            ["replay", "web-session", "--out", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert str(out_dir / "trace.json") in out
        assert str(out_dir / "metrics.json") in out
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "metrics.json").exists()

    def test_replay_with_validation_checkers(self, capsys):
        assert main(
            ["replay", "kv-cache", "--backend", "cpu", "--validation"]
        ) == 0
        assert _report_field(capsys.readouterr().out, "clean") == "True"

    def test_chaos_replay_smoke(self, capsys):
        # Transient faults heal: replay stays clean under injection.
        assert main(
            ["replay", "chaos-soak", "--fault-profile", "transient",
             "--fault-seed", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert _report_field(out, "clean") == "True"
        assert _report_field(out, "data_loss_events") == "0"

    def test_replay_unknown_scenario_is_usage_error(self, capsys):
        assert main(["replay", "nope"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_replay_unknown_backend_is_usage_error(self, capsys):
        assert main(["replay", "kv-cache", "--backend", "floppy"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_replay_unreadable_trace_file_is_usage_error(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.trace.jsonl.gz"
        bad.write_bytes(b"not a trace")
        assert main(["replay", "--trace-file", str(bad)]) == 2
        assert "unusable trace" in capsys.readouterr().err


class TestRecordCli:
    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        path = tmp_path / "kv.trace.jsonl.gz"
        assert main(
            ["record", "kv-cache", "--trace-file", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert path.exists()
        assert "fingerprint" in out and str(path) in out
        assert main(
            ["replay", "--trace-file", str(path), "--backend", "pipeline"]
        ) == 0

    def test_record_unknown_scenario_is_usage_error(self, capsys):
        assert main(["record", "mystery"]) == 2
        assert "scenario name" in capsys.readouterr().err


class TestIngestCli:
    def test_ingest_writes_manifest(self, tmp_path, capsys):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "a.py").write_text("x = 1\n" * 400)
        (root / "b.md").write_text("words " * 600)
        out_dir = tmp_path / "corpus"
        assert main(["ingest", str(root), "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "source" in out and "text" in out
        assert str(out_dir / "manifest.json") in out
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "source.pages.gz").exists()

    def test_ingest_missing_root_is_usage_error(self, tmp_path, capsys):
        assert main(
            ["ingest", str(tmp_path / "absent"),
             "--out", str(tmp_path / "o")]
        ) == 2
        assert "ingest failed" in capsys.readouterr().err

    def test_ingest_needs_exactly_one_root(self, capsys):
        assert main(["ingest"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_list_mentions_scenario_commands(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "replay" in out and "record" in out and "ingest" in out
        assert "kv-cache" in out


class TestCodectuneCli:
    def _tree(self, tmp_path):
        root = tmp_path / "tree"
        root.mkdir()
        (root / "a.py").write_text(
            "def handler(request):\n    return request.body\n" * 200
        )
        (root / "b.md").write_text("far memory compresses well " * 400)
        return root

    def test_codectune_trains_and_persists(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        out_path = tmp_path / "tables.json"
        assert main(
            ["codectune", str(root), "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "source" in out and "text" in out
        assert str(out_path) in out
        from repro.compression.static_tables import StaticTableRegistry

        registry = StaticTableRegistry.load(out_path)
        assert "source" in registry and "text" in registry
        entry = registry.get("source")
        assert entry.num_pages > 0 and entry.window_size >= 1024

    def test_codectune_accepts_preingested_corpus(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        corpus = tmp_path / "corpus"
        assert main(["ingest", str(root), "--out", str(corpus)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "tables.json"
        assert main(
            ["codectune", str(corpus), "--out", str(out_path)]
        ) == 0
        assert "source" in capsys.readouterr().out
        assert out_path.exists()

    def test_codectune_rejects_extra_targets(self, capsys):
        assert main(["codectune", "a", "b"]) == 2
        assert "at most one" in capsys.readouterr().err

    def test_codectune_empty_tree_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(
            ["codectune", str(empty), "--out", str(tmp_path / "t.json")]
        ) == 2
        assert "no corpus domains" in capsys.readouterr().err

    def test_list_mentions_codectune(self, capsys):
        assert main([]) == 0
        assert "codectune" in capsys.readouterr().out


class TestSloCli:
    def test_slo_prints_percentiles_and_summary(self, capsys):
        assert main(["slo", "web-session"]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out
        for column in ("p50_us", "p99_us", "p999_us"):
            assert column in out
        # Rows exist per op class x tier.
        assert "pipeline" in out and "cpu-zswap" in out
        assert "slo summary" in out
        assert "store-latency" in out
        assert "load-latency" in out
        assert "availability" in out

    def test_slo_scenario_flag_form(self, capsys):
        assert main(["slo", "--scenario", "web-session"]) == 0
        assert "slo summary" in capsys.readouterr().out

    def test_slo_writes_report_json(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "slo"
        assert main(
            ["slo", "web-session", "--out", str(out_dir)]
        ) == 0
        assert str(out_dir / "slo_report.json") in capsys.readouterr().out
        doc = json.loads((out_dir / "slo_report.json").read_text())
        assert doc["scenario"] == "web-session"
        assert doc["slo"]["summary"]
        assert doc["latency_percentiles"]
        assert (out_dir / "trace.json").exists()
        assert (out_dir / "metrics.json").exists()

    def test_slo_fail_on_violation_gates_exit_code(self, capsys):
        # The default objectives are deliberately tight enough that the
        # demotion cascades in web-session burn the store budget.
        code = main(
            ["slo", "web-session", "--fail-on-violation"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATED" in out

    def test_slo_unknown_scenario_is_usage_error(self, capsys):
        assert main(["slo", "nope"]) == 2
        assert "scenario name" in capsys.readouterr().err

    def test_slo_unknown_backend_is_usage_error(self, capsys):
        assert main(["slo", "web-session", "--backend", "tape"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_list_mentions_slo(self, capsys):
        assert main([]) == 0
        assert "repro slo" in capsys.readouterr().out
