"""Cross-validation: the analytic LLC-sharing model vs the functional
LRU cache simulator.

The Fig. 11 pipeline trusts :func:`shared_llc_shares` to predict how a
shared cache divides between streaming and reusing owners. These tests
drive the *functional* set-associative simulator with workload mixes and
check that the analytic model's share predictions land in the right
neighborhood — grounding the closed form in mechanism.
"""

import numpy as np
import pytest

from repro.interference.cache import SetAssociativeCache, shared_llc_shares


def _drive(cache, working_sets, pressures, accesses=60_000, seed=0):
    """Interleave owners' accesses proportionally to their pressures."""
    rng = np.random.default_rng(seed)
    owners = list(working_sets)
    weights = np.array([pressures[o] for o in owners], dtype=float)
    weights /= weights.sum()
    choices = rng.choice(len(owners), size=accesses, p=weights)
    positions = rng.random(accesses)
    for owner_index, position in zip(choices, positions):
        owner = owners[owner_index]
        base, size = working_sets[owner]
        line = int(position * (size // 64))
        cache.access(base + line * 64, owner=owner)
    return cache


class TestAnalyticVsFunctional:
    def test_fitting_mix_everyone_keeps_their_footprint(self):
        """Total demand below capacity: both model and simulator give
        every owner (approximately) its whole working set."""
        cache = SetAssociativeCache(capacity_bytes=1 << 20, ways=16)
        working_sets = {
            "a": (0, 256 << 10),
            "b": (1 << 30, 384 << 10),
        }
        pressures = {"a": 1.0, "b": 1.0}
        _drive(cache, working_sets, pressures)
        occupancy = cache.occupancy_by_owner()
        resident_a = occupancy.get("a", 0) * 64
        resident_b = occupancy.get("b", 0) * 64
        assert resident_a > 0.85 * (256 << 10)
        assert resident_b > 0.85 * (384 << 10)
        shares = shared_llc_shares(1.0, [0.25, 0.375], [1.0, 1.0])
        assert shares == [0.25, 0.375]

    def test_oversubscribed_shares_follow_pressure(self):
        """Two over-large working sets: the heavier-pressure owner holds
        proportionally more of the cache, as the model predicts."""
        capacity = 512 << 10
        cache = SetAssociativeCache(capacity_bytes=capacity, ways=16)
        working_sets = {
            "light": (0, 2 << 20),
            "heavy": (1 << 30, 2 << 20),
        }
        pressures = {"light": 1.0, "heavy": 3.0}
        _drive(cache, working_sets, pressures, accesses=120_000)
        occupancy = cache.occupancy_by_owner()
        measured_heavy_share = occupancy["heavy"] / (
            occupancy["light"] + occupancy["heavy"]
        )
        predicted = shared_llc_shares(0.5, [2.0, 2.0], [1.0, 3.0])
        predicted_heavy_share = predicted[1] / sum(predicted)
        assert measured_heavy_share == pytest.approx(
            predicted_heavy_share, abs=0.08
        )

    def test_streaming_antagonist_share(self):
        """A streaming owner (huge footprint, high insertion rate) vs a
        reuser: the reuser's measured residency shrinks toward the
        model's apportioned share."""
        capacity = 256 << 10
        cache = SetAssociativeCache(capacity_bytes=capacity, ways=16)
        working_sets = {
            "reuser": (0, 192 << 10),
            "stream": (1 << 30, 16 << 20),
        }
        pressures = {"reuser": 1.0, "stream": 2.0}
        _drive(cache, working_sets, pressures, accesses=150_000)
        resident_kib = cache.resident_bytes("reuser") / 1024
        predicted = shared_llc_shares(
            0.25, [0.1875, 16.0], [1.0, 2.0]
        )
        predicted_kib = predicted[0] * 1024
        # Within a factor-band: the analytic model is first-order.
        assert 0.5 * predicted_kib <= resident_kib <= 1.8 * predicted_kib

    def test_miss_rate_rises_when_share_shrinks(self):
        """The MRC mechanism behind SpecProfile.mpki_at_share."""
        def miss_rate_with_antagonist(antagonist_pressure):
            cache = SetAssociativeCache(capacity_bytes=256 << 10, ways=16)
            working_sets = {
                "app": (0, 192 << 10),
                "ant": (1 << 30, 8 << 20),
            }
            pressures = {"app": 1.0, "ant": antagonist_pressure}
            _drive(cache, working_sets, pressures, accesses=120_000, seed=3)
            return cache.per_owner["app"].miss_rate

        quiet = miss_rate_with_antagonist(0.2)
        loud = miss_rate_with_antagonist(4.0)
        assert loud > quiet
