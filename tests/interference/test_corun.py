"""Co-run simulator tests: the Fig. 11 relationships."""

import pytest

from repro.errors import ConfigError
from repro.interference.bandwidth import MemorySystem
from repro.interference.corun import (
    AntagonistConfig,
    CorunConfig,
    SfmMode,
    simulate_corun,
    xfm_improvement_pct,
)


@pytest.fixture(scope="module")
def results():
    config = CorunConfig()
    return {mode: simulate_corun(config, mode) for mode in SfmMode}


class TestFig11Relationships:
    def test_xfm_eliminates_spec_interference(self, results):
        assert results[SfmMode.XFM].spec_max_degradation_pct == pytest.approx(0.0)

    def test_xfm_preserves_sfm_throughput(self, results):
        assert results[SfmMode.XFM].sfm_throughput_ratio == pytest.approx(1.0)

    def test_baseline_degrades_both_sides(self, results):
        baseline = results[SfmMode.BASELINE_CPU]
        assert 0.0 < baseline.spec_max_degradation_pct <= 10.0
        # §8: SFM throughput degrades 5-20% under co-run.
        assert 3.0 <= baseline.sfm_degradation_pct <= 22.0

    def test_lockout_hurts_spec_more_than_baseline(self, results):
        """§8: Host-Lockout-NMA suffers the higher SPEC penalty (~15%)."""
        lockout = results[SfmMode.HOST_LOCKOUT_NMA]
        baseline = results[SfmMode.BASELINE_CPU]
        assert (
            lockout.spec_max_degradation_pct
            > baseline.spec_max_degradation_pct
        )
        assert 8.0 <= lockout.spec_max_degradation_pct <= 20.0

    def test_lockout_preserves_sfm_throughput(self, results):
        assert results[SfmMode.HOST_LOCKOUT_NMA].sfm_throughput_ratio == (
            pytest.approx(1.0)
        )

    def test_combined_ordering(self, results):
        combined = {
            mode: result.combined_throughput()
            for mode, result in results.items()
        }
        assert combined[SfmMode.XFM] > combined[SfmMode.BASELINE_CPU]
        assert combined[SfmMode.XFM] > combined[SfmMode.HOST_LOCKOUT_NMA]

    def test_improvement_in_paper_range(self):
        """Abstract: 5-27% combined improvement, depending on mix/baseline."""
        improvements = [
            xfm_improvement_pct(CorunConfig(), SfmMode.BASELINE_CPU),
            xfm_improvement_pct(CorunConfig(), SfmMode.HOST_LOCKOUT_NMA),
        ]
        assert all(2.0 <= x <= 30.0 for x in improvements)
        assert max(improvements) >= 5.0


class TestScaling:
    def test_heavier_antagonist_hurts_more(self):
        light = CorunConfig(
            antagonist=AntagonistConfig(promotion_rate=0.05)
        )
        heavy = CorunConfig(
            antagonist=AntagonistConfig(promotion_rate=0.30)
        )
        light_result = simulate_corun(light, SfmMode.BASELINE_CPU)
        heavy_result = simulate_corun(heavy, SfmMode.BASELINE_CPU)
        assert (
            heavy_result.spec_mean_degradation_pct
            > light_result.spec_mean_degradation_pct
        )

    def test_memory_bound_jobs_hit_hardest_by_lockout(self):
        config = CorunConfig(workloads=("lbm", "gcc"))
        result = simulate_corun(config, SfmMode.HOST_LOCKOUT_NMA)
        by_name = {w.name: w.degradation_pct for w in result.workloads}
        assert by_name["lbm"] > by_name["gcc"]

    def test_antagonist_swap_rate(self):
        ant = AntagonistConfig(sfm_capacity_gb=512.0, promotion_rate=0.14)
        assert ant.swap_gbps == pytest.approx(512 * 0.14 / 60)
        assert ant.channel_traffic_gbps > 2 * ant.swap_gbps

    def test_memory_system_validation(self):
        with pytest.raises(ConfigError):
            MemorySystem(num_channels=0)

    def test_lockout_inflation(self):
        memory = MemorySystem()
        assert memory.lockout_inflation(0.0) == 1.0
        assert memory.lockout_inflation(0.5) == 2.0
        with pytest.raises(ConfigError):
            memory.lockout_inflation(1.0)

    def test_loaded_latency_flat_then_rising(self):
        memory = MemorySystem()
        assert memory.loaded_latency(10.0) == memory.idle_latency_ns
        assert memory.loaded_latency(150.0) > memory.idle_latency_ns
