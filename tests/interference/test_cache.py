"""Cache substrate tests: functional LRU cache + analytic apportioning."""

import pytest

from repro.errors import ConfigError
from repro.interference.cache import SetAssociativeCache, shared_llc_shares


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024, ways=4)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.stats.hits == 1

    def test_capacity_and_geometry(self):
        cache = SetAssociativeCache(
            capacity_bytes=1024 * 1024, line_bytes=64, ways=16
        )
        assert cache.capacity_bytes == 1024 * 1024
        assert cache.num_sets == 1024

    def test_geometry_validated(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(capacity_bytes=1000, line_bytes=64, ways=16)

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(
            capacity_bytes=2 * 64, line_bytes=64, ways=2
        )  # one set, two ways
        cache.access(0)
        cache.access(64)
        cache.access(0)        # 0 becomes MRU
        cache.access(2 * 64)   # evicts 64 (LRU)
        assert cache.access(0)
        assert not cache.access(64)

    def test_working_set_fitting_has_high_hit_rate(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 1024)
        addresses = [i * 64 for i in range(512)]  # 32 KiB working set
        for _ in range(4):
            for addr in addresses:
                cache.access(addr)
        assert cache.stats.miss_rate < 0.3

    def test_streaming_evicts_reuser(self):
        """The O4 mechanism: a streaming owner steals the reuser's lines."""
        cache = SetAssociativeCache(capacity_bytes=16 * 1024, ways=4)
        reuse_set = [i * 64 for i in range(128)]  # 8 KiB, fits alone
        for _ in range(3):
            for addr in reuse_set:
                cache.access(addr, owner="app")
        miss_before = cache.per_owner["app"].miss_rate
        # Antagonist streams 256 KiB through the cache.
        for i in range(4096):
            cache.access((1 << 20) + i * 64, owner="antagonist")
        for addr in reuse_set:
            cache.access(addr, owner="app")
        assert cache.per_owner["app"].misses > len(reuse_set) * miss_before
        occupancy = cache.occupancy_by_owner()
        assert occupancy.get("antagonist", 0) > 0

    def test_resident_bytes(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 1024)
        cache.access(0, owner="app")
        assert cache.resident_bytes("app") == 64


class TestSharedLlcShares:
    def test_fits_all_when_capacity_suffices(self):
        shares = shared_llc_shares(100.0, [10.0, 20.0], [1.0, 1.0])
        assert shares == [10.0, 20.0]

    def test_proportional_when_oversubscribed(self):
        shares = shared_llc_shares(30.0, [100.0, 100.0], [1.0, 2.0])
        assert shares[0] == pytest.approx(10.0)
        assert shares[1] == pytest.approx(20.0)

    def test_capped_competitor_releases_slack(self):
        shares = shared_llc_shares(30.0, [5.0, 100.0], [1.0, 1.0])
        assert shares[0] == 5.0
        assert shares[1] == pytest.approx(25.0)

    def test_share_never_exceeds_footprint(self):
        shares = shared_llc_shares(
            22.0, [24.0, 12.0, 3.0, 22.0], [5.0, 11.0, 0.5, 3.2]
        )
        for share, footprint in zip(shares, [24.0, 12.0, 3.0, 22.0]):
            assert share <= footprint + 1e-9

    def test_total_bounded_by_capacity(self):
        shares = shared_llc_shares(
            22.0, [24.0, 12.0, 9.0, 22.0], [5.0, 11.0, 9.0, 3.2]
        )
        assert sum(shares) <= 22.0 + 1e-9

    def test_zero_pressure_splits_evenly(self):
        shares = shared_llc_shares(10.0, [20.0, 20.0], [0.0, 0.0])
        assert shares == [5.0, 5.0]

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ConfigError):
            shared_llc_shares(10.0, [1.0], [1.0, 2.0])
        with pytest.raises(ConfigError):
            shared_llc_shares(10.0, [1.0], [-1.0])
