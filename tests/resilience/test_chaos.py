"""Chaos harness: zero silent corruption, deterministic reports, CLI."""

import json
import random
import subprocess
import sys

import pytest

from repro.errors import ConfigError
from repro.resilience.chaos import (
    ChaosConfig,
    PROFILES,
    format_report,
    run_chaos,
)
from repro.resilience.faults import FaultInjector
from repro.validation.generators import gen_fault_plan


class TestCampaigns:
    def test_transient_profile_is_loss_free(self):
        """Every fault in the transient profile must be healed: no
        poison, no data loss, no silent corruption."""
        report = run_chaos(ChaosConfig(seed=3, ops=300))
        assert report["verdict"]["clean"]
        assert report["verdict"]["silent_corruptions"] == 0
        assert report["recovery"]["poison_pages"] == 0
        assert report["recovery"]["data_loss_events"] == 0
        assert report["faults"]["total_fires"] > 0

    def test_full_profile_detects_every_corruption(self):
        """Media corruption may lose pages — but every loss must be an
        explicit detection, never wrong bytes."""
        report = run_chaos(
            ChaosConfig(seed=7, ops=300, profile="full")
        )
        assert report["verdict"]["silent_corruptions"] == 0
        assert report["verdict"]["all_detections_accounted"]
        assert report["faults"]["by_site"].get("zpool.media_corruption")
        # Detections happened and were resolved one way or the other.
        recovery = report["recovery"]
        assert recovery["corruptions_detected"] > 0
        assert (
            recovery["corruptions_recovered"] + recovery["poison_pages"] > 0
        )

    def test_same_seed_identical_report(self):
        config = ChaosConfig(seed=11, ops=200, profile="full")
        a = run_chaos(config)
        b = run_chaos(config)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_different_seed_different_faults(self):
        a = run_chaos(ChaosConfig(seed=1, ops=200, profile="full"))
        b = run_chaos(ChaosConfig(seed=2, ops=200, profile="full"))
        assert a["faults"] != b["faults"]

    def test_report_files_written_and_deterministic(self, tmp_path):
        config = ChaosConfig(seed=5, ops=150)
        run_chaos(config, tmp_path / "a")
        run_chaos(config, tmp_path / "b")
        for name in ("chaos_report.json", "trace.json", "metrics.json"):
            first = (tmp_path / "a" / name).read_bytes()
            second = (tmp_path / "b" / name).read_bytes()
            assert first == second, name
        report = json.loads(
            (tmp_path / "a" / "chaos_report.json").read_text()
        )
        assert report["schema"] == 1

    def test_poison_auto_dumps_flight_records(self, tmp_path):
        """The full profile's unhealed corruptions trip the flight
        recorder: each poisoned page leaves a ``flight_poison*.json``
        black box in the out dir, and the report lists the filenames."""
        report = run_chaos(
            ChaosConfig(seed=7, ops=300, profile="full"), tmp_path
        )
        assert report["recovery"]["poison_pages"] > 0
        names = report["flight_records"]
        assert names and names[0] == "flight_poison.json"
        for name in names:
            doc = json.loads((tmp_path / name).read_text())
            assert doc["reason"] == "poison"
            assert doc["events"]

    def test_flight_record_names_stay_in_report_without_out_dir(self):
        report = run_chaos(ChaosConfig(seed=7, ops=300, profile="full"))
        assert report["flight_records"]
        # Deterministic: same seed, same dump names.
        again = run_chaos(ChaosConfig(seed=7, ops=300, profile="full"))
        assert report["flight_records"] == again["flight_records"]

    def test_validation_hooks_hold_under_chaos(self):
        """The invariant checkers must pass while faults fire (the CI
        chaos-smoke gate)."""
        report = run_chaos(ChaosConfig(seed=3, ops=200, validate=True))
        assert report["verdict"]["clean"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            ChaosConfig(profile="nonsense")

    def test_format_report_mentions_verdict(self):
        report = run_chaos(ChaosConfig(seed=3, ops=100))
        text = format_report(report)
        assert "verdict" in text
        assert "silent_corruptions=0" in text


class TestFuzzedFaultPlans:
    """Satellite: seeded FaultPlan generation feeding the chaos loop."""

    def test_generated_plans_are_reproducible(self):
        for case in range(10):
            a = gen_fault_plan(random.Random(case))
            b = gen_fault_plan(random.Random(case))
            assert a == b
            assert a.specs  # never an empty schedule
            FaultInjector(a)  # always installable

    def test_fuzzed_campaigns_never_corrupt_silently(self):
        """A handful of randomly-shaped fault plans over the transient
        workload: whatever fires, silent corruption stays zero."""
        from repro.resilience.chaos import _drive_campaign
        from repro.resilience.faults import fault_injection
        from repro.telemetry.session import TelemetrySession

        for case in range(4):
            plan = gen_fault_plan(random.Random(1000 + case))
            config = ChaosConfig(seed=plan.seed & 0xFFFF, ops=120)
            injector = FaultInjector(plan)
            session = TelemetrySession()
            with session, fault_injection(injector):
                report = _drive_campaign(config, injector, session)
            assert report["verdict"]["silent_corruptions"] == 0, plan
            assert report["verdict"]["all_detections_accounted"], plan


class TestCli:
    def test_chaos_subcommand_smoke(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro", "chaos",
                "--seed", "3", "--ops", "150",
                "--profile", "transient",
                "--validation", "--fail-on-loss",
                "--out", str(tmp_path / "chaos"),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "chaos campaign" in result.stdout
        assert (tmp_path / "chaos" / "chaos_report.json").exists()

    def test_profiles_registry(self):
        assert set(PROFILES) == {"transient", "full"}
        # Transient is strictly a subset of full (minus media faults).
        transient_sites = {s.site for s in PROFILES["transient"]}
        full_sites = {s.site for s in PROFILES["full"]}
        assert transient_sites < full_sites
        assert "zpool.media_corruption" not in transient_sites
