"""Verified recovery: injected corruption is healed or surfaced loudly."""

import pytest

from repro.core.backend import XfmBackend
from repro.dfm.backend import DfmBackend
from repro.errors import (
    CorruptedBlobError,
    DeviceFault,
    TierUnavailableError,
)
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, fault_injection
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page


def _compressible(index: int = 0) -> bytes:
    unit = bytes([(index * 7 + j) % 13 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def _plan(site: str, **kwargs) -> FaultPlan:
    return FaultPlan(seed=1, specs=(FaultSpec(site, **kwargs),))


class TestZpoolCorruption:
    def test_transient_read_corruption_recovered(self):
        """A corrupted *copy* (media intact) fails the digest check and
        is healed by re-reading — the caller sees correct bytes."""
        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x1000, data=_compressible())
        assert backend.swap_out(page).accepted
        plan = _plan(
            faults.ZPOOL_READ_CORRUPTION, probability=1.0, max_fires=1
        )
        with fault_injection(plan):
            data = backend.swap_in(page)
        assert data == _compressible()
        assert backend.stats.corruptions_detected == 1
        assert backend.stats.corruptions_recovered == 1
        assert backend.stats.poison_pages == 0

    def test_persistent_media_corruption_poisons(self):
        """A corrupted *slab* cannot be healed: the page is poisoned and
        the caller gets an explicit CorruptedBlobError — never silent
        wrong bytes."""
        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x2000, data=_compressible())
        assert backend.swap_out(page).accepted
        plan = _plan(
            faults.ZPOOL_MEDIA_CORRUPTION, probability=1.0, max_fires=1
        )
        with fault_injection(plan):
            with pytest.raises(CorruptedBlobError) as excinfo:
                backend.swap_in(page)
        assert excinfo.value.vaddr == 0x2000
        assert backend.stats.poison_pages == 1
        assert backend.stats.corruptions_detected >= 1
        # The poisoned entry is gone: its pool space was reclaimed.
        assert not backend.contains(0x2000)


class TestSpmReadbackVerification:
    def test_spm_flip_on_swap_out_recovered(self):
        """A bit flip observed reading the staged blob back fails the
        digest check; the re-read heals it and the stored blob is the
        true one (loss-free: the source data still exists)."""
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x3000, data=_compressible(1))
        plan = _plan(faults.SPM_READ_FLIP, probability=1.0, max_fires=1)
        with fault_injection(plan):
            assert backend.swap_out(page).accepted
        assert backend.stats.corruptions_detected >= 1
        assert backend.stats.corruptions_recovered >= 1
        assert backend.swap_in(page) == _compressible(1)

    def test_spm_flip_on_promote_recovered(self):
        """Prefetch promotion decompresses on the NMA and stages the
        page in SPM; a flip on the staged readback is verified away."""
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x4000, data=_compressible(2))
        assert backend.swap_out(page).accepted
        plan = _plan(faults.SPM_READ_FLIP, probability=1.0, max_fires=1)
        with fault_injection(plan):
            assert backend.promote(page) == _compressible(2)
        assert backend.stats.corruptions_detected >= 1
        assert backend.stats.corruptions_recovered >= 1


class TestNmaAndDriverFaults:
    def test_nma_timeout_exhaustion_falls_back_to_cpu(self):
        """Persistent accelerator stalls degrade to the CPU path with
        the device_fault reason — data is never lost."""
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x5000, data=_compressible(3))
        plan = _plan(faults.NMA_TIMEOUT, probability=1.0)
        with fault_injection(plan):
            assert backend.swap_out(page).accepted
        assert backend.stats.fallbacks_device_fault >= 1
        assert backend.stats.device_faults >= 1
        assert backend.stats.cpu_fallback_compressions >= 1
        assert backend.swap_in(page) == _compressible(3)

    def test_lost_doorbell_exhaustion_falls_back(self):
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x6000, data=_compressible(4))
        plan = _plan(faults.DRIVER_LOST_DOORBELL, probability=1.0)
        with fault_injection(plan):
            assert backend.swap_out(page).accepted
        assert backend.stats.fallbacks_device_fault >= 1
        assert backend.swap_in(page) == _compressible(4)

    def test_register_corruption_detected_and_reread(self):
        """A corrupted MMIO read is implausible by construction; the
        driver detects it, re-reads once, and proceeds."""
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        plan = _plan(
            faults.DRIVER_REG_CORRUPTION, probability=1.0, max_fires=1
        )
        with fault_injection(plan):
            capacity = backend.driver.sp_capacity()
        assert capacity == backend.nma.spm.capacity_bytes
        assert backend.driver.stats.corrupt_register_reads == 1
        assert backend.driver.stats.device_faults == 0

    def test_register_corruption_persistent_raises_device_fault(self):
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        plan = _plan(faults.DRIVER_REG_CORRUPTION, probability=1.0)
        with fault_injection(plan):
            with pytest.raises(DeviceFault):
                backend.driver.sp_capacity()
        assert backend.driver.stats.device_faults == 1


class TestDfmLinkErrors:
    def test_store_link_exhaustion_rejects_without_loss(self):
        backend = DfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x7000, data=_compressible(5))
        plan = _plan(faults.DFM_LINK_ERROR, probability=1.0)
        with fault_injection(plan):
            outcome = backend.swap_out(page)
        assert not outcome.accepted
        assert outcome.reason == "link-error"
        # Nothing was written; the page is still resident.
        assert page.data == _compressible(5)
        assert not page.swapped
        assert backend.stats.transient_retries >= 2

    def test_load_link_exhaustion_is_retryable(self):
        backend = DfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x8000, data=_compressible(6))
        assert backend.swap_out(page).accepted
        plan = _plan(faults.DFM_LINK_ERROR, probability=1.0)
        with fault_injection(plan):
            with pytest.raises(TierUnavailableError):
                backend.swap_in(page)
        # The page is still stored; the call succeeds once the link is up.
        assert backend.contains(0x8000)
        assert backend.swap_in(page) == _compressible(6)

    def test_transient_link_error_heals_inside_retry(self):
        backend = DfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0x9000, data=_compressible(7))
        plan = _plan(faults.DFM_LINK_ERROR, probability=1.0, max_fires=1)
        with fault_injection(plan):
            assert backend.swap_out(page).accepted
        assert backend.stats.transient_retries == 1
        assert backend.swap_in(page) == _compressible(7)

    def test_latency_spike_only_slows_the_link(self):
        backend = DfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0xA000, data=_compressible(8))
        plan = _plan(
            faults.DFM_LATENCY_SPIKE, probability=1.0, magnitude=10.0
        )
        with fault_injection(plan):
            assert backend.swap_out(page).accepted
            busy_faulted = backend.link_busy_s
        assert backend.swap_in(page) == _compressible(8)
        delta_normal = backend.link_busy_s - busy_faulted
        assert busy_faulted == pytest.approx(10.0 * delta_normal)
