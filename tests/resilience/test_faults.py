"""Fault-injection core: seeded determinism, gating, zero-cost default."""

import pytest

from repro.errors import ConfigError
from repro.resilience import faults
from repro.resilience.faults import (
    ALL_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_bytes,
    fault_injection,
)


def _drive(injector, site, calls):
    return [injector.evaluate(site) is not None for _ in range(calls)]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(
            seed=42,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=0.3),),
        )
        first = _drive(FaultInjector(plan), faults.DFM_LINK_ERROR, 200)
        second = _drive(FaultInjector(plan), faults.DFM_LINK_ERROR, 200)
        assert first == second
        assert any(first)

    def test_different_seed_different_schedule(self):
        spec = FaultSpec(faults.DFM_LINK_ERROR, probability=0.3)
        a = _drive(
            FaultInjector(FaultPlan(seed=1, specs=(spec,))),
            faults.DFM_LINK_ERROR, 200,
        )
        b = _drive(
            FaultInjector(FaultPlan(seed=2, specs=(spec,))),
            faults.DFM_LINK_ERROR, 200,
        )
        assert a != b

    def test_sites_are_independent_streams(self):
        """Adding a site to the plan must not shift another site's
        schedule (per-site RNGs)."""
        link = FaultSpec(faults.DFM_LINK_ERROR, probability=0.3)
        nma = FaultSpec(faults.NMA_TIMEOUT, probability=0.3)
        alone = _drive(
            FaultInjector(FaultPlan(seed=9, specs=(link,))),
            faults.DFM_LINK_ERROR, 100,
        )
        both_injector = FaultInjector(FaultPlan(seed=9, specs=(link, nma)))
        interleaved = []
        for _ in range(100):
            interleaved.append(
                both_injector.evaluate(faults.DFM_LINK_ERROR) is not None
            )
            both_injector.evaluate(faults.NMA_TIMEOUT)
        assert alone == interleaved

    def test_event_salts_are_stable_and_distinct(self):
        plan = FaultPlan(
            seed=3, specs=(FaultSpec(faults.SPM_READ_FLIP, probability=1.0),)
        )
        injector = FaultInjector(plan)
        salts = [
            injector.evaluate(faults.SPM_READ_FLIP).salt for _ in range(4)
        ]
        replay = FaultInjector(plan)
        assert salts == [
            replay.evaluate(faults.SPM_READ_FLIP).salt for _ in range(4)
        ]
        assert len(set(salts)) == len(salts)


class TestGating:
    def test_skip_calls_and_max_fires(self):
        plan = FaultPlan(
            seed=5,
            specs=(
                FaultSpec(
                    faults.NMA_TIMEOUT,
                    probability=1.0,
                    skip_calls=3,
                    max_fires=2,
                ),
            ),
        )
        injector = FaultInjector(plan)
        fired = _drive(injector, faults.NMA_TIMEOUT, 10)
        assert fired == [False] * 3 + [True, True] + [False] * 5
        assert injector.fires[faults.NMA_TIMEOUT] == 2
        assert injector.calls[faults.NMA_TIMEOUT] == 10

    def test_unplanned_site_never_fires(self):
        injector = FaultInjector(FaultPlan(seed=1))
        assert injector.evaluate(faults.DFM_LINK_ERROR) is None
        assert injector.total_fires == 0

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("not.a.site", probability=0.5)

    def test_duplicate_sites_rejected(self):
        spec = FaultSpec(faults.NMA_TIMEOUT, probability=0.5)
        with pytest.raises(ConfigError):
            FaultPlan(seed=1, specs=(spec, spec))

    def test_probability_validated(self):
        with pytest.raises(ConfigError):
            FaultSpec(faults.NMA_TIMEOUT, probability=1.5)


class TestGlobalSwitch:
    def test_disabled_by_default(self):
        assert not faults.injection_enabled()
        assert faults.fire(faults.DFM_LINK_ERROR) is None

    def test_context_manager_scopes_injection(self):
        plan = FaultPlan(
            seed=1, specs=(FaultSpec(faults.NMA_TIMEOUT, probability=1.0),)
        )
        with fault_injection(plan) as injector:
            assert faults.injection_enabled()
            assert faults.fire(faults.NMA_TIMEOUT) is not None
            assert faults.current_injector() is injector
        assert not faults.injection_enabled()
        assert faults.current_injector() is None


class TestCorruptBytes:
    def test_flips_exactly_one_bit(self):
        data = bytes(range(64))
        corrupted = corrupt_bytes(data, salt=12345)
        assert corrupted != data
        diff = [a ^ b for a, b in zip(data, corrupted)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_deterministic_in_salt(self):
        data = b"hello world" * 10
        assert corrupt_bytes(data, 99) == corrupt_bytes(data, 99)
        assert corrupt_bytes(data, 99) != corrupt_bytes(data, 100)

    def test_empty_input_unchanged(self):
        assert corrupt_bytes(b"", 7) == b""


def test_all_sites_registry_is_complete():
    """Every documented site constant is in ALL_SITES exactly once."""
    assert len(set(ALL_SITES)) == len(ALL_SITES) == 11
