"""Per-reason CPU-fallback counters under *injected* resource
exhaustion must reconcile 1:1 with the ``cpu_fallback`` trace instants
(satellite of the resilience issue: the injected variant of the
telemetry suite's organic-pressure reconciliation test)."""

from repro.core.backend import XfmBackend
from repro.resilience import faults
from repro.resilience.faults import FaultPlan, FaultSpec, fault_injection
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import reasons, trace


def _compressible(index: int) -> bytes:
    unit = bytes([(index * 7 + j) % 13 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def _run_with_injected_exhaustion(site: str, count: int = 8):
    """Swap ``count`` pages while every driver submit hits ``site``."""
    backend = XfmBackend(capacity_bytes=128 * PAGE_SIZE)
    plan = FaultPlan(seed=11, specs=(FaultSpec(site, probability=1.0),))
    with trace.tracing() as ring:
        with fault_injection(plan):
            for index in range(count):
                page = Page(
                    vaddr=index * PAGE_SIZE, data=_compressible(index)
                )
                assert backend.swap_out(page).accepted
    return backend, ring


def _fallback_reasons(ring):
    return [
        event.args["reason"]
        for event in ring.events()
        if event.name == "cpu_fallback"
    ]


class TestInjectedExhaustionReconciliation:
    def test_injected_spm_full_counters_match_trace(self):
        backend, ring = _run_with_injected_exhaustion(
            faults.DRIVER_SPM_FULL
        )
        traced = _fallback_reasons(ring)
        assert traced.count(reasons.SPM_FULL) == 8
        assert backend.stats.fallbacks_spm_full == 8
        assert backend.stats.cpu_fallback_compressions == 8
        assert backend.stats.offloaded_compressions == 0
        # Every submit rejection is visible on the driver too.
        assert backend.driver.stats.rejected_submissions == 8

    def test_injected_queue_full_counters_match_trace(self):
        backend, ring = _run_with_injected_exhaustion(
            faults.DRIVER_QUEUE_FULL
        )
        traced = _fallback_reasons(ring)
        assert traced.count(reasons.QUEUE_FULL) == 8
        assert backend.stats.fallbacks_queue_full == 8
        assert backend.stats.cpu_fallback_compressions == 8

    def test_per_reason_sums_reconcile_exactly(self):
        """The cross-check the telemetry suite runs under organic
        pressure, here under a mixed injected schedule: every fallback
        instant has exactly one counted reason and vice versa."""
        backend = XfmBackend(capacity_bytes=128 * PAGE_SIZE)
        plan = FaultPlan(
            seed=23,
            specs=(
                FaultSpec(faults.DRIVER_SPM_FULL, probability=0.4),
                FaultSpec(faults.DRIVER_QUEUE_FULL, probability=0.4),
            ),
        )
        with trace.tracing() as ring:
            with fault_injection(plan):
                for index in range(24):
                    page = Page(
                        vaddr=index * PAGE_SIZE,
                        data=_compressible(index),
                    )
                    assert backend.swap_out(page).accepted
        traced = _fallback_reasons(ring)
        stats = backend.stats
        per_reason = {
            reasons.SPM_FULL: stats.fallbacks_spm_full,
            reasons.QUEUE_FULL: stats.fallbacks_queue_full,
            reasons.DEMAND_FAULT: stats.fallbacks_demand,
            reasons.DEVICE_FAULT: stats.fallbacks_device_fault,
        }
        for reason, counted in per_reason.items():
            assert traced.count(reason) == counted, reason
        assert len(traced) == sum(per_reason.values())
        assert stats.fallbacks_spm_full > 0
        assert stats.fallbacks_queue_full > 0
        # Injection pressure never loses data.
        for index in range(24):
            page = Page(vaddr=index * PAGE_SIZE, data=None)
            page.swapped = True
            assert backend.swap_in(page) == _compressible(index)

    def test_no_injection_means_no_new_reasons(self):
        """With injection off the new device_fault reason never
        appears — goldens and existing reconciliation stay intact."""
        backend = XfmBackend(capacity_bytes=128 * PAGE_SIZE)
        with trace.tracing() as ring:
            for index in range(8):
                page = Page(
                    vaddr=index * PAGE_SIZE, data=_compressible(index)
                )
                assert backend.swap_out(page).accepted
        assert reasons.DEVICE_FAULT not in _fallback_reasons(ring)
        assert backend.stats.fallbacks_device_fault == 0
        assert backend.stats.device_faults == 0
