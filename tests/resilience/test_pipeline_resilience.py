"""TierPipeline health: breakers, quarantine routing, drain, spill guard."""

import pytest

from repro.errors import CorruptedBlobError, SfmError, TierUnavailableError
from repro.resilience import faults
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import FaultPlan, FaultSpec, fault_injection
from repro.sfm.page import PAGE_SIZE
from repro.tiering.pipeline import FAILURE_REASONS, TierPipeline


def _page(key: int) -> bytes:
    unit = bytes([(key * 7 + j) % 13 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def _pipeline(**kwargs):
    """CPU-zswap -> XFM -> DFM with tight breakers for fast tripping."""
    defaults = dict(
        cpu_capacity_bytes=64 * 1024,
        xfm_capacity_bytes=64 * 1024,
        dfm_capacity_bytes=256 * 1024,
        breaker_config=BreakerConfig(
            failure_threshold=2, cooldown_ops=3, probes_to_close=1
        ),
    )
    defaults.update(kwargs)
    return TierPipeline.build(**defaults)


class TestBreakerIntegration:
    def test_link_failures_trip_dfm_breaker_and_stores_route_around(self):
        pipeline = _pipeline(
            # Tiny upper tiers: stores fall through to DFM quickly.
            cpu_capacity_bytes=4 * 1024,
            xfm_capacity_bytes=4 * 1024,
        )
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            for key in range(12):
                pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "open"
        assert pipeline.pipeline_stats.quarantine_skips > 0
        assert pipeline.pipeline_stats.tier_errors == 0  # rejects, not raises
        # No accepted page went to the failing tier while it was up.
        assert pipeline.tiers_by_name()["dfm"].stored_pages() == 0

    def test_breaker_recloses_after_cooldown_probe(self):
        pipeline = _pipeline(
            cpu_capacity_bytes=4 * 1024, xfm_capacity_bytes=4 * 1024
        )
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            for key in range(6):
                pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "open"
        # Fault cleared: cooldown ticks on skipped ops, then the
        # half-open probe succeeds and the tier rejoins.
        for key in range(100, 112):
            pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "closed"
        assert pipeline.tiers_by_name()["dfm"].stored_pages() > 0

    def test_transitions_counted_in_registry(self):
        pipeline = _pipeline(
            cpu_capacity_bytes=4 * 1024, xfm_capacity_bytes=4 * 1024
        )
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            for key in range(6):
                pipeline.store(key, _page(key))
        snapshot = pipeline.registry.snapshot()
        assert any(
            name.startswith("tier_breaker.transitions")
            and "tier=dfm" in name and "to=open" in name
            for name in snapshot
        )

    def test_capacity_rejects_do_not_feed_breakers(self):
        assert "pool-full" not in FAILURE_REASONS
        assert "incompressible" not in FAILURE_REASONS
        pipeline = _pipeline(
            cpu_capacity_bytes=4 * 1024,
            xfm_capacity_bytes=4 * 1024,
            dfm_capacity_bytes=4 * 1024,
        )
        for key in range(20):
            pipeline.store(key, _page(key))
        assert all(
            state == "closed"
            for state in pipeline.breaker_states().values()
        )


class TestDrain:
    def test_drain_relocates_pages_off_a_tier(self):
        pipeline = _pipeline()
        for key in range(8):
            assert pipeline.store(key, _page(key))
        origin = pipeline.tier_of_key(0)
        held = pipeline.tiers_by_name()[origin].stored_pages()
        assert held > 0
        moved = pipeline.drain_tier(origin)
        assert moved == held
        assert pipeline.tiers_by_name()[origin].stored_pages() == 0
        assert pipeline.pipeline_stats.drained_pages == moved
        # Every page survives the relocation byte-for-byte.
        for key in range(8):
            assert pipeline.load(key) == _page(key)

    def test_drain_respects_limit_and_skips_origin(self):
        pipeline = _pipeline()
        for key in range(6):
            assert pipeline.store(key, _page(key))
        origin = pipeline.tier_of_key(0)
        before = pipeline.tiers_by_name()[origin].stored_pages()
        assert pipeline.drain_tier(origin, limit=2) == 2
        assert (
            pipeline.tiers_by_name()[origin].stored_pages() == before - 2
        )

    def test_drain_unknown_tier_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            _pipeline().drain_tier("nope")


class TestLoadFailureModes:
    def test_tier_unavailable_load_is_retryable(self):
        pipeline = _pipeline(
            cpu_capacity_bytes=4 * 1024, xfm_capacity_bytes=4 * 1024
        )
        assert pipeline.store(0, _page(0))
        assert pipeline.tier_of_key(0) == "dfm"
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            with pytest.raises(TierUnavailableError):
                pipeline.load(0)
        assert pipeline.pipeline_stats.tier_errors == 1
        # Mapping survived; the same load succeeds once the link is up.
        assert pipeline.load(0) == _page(0)

    def test_corrupted_load_is_explicit_and_accounted(self):
        pipeline = _pipeline()
        assert pipeline.store(0, _page(0))
        assert pipeline.tier_of_key(0) == "cpu-zswap"
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    faults.ZPOOL_MEDIA_CORRUPTION,
                    probability=1.0,
                    max_fires=1,
                ),
            ),
        )
        with fault_injection(plan):
            with pytest.raises(CorruptedBlobError):
                pipeline.load(0)
        assert pipeline.pipeline_stats.data_loss_events == 1
        # The key is gone for good — a silent miss would be a bug, and
        # so would a second success.
        assert pipeline.load(0) is None

    def test_poisoned_vaddr_raises_explicitly_via_demotion(self):
        """Corruption discovered mid-demotion poisons the vaddr; the
        later keyed load reports CorruptedBlobError, not a miss."""
        pipeline = _pipeline()
        for key in range(4):
            assert pipeline.store(key, _page(key))
        origin = pipeline.tier_of_key(0)
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(
                    faults.ZPOOL_MEDIA_CORRUPTION,
                    probability=1.0,
                    max_fires=1,
                ),
            ),
        )
        with fault_injection(plan):
            # Force the LRU-coldest (key 0) out of its tier.
            demoted = pipeline.demote_coldest(
                1, from_tier=pipeline.tier_names.index(origin)
            )
        assert demoted == 1  # the cascade continued past the loss
        assert pipeline.pipeline_stats.data_loss_events == 1
        with pytest.raises(CorruptedBlobError):
            pipeline.load(0)
        # Later keys are unaffected.
        assert pipeline.load(1) == _page(1)


class _Gate:
    """Admission policy that can be slammed shut mid-test, so the
    demotion put-back fails and the spill path actually fires."""

    def __init__(self):
        self.open = True

    def admit(self, tier) -> bool:
        return self.open


class TestSpillGuard:
    def _gated_pipeline(self, spill):
        gate = _Gate()
        pipeline = TierPipeline.build(
            cpu_capacity_bytes=64 * 1024,
            xfm_capacity_bytes=64 * 1024,
            dfm_capacity_bytes=64 * 1024,
            admission=gate,
            spill=spill,
        )
        return pipeline, gate

    def test_broken_spill_callback_is_counted_not_fatal(self):
        """Satellite regression: an exception escaping the demotion
        spill callback must not desync the pipeline."""

        def broken(vaddr, data):
            raise RuntimeError("spill sink is on fire")

        pipeline, gate = self._gated_pipeline(broken)
        for key in range(6):
            assert pipeline.store(key, _page(key))
        gate.open = False  # every tier now refuses admission
        for _ in range(3):
            # Victims are gathered in batches; once collected, a page
            # every tier (including its source) refuses must be spilled
            # — so each call spills its whole victim round, and the
            # third call finds nothing left to demote.
            assert pipeline.demote_coldest(3, from_tier=0) == 0
        assert pipeline.pipeline_stats.spill_callback_errors == 6
        assert pipeline.pipeline_stats.spills == 0
        # The pipeline stays consistent: every still-held key loads.
        gate.open = True
        for key in range(6):
            if pipeline.tier_of_key(key) is not None:
                assert pipeline.load(key) == _page(key)

    def test_working_spill_callback_still_counts_spills(self):
        spilled = {}
        pipeline, gate = self._gated_pipeline(
            lambda vaddr, data: spilled.__setitem__(vaddr, data)
        )
        for key in range(6):
            assert pipeline.store(key, _page(key))
        gate.open = False
        for _ in range(3):
            pipeline.demote_coldest(3, from_tier=0)
        # Batched victim rounds: both calls that found victims spilled
        # their whole round (see the broken-callback test above).
        assert pipeline.pipeline_stats.spills == len(spilled) == 6
        assert pipeline.pipeline_stats.spill_callback_errors == 0
        # Spilled pages carry the right bytes to the backing device.
        for vaddr, data in spilled.items():
            assert data == _page(vaddr // PAGE_SIZE)


class TestHalfOpenProbeAccounting:
    """Half-open probes are first-class registry counters, and the
    trace instants carry the pipeline's trace labels (shard + tier)."""

    def _trip_and_reclose(self, pipeline):
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            for key in range(6):
                pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "open"
        for key in range(100, 112):
            pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "closed"

    def test_probe_results_counted_with_trace_labels(self):
        pipeline = _pipeline(
            cpu_capacity_bytes=4 * 1024,
            xfm_capacity_bytes=4 * 1024,
            trace_labels={"shard": "shard-3"},
        )
        self._trip_and_reclose(pipeline)
        snapshot = pipeline.registry.snapshot()
        assert any(
            name.startswith("tier_breaker.probe_results")
            and "tier=dfm" in name
            and "result=success" in name
            and "shard=shard-3" in name
            for name in snapshot
        )

    def test_probe_and_transition_instants_carry_shard_label(self):
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession()
        with session:
            pipeline = _pipeline(
                cpu_capacity_bytes=4 * 1024,
                xfm_capacity_bytes=4 * 1024,
                registry=session.registry,
                trace_labels={"shard": "shard-3"},
            )
            self._trip_and_reclose(pipeline)
        probes = [
            e for e in session.ring.events() if e.name == "tier_breaker_probe"
        ]
        transitions = [
            e for e in session.ring.events() if e.name == "tier_breaker"
        ]
        assert probes and transitions
        for event in probes + transitions:
            assert event.args["shard"] == "shard-3"
            assert event.args["tier"] == "dfm"
        assert any(e.args["result"] == "success" for e in probes)
