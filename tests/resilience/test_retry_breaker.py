"""retry_with_backoff (simulated-time backoff) and the circuit breaker."""

import pytest

from repro.errors import ConfigError, DeviceFault
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.retry import BackoffPolicy, retry_with_backoff
from repro.sim import CLOCK
from repro.telemetry import trace as _trace


class TestRetry:
    def test_succeeds_first_try(self):
        assert retry_with_backoff(lambda: 42) == 42

    def test_recovers_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise DeviceFault("transient")
            return "ok"

        policy = BackoffPolicy(max_attempts=3, base_delay_ns=1000)
        assert retry_with_backoff(flaky, policy=policy) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_reraises(self):
        def broken():
            raise DeviceFault("permanent")

        policy = BackoffPolicy(max_attempts=3, base_delay_ns=10)
        with pytest.raises(DeviceFault):
            retry_with_backoff(broken, policy=policy)

    def test_backoff_advances_simulated_clock(self):
        """Backoff is simulated time (trace clock), never a wall sleep."""
        calls = []

        def flaky():
            calls.append(_trace.clock_ns())
            if len(calls) < 3:
                raise DeviceFault("transient")

        _trace.set_clock_ns(0.0)
        policy = BackoffPolicy(
            max_attempts=3, base_delay_ns=1000, multiplier=2.0
        )
        retry_with_backoff(flaky, policy=policy)
        # attempt 1 @0, +1000 -> attempt 2, +2000 -> attempt 3.
        assert calls == [0.0, 1000.0, 3000.0]

    def test_unlisted_exception_propagates_immediately(self):
        attempts = []

        def wrong_kind():
            attempts.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_with_backoff(wrong_kind)
        assert len(attempts) == 1

    def test_on_retry_called_per_retry(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise DeviceFault("transient")

        retry_with_backoff(
            flaky,
            policy=BackoffPolicy(max_attempts=3, base_delay_ns=1),
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_policy_validated(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(max_attempts=0)


class TestBreaker:
    def _breaker(self, **kwargs):
        defaults = dict(
            failure_threshold=3,
            window=8,
            error_rate_threshold=0.5,
            cooldown_ops=4,
            probes_to_close=2,
        )
        defaults.update(kwargs)
        return CircuitBreaker("t", config=BreakerConfig(**defaults))

    def test_starts_closed_and_allows(self):
        breaker = self._breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip_open(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_error_rate_trips_with_interleaved_successes(self):
        breaker = self._breaker(failure_threshold=100)
        for _ in range(4):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_then_half_open_probe_closes(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        # Cooldown: the first cooldown_ops allow() calls are refused.
        refused = [breaker.allow() for _ in range(4)]
        assert refused == [False, False, False, True]
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # A fresh full cooldown applies again.
        assert [breaker.allow() for _ in range(4)] == [
            False, False, False, True,
        ]

    def test_transition_callback_and_counts(self):
        seen = []
        breaker = CircuitBreaker(
            "dfm",
            config=BreakerConfig(
                failure_threshold=2, cooldown_ops=1, probes_to_close=1
            ),
            on_transition=lambda b, old, new: seen.append(
                (old.value, new.value)
            ),
        )
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert breaker.transitions["open"] == 1
        assert breaker.transitions["closed"] == 1

    def test_snapshot_shape(self):
        breaker = self._breaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert set(snap) == {
            "state", "error_rate", "consecutive_failures", "transitions",
            "probe_successes_total", "probe_failures_total",
        }


class TestBreakerSimTimeCooldown:
    """cooldown_ns: the wall-of-sim-time variant — an OPEN breaker
    re-probes once the shared clock passes the deadline, regardless of
    how many operations were routed around it."""

    def _breaker(self, **overrides):
        config = BreakerConfig(
            failure_threshold=2,
            cooldown_ops=1000,  # would never elapse in these tests
            cooldown_ns=500.0,
            probes_to_close=1,
            **overrides,
        )
        return CircuitBreaker("xfm", config)

    def test_open_until_clock_passes_deadline(self):
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.state is BreakerState.OPEN
            # No matter how many ops are routed around it, sim time
            # has not moved: still open.
            for _ in range(50):
                assert breaker.allow() is False
            CLOCK.advance_ns(499.0)
            assert breaker.allow() is False
            CLOCK.advance_ns(1.0)
            assert breaker.allow() is True
            assert breaker.state is BreakerState.HALF_OPEN

    def test_reopen_restarts_deadline_from_now(self):
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            CLOCK.advance_ns(500.0)
            assert breaker.allow() is True
            breaker.record_failure()  # probe fails -> OPEN again
            assert breaker.state is BreakerState.OPEN
            CLOCK.advance_ns(499.0)
            assert breaker.allow() is False
            CLOCK.advance_ns(1.0)
            assert breaker.allow() is True

    def test_backoff_charges_tick_the_cooldown(self):
        """Retry backoff and breaker cool-down share one timeline: the
        backoff charge alone can re-arm an open breaker."""
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.allow() is False

            def flaky():
                if CLOCK.now_ns() < 3000.0:
                    raise DeviceFault("transient")

            retry_with_backoff(
                flaky,
                policy=BackoffPolicy(
                    max_attempts=4, base_delay_ns=1000.0, multiplier=2.0
                ),
            )
            assert CLOCK.now_ns() >= 500.0
            assert breaker.allow() is True

    def test_cooldown_ns_validated(self):
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_ns=0.0)
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_ns=-5.0)


class TestRetryJitter:
    """BackoffPolicy.jitter: seeded, deterministic; bit-identical off."""

    def test_zero_jitter_is_bit_identical_with_or_without_rng(self):
        import random

        policy = BackoffPolicy(
            max_attempts=5, base_delay_ns=1000.0, multiplier=2.0
        )
        for attempt in range(1, 5):
            bare = policy.delay_ns(attempt)
            with_rng = policy.delay_ns(attempt, rng=random.Random(123))
            assert bare == with_rng  # exact, not approx

    def test_jitter_without_rng_is_exact_nominal(self):
        policy = BackoffPolicy(
            max_attempts=3, base_delay_ns=1000.0, multiplier=2.0, jitter=0.5
        )
        assert policy.delay_ns(1) == 1000.0
        assert policy.delay_ns(2) == 2000.0

    def test_seeded_jitter_is_deterministic(self):
        import random

        policy = BackoffPolicy(
            max_attempts=5, base_delay_ns=1000.0, multiplier=2.0, jitter=0.3
        )
        a = [policy.delay_ns(i, rng=random.Random(9)) for i in range(1, 5)]
        b = [policy.delay_ns(i, rng=random.Random(9)) for i in range(1, 5)]
        assert a == b

    def test_jitter_only_shrinks_within_fraction(self):
        import random

        policy = BackoffPolicy(
            max_attempts=3, base_delay_ns=1000.0, multiplier=1.0, jitter=0.3
        )
        rng = random.Random(42)
        for _ in range(200):
            delay = policy.delay_ns(1, rng=rng)
            # Decorrelating *early* retries can never push a client past
            # the nominal deadline it already promised.
            assert 700.0 <= delay <= 1000.0

    def test_retry_with_backoff_jitter_deterministic_end_to_end(self):
        import random

        policy = BackoffPolicy(
            max_attempts=3, base_delay_ns=1000.0, multiplier=2.0, jitter=0.4
        )

        def run():
            calls = []

            def flaky():
                calls.append(_trace.clock_ns())
                if len(calls) < 3:
                    raise DeviceFault("transient")

            _trace.set_clock_ns(0.0)
            retry_with_backoff(flaky, policy=policy, rng=random.Random(5))
            return calls

        first, second = run(), run()
        assert first == second
        # Jitter actually moved the retry instants off nominal.
        assert first[1] != 1000.0 or first[2] != 3000.0

    def test_jitter_validated(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=-0.1)
        with pytest.raises(ConfigError):
            BackoffPolicy(jitter=1.0)


class TestBreakerSchedulerDriven:
    """cooldown_ns breakers driven by EventScheduler events: the re-arm
    must happen exactly at the scheduled tick, and equal-tick events
    observe it in stable schedule order."""

    def _open_breaker(self, cooldown_ns=500.0):
        breaker = CircuitBreaker(
            "t",
            config=BreakerConfig(
                failure_threshold=2,
                window=4,
                error_rate_threshold=0.9,
                cooldown_ns=cooldown_ns,
                probes_to_close=1,
            ),
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        return breaker

    def test_rearm_exactly_at_scheduled_tick(self):
        from repro.sim import EventScheduler

        with CLOCK.scoped(start_ns=0.0):
            breaker = self._open_breaker(cooldown_ns=500.0)
            scheduler = EventScheduler()
            observed = []
            # One tick before the deadline the breaker still refuses;
            # at the deadline tick the half-open probe is allowed.
            scheduler.schedule(
                499.999999, lambda: observed.append(("before", breaker.allow()))
            )
            scheduler.schedule(
                500.0, lambda: observed.append(("at", breaker.allow()))
            )
            scheduler.run()
            assert observed == [("before", False), ("at", True)]
            assert breaker.state is BreakerState.HALF_OPEN

    def test_equal_tick_events_see_stable_order(self):
        from repro.sim import EventScheduler

        with CLOCK.scoped(start_ns=0.0):
            breaker = self._open_breaker(cooldown_ns=500.0)
            scheduler = EventScheduler()
            observed = []
            # Three same-tick events at the deadline: the first scheduled
            # gets the half-open probe slot; the probe's success closes
            # the breaker for the rest — deterministically in schedule
            # order, never heap-arbitrary.
            def probe():
                observed.append(("probe", breaker.allow()))
                breaker.record_success()

            scheduler.schedule(500.0, probe)
            scheduler.schedule(
                500.0, lambda: observed.append(("second", breaker.allow()))
            )
            scheduler.schedule(
                500.0, lambda: observed.append(("third", breaker.state))
            )
            scheduler.run()
            assert observed == [
                ("probe", True),
                ("second", True),
                ("third", BreakerState.CLOSED),
            ]

    def test_failed_probe_rearms_from_probe_instant(self):
        from repro.sim import EventScheduler

        with CLOCK.scoped(start_ns=0.0):
            breaker = self._open_breaker(cooldown_ns=500.0)
            scheduler = EventScheduler()
            observed = []

            def failing_probe():
                assert breaker.allow() is True
                breaker.record_failure()  # probe fails: back to OPEN

            scheduler.schedule(500.0, failing_probe)
            # The new deadline is 500 ns after the *failed probe*, not
            # after the original trip.
            scheduler.schedule(
                999.0, lambda: observed.append(("early", breaker.allow()))
            )
            scheduler.schedule(
                1000.0, lambda: observed.append(("rearmed", breaker.allow()))
            )
            scheduler.run()
            assert observed == [("early", False), ("rearmed", True)]
            assert breaker.snapshot()["probe_failures_total"] == 1

    def test_probe_counters_accumulate_across_scheduled_cycles(self):
        from repro.sim import EventScheduler

        with CLOCK.scoped(start_ns=0.0):
            breaker = self._open_breaker(cooldown_ns=100.0)
            scheduler = EventScheduler()

            def fail_probe():
                if breaker.allow():
                    breaker.record_failure()

            def ok_probe():
                if breaker.allow():
                    breaker.record_success()

            scheduler.schedule(100.0, fail_probe)
            scheduler.schedule(200.0, fail_probe)
            scheduler.schedule(300.0, ok_probe)
            scheduler.run()
            snap = breaker.snapshot()
            assert snap["probe_failures_total"] == 2
            assert snap["probe_successes_total"] == 1
            assert breaker.state is BreakerState.CLOSED
