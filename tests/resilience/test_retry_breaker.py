"""retry_with_backoff (simulated-time backoff) and the circuit breaker."""

import pytest

from repro.errors import ConfigError, DeviceFault
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.retry import BackoffPolicy, retry_with_backoff
from repro.sim import CLOCK
from repro.telemetry import trace as _trace


class TestRetry:
    def test_succeeds_first_try(self):
        assert retry_with_backoff(lambda: 42) == 42

    def test_recovers_after_transient_failures(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise DeviceFault("transient")
            return "ok"

        policy = BackoffPolicy(max_attempts=3, base_delay_ns=1000)
        assert retry_with_backoff(flaky, policy=policy) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_reraises(self):
        def broken():
            raise DeviceFault("permanent")

        policy = BackoffPolicy(max_attempts=3, base_delay_ns=10)
        with pytest.raises(DeviceFault):
            retry_with_backoff(broken, policy=policy)

    def test_backoff_advances_simulated_clock(self):
        """Backoff is simulated time (trace clock), never a wall sleep."""
        calls = []

        def flaky():
            calls.append(_trace.clock_ns())
            if len(calls) < 3:
                raise DeviceFault("transient")

        _trace.set_clock_ns(0.0)
        policy = BackoffPolicy(
            max_attempts=3, base_delay_ns=1000, multiplier=2.0
        )
        retry_with_backoff(flaky, policy=policy)
        # attempt 1 @0, +1000 -> attempt 2, +2000 -> attempt 3.
        assert calls == [0.0, 1000.0, 3000.0]

    def test_unlisted_exception_propagates_immediately(self):
        attempts = []

        def wrong_kind():
            attempts.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_with_backoff(wrong_kind)
        assert len(attempts) == 1

    def test_on_retry_called_per_retry(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise DeviceFault("transient")

        retry_with_backoff(
            flaky,
            policy=BackoffPolicy(max_attempts=3, base_delay_ns=1),
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_policy_validated(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(max_attempts=0)


class TestBreaker:
    def _breaker(self, **kwargs):
        defaults = dict(
            failure_threshold=3,
            window=8,
            error_rate_threshold=0.5,
            cooldown_ops=4,
            probes_to_close=2,
        )
        defaults.update(kwargs)
        return CircuitBreaker("t", config=BreakerConfig(**defaults))

    def test_starts_closed_and_allows(self):
        breaker = self._breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_consecutive_failures_trip_open(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_error_rate_trips_with_interleaved_successes(self):
        breaker = self._breaker(failure_threshold=100)
        for _ in range(4):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_cooldown_then_half_open_probe_closes(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        # Cooldown: the first cooldown_ops allow() calls are refused.
        refused = [breaker.allow() for _ in range(4)]
        assert refused == [False, False, False, True]
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        # A fresh full cooldown applies again.
        assert [breaker.allow() for _ in range(4)] == [
            False, False, False, True,
        ]

    def test_transition_callback_and_counts(self):
        seen = []
        breaker = CircuitBreaker(
            "dfm",
            config=BreakerConfig(
                failure_threshold=2, cooldown_ops=1, probes_to_close=1
            ),
            on_transition=lambda b, old, new: seen.append(
                (old.value, new.value)
            ),
        )
        breaker.record_failure()
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        assert seen == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert breaker.transitions["open"] == 1
        assert breaker.transitions["closed"] == 1

    def test_snapshot_shape(self):
        breaker = self._breaker()
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert set(snap) == {
            "state", "error_rate", "consecutive_failures", "transitions",
        }


class TestBreakerSimTimeCooldown:
    """cooldown_ns: the wall-of-sim-time variant — an OPEN breaker
    re-probes once the shared clock passes the deadline, regardless of
    how many operations were routed around it."""

    def _breaker(self, **overrides):
        config = BreakerConfig(
            failure_threshold=2,
            cooldown_ops=1000,  # would never elapse in these tests
            cooldown_ns=500.0,
            probes_to_close=1,
            **overrides,
        )
        return CircuitBreaker("xfm", config)

    def test_open_until_clock_passes_deadline(self):
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.state is BreakerState.OPEN
            # No matter how many ops are routed around it, sim time
            # has not moved: still open.
            for _ in range(50):
                assert breaker.allow() is False
            CLOCK.advance_ns(499.0)
            assert breaker.allow() is False
            CLOCK.advance_ns(1.0)
            assert breaker.allow() is True
            assert breaker.state is BreakerState.HALF_OPEN

    def test_reopen_restarts_deadline_from_now(self):
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            CLOCK.advance_ns(500.0)
            assert breaker.allow() is True
            breaker.record_failure()  # probe fails -> OPEN again
            assert breaker.state is BreakerState.OPEN
            CLOCK.advance_ns(499.0)
            assert breaker.allow() is False
            CLOCK.advance_ns(1.0)
            assert breaker.allow() is True

    def test_backoff_charges_tick_the_cooldown(self):
        """Retry backoff and breaker cool-down share one timeline: the
        backoff charge alone can re-arm an open breaker."""
        with CLOCK.scoped(start_ns=0.0):
            breaker = self._breaker()
            breaker.record_failure()
            breaker.record_failure()
            assert breaker.allow() is False

            def flaky():
                if CLOCK.now_ns() < 3000.0:
                    raise DeviceFault("transient")

            retry_with_backoff(
                flaky,
                policy=BackoffPolicy(
                    max_attempts=4, base_delay_ns=1000.0, multiplier=2.0
                ),
            )
            assert CLOCK.now_ns() >= 500.0
            assert breaker.allow() is True

    def test_cooldown_ns_validated(self):
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_ns=0.0)
        with pytest.raises(ConfigError):
            BreakerConfig(cooldown_ns=-5.0)
