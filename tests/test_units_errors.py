"""Unit-helper and exception-hierarchy tests."""

import pytest

from repro import _units as units
from repro import errors


class TestUnits:
    def test_binary_sizes(self):
        assert units.kib(4) == 4096
        assert units.mib(2) == 2 * 1024 * 1024
        assert units.gib(1) == 1 << 30
        assert units.TIB == 1 << 40

    def test_time_conversions(self):
        assert units.ms_to_ns(32.0) == 32e6
        assert units.us_to_ns(3.9) == pytest.approx(3900.0)
        assert units.ns_to_s(1e9) == 1.0
        assert units.s_to_ns(2.0) == 2e9

    def test_energy_conversions(self):
        assert units.kwh_to_joules(1.0) == 3.6e6
        assert units.joules_to_kwh(3.6e6) == 1.0

    def test_bandwidth_identities(self):
        assert units.bytes_per_ns_to_gbps(8.5) == 8.5
        assert units.gbps_to_bytes_per_ns(25.6) == 25.6

    def test_calendar(self):
        assert units.SECONDS_PER_YEAR == 365 * 24 * 3600

    def test_pretty_bytes(self):
        assert units.pretty_bytes(4096) == "4.0 KiB"
        assert units.pretty_bytes(512 * (1 << 30)) == "512.0 GiB"
        assert units.pretty_bytes(3) == "3.0 B"
        assert units.pretty_bytes(5 * (1 << 40)) == "5.0 TiB"

    def test_pretty_rate(self):
        assert units.pretty_rate(8.5e9) == "8.5 GBps"
        assert units.pretty_rate(426.7e6) == "426.7 MBps"
        assert units.pretty_rate(12.0) == "12.0 Bps"


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaves = [
            errors.CompressionError,
            errors.CorruptStreamError,
            errors.DramProtocolError,
            errors.AddressMapError,
            errors.SfmError,
            errors.ZpoolFullError,
            errors.EntryNotFoundError,
            errors.XfmError,
            errors.SpmFullError,
            errors.QueueFullError,
            errors.MmioError,
            errors.ConfigError,
        ]
        for exc in leaves:
            assert issubclass(exc, errors.ReproError)

    def test_specialization_relations(self):
        assert issubclass(errors.CorruptStreamError, errors.CompressionError)
        assert issubclass(errors.ZpoolFullError, errors.SfmError)
        assert issubclass(errors.SpmFullError, errors.XfmError)
        assert issubclass(errors.QueueFullError, errors.XfmError)
        assert issubclass(errors.MmioError, errors.XfmError)

    def test_catching_the_base_catches_library_errors(self):
        from repro.compression import DeflateCodec

        with pytest.raises(errors.ReproError):
            DeflateCodec().decompress(b"\x00garbage")
