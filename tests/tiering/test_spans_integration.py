"""End-to-end span trees, latency quantiles, and failure flight dumps
from a real TierPipeline run under a TelemetrySession."""

import json

import pytest

from repro.resilience import faults
from repro.resilience.breaker import BreakerConfig
from repro.resilience.faults import FaultPlan, FaultSpec, fault_injection
from repro.sfm.page import PAGE_SIZE
from repro.telemetry import TelemetrySession, trace
from repro.telemetry.quantiles import collect_percentiles
from repro.tiering.pipeline import TierPipeline


def _page(key: int) -> bytes:
    unit = bytes([(key * 7 + j) % 13 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def _run_pipeline(session, stores=24, loads=12):
    """Small upper tiers force demotion cascades and cross-tier loads."""
    pipeline = TierPipeline.build(
        cpu_capacity_bytes=4 * PAGE_SIZE,
        xfm_capacity_bytes=4 * PAGE_SIZE,
        dfm_capacity_bytes=64 * PAGE_SIZE,
        registry=session.registry,
    )
    for key in range(stores):
        assert pipeline.store(key, _page(key))
    assert pipeline.demote_coldest(4, from_tier=0) > 0
    for key in range(loads):
        assert pipeline.load(key) == _page(key)
    return pipeline


class TestSpanTree:
    def test_device_events_parent_to_pipeline_spans(self):
        with TelemetrySession() as session:
            _run_pipeline(session)
            events = session.ring.events()
        spanned = [e for e in events if e.args and "span" in e.args]
        assert spanned, "no span-tagged events emitted"
        span_ids = {e.args["span"] for e in spanned}
        by_name = {}
        for e in spanned:
            by_name.setdefault(e.name, []).append(e)
        # The pipeline ops open root spans...
        assert "pipeline_store" in by_name
        assert "pipeline_load" in by_name
        # ...and the backends' device events hang off them.
        for leaf in ("cpu_compress", "cpu_decompress"):
            assert leaf in by_name, f"missing {leaf} leaves"
            for event in by_name[leaf]:
                assert event.args["parent"] in span_ids
        # Every parent reference resolves to an allocated span id.
        for event in spanned:
            if "parent" in event.args:
                assert event.args["parent"] in span_ids

    def test_span_ids_unique(self):
        with TelemetrySession() as session:
            _run_pipeline(session)
            events = session.ring.events()
        ids = [e.args["span"] for e in events if e.args and "span" in e.args]
        assert len(ids) == len(set(ids))

    def test_demotion_rounds_form_spans_with_victim_counts(self):
        with TelemetrySession() as session:
            _run_pipeline(session)
            events = session.ring.events()
        rounds = [e for e in events if e.name == "demote_round"]
        assert rounds, "cascades should have produced demote_round spans"
        for event in rounds:
            assert event.args["victims"] >= 1
            assert event.args["placed"] + event.args["poisoned"] >= 0

    def test_run_without_session_emits_nothing(self):
        from repro.telemetry.registry import MetricsRegistry

        assert not trace.tracing_enabled()

        class _Sess:
            registry = MetricsRegistry()

        _run_pipeline(_Sess())
        assert trace.current_ring() is None


class TestLatencyQuantiles:
    def test_per_op_per_tier_histograms_populate(self):
        with TelemetrySession() as session:
            _run_pipeline(session)
        rows = collect_percentiles(session.registry)
        pairs = {(r["op"], r["tier"]) for r in rows}
        assert ("store", "pipeline") in pairs
        assert ("store", "cpu-zswap") in pairs
        assert ("load", "pipeline") in pairs
        assert ("demote", "pipeline") in pairs
        for row in rows:
            assert row["count"] > 0
            assert row["p50"] <= row["p90"] <= row["p99"] <= row["p999"]
            assert row["p50"] > 0

    def test_untraced_run_records_no_latency(self):
        from repro.telemetry.registry import MetricsRegistry

        class _Sess:
            registry = MetricsRegistry()

        _run_pipeline(_Sess())
        assert collect_percentiles(_Sess.registry) == []


class TestBreakerFlightDump:
    def _trip_dfm_breaker(self, session):
        pipeline = TierPipeline.build(
            cpu_capacity_bytes=PAGE_SIZE,
            xfm_capacity_bytes=PAGE_SIZE,
            dfm_capacity_bytes=64 * PAGE_SIZE,
            registry=session.registry,
            breaker_config=BreakerConfig(
                failure_threshold=2, cooldown_ops=3, probes_to_close=1
            ),
        )
        plan = FaultPlan(
            seed=1,
            specs=(FaultSpec(faults.DFM_LINK_ERROR, probability=1.0),),
        )
        with fault_injection(plan):
            for key in range(12):
                pipeline.store(key, _page(key))
        assert pipeline.breaker_states()["dfm"] == "open"
        return pipeline

    def test_breaker_open_auto_dumps_flight_record(self, tmp_path):
        with TelemetrySession(out_dir=tmp_path) as session:
            self._trip_dfm_breaker(session)
        dump = tmp_path / "flight_breaker_open.json"
        assert dump.exists()
        doc = json.loads(dump.read_text())
        assert doc["reason"] == "breaker_open"
        assert doc["detail"]["tier"] == "dfm"
        assert doc["events"], "flight record should carry recent events"
        # The metric deltas point at the failing tier.
        assert any(
            "tier_breaker.transitions" in key
            for key in doc["metric_deltas"]
        )

    def test_no_dump_on_clean_run(self, tmp_path):
        with TelemetrySession(out_dir=tmp_path) as session:
            _run_pipeline(session)
        assert list(tmp_path.glob("flight_*.json")) == []
        assert session.flight.dump_names == []
