"""Batched demotion cascades: ``DEMOTE_BATCH_PAGES``-sized victim
rounds through the receiving tier's ``swap_out_batch``, with the scalar
cascade's bookkeeping preserved."""

import pytest

from repro.compression.base import batch_stats
from repro.core.backend import XfmBackend
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.tiering.pipeline import DEMOTE_BATCH_PAGES, TierPipeline
from repro.workloads.corpus import corpus_pages

TOP_CAP = 16 * PAGE_SIZE
BOT_CAP = 512 * PAGE_SIZE


def _two_tier(top_cap=TOP_CAP, bottom=None):
    top = SfmBackend(capacity_bytes=top_cap, page_cache_entries=0)
    if bottom is None:
        bottom = SfmBackend(capacity_bytes=BOT_CAP, page_cache_entries=0)
    return TierPipeline([("cpu-zswap", top), ("xfm", bottom)])


def _fill(pipeline, n, seed=13):
    pages = corpus_pages("json-records", n, seed=seed)
    for i, data in enumerate(pages):
        assert pipeline.store(i, data)
    return pages


class TestDemoteColdest:
    def test_exact_count_across_multiple_batches(self):
        pipeline = _two_tier(top_cap=BOT_CAP)
        _fill(pipeline, 40)
        want = DEMOTE_BATCH_PAGES * 2 + 3  # forces 3 rounds
        assert pipeline.demote_coldest(count=want) == want
        assert pipeline.pipeline_stats.demotions == want

    def test_coldest_pages_go_first(self):
        pipeline = _two_tier(top_cap=BOT_CAP)
        _fill(pipeline, 12)
        pipeline.demote_coldest(count=5)
        # Keys were stored 0..11 in order, so 0..4 are the LRU victims.
        for key in range(5):
            assert pipeline.tier_of_key(key) == "xfm"
        for key in range(5, 12):
            assert pipeline.tier_of_key(key) == "cpu-zswap"

    def test_count_larger_than_resident_set(self):
        pipeline = _two_tier(top_cap=BOT_CAP)
        _fill(pipeline, 6)
        assert pipeline.demote_coldest(count=100) == 6

    def test_demoted_data_round_trips(self):
        pipeline = _two_tier(top_cap=BOT_CAP)
        pages = _fill(pipeline, 20)
        pipeline.demote_coldest(count=20)
        for key, data in enumerate(pages):
            assert pipeline.load(key) == data

    def test_uses_batch_codec_path_and_records_site(self):
        pipeline = _two_tier(top_cap=BOT_CAP)
        _fill(pipeline, DEMOTE_BATCH_PAGES * 2)
        batch_stats.reset()
        moved = pipeline.demote_coldest(count=DEMOTE_BATCH_PAGES * 2)
        assert moved == DEMOTE_BATCH_PAGES * 2
        assert batch_stats.site_pages.get("tier_demote", 0) == moved
        assert batch_stats.compress_batch_calls == 2
        assert batch_stats.compress_batch_pages == moved
        assert batch_stats.compress_scalar_fallback_calls == 0


class TestRebalanceBatching:
    def test_pressure_demotions_route_through_batch_site(self):
        """Filling a small top tier triggers the demotion policy; the
        resulting cascade must batch its victims (the ISSUE 7 telemetry
        acceptance check for the pipeline call site)."""
        batch_stats.reset()
        pipeline = _two_tier()  # 16-page top tier
        _fill(pipeline, 64)
        assert pipeline.pipeline_stats.demotions > 0
        assert batch_stats.site_pages.get("tier_demote", 0) >= (
            pipeline.pipeline_stats.demotions
        )

    def test_scalar_override_tier_still_accepts_batches(self):
        """XfmBackend overrides scalar swap_out, so its swap_out_batch
        defers — the cascade must still demote correctly through it."""
        bottom = XfmBackend(capacity_bytes=BOT_CAP)
        pipeline = _two_tier(top_cap=BOT_CAP, bottom=bottom)
        pages = _fill(pipeline, 10)
        assert pipeline.demote_coldest(count=10) == 10
        for key, data in enumerate(pages):
            assert pipeline.tier_of_key(key) == "xfm"
            assert pipeline.load(key) == data

    def test_demotion_matches_scalar_era_accounting(self):
        """Batched rounds keep stats self-consistent: every demotion is
        a page that left tier 0 and is resident in tier 1."""
        pipeline = _two_tier(top_cap=BOT_CAP)
        _fill(pipeline, 24)
        moved = pipeline.demote_coldest(count=17)
        assert moved == 17
        counts = {"cpu-zswap": 0, "xfm": 0}
        for key in range(24):
            counts[pipeline.tier_of_key(key)] += 1
        assert counts == {"cpu-zswap": 7, "xfm": 17}


class TestBatchConstant:
    def test_demote_batch_size_is_sane(self):
        # The cascade's policy re-check granularity: > 1 or the batching
        # is vacuous, bounded so policy reaction lag stays small.
        assert 2 <= DEMOTE_BATCH_PAGES <= 64
