"""TierPipeline behavior: fall-through, demotion, promotion, accounting.

Includes the acceptance reconciliation: per-tier registry counters match
per-tier ledger totals 1:1, and the store -> demote -> promote -> load
round trip is bit-identical under the validation invariant hooks.
"""

import pytest

from repro.errors import ConfigError, SfmError
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry.registry import MetricsRegistry
from repro.tiering import (
    CapacityAdmission,
    LruDemotion,
    NeverDemote,
    NeverPromote,
    PoolLimitPolicy,
    PromoteOneLevel,
    PromoteToTop,
    TierPipeline,
)
from repro.validation import hooks
from repro.validation.invariants import check_tier_pipeline
from repro.workloads.corpus import corpus_pages


def _noise_page(seed: int) -> bytes:
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    out = bytearray(PAGE_SIZE)
    for i in range(PAGE_SIZE):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        out[i] = state & 0xFF
    return bytes(out)


def _pipeline(**kwargs) -> TierPipeline:
    return TierPipeline.build(
        cpu_capacity_bytes=32 * PAGE_SIZE,
        xfm_capacity_bytes=32 * PAGE_SIZE,
        dfm_capacity_bytes=64 * PAGE_SIZE,
        **kwargs,
    )


class TestFallThrough:
    def test_incompressible_falls_to_dfm(self):
        pipeline = _pipeline(demotion=NeverDemote())
        assert pipeline.store(1, _noise_page(1))
        # Both compressed tiers rejected it; DFM stores raw pages.
        assert pipeline.tier_of_key(1) == "dfm"
        assert pipeline.pipeline_stats.store_fallthroughs >= 2

    def test_compressible_stays_on_top(self):
        pipeline = _pipeline(demotion=NeverDemote())
        assert pipeline.store(1, corpus_pages("json-records", 1)[0])
        assert pipeline.tier_of_key(1) == "cpu-zswap"
        assert pipeline.pipeline_stats.store_fallthroughs == 0

    def test_admission_policy_skips_tier(self):
        # Zero headroom on every tier except DFM's raw pool still
        # admits: used + PAGE <= capacity holds longest there.
        pipeline = _pipeline(
            admission=CapacityAdmission(max_usage_fraction=1.0),
            demotion=NeverDemote(),
        )
        pages = corpus_pages("json-records", 8, seed=7)
        for key, data in enumerate(pages):
            assert pipeline.store(key, data)
        assert pipeline.stored_pages() == 8

    def test_all_tiers_rejected_reports_reason(self):
        tiny = TierPipeline.build(
            cpu_capacity_bytes=PAGE_SIZE,
            xfm_capacity_bytes=PAGE_SIZE,
            dfm_capacity_bytes=PAGE_SIZE,
            demotion=NeverDemote(),
        )
        stored = 0
        rejected = 0
        for key in range(8):
            if tiny.store(key, _noise_page(key)):
                stored += 1
            else:
                rejected += 1
        assert stored == 1  # DFM held exactly one raw page
        assert rejected == 7
        assert tiny.pipeline_stats.store_rejects == 7


class TestDemotionPromotion:
    def test_lru_pressure_cascades_downward(self):
        pipeline = _pipeline(
            demotion=LruDemotion(watermark_fraction=0.25)
        )
        pages = corpus_pages("binary-structs", 24, seed=11)
        for key, data in enumerate(pages):
            assert pipeline.store(key, data)
        assert pipeline.pipeline_stats.demotions > 0
        # The coldest (lowest) keys sank; the hottest stayed on top.
        occupied = {pipeline.tier_of_key(k) for k in range(24)}
        assert len(occupied) > 1
        assert pipeline.tier_of_key(23) == "cpu-zswap"

    def test_demote_coldest_moves_lru_victim(self):
        pipeline = _pipeline(demotion=NeverDemote())
        pages = corpus_pages("json-records", 4, seed=3)
        for key, data in enumerate(pages):
            pipeline.store(key, data)
        moved = pipeline.demote_coldest(2, from_tier=0)
        assert moved == 2
        assert pipeline.tier_of_key(0) == "xfm"
        assert pipeline.tier_of_key(1) == "xfm"
        assert pipeline.tier_of_key(3) == "cpu-zswap"

    def test_promote_to_top(self):
        pipeline = _pipeline(demotion=NeverDemote())
        pages = corpus_pages("json-records", 3, seed=5)
        for key, data in enumerate(pages):
            pipeline.store(key, data)
        pipeline.demote_coldest(1, from_tier=0)
        pipeline.demote_coldest(1, from_tier=1)
        assert pipeline.tier_of_key(0) == "dfm"
        assert pipeline.promote_key(0) == "cpu-zswap"
        assert pipeline.pipeline_stats.promotions == 1

    def test_promote_one_level(self):
        pipeline = _pipeline(
            demotion=NeverDemote(), promotion=PromoteOneLevel()
        )
        data = corpus_pages("json-records", 1, seed=9)[0]
        pipeline.store(0, data)
        pipeline.demote_coldest(1, from_tier=0)
        pipeline.demote_coldest(1, from_tier=1)
        assert pipeline.tier_of_key(0) == "dfm"
        assert pipeline.promote_key(0) == "xfm"
        assert pipeline.promote_key(0) == "cpu-zswap"

    def test_never_promote_blocks(self):
        pipeline = _pipeline(
            demotion=NeverDemote(), promotion=NeverPromote()
        )
        pipeline.store(0, corpus_pages("json-records", 1)[0])
        pipeline.demote_coldest(1, from_tier=0)
        assert pipeline.promote_key(0) == "xfm"
        assert pipeline.pipeline_stats.promotions == 0
        assert pipeline.pipeline_stats.promotions_blocked == 1

    def test_restore_into_origin_when_lower_tiers_reject(self):
        """A demotion victim no lower tier takes goes back where it was
        (its space was just freed) instead of being lost."""
        pipeline = TierPipeline.build(
            cpu_capacity_bytes=32 * PAGE_SIZE,
            xfm_capacity_bytes=PAGE_SIZE,  # too small once occupied
            dfm_capacity_bytes=PAGE_SIZE,
            demotion=NeverDemote(),
        )
        # Occupy both lower tiers so further demotions bounce.
        filler = corpus_pages("json-records", 2, seed=13)
        assert pipeline.store(100, filler[0])
        assert pipeline.store(101, filler[1])
        # Sink one page all the way to the 1-page DFM floor.
        pipeline.demote_coldest(1, from_tier=0)
        pipeline.demote_coldest(1, from_tier=1)
        assert pipeline.tier_of_key(100) == "dfm"
        # Demote out of the last tier: there is nothing below, so the
        # victim bounces back into its freshly-freed origin slot.
        data = corpus_pages("server-log", 1, seed=14)[0]
        assert pipeline.store(7, data)
        before = pipeline.pipeline_stats.demotion_failures
        assert pipeline.demote_coldest(1, from_tier=2) == 0
        assert pipeline.pipeline_stats.demotion_failures == before + 1
        assert pipeline.tier_of_key(100) == "dfm"
        # No page was lost and contents survive the bounce.
        assert pipeline.load(100) == filler[0]
        assert pipeline.load(7) == data

    def test_spill_callback_on_total_rejection(self):
        """When every tier (including the origin) rejects a demotion
        victim, the spill callback receives it — zswap's writeback."""

        class OneShotTier:
            """Protocol-shaped stub: accepts exactly one store, ever."""

            tier_name = "oneshot"
            capacity_bytes = PAGE_SIZE

            def __init__(self):
                from repro.sfm.metrics import BandwidthLedger, SwapStats

                self.stats = SwapStats()
                self.ledger = BandwidthLedger()
                self._held = {}
                self._accepts_left = 1

            def swap_out(self, page):
                from repro.tiering import SwapOutcome

                if self._accepts_left <= 0:
                    return SwapOutcome(accepted=False, reason="pool-full")
                self._accepts_left -= 1
                self._held[page.vaddr] = page.data
                page.swapped = True
                page.data = None
                return SwapOutcome(accepted=True, compressed_len=PAGE_SIZE)

            def swap_in(self, page):
                data = self._held.pop(page.vaddr)
                page.swapped = False
                page.data = data
                return data

            promote = swap_in

            def invalidate(self, vaddr):
                return self._held.pop(vaddr, None) is not None

            def contains(self, vaddr):
                return vaddr in self._held

            def stored_pages(self):
                return len(self._held)

            def used_bytes(self):
                return len(self._held) * PAGE_SIZE

            def effective_bytes_freed(self):
                return 0

            def compact(self):
                return 0

            def swap_latency_s(self, direction):
                return 0.0

        spilled = {}
        pipeline = TierPipeline(
            [OneShotTier()],
            demotion=NeverDemote(),
            spill=lambda vaddr, data: spilled.update({vaddr: data}),
        )
        data = corpus_pages("json-records", 1, seed=15)[0]
        assert pipeline.store(3, data)
        # The only tier now refuses everything: demotion must spill.
        assert pipeline.demote_coldest(1, from_tier=0) == 0
        assert spilled == {3 * PAGE_SIZE: data}
        assert pipeline.pipeline_stats.spills == 1
        assert pipeline.pipeline_stats.demotion_failures == 1
        assert pipeline.stored_pages() == 0


class TestRoundTripUnderValidation:
    def test_store_demote_promote_load_bit_identical(self):
        """The acceptance property test, with invariant checkpoints
        firing on every mutating pipeline operation."""
        with hooks.validation():
            pipeline = _pipeline(
                demotion=LruDemotion(watermark_fraction=0.3)
            )
            originals = {}
            for key in range(30):
                data = (
                    _noise_page(key)
                    if key % 6 == 5
                    else corpus_pages("json-records", 1, seed=key)[0]
                )
                if pipeline.store(key, data):
                    originals[key] = data
            assert len(originals) == 30
            # Explicit demote + promote churn on top of the cascade.
            pipeline.demote_coldest(3, from_tier=0)
            for key in list(originals)[:5]:
                pipeline.promote_key(key)
            check_tier_pipeline(pipeline)
            for key, expect in originals.items():
                assert pipeline.load(key) == expect, f"key {key} corrupted"
            assert pipeline.stored_pages() == 0
            check_tier_pipeline(pipeline)

    def test_checker_rejects_corrupted_bookkeeping(self):
        pipeline = _pipeline(demotion=NeverDemote())
        pipeline.store(0, corpus_pages("json-records", 1)[0])
        vaddr = next(iter(pipeline._where))
        pipeline._where[vaddr] = 2  # lie: claim it lives in DFM
        with pytest.raises(AssertionError):
            check_tier_pipeline(pipeline)


class TestAccountingReconciliation:
    def test_per_tier_counters_match_ledger_totals(self):
        """Acceptance: per-tier registry counters reconcile 1:1 with
        per-tier ledger byte totals (no rejects, no compaction)."""
        registry = MetricsRegistry()
        pipeline = _pipeline(registry=registry, demotion=NeverDemote())
        pages = corpus_pages("json-records", 12, seed=21)
        for key, data in enumerate(pages):
            assert pipeline.store(key, data)
        # Push a slice down to XFM and DFM so every tier does real work.
        assert pipeline.demote_coldest(6, from_tier=0) == 6
        assert pipeline.demote_coldest(3, from_tier=1) == 3
        for key in (0, 1):
            pipeline.promote_key(key)
        for key, data in enumerate(pages):
            assert pipeline.load(key) == data

        cpu, xfm, dfm = pipeline.tiers
        for tier in (cpu, xfm):
            stats = tier.stats
            moved = (
                stats.bytes_out_uncompressed
                + stats.bytes_out_compressed
                + stats.bytes_in_uncompressed
                + stats.bytes_in_compressed
            )
            ledger_total = tier.ledger.total("sfm_cpu") + tier.ledger.total(
                "nma"
            )
            assert stats.rejected == 0
            assert ledger_total == moved, tier.tier_name
        dfm_stats = dfm.stats
        assert dfm.ledger.total("dfm_link") == (
            dfm_stats.bytes_out_uncompressed
            + dfm_stats.bytes_in_uncompressed
        )
        assert dfm.ledger.total("dfm_link") == (
            (dfm_stats.swap_outs + dfm_stats.swap_ins) * PAGE_SIZE
        )
        # The shared registry carries every tier's series, labelled.
        snapshot = registry.snapshot()
        for name in pipeline.tier_names:
            assert f"swap.swap_outs{{tier={name}}}" in snapshot
        # Registry counters and facade reads are the same storage.
        assert snapshot["swap.swap_outs{tier=dfm}"] == dfm_stats.swap_outs

    def test_merged_views(self):
        pipeline = _pipeline(demotion=NeverDemote())
        pages = corpus_pages("json-records", 6, seed=31)
        for key, data in enumerate(pages):
            pipeline.store(key, data)
        pipeline.demote_coldest(2, from_tier=0)
        merged_stats = pipeline.stats
        assert merged_stats.swap_outs == sum(
            tier.stats.swap_outs for tier in pipeline.tiers
        )
        merged_ledger = pipeline.ledger
        assert sum(merged_ledger.snapshot().values()) == sum(
            sum(tier.ledger.snapshot().values()) for tier in pipeline.tiers
        )
        flat = pipeline.metrics_snapshot()
        assert any(key.startswith("tier_pipeline.") for key in flat)


class TestKeyedApiAndErrors:
    def test_restore_drops_stale_copy(self):
        pipeline = _pipeline(demotion=NeverDemote())
        first = corpus_pages("json-records", 1, seed=41)[0]
        second = corpus_pages("server-log", 1, seed=42)[0]
        assert pipeline.store(5, first)
        assert pipeline.store(5, second)
        assert pipeline.stored_pages() == 1
        assert pipeline.load(5) == second

    def test_load_unknown_key_is_none(self):
        assert _pipeline().load(99) is None

    def test_swap_in_unknown_page_raises(self):
        pipeline = _pipeline()
        with pytest.raises(SfmError):
            pipeline.swap_in(Page(vaddr=0x1000, data=None, swapped=True))

    def test_bad_page_size_rejected(self):
        with pytest.raises(ConfigError):
            _pipeline().store(0, b"short")

    def test_duplicate_tier_names_rejected(self):
        from repro.sfm.backend import SfmBackend

        with pytest.raises(ConfigError):
            TierPipeline(
                [
                    ("a", SfmBackend(capacity_bytes=8 * PAGE_SIZE)),
                    ("a", SfmBackend(capacity_bytes=8 * PAGE_SIZE)),
                ]
            )

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigError):
            TierPipeline([])


class TestPoolLimitPolicy:
    def test_matches_zswap_arithmetic(self):
        policy = PoolLimitPolicy(
            total_ram_bytes=100 * PAGE_SIZE, max_pool_percent=20
        )
        assert policy.limit_bytes() == 20 * PAGE_SIZE
        assert not policy.over_limit(20 * PAGE_SIZE - 1)
        assert policy.over_limit(20 * PAGE_SIZE)
        assert policy.needs_headroom(19 * PAGE_SIZE + 1, PAGE_SIZE)
        assert not policy.needs_headroom(19 * PAGE_SIZE, PAGE_SIZE)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoolLimitPolicy(total_ram_bytes=100 * PAGE_SIZE,
                            max_pool_percent=0)
        with pytest.raises(ConfigError):
            PoolLimitPolicy(total_ram_bytes=PAGE_SIZE - 1)
