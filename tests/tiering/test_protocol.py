"""FarMemoryTier protocol conformance across every backend.

The tentpole contract: all four concrete backends and the composite
pipeline satisfy :class:`repro.tiering.protocol.FarMemoryTier`, the
``SwapOutcome`` import paths collapse to one class, and the DFM
backend's counters finally reach registry export.
"""

import pytest

from repro.core.backend import XfmBackend
from repro.core.system import MultiChannelXfmBackend
from repro.dfm.backend import DfmBackend
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry.registry import MetricsRegistry
from repro.tiering import FarMemoryTier, SwapOutcome, TierPipeline
from repro.workloads.corpus import corpus_pages

TIERS = {
    "cpu": lambda **kw: SfmBackend(capacity_bytes=128 * PAGE_SIZE, **kw),
    "xfm": lambda **kw: XfmBackend(capacity_bytes=128 * PAGE_SIZE, **kw),
    "xfm-mc": lambda **kw: MultiChannelXfmBackend(
        capacity_bytes=128 * PAGE_SIZE, **kw
    ),
    "dfm": lambda **kw: DfmBackend(capacity_bytes=128 * PAGE_SIZE, **kw),
}


@pytest.mark.parametrize("tier", list(TIERS), ids=list(TIERS))
class TestConformance:
    def test_isinstance(self, tier):
        assert isinstance(TIERS[tier](), FarMemoryTier)

    def test_surface_roundtrip(self, tier):
        backend = TIERS[tier]()
        page = Page(vaddr=0x4000, data=corpus_pages("json-records", 1)[0])
        data = page.data
        outcome = backend.swap_out(page)
        assert isinstance(outcome, SwapOutcome)
        assert outcome.accepted
        assert backend.contains(0x4000)
        assert backend.stored_pages() == 1
        assert backend.used_bytes() > 0
        assert backend.swap_in(page) == data
        assert not backend.contains(0x4000)
        assert backend.stored_pages() == 0

    def test_promote_returns_data(self, tier):
        backend = TIERS[tier]()
        page = Page(vaddr=0x8000, data=corpus_pages("server-log", 1)[0])
        data = page.data
        assert backend.swap_out(page).accepted
        assert backend.promote(page) == data
        assert not backend.contains(0x8000)

    def test_invalidate_frees_without_load(self, tier):
        backend = TIERS[tier]()
        page = Page(vaddr=0xC000, data=corpus_pages("json-records", 1)[0])
        assert backend.swap_out(page).accepted
        used = backend.used_bytes()
        assert backend.invalidate(0xC000)
        assert not backend.contains(0xC000)
        assert backend.stored_pages() == 0
        assert backend.used_bytes() < used or used == 0
        # Second invalidate of the same vaddr is a no-op, not an error.
        assert not backend.invalidate(0xC000)
        # A load after invalidate cannot resurrect the page.
        assert backend.stats.swap_ins == 0

    def test_tier_label_separates_shared_registry(self, tier):
        registry = MetricsRegistry()
        backend = TIERS[tier](registry=registry, tier=f"{tier}-a")
        page = Page(vaddr=0, data=corpus_pages("json-records", 1)[0])
        assert backend.swap_out(page).accepted
        snapshot = registry.snapshot()
        key = f"swap.swap_outs{{tier={tier}-a}}"
        assert snapshot[key] == 1

    def test_shared_ledger_kwarg(self, tier):
        from repro.sfm.metrics import BandwidthLedger

        ledger = BandwidthLedger()
        backend = TIERS[tier](ledger=ledger)
        assert backend.ledger is ledger
        page = Page(vaddr=0, data=corpus_pages("json-records", 1)[0])
        backend.swap_out(page)
        assert sum(ledger.snapshot().values()) > 0


class TestSwapOutcomeUnification:
    def test_single_class_across_import_paths(self):
        from repro.core import backend as core_backend
        from repro.core import system as core_system
        from repro.dfm import backend as dfm_backend
        from repro.sfm import backend as sfm_backend
        from repro.tiering import protocol

        assert sfm_backend.SwapOutcome is protocol.SwapOutcome
        assert core_backend.SwapOutcome is protocol.SwapOutcome
        assert core_system.SwapOutcome is protocol.SwapOutcome
        assert dfm_backend.SwapOutcome is protocol.SwapOutcome

    def test_ratio_property(self):
        outcome = SwapOutcome(accepted=True, compressed_len=PAGE_SIZE // 4)
        assert outcome.ratio == 4.0
        assert SwapOutcome(accepted=False).ratio == 0.0


class TestDfmRegistryBugfix:
    """DfmBackend counters historically never reached MetricsRegistry."""

    def test_counters_and_link_accounting_exported(self):
        registry = MetricsRegistry()
        backend = DfmBackend(capacity_bytes=16 * PAGE_SIZE, registry=registry)
        page = Page(vaddr=0, data=b"\xAB" * PAGE_SIZE)
        assert backend.swap_out(page).accepted
        assert backend.swap_in(page) == b"\xAB" * PAGE_SIZE
        snapshot = registry.snapshot()
        assert snapshot["swap.swap_outs{tier=dfm}"] == 1
        assert snapshot["swap.swap_ins{tier=dfm}"] == 1
        assert snapshot["dfm.link_energy_j{tier=dfm}"] > 0
        assert snapshot["dfm.link_busy_s{tier=dfm}"] > 0
        # Attribute surface still works, including augmented assignment.
        assert backend.link_energy_j == snapshot["dfm.link_energy_j{tier=dfm}"]
        backend.link_energy_j += 1.0
        assert registry.snapshot()["dfm.link_energy_j{tier=dfm}"] == (
            snapshot["dfm.link_energy_j{tier=dfm}"] + 1.0
        )

    def test_default_registry_is_private_but_present(self):
        backend = DfmBackend(capacity_bytes=16 * PAGE_SIZE)
        page = Page(vaddr=0, data=b"\x11" * PAGE_SIZE)
        backend.swap_out(page)
        assert backend.registry.snapshot()["swap.swap_outs{tier=dfm}"] == 1


def test_pipeline_is_a_tier():
    pipeline = TierPipeline.build(
        cpu_capacity_bytes=32 * PAGE_SIZE,
        xfm_capacity_bytes=32 * PAGE_SIZE,
        dfm_capacity_bytes=32 * PAGE_SIZE,
    )
    assert isinstance(pipeline, FarMemoryTier)
    assert pipeline.capacity_bytes == 96 * PAGE_SIZE
    assert pipeline.tier_names == ["cpu-zswap", "xfm", "dfm"]
