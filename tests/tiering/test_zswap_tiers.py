"""ZswapFrontend over every tier: pool-limit pressure and writeback.

The satellite coverage: shrink/writeback semantics must hold no matter
which FarMemoryTier sits under the frontend — compressed CPU pool,
XFM-accelerated pool, multi-channel XFM, raw DFM, or the whole 3-tier
pipeline.
"""

import pytest

from repro.core.backend import XfmBackend
from repro.core.system import MultiChannelXfmBackend
from repro.dfm.backend import DfmBackend
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zswap import ZswapFrontend
from repro.tiering import NeverDemote, TierPipeline
from repro.workloads.corpus import corpus_pages

TIERS = {
    "cpu": lambda: SfmBackend(capacity_bytes=64 * PAGE_SIZE),
    "xfm": lambda: XfmBackend(capacity_bytes=64 * PAGE_SIZE),
    "xfm-mc": lambda: MultiChannelXfmBackend(capacity_bytes=64 * PAGE_SIZE),
    "dfm": lambda: DfmBackend(capacity_bytes=64 * PAGE_SIZE),
    "pipeline": lambda: TierPipeline.build(
        cpu_capacity_bytes=32 * PAGE_SIZE,
        xfm_capacity_bytes=16 * PAGE_SIZE,
        dfm_capacity_bytes=16 * PAGE_SIZE,
        demotion=NeverDemote(),
    ),
}


def _frontend(tier, max_pool_percent=10, total_pages=40, with_device=True):
    swap_device = {}

    def writeback(swap_type, offset, data):
        swap_device[(swap_type, offset)] = data

    frontend = ZswapFrontend(
        TIERS[tier](),
        total_ram_bytes=total_pages * PAGE_SIZE,
        max_pool_percent=max_pool_percent,
        writeback=writeback if with_device else None,
    )
    return frontend, swap_device


@pytest.mark.parametrize("tier", list(TIERS), ids=list(TIERS))
class TestPoolPressureEveryTier:
    def test_writeback_keeps_stores_succeeding(self, tier):
        frontend, swap_device = _frontend(tier)
        pages = corpus_pages("json-records", 24, seed=91)
        assert all(
            frontend.store(0, i, page) for i, page in enumerate(pages)
        )
        assert frontend.stats.reject_pool_limit == 0
        # The 4-page pool budget forces evictions on every tier; raw
        # tiers (DFM) hit it soonest.
        assert frontend.stats.written_back > 0
        assert swap_device

    def test_rejects_without_writeback(self, tier):
        frontend, _ = _frontend(tier, with_device=False)
        pages = corpus_pages("json-records", 24, seed=92)
        results = [
            frontend.store(0, i, page) for i, page in enumerate(pages)
        ]
        assert not all(results)
        assert frontend.stats.reject_pool_limit > 0
        # Usage stays at (or, for the store that tripped the limit,
        # barely past) the pool budget on every tier.
        assert frontend.pool_usage_bytes() <= (
            frontend.pool_limit_bytes() + PAGE_SIZE
        )

    def test_every_page_recoverable(self, tier):
        """Kernel contract: each page is in zswap XOR on the device."""
        frontend, swap_device = _frontend(tier)
        pages = corpus_pages("server-log", 24, seed=93)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
        for i, expect in enumerate(pages):
            got = frontend.load(0, i)
            if got is None:
                got = swap_device[(0, i)]
            assert got == expect, f"page {i} lost on tier {tier}"

    def test_invalidate_frees_pool_space(self, tier):
        frontend, _ = _frontend(tier, max_pool_percent=50)
        pages = corpus_pages("json-records", 8, seed=94)
        for i, page in enumerate(pages):
            assert frontend.store(0, i, page)
        used = frontend.pool_usage_bytes()
        for i in range(8):
            frontend.invalidate_page(0, i)
        assert frontend.pool_usage_bytes() < used
        assert frontend.stats.invalidates == 8
        assert frontend.backend.stored_pages() == 0

    def test_lru_order_respected(self, tier):
        frontend, swap_device = _frontend(tier)
        pages = corpus_pages("json-records", 24, seed=95)
        for i, page in enumerate(pages):
            frontend.store(0, i, page)
        evicted = sorted(offset for _, offset in swap_device)
        assert evicted, f"no writeback happened on tier {tier}"
        assert evicted[0] == 0  # the oldest store went first


def test_shrink_requires_writeback():
    from repro.errors import ConfigError

    frontend, _ = _frontend("cpu", with_device=False)
    with pytest.raises(ConfigError):
        frontend.shrink()
