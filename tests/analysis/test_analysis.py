"""Analysis layer tests: figure data generators, tables, rendering."""

import pytest

from repro.analysis.figures import (
    fig11_interference,
    fig12_fallbacks,
    fig1_bandwidth_series,
    fig8_ratios,
    max_supported_sfm_gb,
    refresh_budget_summary,
    side_channel_gbps,
)
from repro.analysis.report import format_table
from repro.analysis.tables import (
    TABLE1_HEADERS,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.interference.corun import SfmMode


class TestFig1:
    def test_cpu_traffic_scales_with_ranks(self):
        points = fig1_bandwidth_series(rank_counts=(8, 16, 32))
        assert points[1].cpu_sfm_channel_gbps == pytest.approx(
            2 * points[0].cpu_sfm_channel_gbps
        )
        # Per-rank XFM demand stays flat.
        assert points[0].xfm_per_rank_gbps == pytest.approx(
            points[2].xfm_per_rank_gbps
        )

    def test_xfm_per_rank_within_side_channel(self):
        for point in fig1_bandwidth_series():
            assert point.xfm_utilization < 1.0

    def test_cpu_utilization_grows(self):
        points = fig1_bandwidth_series(rank_counts=(8, 64))
        assert points[1].cpu_utilization > points[0].cpu_utilization

    def test_side_channel_bandwidth(self):
        # 4 accesses x 4 KiB per 3.906 us ~ 4.2 GB/s.
        assert side_channel_gbps() == pytest.approx(4.19, abs=0.05)

    def test_max_sfm_capacity_claim(self):
        """The paper: XFM eliminates SFM bandwidth for capacities up to
        ~1 TB. A 16-rank server supports >= 1 TB at 100% promotion."""
        assert max_supported_sfm_gb(num_ranks=16) >= 1000.0
        assert max_supported_sfm_gb(num_ranks=8) >= 500.0


class TestFig8:
    def test_reports_cover_corpora(self):
        reports = fig8_ratios(
            corpora=("json-records", "random-bytes"), pages_per_corpus=2
        )
        assert [r.corpus for r in reports] == ["json-records", "random-bytes"]
        for report in reports:
            assert set(report.stored_ratio) == {1, 2, 4}


class TestFig11:
    def test_all_modes_present(self):
        results = fig11_interference()
        assert set(results["default-mix"]) == set(SfmMode)


class TestFig12:
    def test_grid_shape(self):
        grid = fig12_fallbacks(
            promotion_rates=(0.5,),
            spm_sizes_mib=(1, 8),
            accesses_per_ref=(3,),
            sim_time_s=0.02,
        )
        assert len(grid[0.5]) == 2


class TestRefreshBudget:
    def test_section_4_3_numbers(self):
        summary = refresh_budget_summary()
        assert summary["locked_ms_per_retention"] == pytest.approx(2.46, abs=0.01)
        assert summary["locked_fraction"] == pytest.approx(0.077, abs=0.002)
        assert summary["per_dimm_nma_mbps"] == pytest.approx(426.7, abs=1.0)
        assert summary["page_batch_delay_us"] == pytest.approx(3.9, abs=0.1)


class TestTables:
    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert rows[0][0] == "DDR5-8Gb"
        assert [row[-1] for row in rows] == [2, 3, 4]
        assert len(TABLE1_HEADERS) == len(rows[0])

    def test_table2_rows(self):
        rows = table2_rows()
        luts = next(r for r in rows if r[0] == "LUTs")
        assert luts[1] == 435467 and luts[2] == 522720
        # Paper truncates to 83.30%; round-half-up gives 83.31%.
        assert luts[3] in ("83.30%", "83.31%")

    def test_table3_rows(self):
        rows = table3_rows()
        assert rows[-1][0] == "Total"
        assert float(rows[-1][1]) == pytest.approx(7.024)


class TestFormatTable:
    def test_renders_aligned(self):
        text = format_table(
            ["a", "bb"], [[1, 2.5], ["xxx", 10000.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_number_formatting(self):
        text = format_table(["v"], [[0.123456], [12345.0], [0]])
        assert "0.123" in text
        assert "12,345" in text
