"""AMAT model tests: the §2/§3 latency story, quantified."""

import pytest

from repro.analysis.amat import (
    AmatConfig,
    TierLatency,
    amat_s,
    dfm_tier,
    sfm_tier,
    slowdown_vs_local,
    xfm_tier,
)
from repro.dfm.interconnect import RDMA_LINK
from repro.errors import ConfigError


class TestTiers:
    def test_dfm_fault_faster_than_sfm_cpu(self):
        """One CXL round trip beats a software decompression."""
        assert dfm_tier().fault_latency_s < sfm_tier().fault_latency_s

    def test_rdma_slower_than_cxl(self):
        assert (
            dfm_tier(RDMA_LINK).fault_latency_s
            > dfm_tier().fault_latency_s
        )

    def test_xfm_fault_path_is_cpu_path(self):
        """§6: demand faults keep CPU_Fallback; XFM changes hit rates."""
        assert xfm_tier().fault_latency_s == sfm_tier().fault_latency_s

    def test_validation(self):
        with pytest.raises(ConfigError):
            TierLatency(name="bad", fault_latency_s=-1.0)
        with pytest.raises(ConfigError):
            AmatConfig(far_access_fraction=1.5)


class TestAmat:
    def test_no_far_accesses_is_local(self):
        config = AmatConfig(far_access_fraction=0.0)
        assert amat_s(config, sfm_tier()) == config.local_latency_s
        assert slowdown_vs_local(config, sfm_tier()) == 1.0

    def test_far_fraction_scales_penalty(self):
        small = AmatConfig(far_access_fraction=0.01)
        large = AmatConfig(far_access_fraction=0.05)
        tier = sfm_tier()
        assert amat_s(large, tier) > amat_s(small, tier)

    def test_prefetching_hides_fault_latency(self):
        """The XFM argument: aggressive (offloaded) prefetching converts
        fault-path misses into local hits."""
        tier = xfm_tier()
        cold = AmatConfig(far_access_fraction=0.02, prefetch_hit_rate=0.0)
        warm = AmatConfig(far_access_fraction=0.02, prefetch_hit_rate=0.9)
        assert amat_s(warm, tier) < amat_s(cold, tier) / 2

    def test_xfm_with_prefetch_beats_dfm_without(self):
        """A prefetch-heavy XFM-SFM can out-AMAT even a CXL DFM — the
        predictable-access-pattern sweet spot of §1."""
        xfm_warm = amat_s(
            AmatConfig(far_access_fraction=0.02, prefetch_hit_rate=0.95),
            xfm_tier(),
        )
        dfm_cold = amat_s(
            AmatConfig(far_access_fraction=0.02, prefetch_hit_rate=0.0),
            dfm_tier(),
        )
        assert xfm_warm < dfm_cold

    def test_slowdown_ordering_at_equal_hit_rates(self):
        """With no prefetching, DFM < SFM in AMAT (its latency edge)."""
        config = AmatConfig(far_access_fraction=0.02)
        assert slowdown_vs_local(config, dfm_tier()) < slowdown_vs_local(
            config, sfm_tier()
        )
