"""Figure data export tests."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    EXPORTERS,
    fig1_csv,
    fig3_json,
    fig8_csv,
    fig11_json,
    fig12_csv,
    rows_to_csv,
)
from repro.errors import ConfigError


def _parse_csv(text):
    return list(csv.reader(io.StringIO(text)))


class TestRowsToCsv:
    def test_simple(self):
        text = rows_to_csv(["a", "b"], [[1, 2], [3, 4]])
        rows = _parse_csv(text)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            rows_to_csv(["a"], [[1, 2]])


class TestFigureExports:
    def test_fig1(self):
        rows = _parse_csv(fig1_csv(rank_counts=(8, 16)))
        assert rows[0][0] == "num_ranks"
        assert len(rows) == 3

    def test_fig3(self):
        data = json.loads(fig3_json())
        assert "dfm-dram" in data
        assert data["dfm-dram"]["normalized"][0] == 1.0
        assert len(data["sfm-100"]["years"]) == len(
            data["sfm-100"]["normalized"]
        )

    def test_fig8(self):
        rows = _parse_csv(
            fig8_csv(corpora=("json-records",), pages_per_corpus=2)
        )
        assert rows[0] == [
            "corpus", "num_dimms", "stored_ratio", "payload_ratio", "savings",
        ]
        assert len(rows) == 4  # header + 3 dimm configs

    def test_fig11(self):
        data = json.loads(fig11_json())
        modes = data["default-mix"]
        assert set(modes) == {"baseline-cpu", "host-lockout-nma", "xfm"}
        assert modes["xfm"]["spec_max_degradation_pct"] == pytest.approx(0.0)

    def test_fig12(self):
        rows = _parse_csv(
            fig12_csv(
                promotion_rates=(0.5,),
                spm_sizes_mib=(8,),
                accesses_per_ref=(3,),
                sim_time_s=0.02,
            )
        )
        assert len(rows) == 2
        assert float(rows[1][3]) == 0.0  # fallback fraction

    def test_registry(self):
        assert set(EXPORTERS) == {
            "fig1.csv", "fig3.json", "fig8.csv", "fig11.json", "fig12.csv",
        }
