"""Every example script must run clean end to end.

Examples are deliverables, not decoration: each is executed as a real
subprocess (fresh interpreter, no test fixtures) and must exit 0 with the
output markers a reader would look for.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

_EXPECTED_MARKERS = {
    "quickstart.py": ["identical functional behaviour", "DDR channel traffic"],
    "cost_study.py": ["break-even", "Fleet view"],
    "corun_study.py": ["per-workload runtime degradation", "XFM gain"],
    "multichannel_study.py": ["ratio retained", "gather-decompress"],
    "zswap_frontend.py": ["same_filled_pages", "swapoff"],
    "far_memory_app.py": ["swap trace written", "XFM kept"],
    "trace_replay.py": ["time compression", "refresh budget saturate"],
    "scenario_replay.py": [
        "backend-portable replay",
        "deterministic across replays",
    ],
}


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_all_examples_are_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(_EXPECTED_MARKERS), (
        "example scripts and the marker table are out of sync"
    )


@pytest.mark.parametrize("script", sorted(_EXPECTED_MARKERS))
def test_example_runs_clean(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in _EXPECTED_MARKERS[script]:
        assert marker in result.stdout, (
            f"{script} output missing {marker!r}"
        )
