"""Fast-path equivalence tests for :mod:`repro.compression.bitio`.

The aligned ``read_bytes`` slice path and the ``peek_bits``/
``consume_bits`` pair must be bit-for-bit interchangeable with the
bit-serial operations they accelerate.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


def _slow_read_bytes(reader: BitReader, n: int) -> bytes:
    """The seed implementation: one read_bits(8) call per byte."""
    return bytes(reader.read_bits(8) for _ in range(n))


class TestReadBytesFastPath:
    def test_aligned_at_start(self):
        data = bytes(range(64))
        fast = BitReader(data)
        slow = BitReader(data)
        assert fast.read_bytes(64) == _slow_read_bytes(slow, 64)

    def test_aligned_mid_buffer(self):
        """Byte-aligned at a nonzero position: the satellite case."""
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.align_to_byte()
        writer.write_bytes(b"payload-after-alignment")
        blob = writer.getvalue()
        fast, slow = BitReader(blob), BitReader(blob)
        for reader in (fast, slow):
            reader.read_bits(3)
            reader.align_to_byte()
        assert fast.read_bytes(23) == _slow_read_bytes(slow, 23)

    def test_drains_accumulator_bytes_first(self):
        """Whole bytes buffered in the accumulator (from a multi-byte
        refill) come out before the buffer slice."""
        data = b"\x11\x22\x33\x44\x55\x66\x77\x88"
        fast, slow = BitReader(data), BitReader(data)
        for reader in (fast, slow):
            # Pull 16 bits so the 4-byte refill leaves 2 whole bytes
            # sitting in the accumulator.
            assert reader.read_bits(16) == 0x2211
        assert fast.read_bytes(6) == _slow_read_bytes(slow, 6)

    def test_misaligned_still_rejected(self):
        reader = BitReader(b"\xff\xff")
        reader.read_bits(3)
        with pytest.raises(ValueError):
            reader.read_bytes(1)

    def test_overrun_raises_corrupt_stream(self):
        reader = BitReader(b"ab")
        with pytest.raises(CorruptStreamError):
            reader.read_bytes(3)

    def test_zero_bytes(self):
        reader = BitReader(b"x")
        assert reader.read_bytes(0) == b""
        assert reader.read_bytes(1) == b"x"

    @given(
        st.binary(max_size=256),
        st.integers(0, 8),
        st.integers(0, 260),
    )
    def test_matches_slow_path_bit_for_bit(self, data, skip_bytes, n):
        """Property: any aligned position, any length — identical bytes
        and identical success/failure behaviour."""
        fast, slow = BitReader(data), BitReader(data)
        if skip_bytes * 8 > len(data) * 8:
            return
        for reader in (fast, slow):
            if skip_bytes:
                reader.read_bits(8 * skip_bytes)
        try:
            expected = _slow_read_bytes(slow, n)
        except CorruptStreamError:
            with pytest.raises(CorruptStreamError):
                fast.read_bytes(n)
            return
        assert fast.read_bytes(n) == expected
        assert fast.bits_remaining == slow.bits_remaining


class TestPeekConsume:
    def test_peek_does_not_consume(self):
        reader = BitReader(b"\xa5\x5a")
        assert reader.peek_bits(8) == 0xA5
        assert reader.peek_bits(8) == 0xA5
        assert reader.read_bits(16) == 0x5AA5

    def test_peek_zero_pads_past_end(self):
        reader = BitReader(b"\x03")
        assert reader.peek_bits(16) == 0x0003

    def test_consume_tracks_reads(self):
        reader = BitReader(b"\xff\x00")
        reader.peek_bits(12)
        reader.consume_bits(4)
        assert reader.read_bits(4) == 0xF

    def test_consume_past_real_end_raises(self):
        reader = BitReader(b"\x01")
        reader.peek_bits(16)  # zero-padded, fine
        with pytest.raises(CorruptStreamError):
            reader.consume_bits(16)

    @given(st.binary(min_size=1, max_size=64), st.integers(1, 20))
    def test_peek_then_consume_equals_read(self, data, nbits):
        if nbits > len(data) * 8:
            return
        via_read = BitReader(data)
        via_peek = BitReader(data)
        expected = via_read.read_bits(nbits)
        assert via_peek.peek_bits(nbits) == expected
        via_peek.consume_bits(nbits)
        assert via_peek.bits_remaining == via_read.bits_remaining
