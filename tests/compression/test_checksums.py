"""Content-checksum tests: every codec must catch silent corruption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.errors import CorruptStreamError

_CODECS = [DeflateCodec(), LzFastCodec(), ZstdLikeCodec()]


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
class TestChecksumEnforced:
    def test_payload_flip_detected(self, codec, json_pages):
        blob = bytearray(codec.compress(json_pages[0]))
        # Flip a byte well into the payload (past headers).
        blob[len(blob) * 3 // 4] ^= 0x40
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(blob))

    def test_checksum_field_flip_detected(self, codec, json_pages):
        blob = bytearray(codec.compress(json_pages[0]))
        # The CRC field sits right after magic/mode/varint; flipping any
        # early byte must also be caught.
        blob[4] ^= 0x01
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(blob))

    def test_stored_mode_also_checksummed(self, codec, random_pages):
        blob = bytearray(codec.compress(random_pages[0]))
        blob[-1] ^= 0x80
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(blob))


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=15)
@given(
    data=st.binary(min_size=64, max_size=1024),
    position=st.floats(0.3, 0.99),
    mask=st.integers(1, 255),
)
def test_any_single_byte_flip_detected(codec, data, position, mask):
    """Property: no single-byte corruption anywhere past the fixed header
    ever yields a successful decode of wrong data."""
    blob = bytearray(codec.compress(data))
    index = min(len(blob) - 1, max(2, int(len(blob) * position)))
    blob[index] ^= mask
    try:
        out = codec.decompress(bytes(blob))
    except CorruptStreamError:
        return
    assert out == data, "corruption decoded silently to wrong bytes"
