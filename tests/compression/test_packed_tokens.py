"""Packed-token equivalence: the hot-path rewrite cannot drift.

Two layers of pinning:

* **Token-sequence equivalence** — a verbatim copy of the seed
  (pre-overhaul) object-based tokenizer lives in this file as the
  reference; the packed tokenizer must emit the identical token sequence
  on every corpus class, every adversarial buffer, and seeded fuzz pages
  from the PR-1 generators.

* **Compressed-byte identity** — CRC32s of the blobs the *seed*
  implementation produced (captured at commit 5beed81, before any hot
  path change) for all three codecs across all sixteen corpus classes.
  Any format or token drift in a future rewrite fails these directly.
"""

import random

import pytest
import zlib
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.deflate import DeflateCodec
from repro.compression.lz77 import (
    MIN_MATCH,
    Literal,
    Lz77Matcher,
    Match,
    detokenize,
    detokenize_packed,
    pack_tokens,
    token_stream_cost,
    token_stream_cost_packed,
)
from repro.compression.lzfast import LzFastCodec
from repro.compression.zstd_like import ZstdLikeCodec
from repro.validation.generators import ADVERSARIAL_BUFFERS, gen_page
from repro.workloads.corpus import CORPUS_NAMES, corpus_pages

# -- reference implementation (seed tokenizer, verbatim) ---------------------

_HASH_SHIFT = 16
_HASH_MULT = 2654435761
_HASH_BITS = 15
_HASH_MASK = (1 << _HASH_BITS) - 1


def _hash3(data, i):
    key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
    return ((key * _HASH_MULT) >> _HASH_SHIFT) & _HASH_MASK


def _reference_best_match(m, data, pos, head, prev):
    limit = len(data)
    if pos + m.min_match > limit:
        return None
    best_len = m.min_match - 1
    best_dist = 0
    max_len = min(m.max_match, limit - pos)
    window_floor = pos - m.window_size
    candidate = head[_hash3(data, pos)]
    chain_budget = m.max_chain
    while candidate >= 0 and candidate >= window_floor and chain_budget > 0:
        chain_budget -= 1
        if (
            best_len >= m.min_match
            and data[candidate + best_len] != data[pos + best_len]
        ):
            candidate = prev[candidate]
            continue
        length = 0
        while length < max_len and data[candidate + length] == data[pos + length]:
            length += 1
        if length > best_len:
            best_len = length
            best_dist = pos - candidate
            if length >= max_len:
                break
        candidate = prev[candidate]
    if best_len >= m.min_match:
        return Match(length=best_len, distance=best_dist)
    return None


def reference_tokenize(m, data):
    """The seed ``Lz77Matcher.tokenize``, object allocation and all."""
    n = len(data)
    tokens = []
    if n == 0:
        return tokens
    head = [-1] * (1 << _HASH_BITS)
    prev = [-1] * n

    def insert(i):
        if i + MIN_MATCH <= n:
            h = _hash3(data, i)
            prev[i] = head[h]
            head[h] = i

    pos = 0
    while pos < n:
        match = _reference_best_match(m, data, pos, head, prev)
        if match is None:
            tokens.append(Literal(data[pos]))
            insert(pos)
            pos += 1
            continue
        if m.lazy and pos + 1 + m.min_match <= n:
            insert(pos)
            next_match = _reference_best_match(m, data, pos + 1, head, prev)
            if next_match is not None and next_match.length > match.length:
                tokens.append(Literal(data[pos]))
                pos += 1
                continue
            tokens.append(match)
            for i in range(pos + 1, pos + match.length):
                insert(i)
            pos += match.length
            continue
        tokens.append(match)
        for i in range(pos, pos + match.length):
            insert(i)
        pos += match.length
    return tokens


def _assert_equivalent(matcher, data):
    reference = reference_tokenize(matcher, data)
    packed = matcher.tokenize_packed(data)
    adapted = matcher.tokenize(data)
    assert adapted == reference
    assert list(packed) == list(pack_tokens(reference))
    assert detokenize_packed(packed) == data
    assert detokenize(adapted) == data
    assert token_stream_cost_packed(packed) == token_stream_cost(reference)


_MATCHER_CONFIGS = (
    {},
    {"window_size": 1024, "max_chain": 16},
    {"window_size": 4096},
    {"lazy": False},
    {"window_size": 128 * 1024, "max_chain": 96},
)


class TestPackedEquivalence:
    @pytest.mark.parametrize("corpus", CORPUS_NAMES)
    def test_all_corpus_classes(self, corpus):
        matcher = Lz77Matcher(window_size=4096)
        for page in corpus_pages(corpus, 2, seed=33):
            _assert_equivalent(matcher, page)

    @pytest.mark.parametrize(
        "data", ADVERSARIAL_BUFFERS, ids=lambda d: f"{len(d)}B"
    )
    def test_adversarial_buffers(self, data):
        for config in _MATCHER_CONFIGS:
            _assert_equivalent(Lz77Matcher(**config), data)

    def test_fuzz_pages_across_configs(self):
        """Seeded PR-1 fuzz pages through every matcher configuration."""
        rng = random.Random(0xC0DEC)
        pages = [gen_page(rng) for _ in range(12)]
        for config in _MATCHER_CONFIGS:
            matcher = Lz77Matcher(**config)
            for page in pages:
                _assert_equivalent(matcher, page)

    @settings(deadline=None, max_examples=30)
    @given(st.binary(max_size=2048))
    def test_arbitrary_bytes_property(self, data):
        _assert_equivalent(Lz77Matcher(window_size=1024, max_chain=16), data)

    @settings(deadline=None, max_examples=15)
    @given(st.binary(min_size=1, max_size=48), st.integers(2, 30))
    def test_repetitive_property(self, chunk, repeats):
        _assert_equivalent(Lz77Matcher(), chunk * repeats)


# -- compressed-byte identity vs the seed implementation ---------------------

#: zlib.crc32 of ``codec.compress(page)`` produced by the pre-overhaul
#: kernels (commit 5beed81) on ``corpus_pages(corpus, 2, seed=33)``.
GOLDEN_BLOB_CRCS = {
    "deflate:base64-blob": [2033680836, 2987753445],
    "deflate:binary-structs": [2551638217, 1535188930],
    "deflate:csv-table": [726266825, 3556245702],
    "deflate:db-btree": [3283631886, 1809755752],
    "deflate:float-matrix": [674487570, 1712529329],
    "deflate:heap-pointers": [552806621, 804764814],
    "deflate:html-markup": [1596670951, 91875110],
    "deflate:integer-array": [3554351039, 2003553437],
    "deflate:json-records": [4252886337, 1840281181],
    "deflate:random-bytes": [3294375240, 3318924845],
    "deflate:server-log": [3275866204, 184359895],
    "deflate:source-code": [988741381, 805781646],
    "deflate:sparse-pages": [4209857504, 860926125],
    "deflate:text-english": [795703595, 500155804],
    "deflate:xml-config": [3628030109, 3055226391],
    "deflate:zero-pages": [110426704, 110426704],
    "lzfast:base64-blob": [905591197, 1351556485],
    "lzfast:binary-structs": [4113586234, 3629963429],
    "lzfast:csv-table": [3705396174, 1113919508],
    "lzfast:db-btree": [219192951, 432923849],
    "lzfast:float-matrix": [3807909628, 1433209291],
    "lzfast:heap-pointers": [650962910, 1725580586],
    "lzfast:html-markup": [4219830341, 489085864],
    "lzfast:integer-array": [1887133426, 2522208087],
    "lzfast:json-records": [237180247, 2584565026],
    "lzfast:random-bytes": [3241890906, 3233136447],
    "lzfast:server-log": [4254133619, 3865853907],
    "lzfast:source-code": [2540642209, 1740401984],
    "lzfast:sparse-pages": [2454964565, 4238913067],
    "lzfast:text-english": [2870287248, 770800523],
    "lzfast:xml-config": [1690030437, 1402761130],
    "lzfast:zero-pages": [3618843886, 3618843886],
    "zstd-like:base64-blob": [58728479, 3358117449],
    "zstd-like:binary-structs": [3283655505, 526043428],
    "zstd-like:csv-table": [1292199262, 4089329792],
    "zstd-like:db-btree": [2946601528, 1493359563],
    "zstd-like:float-matrix": [3334139706, 1898967053],
    "zstd-like:heap-pointers": [3834265891, 2822181719],
    "zstd-like:html-markup": [1427936506, 2341598232],
    "zstd-like:integer-array": [657245126, 1244992238],
    "zstd-like:json-records": [784783410, 2499461565],
    "zstd-like:random-bytes": [3849956764, 3841410809],
    "zstd-like:server-log": [865893622, 3593094440],
    "zstd-like:source-code": [14794354, 3875238551],
    "zstd-like:sparse-pages": [3963575376, 3673044585],
    "zstd-like:text-english": [3831380030, 4147754371],
    "zstd-like:xml-config": [2156333477, 876788913],
    "zstd-like:zero-pages": [1799772536, 1799772536],
}


def _codec_for(name):
    return {
        "deflate": DeflateCodec,
        "lzfast": LzFastCodec,
        "zstd-like": ZstdLikeCodec,
    }[name]()


class TestCompressedByteIdentity:
    @pytest.mark.parametrize("codec_name", ("deflate", "lzfast", "zstd-like"))
    @pytest.mark.parametrize("corpus", CORPUS_NAMES)
    def test_blobs_match_seed_implementation(self, codec_name, corpus):
        codec = _codec_for(codec_name)
        pages = corpus_pages(corpus, 2, seed=33)
        expected = GOLDEN_BLOB_CRCS[f"{codec_name}:{corpus}"]
        for page, crc in zip(pages, expected):
            blob = codec.compress(page)
            assert zlib.crc32(blob) == crc, (
                f"{codec_name} output drifted from the seed implementation "
                f"on corpus {corpus!r}"
            )
            assert codec.decompress(blob) == page
