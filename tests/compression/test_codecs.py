"""Codec-level unit tests: format handling, registry, ratios."""

import pytest

from repro.compression import (
    DeflateCodec,
    LzFastCodec,
    ZstdLikeCodec,
    available_codecs,
    compression_ratio,
    get_codec,
    space_savings,
)
from repro.errors import ConfigError, CorruptStreamError
from repro.sfm.page import PAGE_SIZE


class TestRegistry:
    def test_all_codecs_registered(self):
        assert available_codecs() == ["deflate", "lzfast", "zstd-like"]

    def test_get_codec_with_kwargs(self):
        codec = get_codec("deflate", window_size=1024)
        assert codec.window_size == 1024

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigError):
            get_codec("snappy")


class TestRoundTrips:
    def test_round_trip_spectrum(self, codec, sample_buffers):
        for data in sample_buffers:
            assert codec.decompress(codec.compress(data)) == data

    def test_deterministic(self, codec, json_pages):
        assert codec.compress(json_pages[0]) == codec.compress(json_pages[0])

    def test_incompressible_falls_back_to_stored(self, codec, random_pages):
        blob = codec.compress(random_pages[0])
        # Stored mode: small bounded header only.
        assert len(blob) <= len(random_pages[0]) + 16
        assert codec.decompress(blob) == random_pages[0]


class TestCorruption:
    def test_bad_magic_rejected(self, codec, json_pages):
        blob = bytearray(codec.compress(json_pages[0]))
        blob[0] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(blob))

    def test_truncated_stream_rejected(self, codec, json_pages):
        blob = codec.compress(json_pages[0])
        with pytest.raises(CorruptStreamError):
            codec.decompress(blob[: len(blob) // 2])


class TestRatios:
    def test_ratio_ordering_on_text(self, json_pages):
        """Deflate (entropy-coded) beats the byte-aligned fast codec."""
        data = json_pages[0]
        deflate = compression_ratio(data, DeflateCodec())
        lzfast = compression_ratio(data, LzFastCodec())
        assert deflate > lzfast > 1.2

    def test_zeros_compress_massively(self):
        data = bytes(PAGE_SIZE)
        for cls in (DeflateCodec, LzFastCodec, ZstdLikeCodec):
            assert compression_ratio(data, cls()) > 10

    def test_space_savings_complements_ratio(self, json_pages):
        codec = DeflateCodec()
        ratio = compression_ratio(json_pages[0], codec)
        savings = space_savings(json_pages[0], codec)
        assert savings == pytest.approx(1.0 - 1.0 / ratio)

    def test_empty_buffer_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(b"", DeflateCodec())


class TestWindowEffect:
    def test_smaller_window_never_improves_ratio(self, text_pages):
        """The Fig. 8 mechanism: shrinking the window cannot help."""
        data = b"".join(text_pages[:2])[:PAGE_SIZE]
        big = len(DeflateCodec(window_size=4096).compress(data))
        small = len(DeflateCodec(window_size=256).compress(data))
        assert small >= big


class TestSpecs:
    def test_specs_reflect_algorithm_classes(self):
        """lzo-class is fastest; deflate-class is slowest but densest."""
        deflate = DeflateCodec.spec
        lzfast = LzFastCodec.spec
        zstd = ZstdLikeCodec.spec
        assert lzfast.compress_cycles_per_byte < zstd.compress_cycles_per_byte
        assert zstd.compress_cycles_per_byte < deflate.compress_cycles_per_byte

    def test_mean_cycles_near_paper_constant(self):
        """zstd/lzo average anchors EQ3.4's 7.65 cycles/byte."""
        mean = (
            LzFastCodec.spec.mean_cycles_per_byte
            + ZstdLikeCodec.spec.mean_cycles_per_byte
        ) / 2
        assert 3.0 < mean < 9.0

    def test_throughput_helpers(self):
        spec = ZstdLikeCodec.spec
        assert spec.compress_throughput_bps(2.6e9) == pytest.approx(
            2.6e9 / spec.compress_cycles_per_byte
        )

    def test_deflate_window_cap(self):
        with pytest.raises(ConfigError):
            DeflateCodec(window_size=64 * 1024)

    def test_lzfast_window_bounds(self):
        with pytest.raises(ConfigError):
            LzFastCodec(window_size=1 << 20)
