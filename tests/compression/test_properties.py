"""Hypothesis property tests: every codec round-trips arbitrary bytes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec

_CODECS = [DeflateCodec(), LzFastCodec(), ZstdLikeCodec()]


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=30)
@given(data=st.binary(max_size=4096))
def test_round_trip_arbitrary_bytes(codec, data):
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=20)
@given(
    chunk=st.binary(min_size=1, max_size=32),
    repeats=st.integers(1, 128),
    suffix=st.binary(max_size=64),
)
def test_round_trip_structured_bytes(codec, chunk, repeats, suffix):
    """Repetitive prefix + arbitrary tail — the compressed-page shape."""
    data = chunk * repeats + suffix
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=20)
@given(data=st.binary(min_size=512, max_size=2048))
def test_compress_never_explodes(codec, data):
    """Stored-mode fallback bounds worst-case expansion to the header."""
    assert len(codec.compress(data)) <= len(data) + 16
