"""Property tests: every codec round-trips arbitrary bytes.

Three layers of input: hypothesis-generated binary, every corpus class
in :mod:`repro.workloads.corpus`, and the fixed adversarial shapes from
:data:`repro.validation.generators.ADVERSARIAL_BUFFERS` — plus a seeded
sweep through the :mod:`repro.validation.fuzz` page generator.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.validation.fuzz import Fuzzer
from repro.validation.generators import ADVERSARIAL_BUFFERS, gen_page
from repro.validation.oracles import check_roundtrip
from repro.workloads.corpus import CORPUS_NAMES, corpus_pages

_CODECS = [DeflateCodec(), LzFastCodec(), ZstdLikeCodec()]


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=30)
@given(data=st.binary(max_size=4096))
def test_round_trip_arbitrary_bytes(codec, data):
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=20)
@given(
    chunk=st.binary(min_size=1, max_size=32),
    repeats=st.integers(1, 128),
    suffix=st.binary(max_size=64),
)
def test_round_trip_structured_bytes(codec, chunk, repeats, suffix):
    """Repetitive prefix + arbitrary tail — the compressed-page shape."""
    data = chunk * repeats + suffix
    assert codec.decompress(codec.compress(data)) == data


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@settings(deadline=None, max_examples=20)
@given(data=st.binary(min_size=512, max_size=2048))
def test_compress_never_explodes(codec, data):
    """Stored-mode fallback bounds worst-case expansion to the header."""
    assert len(codec.compress(data)) <= len(data) + 16


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize("corpus", CORPUS_NAMES)
def test_round_trip_every_corpus_class(codec, corpus):
    """All three codecs over every corpus class the workload layer
    generates (the exact page population Fig. 8 measures)."""
    for page in corpus_pages(corpus, 2, seed=77):
        check_roundtrip(codec, page)


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "data",
    ADVERSARIAL_BUFFERS,
    ids=lambda data: f"{len(data)}B-{data[:2].hex() or 'empty'}",
)
def test_round_trip_adversarial_buffers(codec, data):
    """Empty page, 1-byte inputs, all-zero/all-ones pages, repeated
    short periods, and worst-case alternations."""
    check_roundtrip(codec, data)


@pytest.mark.parametrize("codec", _CODECS, ids=lambda c: c.name)
def test_round_trip_fuzzed_pages(codec):
    """A seeded sweep through the structured page generator; failures
    print a single case_seed that reproduces the page."""
    report = Fuzzer(seed=424242, runs=15).run(
        gen_page, lambda page: check_roundtrip(codec, page)
    )
    assert report.cases_run == 15
