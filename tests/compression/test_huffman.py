"""Canonical Huffman coding unit and property tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    HuffmanTable,
    canonical_codes,
    code_lengths_from_frequencies,
    read_code_lengths,
    write_code_lengths,
)
from repro.errors import CorruptStreamError


class TestCodeLengths:
    def test_empty_alphabet(self):
        assert code_lengths_from_frequencies([0, 0, 0]) == [0, 0, 0]

    def test_single_symbol_gets_one_bit(self):
        lengths = code_lengths_from_frequencies([0, 7, 0])
        assert lengths == [0, 1, 0]

    def test_two_symbols(self):
        lengths = code_lengths_from_frequencies([5, 3])
        assert lengths == [1, 1]

    def test_skewed_frequencies_give_shorter_codes(self):
        lengths = code_lengths_from_frequencies([1000, 10, 10, 1])
        assert lengths[0] < lengths[3]

    def test_kraft_inequality_holds(self):
        freqs = [2**i for i in range(20)]
        lengths = code_lengths_from_frequencies(freqs, max_length=15)
        kraft = sum(2.0 ** -l for l in lengths if l)
        assert kraft <= 1.0 + 1e-12

    def test_max_length_enforced(self):
        # Fibonacci-like frequencies force deep trees without a limit.
        freqs = [1, 1]
        for _ in range(30):
            freqs.append(freqs[-1] + freqs[-2])
        lengths = code_lengths_from_frequencies(freqs, max_length=15)
        assert max(lengths) <= 15
        kraft = sum(2.0 ** -l for l in lengths if l)
        assert kraft <= 1.0 + 1e-12


class TestCanonicalCodes:
    def test_canonical_ordering(self):
        codes = canonical_codes([2, 2, 2, 2])
        assert codes == [0b00, 0b01, 0b10, 0b11]

    def test_mixed_lengths(self):
        # lengths [1, 2, 2]: canonical codes 0, 10, 11.
        assert canonical_codes([1, 2, 2]) == [0b0, 0b10, 0b11]

    def test_prefix_free(self):
        lengths = code_lengths_from_frequencies([9, 5, 3, 2, 1, 1])
        codes = canonical_codes(lengths)
        entries = [
            format(codes[s], f"0{lengths[s]}b")
            for s in range(len(lengths))
            if lengths[s]
        ]
        for i, a in enumerate(entries):
            for j, b in enumerate(entries):
                if i != j:
                    assert not b.startswith(a)


class TestEncodeDecode:
    def _round_trip(self, symbols, num_symbols):
        freqs = [0] * num_symbols
        for s in symbols:
            freqs[s] += 1
        table = HuffmanTable.from_frequencies(freqs)
        writer = BitWriter()
        for s in symbols:
            table.encode(writer, s)
        decoder = table.build_decoder()
        reader = BitReader(writer.getvalue())
        return [decoder.decode(reader) for _ in symbols]

    def test_simple_round_trip(self):
        symbols = [0, 1, 1, 2, 2, 2, 3] * 10
        assert self._round_trip(symbols, 4) == symbols

    def test_encoding_unused_symbol_raises(self):
        table = HuffmanTable.from_frequencies([1, 0])
        with pytest.raises(CorruptStreamError):
            table.encode(BitWriter(), 1)

    def test_decoder_rejects_empty_table(self):
        decoder = HuffmanTable.from_lengths([0, 0]).build_decoder()
        with pytest.raises(CorruptStreamError):
            decoder.decode(BitReader(b"\x00"))

    def test_code_length_serialization(self):
        lengths = [0, 4, 9, 15, 0, 1]
        writer = BitWriter()
        write_code_lengths(writer, lengths)
        reader = BitReader(writer.getvalue())
        assert read_code_lengths(reader, len(lengths)) == lengths


@given(st.lists(st.integers(0, 40), min_size=1, max_size=300))
def test_huffman_round_trip_property(symbols):
    """Any symbol stream survives encode/decode with its own table."""
    num_symbols = max(symbols) + 1
    freqs = [0] * num_symbols
    for s in symbols:
        freqs[s] += 1
    table = HuffmanTable.from_frequencies(freqs)
    writer = BitWriter()
    for s in symbols:
        table.encode(writer, s)
    decoder = table.build_decoder()
    reader = BitReader(writer.getvalue())
    assert [decoder.decode(reader) for _ in symbols] == symbols
