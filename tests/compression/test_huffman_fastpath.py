"""Regression tests for the Huffman hot-path rework.

Covers the three overhaul guarantees: one-shot encoding emits the same
bit stream as the seed per-bit MSB loop, the table-driven decoder agrees
with the canonical bit-serial walk on every code (including codes longer
than the root table), and a table builds its decoder exactly once.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    DECODE_ROOT_BITS,
    HuffmanDecoder,
    HuffmanTable,
    reverse_bits,
)
from repro.errors import CorruptStreamError


class TestDecoderCache:
    def test_decoder_built_once_per_table(self, monkeypatch):
        """The per-page decode paths call build_decoder repeatedly; the
        construction must happen once per table instance."""
        builds = []
        original = HuffmanDecoder.__init__

        def counting_init(self, table, *args, **kwargs):
            builds.append(id(table))
            original(self, table, *args, **kwargs)

        monkeypatch.setattr(HuffmanDecoder, "__init__", counting_init)
        table = HuffmanTable.from_frequencies([5, 3, 2, 1])
        first = table.build_decoder()
        for _ in range(10):
            assert table.build_decoder() is first
        assert builds.count(id(table)) == 1

    def test_distinct_tables_get_distinct_decoders(self):
        a = HuffmanTable.from_frequencies([5, 3, 2, 1])
        b = HuffmanTable.from_frequencies([5, 3, 2, 1])
        assert a == b  # equality ignores derived decoder state
        assert a.build_decoder() is not b.build_decoder()


class TestOneShotEncode:
    def test_codes_lsb_is_bit_reversal(self):
        table = HuffmanTable.from_frequencies([9, 5, 3, 2, 1, 1])
        for code, code_lsb, length in zip(
            table.codes, table.codes_lsb, table.lengths
        ):
            if length:
                assert code_lsb == reverse_bits(code, length)

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
    def test_matches_seed_msb_bit_loop(self, symbols):
        """One write_bits call per symbol == the seed's per-bit loop."""
        freqs = [0] * (max(symbols) + 1)
        for s in symbols:
            freqs[s] += 1
        table = HuffmanTable.from_frequencies(freqs)
        fast = BitWriter()
        slow = BitWriter()
        for s in symbols:
            table.encode(fast, s)
            slow.write_bits_msb(table.codes[s], table.lengths[s])
        assert fast.getvalue() == slow.getvalue()


def _serial_decode(decoder: HuffmanDecoder, reader: BitReader) -> int:
    """The seed decoder: canonical counts/offsets walk, one bit at a time."""
    code = 0
    for length in range(1, decoder._max_len + 1):
        code = (code << 1) | reader.read_bit()
        bucket = decoder._symbols_by_length[length]
        index = code - decoder._first_code[length]
        if 0 <= index < len(bucket):
            return bucket[index]
    raise CorruptStreamError("invalid Huffman code in stream")


class TestTableDecoder:
    def _round_trip(self, freqs, symbols):
        table = HuffmanTable.from_frequencies(freqs)
        writer = BitWriter()
        for s in symbols:
            table.encode(writer, s)
        blob = writer.getvalue()
        decoder = table.build_decoder()
        fast_reader, slow_reader = BitReader(blob), BitReader(blob)
        for expected in symbols:
            assert decoder.decode(fast_reader) == expected
            assert _serial_decode(decoder, slow_reader) == expected

    def test_short_codes_via_root_table(self):
        self._round_trip([100, 50, 25, 12], [0, 1, 2, 3] * 20)

    def test_codes_longer_than_root_table(self):
        """Fibonacci frequencies force max-depth codes past the root, so
        the decoder must take the slow path — and still agree."""
        freqs = [1, 1]
        for _ in range(25):
            freqs.append(freqs[-1] + freqs[-2])
        table = HuffmanTable.from_frequencies(freqs)
        assert max(table.lengths) > DECODE_ROOT_BITS
        rare = table.lengths.index(max(table.lengths))
        common = table.lengths.index(min(l for l in table.lengths if l))
        self._round_trip(freqs, [rare, common, rare, rare, common])

    def test_truncated_stream_raises(self):
        table = HuffmanTable.from_frequencies([1, 1, 1, 1, 1, 1, 1])
        writer = BitWriter()
        table.encode(writer, 3)
        blob = writer.getvalue()
        decoder = table.build_decoder()
        reader = BitReader(blob)
        decoder.decode(reader)
        # The zero padding of the flushed byte is not a valid full
        # symbol run forever: exhausting the stream must raise.
        with pytest.raises(CorruptStreamError):
            for _ in range(20):
                decoder.decode(reader)

    @given(
        st.lists(st.integers(0, 60), min_size=2, max_size=400),
        st.integers(1, 4),
    )
    def test_agrees_with_serial_decoder_property(self, symbols, root_bits):
        """Differential: tiny root tables force constant slow-path use;
        both decoders must emit identical symbols from identical bits."""
        freqs = [0] * (max(symbols) + 1)
        for s in symbols:
            freqs[s] += 1
        table = HuffmanTable.from_frequencies(freqs)
        writer = BitWriter()
        for s in symbols:
            table.encode(writer, s)
        blob = writer.getvalue()
        small = HuffmanDecoder(table, root_bits=root_bits)
        full = HuffmanDecoder(table)
        readers = [BitReader(blob) for _ in range(3)]
        for expected in symbols:
            assert small.decode(readers[0]) == expected
            assert full.decode(readers[1]) == expected
            assert _serial_decode(full, readers[2]) == expected
