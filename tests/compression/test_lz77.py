"""LZ77 tokenizer unit and property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lz77 import (
    Literal,
    Lz77Matcher,
    Match,
    detokenize,
    token_stream_cost,
)
from repro.errors import ConfigError


class TestTokens:
    def test_literal_range_checked(self):
        with pytest.raises(ValueError):
            Literal(300)

    def test_match_length_bounds(self):
        with pytest.raises(ValueError):
            Match(length=2, distance=1)
        with pytest.raises(ValueError):
            Match(length=300, distance=1)

    def test_match_distance_positive(self):
        with pytest.raises(ValueError):
            Match(length=3, distance=0)


class TestMatcher:
    def test_empty_input(self):
        assert Lz77Matcher().tokenize(b"") == []

    def test_incompressible_is_all_literals(self):
        data = bytes(range(64))
        tokens = Lz77Matcher().tokenize(data)
        assert all(isinstance(t, Literal) for t in tokens)
        assert detokenize(tokens) == data

    def test_repetition_produces_matches(self):
        data = b"abcabcabcabcabcabc"
        tokens = Lz77Matcher().tokenize(data)
        assert any(isinstance(t, Match) for t in tokens)
        assert detokenize(tokens) == data

    def test_overlapping_match(self):
        # Run-length case: distance < length requires overlapped copy.
        data = b"a" * 100
        tokens = Lz77Matcher().tokenize(data)
        matches = [t for t in tokens if isinstance(t, Match)]
        assert matches and matches[0].distance == 1
        assert detokenize(tokens) == data

    def test_window_limits_match_distance(self):
        window = 64
        matcher = Lz77Matcher(window_size=window, lazy=False)
        pattern = bytes(range(32))
        data = pattern + bytes(200) + pattern
        tokens = matcher.tokenize(data)
        for token in tokens:
            if isinstance(token, Match):
                assert token.distance <= window
        assert detokenize(tokens) == data

    def test_small_window_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Matcher(window_size=4)

    def test_bad_match_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Lz77Matcher(min_match=2)

    def test_lazy_never_worse_than_greedy(self, json_pages):
        data = json_pages[0]
        lazy = Lz77Matcher(lazy=True).tokenize(data)
        greedy = Lz77Matcher(lazy=False).tokenize(data)
        assert detokenize(lazy) == data
        assert detokenize(greedy) == data
        # Lazy matching should not produce a longer token stream.
        assert len(lazy) <= len(greedy) * 1.05

    def test_token_stream_cost_equals_length(self, text_pages):
        data = text_pages[0]
        tokens = Lz77Matcher().tokenize(data)
        assert token_stream_cost(tokens) == len(data)


def test_detokenize_rejects_bad_distance():
    with pytest.raises(ValueError):
        detokenize([Match(length=3, distance=5)])


@settings(deadline=None, max_examples=40)
@given(st.binary(max_size=2048))
def test_lz77_round_trip_property(data):
    matcher = Lz77Matcher(window_size=1024, max_chain=16)
    assert detokenize(matcher.tokenize(data)) == data


@settings(deadline=None, max_examples=20)
@given(
    st.binary(min_size=1, max_size=64),
    st.integers(2, 40),
)
def test_lz77_round_trip_repetitive_property(chunk, repeats):
    """Highly repetitive inputs (the SFM-relevant case) round-trip."""
    data = chunk * repeats
    assert detokenize(Lz77Matcher().tokenize(data)) == data
