"""Native C hot-path kernels vs the pure-Python/numpy reference.

The accelerator contract is byte-identity: ``_hotpath.c`` is a
decision-for-decision translation, so flipping ``REPRO_NO_NATIVE`` must
change *nothing* about any emitted blob or decoded page. These tests
run each codec twice — native allowed, native forbidden — over the same
corpus and compare output bytes, which also pins the golden-CRC suite
to a single answer regardless of which engine a CI host loads.
"""

import os

import pytest

from repro.compression import _native
from repro.compression.deflate import DeflateCodec, train_static_tables
from repro.compression.lzfast import LzFastCodec
from repro.workloads.corpus import CORPUS_NAMES, corpus_pages


@pytest.fixture
def no_native(monkeypatch):
    """Force the pure-Python engines for the duration of one test."""
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    _native.reset_for_tests()
    yield
    monkeypatch.delenv("REPRO_NO_NATIVE", raising=False)
    _native.reset_for_tests()


def _corpus():
    return [
        page
        for corpus in sorted(CORPUS_NAMES)
        for page in corpus_pages(corpus, 2, seed=21)
    ] + [b"", b"\x00" * 4096, b"a" * 4096]


@pytest.mark.skipif(
    not _native.available() and not os.environ.get("REPRO_NO_NATIVE"),
    reason="no native kernels on this host; differential is vacuous",
)
class TestNativeVsPython:
    def test_deflate_blobs_byte_identical(self, no_native):
        pages = _corpus()
        python_blobs = DeflateCodec().compress_batch(pages)
        _native.reset_for_tests()
        del os.environ["REPRO_NO_NATIVE"]
        native_codec = DeflateCodec()
        assert native_codec.compress_batch(pages) == python_blobs
        assert native_codec.decompress_batch(python_blobs) == pages

    def test_lzfast_blobs_byte_identical(self, no_native):
        pages = _corpus()
        python_blobs = LzFastCodec().compress_batch(pages)
        _native.reset_for_tests()
        del os.environ["REPRO_NO_NATIVE"]
        native_codec = LzFastCodec()
        assert native_codec.compress_batch(pages) == python_blobs
        assert native_codec.decompress_batch(python_blobs) == pages

    def test_static_mode_blobs_byte_identical(self, no_native):
        pages = [p for p in _corpus() if p]
        tables = train_static_tables(pages, domain="diff")
        static = DeflateCodec(window_size=4096, static_tables=tables)
        python_blobs = static.compress_batch(pages)
        _native.reset_for_tests()
        del os.environ["REPRO_NO_NATIVE"]
        tables2 = train_static_tables(pages, domain="diff")
        assert tables2.table_id == tables.table_id
        static2 = DeflateCodec(window_size=4096, static_tables=tables2)
        assert static2.compress_batch(pages) == python_blobs
        # Cross-engine decode: native decoder reads python-encoded
        # blobs (and the plain codec reads mode-3 registry-free).
        assert DeflateCodec().decompress_batch(python_blobs) == pages
