"""Bit-level I/O unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import CorruptStreamError


class TestBitWriter:
    def test_single_byte_lsb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0b11, 2)
        # bits so far (LSB first): 1, 1, 1 -> 0b00000111
        assert writer.getvalue() == bytes([0b00000111])

    def test_multi_byte_value(self):
        writer = BitWriter()
        writer.write_bits(0xABCD, 16)
        assert writer.getvalue() == bytes([0xCD, 0xAB])

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(0, -1)

    def test_msb_write_order(self):
        writer = BitWriter()
        writer.write_bits_msb(0b10, 2)
        # MSB-first: 1 then 0 -> LSB packing gives 0b01.
        assert writer.getvalue() == bytes([0b01])

    def test_align_pads_with_zeros(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.align_to_byte()
        writer.write_bytes(b"\xff")
        assert writer.getvalue() == b"\x01\xff"

    def test_write_bytes_requires_alignment(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        with pytest.raises(ValueError):
            writer.write_bytes(b"x")

    def test_bit_length_tracks_writes(self):
        writer = BitWriter()
        writer.write_bits(0, 3)
        writer.write_bits(0, 7)
        assert writer.bit_length == 10


class TestBitReader:
    def test_round_trip_fields(self):
        writer = BitWriter()
        fields = [(5, 3), (0, 1), (1023, 10), (77, 7), (1, 1)]
        for value, nbits in fields:
            writer.write_bits(value, nbits)
        reader = BitReader(writer.getvalue())
        for value, nbits in fields:
            assert reader.read_bits(nbits) == value

    def test_exhaustion_raises(self):
        reader = BitReader(b"\x01")
        reader.read_bits(8)
        with pytest.raises(CorruptStreamError):
            reader.read_bits(1)

    def test_align_then_read_bytes(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.align_to_byte()
        writer.write_bytes(b"hello")
        reader = BitReader(writer.getvalue())
        reader.read_bits(1)
        reader.align_to_byte()
        assert reader.read_bytes(5) == b"hello"

    def test_bits_remaining_upper_bound(self):
        reader = BitReader(b"\x00\x00")
        assert reader.bits_remaining == 16
        reader.read_bits(3)
        assert reader.bits_remaining == 13


@given(st.lists(st.tuples(st.integers(0, 2**20 - 1), st.integers(1, 20)),
                min_size=1, max_size=64))
def test_bitio_round_trip_property(fields):
    """Any sequence of (value mod 2^nbits, nbits) writes reads back."""
    writer = BitWriter()
    expected = []
    for value, nbits in fields:
        value &= (1 << nbits) - 1
        expected.append((value, nbits))
        writer.write_bits(value, nbits)
    reader = BitReader(writer.getvalue())
    for value, nbits in expected:
        assert reader.read_bits(nbits) == value
