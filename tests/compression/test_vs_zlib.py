"""External-reference checks: our from-scratch Deflate vs stdlib zlib.

zlib is not used by the library (every codec is from scratch), but it is
the canonical implementation of the same algorithm family, so it anchors
two claims: our compressed sizes are in the right neighborhood (the
ratio *inputs* to Fig. 8 are realistic), and our relative ordering across
corpora matches the reference (more-compressible stays more-compressible).
"""

import zlib

import pytest

from repro.compression import DeflateCodec
from repro.workloads.corpus import corpus_pages

_CORPORA = (
    "text-english",
    "source-code",
    "json-records",
    "server-log",
    "db-btree",
    "heap-pointers",
    "binary-structs",
    "random-bytes",
)


def _sizes(corpus: str):
    pages = corpus_pages(corpus, 4, seed=55)
    codec = DeflateCodec(window_size=4096)
    ours = sum(len(codec.compress(page)) for page in pages)
    reference = sum(
        len(zlib.compress(page, 6)) for page in pages
    )
    return ours, reference, sum(len(page) for page in pages)


class TestAgainstZlib:
    @pytest.mark.parametrize("corpus", _CORPORA)
    def test_compressed_size_within_band(self, corpus):
        """Within 25% of zlib -6 on every corpus (we lack zlib's tuned
        match heuristics; a fixed honest gap is expected)."""
        ours, reference, _ = _sizes(corpus)
        assert ours <= reference * 1.25, (
            f"{corpus}: ours {ours} vs zlib {reference}"
        )

    def test_never_absurdly_better(self):
        """Sanity in the other direction: beating zlib by >20% on normal
        data would indicate a measurement bug, not brilliance."""
        for corpus in ("text-english", "json-records", "server-log"):
            ours, reference, _ = _sizes(corpus)
            assert ours >= reference * 0.8, corpus

    def test_ratio_ordering_matches_reference(self):
        """Corpora sorted by our ratio and by zlib's ratio agree on the
        broad order (Spearman-style check on the extremes)."""
        measured = {}
        for corpus in _CORPORA:
            ours, reference, total = _sizes(corpus)
            measured[corpus] = (total / ours, total / reference)
        our_order = sorted(measured, key=lambda c: measured[c][0])
        ref_order = sorted(measured, key=lambda c: measured[c][1])
        # The least and most compressible corpora agree exactly.
        assert our_order[0] == ref_order[0]
        assert our_order[-1] in ref_order[-2:]

    def test_zlib_cannot_decode_our_format(self, json_pages):
        """Our container is deflate-*style*, not RFC 1950/1951 bit-exact —
        make sure nobody assumes interchange."""
        blob = DeflateCodec().compress(json_pages[0])
        with pytest.raises(zlib.error):
            zlib.decompress(blob)
