"""External-reference checks: our from-scratch Deflate vs stdlib zlib.

zlib is not used by the library (every codec is from scratch), but it is
the canonical implementation of the same algorithm family, so it anchors
two claims: our compressed sizes are in the right neighborhood (the
ratio *inputs* to Fig. 8 are realistic), and our relative ordering across
corpora matches the reference (more-compressible stays more-compressible).
"""

import zlib

import pytest

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.validation.generators import ADVERSARIAL_BUFFERS
from repro.validation.oracles import OracleMismatch, crosscheck_vs_zlib
from repro.workloads.corpus import corpus_pages

_CORPORA = (
    "text-english",
    "source-code",
    "json-records",
    "server-log",
    "db-btree",
    "heap-pointers",
    "binary-structs",
    "random-bytes",
)


def _sizes(corpus: str):
    pages = corpus_pages(corpus, 4, seed=55)
    codec = DeflateCodec(window_size=4096)
    ours = sum(len(codec.compress(page)) for page in pages)
    reference = sum(
        len(zlib.compress(page, 6)) for page in pages
    )
    return ours, reference, sum(len(page) for page in pages)


class TestAgainstZlib:
    @pytest.mark.parametrize("corpus", _CORPORA)
    def test_compressed_size_within_band(self, corpus):
        """Within 25% of zlib -6 on every corpus (we lack zlib's tuned
        match heuristics; a fixed honest gap is expected)."""
        ours, reference, _ = _sizes(corpus)
        assert ours <= reference * 1.25, (
            f"{corpus}: ours {ours} vs zlib {reference}"
        )

    def test_never_absurdly_better(self):
        """Sanity in the other direction: beating zlib by >20% on normal
        data would indicate a measurement bug, not brilliance."""
        for corpus in ("text-english", "json-records", "server-log"):
            ours, reference, _ = _sizes(corpus)
            assert ours >= reference * 0.8, corpus

    def test_ratio_ordering_matches_reference(self):
        """Corpora sorted by our ratio and by zlib's ratio agree on the
        broad order (Spearman-style check on the extremes)."""
        measured = {}
        for corpus in _CORPORA:
            ours, reference, total = _sizes(corpus)
            measured[corpus] = (total / ours, total / reference)
        our_order = sorted(measured, key=lambda c: measured[c][0])
        ref_order = sorted(measured, key=lambda c: measured[c][1])
        # The least and most compressible corpora agree exactly.
        assert our_order[0] == ref_order[0]
        assert our_order[-1] in ref_order[-2:]

    def test_zlib_cannot_decode_our_format(self, json_pages):
        """Our container is deflate-*style*, not RFC 1950/1951 bit-exact —
        make sure nobody assumes interchange."""
        blob = DeflateCodec().compress(json_pages[0])
        with pytest.raises(zlib.error):
            zlib.decompress(blob)


class TestDifferentialOracle:
    """The :func:`crosscheck_vs_zlib` oracle from ``repro.validation``:
    both stacks must restore the same plaintext; for the Deflate family
    the compressed size must additionally land in a band around zlib's."""

    @pytest.mark.parametrize("corpus", _CORPORA)
    def test_deflate_in_band_on_corpora(self, corpus):
        for page in corpus_pages(corpus, 2, seed=55):
            ours, reference = crosscheck_vs_zlib(
                DeflateCodec(window_size=4096), page, size_band=(0.7, 1.4)
            )
            assert ours > 0 and reference > 0

    @pytest.mark.parametrize(
        "codec",
        [DeflateCodec(), LzFastCodec(), ZstdLikeCodec()],
        ids=lambda codec: codec.name,
    )
    @pytest.mark.parametrize(
        "data",
        ADVERSARIAL_BUFFERS,
        ids=lambda data: f"{len(data)}B",
    )
    def test_semantic_agreement_on_adversarial_buffers(self, codec, data):
        """No size band (the ratio-oriented codecs are not Deflate), but
        both stacks must round-trip every adversarial shape."""
        crosscheck_vs_zlib(codec, data)

    def test_oracle_reports_out_of_band_sizes(self, json_pages):
        with pytest.raises(OracleMismatch, match="outside"):
            crosscheck_vs_zlib(
                DeflateCodec(), json_pages[0], size_band=(0.999, 1.001)
            )
