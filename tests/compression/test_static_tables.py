"""Static-table registry, mode-3 blob self-description, and the
deterministic auto-tuner."""

import json

import pytest

from repro.compression.deflate import (
    DeflateCodec,
    StaticTableSet,
    train_static_tables,
)
from repro.compression.static_tables import (
    DEFAULT_TABLES_PATH,
    StaticTableRegistry,
    TableEntry,
)
from repro.compression.tuning import (
    DEFAULT_GRID,
    make_tuner,
    stride_sample,
    tune_domain,
)
from repro.errors import ConfigError, ManifestError
from repro.workloads.corpus import corpus_pages


@pytest.fixture(scope="module")
def json_pages():
    return corpus_pages("json-records", 12, seed=7)


@pytest.fixture(scope="module")
def trained(json_pages):
    registry = StaticTableRegistry()
    registry.train(json_pages, "json-test", source_label="unit-test")
    return registry


class TestMode3SelfDescription:
    def test_static_blob_decodes_without_any_registry(
        self, trained, json_pages
    ):
        """The acceptance criterion: a mode-3 blob must carry its own
        tables. A bare default codec — no registry, no tables — decodes
        it."""
        static_codec = trained.codec_for("json-test")
        for page in json_pages[:4]:
            blob = static_codec.compress(page)
            assert blob[1] == 3  # mode byte: static-table block
            assert DeflateCodec().decompress(blob) == page

    def test_dynamic_blobs_remain_decodable_by_static_codec(
        self, trained, json_pages
    ):
        """Table rollout is not a format break in either direction."""
        static_codec = trained.codec_for("json-test")
        dynamic_blob = DeflateCodec().compress(json_pages[0])
        assert static_codec.decompress(dynamic_blob) == json_pages[0]

    def test_untrained_bytes_round_trip_through_static_codec(self, trained):
        """Pages whose symbols the trained tables cannot code must fall
        back to dynamic/stored modes, never fail."""
        static_codec = trained.codec_for("json-test")
        for data in (b"", b"\x00" * 4096, bytes(range(256)) * 16):
            blob = static_codec.compress(data)
            assert static_codec.decompress(blob) == data
            assert DeflateCodec().decompress(blob) == data

    def test_table_id_is_derived_from_lengths(self, trained):
        entry = trained.get("json-test")
        rebuilt = StaticTableSet(
            list(entry.tables.litlen_table.lengths),
            list(entry.tables.dist_table.lengths),
            domain="renamed",
        )
        assert rebuilt.table_id == entry.tables.table_id
        assert trained.by_table_id(entry.tables.table_id) is entry
        assert trained.by_table_id(0xDEADBEEF) is None


class TestRegistryPersistence:
    def test_save_load_round_trip_is_byte_identical(self, trained, tmp_path):
        path = tmp_path / "tables.json"
        trained.save(path)
        loaded = StaticTableRegistry.load(path)
        assert loaded.domains() == trained.domains()
        second = tmp_path / "tables2.json"
        loaded.save(second)
        assert path.read_bytes() == second.read_bytes()

    def test_loaded_tables_produce_identical_blobs(
        self, trained, json_pages, tmp_path
    ):
        path = trained.save(tmp_path / "tables.json")
        loaded = StaticTableRegistry.load(path)
        original = trained.codec_for("json-test")
        restored = loaded.codec_for("json-test")
        assert restored.compress_batch(json_pages) == (
            original.compress_batch(json_pages)
        )

    def test_tampered_table_id_rejected(self, trained, tmp_path):
        path = trained.save(tmp_path / "tables.json")
        doc = json.loads(path.read_text())
        doc["entries"]["json-test"]["table_id"] ^= 1
        path.write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="declared id"):
            StaticTableRegistry.load(path)

    def test_unsupported_schema_rejected(self, trained, tmp_path):
        path = trained.save(tmp_path / "tables.json")
        doc = json.loads(path.read_text())
        doc["schema"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="schema"):
            StaticTableRegistry.load(path)

    def test_missing_domain_raises_config_error(self, trained):
        with pytest.raises(ConfigError, match="no static tables"):
            trained.get("nope")
        assert trained.find("nope") is None
        assert "nope" not in trained
        assert "json-test" in trained

    def test_packaged_artifact_loads_and_covers_source(self):
        """The shipped default (trained on this repo's tree by
        ``python -m repro codectune``) must stay loadable and include
        the source domain — the corpus the tentpole targets first."""
        assert DEFAULT_TABLES_PATH.exists()
        registry = StaticTableRegistry.load_default()
        assert registry is not None and "source" in registry
        entry = registry.get("source")
        assert entry.num_pages > 0
        codec = registry.codec_for("source")
        # On the corpus the tables were trained for, static mode must
        # actually win the per-page mode election on some pages (the
        # encoder picks the smallest of stored/fixed/dynamic/static).
        from repro.workloads.ingested import ingested_corpus_pages

        pages = ingested_corpus_pages("source", 12)
        blobs = codec.compress_batch(pages)
        assert any(blob[1] == 3 for blob in blobs)
        plain = DeflateCodec()
        assert [plain.decompress(blob) for blob in blobs] == pages


class TestTuner:
    def test_stride_sample_spans_corpus(self):
        pages = [bytes([i]) for i in range(100)]
        sample = stride_sample(pages, 10)
        assert len(sample) == 10
        assert sample[0] == pages[0] and sample[-1] == pages[90]
        assert stride_sample(pages, 200) == pages
        with pytest.raises(ConfigError):
            stride_sample(pages, 0)

    def test_tune_domain_is_deterministic(self, json_pages):
        first = tune_domain("json-test", json_pages)
        second = tune_domain("json-test", json_pages)
        assert first == second
        assert (first.window_size, first.max_chain, first.lazy) in [
            (w, c, lz) for w, c, lz in DEFAULT_GRID
        ]
        assert first.ratio > 1.0

    def test_ties_prefer_cheapest_search(self):
        # One tiny incompressible page: every config stores it, so every
        # grid point scores identically and the tie-break must pick the
        # shallowest chain, then the smallest window, greedy over lazy.
        pages = [bytes(range(64))]
        choice = tune_domain("tie", pages)
        candidates = sorted((c, w, lz) for w, c, lz in DEFAULT_GRID)
        assert (
            choice.max_chain,
            choice.window_size,
            choice.lazy,
        ) == candidates[0]

    def test_make_tuner_records_choices(self, json_pages):
        record = {}
        tuner = make_tuner(record=record)
        choice = tuner("json-test", json_pages)
        assert record == {"json-test": choice}

    def test_empty_domain_rejected(self):
        with pytest.raises(ConfigError):
            tune_domain("empty", [])
        with pytest.raises(ConfigError):
            tune_domain("blank", [b""])

    def test_trained_entry_respects_tuner_choice(self, json_pages):
        registry = StaticTableRegistry()
        entry = registry.train(
            json_pages,
            "tuned",
            window_size=2048,
            max_chain=16,
            lazy=False,
            source_label="t",
        )
        codec = registry.codec_for("tuned")
        assert codec.window_size == 2048 == entry.window_size
        blob = codec.compress(json_pages[0])
        assert codec.decompress(blob) == json_pages[0]


class TestTrainingInvariants:
    def test_training_ignores_empty_pages(self, json_pages):
        with_empty = train_static_tables(
            [b""] + list(json_pages), domain="d"
        )
        without = train_static_tables(json_pages, domain="d")
        assert with_empty.table_id == without.table_id

    def test_training_requires_some_bytes(self):
        with pytest.raises(ConfigError):
            train_static_tables([], domain="d")

    def test_entry_round_trips_through_json(self, trained):
        entry = trained.get("json-test")
        clone = TableEntry.from_json(
            json.loads(json.dumps(entry.to_json()))
        )
        assert clone.tables.table_id == entry.tables.table_id
        assert clone.window_size == entry.window_size
        assert clone.source_label == entry.source_label
