"""Page-batch codec API: equivalence, edge pages, and telemetry.

The batch contract (DESIGN.md codec section): ``compress_batch(pages)[i]
== compress(pages[i])`` byte-for-byte — batching is purely a performance
mechanism. These tests pin that equivalence across all registered
codecs, exercise the degenerate batches the tier pipeline actually
produces (empty pages, duplicated same-filled pages), and assert the
``batch_stats`` counters that the perf-smoke batch-guard gates on.
"""

import pytest

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.compression.base import Codec, batch_stats
from repro.workloads.corpus import corpus_pages

CODEC_FACTORIES = {
    "deflate": DeflateCodec,
    "deflate-1k": lambda: DeflateCodec(window_size=1024),
    "lzfast": LzFastCodec,
    "zstd-like": ZstdLikeCodec,
}


@pytest.fixture(params=sorted(CODEC_FACTORIES))
def codec(request):
    return CODEC_FACTORIES[request.param]()


def _mixed_pages():
    pages = [
        page
        for corpus in ("json-records", "heap-pointers")
        for page in corpus_pages(corpus, 3, seed=9)
    ]
    # The degenerate shapes swap paths actually see: empty data, an
    # all-zero page, a short run page, and an exact duplicate.
    pages += [b"", b"\x00" * 4096, b"\xab" * 4096, pages[0]]
    return pages


class TestBatchEqualsScalar:
    def test_compress_batch_matches_scalar_blob_for_blob(self, codec):
        pages = _mixed_pages()
        assert codec.compress_batch(pages) == [
            codec.compress(page) for page in pages
        ]

    def test_decompress_batch_round_trips(self, codec):
        pages = _mixed_pages()
        blobs = codec.compress_batch(pages)
        assert codec.decompress_batch(blobs) == pages

    def test_empty_batch(self, codec):
        assert codec.compress_batch([]) == []
        assert codec.decompress_batch([]) == []

    def test_all_same_filled_pages(self, codec):
        pages = [b"\x55" * 4096] * 8
        blobs = codec.compress_batch(pages)
        assert len(set(blobs)) == 1  # identical input, identical blob
        assert codec.decompress_batch(blobs) == pages


class TestBatchTelemetry:
    def test_real_codecs_never_hit_the_scalar_adapter(self, codec):
        batch_stats.reset()
        pages = _mixed_pages()
        blobs = codec.compress_batch(pages)
        codec.decompress_batch(blobs)
        assert batch_stats.compress_scalar_fallback_calls == 0
        assert batch_stats.decompress_scalar_fallback_calls == 0
        assert batch_stats.compress_batch_calls == 1
        assert batch_stats.decompress_batch_calls == 1
        assert batch_stats.compress_batch_pages == len(pages)
        assert batch_stats.decompress_batch_pages == len(pages)

    def test_base_class_adapter_counts_fallbacks(self):
        class ScalarOnly(Codec):
            name = "scalar-only-test"

            def compress(self, data):
                return data

            def decompress(self, blob):
                return blob

        batch_stats.reset()
        plain = ScalarOnly()
        assert plain.compress_batch([b"a", b"b"]) == [b"a", b"b"]
        assert plain.decompress_batch([b"a"]) == [b"a"]
        assert batch_stats.compress_scalar_fallback_calls == 1
        assert batch_stats.decompress_scalar_fallback_calls == 1
        assert batch_stats.compress_batch_calls == 0

    def test_record_site_accumulates(self):
        batch_stats.reset()
        batch_stats.record_site("multichannel", 4)
        batch_stats.record_site("multichannel", 3)
        batch_stats.record_site("tier_demote", 8)
        assert batch_stats.site_pages == {
            "multichannel": 7,
            "tier_demote": 8,
        }
