"""LZ77 boundary behaviour pinned by ISSUE 7: MAX_MATCH-length runs
that end exactly at a page boundary, and window-size equivalence when
the window does not bind.
"""

from repro.compression.lz77 import (
    MAX_MATCH,
    Lz77Matcher,
    Match,
    detokenize,
)
from repro.compression.deflate import DeflateCodec

PAGE = 4096


class TestMaxMatchAtPageBoundary:
    def test_full_page_run_round_trips(self):
        data = b"x" * PAGE
        tokens = Lz77Matcher().tokenize(data)
        matches = [t for t in tokens if isinstance(t, Match)]
        # A page-long run must be carved into MAX_MATCH copies, and the
        # final copy must stop exactly at the boundary — not read past
        # it, not leave a tail literal the detokenizer can't place.
        assert matches
        assert max(m.length for m in matches) == MAX_MATCH
        assert detokenize(tokens) == data

    def test_run_ending_exactly_at_boundary(self):
        # Literal prefix, then a run sized so the *last* match ends at
        # byte 4096 exactly: 4096 = 37 + 1 + k for a run of k+1 'y's.
        prefix = bytes(range(37))
        data = (prefix + b"y" * (PAGE - len(prefix)))[:PAGE]
        assert len(data) == PAGE
        for lazy in (False, True):
            tokens = Lz77Matcher(lazy=lazy).tokenize(data)
            assert detokenize(tokens) == data

    def test_run_one_byte_short_of_max_match(self):
        # length MAX_MATCH-1 and MAX_MATCH+1 straddle the cap.
        for run in (MAX_MATCH - 1, MAX_MATCH, MAX_MATCH + 1):
            data = b"ab" + b"z" * run + b"cd"
            tokens = Lz77Matcher().tokenize(data)
            assert detokenize(tokens) == data
            assert all(
                t.length <= MAX_MATCH
                for t in tokens
                if isinstance(t, Match)
            )

    def test_batch_tokenizer_agrees_on_boundary_runs(self):
        matcher = Lz77Matcher(window_size=4096)
        pages = [
            b"x" * PAGE,
            bytes(range(37)) + b"y" * (PAGE - 37),
            b"\x00" * PAGE,
            b"",
        ]
        batch = matcher.tokenize_packed_batch(pages)
        for page, packed in zip(pages, batch):
            assert list(packed) == list(matcher.tokenize_packed(page))


class TestWindowEquivalence:
    """When every match fits within 1 KiB of history, a 1 KiB-window
    matcher and a 4 KiB-window matcher must produce identical token
    streams (and the deflate codec identical blobs): the larger window
    only *adds* reachable history, it never changes tie-breaks inside
    the shared range."""

    def _small_page(self):
        # Exactly 1 KiB: the 4 KiB window can never reach further back
        # than the 1 KiB one on this input.
        chunk = b'{"key": %d, "flag": true}\n'
        data = b"".join(chunk % (i % 7) for i in range(60))
        return data[:1024]

    def test_token_streams_identical(self):
        data = self._small_page()
        small = Lz77Matcher(window_size=1024).tokenize_packed(data)
        large = Lz77Matcher(window_size=4096).tokenize_packed(data)
        assert list(small) == list(large)

    def test_deflate_blobs_identical(self):
        data = self._small_page()
        blob_1k = DeflateCodec(window_size=1024).compress(data)
        blob_4k = DeflateCodec(window_size=4096).compress(data)
        assert blob_1k == blob_4k
        assert DeflateCodec().decompress(blob_1k) == data

    def test_windows_diverge_when_history_exceeds_1k(self):
        # Sanity check the equivalence above is not vacuous: with >1 KiB
        # of history, the 4 KiB window finds matches the 1 KiB one
        # cannot, so the small window compresses no better.
        pattern = bytes(range(64))
        data = pattern + b"\xff" * 2048 + pattern
        blob_1k = DeflateCodec(window_size=1024).compress(data)
        blob_4k = DeflateCodec(window_size=4096).compress(data)
        assert len(blob_4k) <= len(blob_1k)
        assert DeflateCodec().decompress(blob_4k) == data
