"""SPEC-like workload profile tests."""

import pytest

from repro.errors import ConfigError
from repro.workloads.spec import (
    DEFAULT_JOB_MIX,
    SPEC_PROFILES,
    SpecProfile,
    get_profile,
    job_mix,
)


class TestProfiles:
    def test_default_mix_has_eight_jobs(self):
        """§8 co-runs 8 SPEC workloads."""
        assert len(DEFAULT_JOB_MIX) == 8
        assert all(name in SPEC_PROFILES for name in DEFAULT_JOB_MIX)

    def test_known_stressors_present(self):
        assert "mcf" in SPEC_PROFILES
        assert "lbm" in SPEC_PROFILES

    def test_lbm_is_bandwidth_heavy(self):
        lbm = get_profile("lbm")
        gcc = get_profile("gcc")
        assert lbm.bandwidth_gbps > 3 * gcc.bandwidth_gbps
        assert lbm.base_mpki > gcc.base_mpki

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            get_profile("povray")

    def test_job_mix_resolution(self):
        mix = job_mix(["mcf", "lbm"])
        assert [p.name for p in mix] == ["mcf", "lbm"]


class TestMissRatioCurve:
    def test_full_share_gives_base_mpki(self):
        mcf = get_profile("mcf")
        assert mcf.mpki_at_share(mcf.llc_footprint_mib) == mcf.base_mpki
        assert mcf.mpki_at_share(mcf.llc_footprint_mib * 2) == mcf.base_mpki

    def test_shrinking_share_raises_mpki(self):
        mcf = get_profile("mcf")
        assert mcf.mpki_at_share(6.0) > mcf.mpki_at_share(12.0) > mcf.base_mpki

    def test_degenerate_share_clamped(self):
        mcf = get_profile("mcf")
        assert mcf.mpki_at_share(0.0) > 0

    def test_cpi_increases_with_latency(self):
        mcf = get_profile("mcf")
        fast = mcf.cpi(mcf.base_mpki, memory_latency_cycles=200)
        slow = mcf.cpi(mcf.base_mpki, memory_latency_cycles=400)
        assert slow > fast > mcf.base_cpi

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpecProfile(
                name="bogus",
                base_cpi=0.0,
                base_mpki=1.0,
                llc_footprint_mib=1.0,
                bandwidth_gbps=1.0,
            )
