"""Tunable-compressibility page generator tests."""

import pytest

from repro.compression import DeflateCodec, compression_ratio
from repro.errors import ConfigError
from repro.workloads.corpus import tunable_page


class TestTunablePage:
    def test_exact_size(self):
        assert len(tunable_page(3.0)) == 4096
        assert len(tunable_page(3.0, page_size=2048)) == 2048

    def test_deterministic(self):
        assert tunable_page(3.0, seed=5) == tunable_page(3.0, seed=5)
        assert tunable_page(3.0, seed=5) != tunable_page(3.0, seed=6)

    def test_ratio_one_is_incompressible(self):
        page = tunable_page(1.0, seed=2)
        assert compression_ratio(page, DeflateCodec()) < 1.05

    @pytest.mark.parametrize("target", [1.5, 2.0, 3.0, 5.0, 10.0])
    def test_tracks_target_within_band(self, target):
        page = tunable_page(target, seed=3)
        achieved = compression_ratio(page, DeflateCodec(window_size=4096))
        assert achieved == pytest.approx(target, rel=0.30)

    def test_monotone_in_target(self):
        codec = DeflateCodec(window_size=4096)
        ratios = [
            compression_ratio(tunable_page(t, seed=4), codec)
            for t in (1.5, 3.0, 6.0)
        ]
        assert ratios == sorted(ratios)

    def test_validation(self):
        with pytest.raises(ConfigError):
            tunable_page(0.5)
