"""Swap trace, AIFM runtime, and web front-end tests."""

import pytest

from repro.core.backend import XfmBackend
from repro.errors import ConfigError, SfmError
from repro.sfm.backend import SfmBackend
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.corpus import corpus_pages
from repro.workloads.traces import SWAP_IN, SWAP_OUT, SwapEvent, SwapTrace
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig


class TestSwapTrace:
    def test_record_and_stats(self):
        trace = SwapTrace()
        trace.record(0.0, SWAP_OUT, 0, compressed_len=1024)
        trace.record(30.0, SWAP_IN, 0)
        trace.record(60.0, SWAP_IN, PAGE_SIZE)
        assert len(trace) == 3
        assert trace.duration_s == 60.0
        assert trace.count(SWAP_IN) == 2
        assert trace.mean_compression_ratio() == 4.0

    def test_promotion_rate(self):
        trace = SwapTrace()
        for i in range(10):
            trace.record(i * 6.0, SWAP_IN, i * PAGE_SIZE)
        # 9 swap-ins... 10 events over 54 s -> extrapolate per minute.
        rate = trace.promotion_rate(far_bytes=100 * PAGE_SIZE)
        assert rate > 0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigError):
            SwapEvent(time_s=0.0, kind="sideways", vaddr=0)

    def test_save_load_round_trip(self, tmp_path):
        trace = SwapTrace()
        trace.record(1.5, SWAP_OUT, 8192, compressed_len=777)
        trace.record(2.5, SWAP_IN, 8192)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = SwapTrace.load(path)
        assert loaded.events == trace.events


@pytest.fixture
def runtime():
    backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
    controller = ColdScanController(cold_threshold_s=5.0, scan_period_s=1.0)
    return FarMemoryRuntime(
        backend, local_capacity_pages=8, controller=controller
    )


class TestFarMemoryRuntime:
    def test_allocate_and_read(self, runtime, json_pages):
        vaddrs = runtime.allocate(json_pages, now_s=0.0)
        assert len(vaddrs) == len(json_pages)
        assert runtime.read(vaddrs[0], now_s=1.0) == json_pages[0]

    def test_reclaim_respects_local_budget(self, runtime, json_pages):
        data = corpus_pages("json-records", 16, seed=9)
        runtime.allocate(data, now_s=0.0)
        evicted = runtime.maintain(now_s=100.0)
        assert evicted == 8
        assert runtime.resident_pages() == 8

    def test_demand_fault_restores_content(self, runtime):
        data = corpus_pages("server-log", 16, seed=9)
        vaddrs = runtime.allocate(data, now_s=0.0)
        runtime.maintain(now_s=100.0)
        swapped = [v for v in vaddrs if runtime.pages[v].swapped]
        assert swapped
        got = runtime.read(swapped[0], now_s=101.0)
        assert got == data[swapped[0] // PAGE_SIZE]
        assert runtime.stats.demand_faults == 1
        assert runtime.trace.count(SWAP_IN) == 1

    def test_write_updates_content(self, runtime):
        data = corpus_pages("csv-table", 4, seed=9)
        vaddrs = runtime.allocate(data, now_s=0.0)
        new = bytes(PAGE_SIZE)
        runtime.write(vaddrs[0], new, now_s=1.0)
        assert runtime.read(vaddrs[0], now_s=2.0) == new

    def test_unallocated_access_rejected(self, runtime):
        with pytest.raises(SfmError):
            runtime.read(1 << 40, now_s=0.0)

    def test_bad_sizes_rejected(self, runtime, json_pages):
        vaddrs = runtime.allocate(json_pages, now_s=0.0)
        with pytest.raises(ConfigError):
            runtime.write(vaddrs[0], b"short", now_s=0.0)
        with pytest.raises(ConfigError):
            runtime.allocate([b"short"])

    def test_prefetch_uses_offload_path_on_xfm(self):
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        controller = ColdScanController(cold_threshold_s=5.0, scan_period_s=1.0)
        runtime = FarMemoryRuntime(
            backend, local_capacity_pages=4, controller=controller
        )
        data = corpus_pages("json-records", 12, seed=9)
        vaddrs = runtime.allocate(data, now_s=0.0)
        runtime.maintain(now_s=100.0)
        swapped = [v for v in vaddrs if runtime.pages[v].swapped]
        promoted = runtime.prefetch(swapped[:3], now_s=101.0)
        assert promoted == 3
        assert backend.stats.offloaded_decompressions == 3
        assert runtime.stats.prefetch_promotions == 3

    def test_trace_records_compressed_len(self, runtime):
        data = corpus_pages("json-records", 16, seed=9)
        runtime.allocate(data, now_s=0.0)
        runtime.maintain(now_s=100.0)
        outs = [e for e in runtime.trace if e.kind == SWAP_OUT]
        assert outs and all(e.compressed_len > 0 for e in outs)


class TestWebFrontend:
    def test_end_to_end_generates_swaps(self):
        backend = SfmBackend(capacity_bytes=256 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=64,
            controller=ColdScanController(cold_threshold_s=5.0, scan_period_s=2.0),
        )
        frontend = WebFrontend(
            runtime,
            WebFrontendConfig(num_pages=128, lookups_per_s=20, seed=3),
        )
        report = frontend.run(duration_s=40.0)
        assert report.lookups == 800
        assert report.swap_outs > 0
        assert report.swap_ins > 0
        assert 0.0 <= report.fault_rate <= 1.0

    def test_content_integrity_under_churn(self):
        """Every page must survive arbitrary swap churn byte-exact."""
        backend = SfmBackend(capacity_bytes=256 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=16,
            controller=ColdScanController(cold_threshold_s=2.0, scan_period_s=1.0),
        )
        frontend = WebFrontend(
            runtime,
            WebFrontendConfig(
                num_pages=64, lookups_per_s=10, write_fraction=0.0, seed=4
            ),
        )
        frontend.run(duration_s=30.0)
        original = corpus_pages("json-records", 64, seed=4)
        # json-records generation inside WebFrontend uses the same corpus.
        for index, vaddr in enumerate(frontend.vaddrs):
            assert runtime.read(vaddr, now_s=1000.0) == original[index]

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            WebFrontendConfig(num_pages=0)
        with pytest.raises(ConfigError):
            WebFrontendConfig(write_fraction=1.5)
