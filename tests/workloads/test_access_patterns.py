"""Access-pattern generator tests."""

import pytest

from repro.errors import ConfigError
from repro.workloads.access_patterns import (
    HotColdPattern,
    MixedPattern,
    ScanPattern,
    ZipfPattern,
)


class TestHotCold:
    def test_hot_set_absorbs_most_accesses(self):
        pattern = HotColdPattern(
            num_pages=1000, hot_fraction=0.1, hot_access_probability=0.9, seed=1
        )
        accesses = pattern.next_accesses(5000)
        hot_hits = sum(1 for a in accesses if a < pattern.hot_pages)
        assert 0.85 < hot_hits / len(accesses) < 0.95

    def test_all_in_range(self):
        pattern = HotColdPattern(num_pages=50, seed=2)
        assert all(0 <= a < 50 for a in pattern.next_accesses(500))

    def test_determinism(self):
        a = HotColdPattern(num_pages=100, seed=3).next_accesses(100)
        b = HotColdPattern(num_pages=100, seed=3).next_accesses(100)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigError):
            HotColdPattern(num_pages=10, hot_fraction=0.0)
        with pytest.raises(ConfigError):
            HotColdPattern(num_pages=10, hot_access_probability=1.5)


class TestZipf:
    def test_skew(self):
        pattern = ZipfPattern(num_pages=1000, exponent=1.2, seed=4)
        accesses = pattern.next_accesses(5000)
        top_decile = sum(1 for a in accesses if a < 100)
        assert top_decile / len(accesses) > 0.5

    def test_higher_exponent_more_skew(self):
        mild = ZipfPattern(num_pages=500, exponent=0.8, seed=5)
        steep = ZipfPattern(num_pages=500, exponent=1.6, seed=5)
        mild_top = sum(1 for a in mild.next_accesses(3000) if a < 10)
        steep_top = sum(1 for a in steep.next_accesses(3000) if a < 10)
        assert steep_top > mild_top

    def test_validation(self):
        with pytest.raises(ConfigError):
            ZipfPattern(num_pages=10, exponent=0.0)


class TestScan:
    def test_sequential_wraparound(self):
        pattern = ScanPattern(num_pages=5)
        assert pattern.next_accesses(7) == [0, 1, 2, 3, 4, 0, 1]

    def test_stride(self):
        pattern = ScanPattern(num_pages=10, stride=3)
        assert pattern.next_accesses(4) == [0, 3, 6, 9]

    def test_prediction_matches_future(self):
        pattern = ScanPattern(num_pages=100)
        pattern.next_accesses(10)
        predicted = pattern.predicted_next(5)
        assert pattern.next_accesses(5) == predicted

    def test_validation(self):
        with pytest.raises(ConfigError):
            ScanPattern(num_pages=10, stride=0)


class TestMixed:
    def test_combines_patterns(self):
        mixed = MixedPattern(
            patterns=[ScanPattern(num_pages=100), ZipfPattern(num_pages=100, seed=1)],
            weights=[0.5, 0.5],
            seed=6,
        )
        accesses = mixed.next_accesses(200)
        assert len(accesses) == 200
        assert all(0 <= a < 100 for a in accesses)

    def test_mismatched_spans_rejected(self):
        with pytest.raises(ConfigError):
            MixedPattern(
                patterns=[ScanPattern(num_pages=10), ScanPattern(num_pages=20)],
                weights=[1, 1],
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MixedPattern(patterns=[], weights=[])
