"""Synthetic corpus generator tests."""

import pytest

from repro.compression import DeflateCodec, compression_ratio
from repro.errors import ConfigError
from repro.workloads.corpus import (
    CORPUS_NAMES,
    corpus_pages,
    describe_corpus,
    generate_corpus,
)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        for name in CORPUS_NAMES:
            assert generate_corpus(name, 2048, seed=5) == generate_corpus(
                name, 2048, seed=5
            )

    def test_different_seeds_differ(self):
        for name in CORPUS_NAMES:
            if name == "zero-pages":
                continue
            assert generate_corpus(name, 2048, seed=1) != generate_corpus(
                name, 2048, seed=2
            )

    def test_different_corpora_differ(self):
        a = generate_corpus("text-english", 2048, seed=0)
        b = generate_corpus("source-code", 2048, seed=0)
        assert a != b


class TestSizes:
    @pytest.mark.parametrize("size", [0, 1, 100, 4096, 10000])
    def test_exact_size(self, size):
        for name in CORPUS_NAMES:
            assert len(generate_corpus(name, size, seed=0)) == size

    def test_pages_shape(self):
        pages = corpus_pages("server-log", 5, page_size=2048, seed=0)
        assert len(pages) == 5
        assert all(len(p) == 2048 for p in pages)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            generate_corpus("text-english", -1)

    def test_unknown_corpus_rejected(self):
        with pytest.raises(ConfigError):
            generate_corpus("silesia", 100)
        with pytest.raises(ConfigError):
            describe_corpus("silesia")


class TestCompressibilitySpectrum:
    """The sixteen corpora must span a ratio spectrum like real corpora."""

    def test_sixteen_corpora(self):
        assert len(CORPUS_NAMES) == 16

    def test_random_is_incompressible(self):
        codec = DeflateCodec()
        page = generate_corpus("random-bytes", 4096, seed=0)
        assert compression_ratio(page, codec) < 1.05

    def test_zero_pages_compress_massively(self):
        codec = DeflateCodec()
        page = generate_corpus("zero-pages", 4096, seed=0)
        assert compression_ratio(page, codec) > 50

    def test_structured_corpora_compress_well(self):
        codec = DeflateCodec(window_size=4096)
        for name in ("json-records", "server-log", "xml-config", "html-markup"):
            page = generate_corpus(name, 4096, seed=3)
            assert compression_ratio(page, codec) > 2.0, name

    def test_binary_corpora_compress_moderately(self):
        codec = DeflateCodec(window_size=4096)
        for name in ("heap-pointers", "binary-structs", "integer-array"):
            page = generate_corpus(name, 4096, seed=3)
            assert 1.3 < compression_ratio(page, codec) < 30.0, name

    def test_descriptions_exist(self):
        for name in CORPUS_NAMES:
            assert describe_corpus(name)
