"""Prefetcher tests, including the runtime integration."""

import pytest

from repro.core.backend import XfmBackend
from repro.errors import ConfigError
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.corpus import corpus_pages
from repro.workloads.prefetch import (
    SequentialPrefetcher,
    StridePrefetcher,
)


class TestSequential:
    def test_predicts_next_pages(self):
        prefetcher = SequentialPrefetcher(degree=3)
        assert prefetcher.observe(0) == [PAGE_SIZE, 2 * PAGE_SIZE, 3 * PAGE_SIZE]

    def test_usefulness_tracked(self):
        prefetcher = SequentialPrefetcher(degree=2)
        prefetcher.observe(0)
        prefetcher.observe(PAGE_SIZE)  # predicted -> useful
        assert prefetcher.stats.useful == 1
        assert prefetcher.stats.issued >= 2

    def test_accuracy_on_pure_scan(self):
        prefetcher = SequentialPrefetcher(degree=1)
        for i in range(100):
            prefetcher.observe(i * PAGE_SIZE)
        assert prefetcher.stats.accuracy > 0.9

    def test_validation(self):
        with pytest.raises(ConfigError):
            SequentialPrefetcher(degree=0)


class TestStride:
    def test_quiet_until_confident(self):
        prefetcher = StridePrefetcher(confidence_threshold=2)
        assert prefetcher.observe(0) == []
        assert prefetcher.observe(2 * PAGE_SIZE) == []  # first stride seen
        # Second occurrence of the same stride -> predictions fire.
        predictions = prefetcher.observe(4 * PAGE_SIZE)
        assert predictions
        assert predictions[0] == 6 * PAGE_SIZE

    def test_detects_non_unit_stride(self):
        prefetcher = StridePrefetcher(degree=2, confidence_threshold=2)
        for i in range(4):
            out = prefetcher.observe(i * 3 * PAGE_SIZE)
        assert prefetcher.current_stride == 3 * PAGE_SIZE
        # Last access was 9P; predictions extend the stride from there.
        assert out == [12 * PAGE_SIZE, 15 * PAGE_SIZE]

    def test_random_pattern_stays_quiet(self):
        import random

        random.seed(3)
        prefetcher = StridePrefetcher(confidence_threshold=3)
        issued = 0
        for _ in range(200):
            issued += len(
                prefetcher.observe(random.randrange(1000) * PAGE_SIZE)
            )
        # Random strides almost never repeat 3x consecutively.
        assert issued < 40

    def test_stride_change_resets_confidence(self):
        prefetcher = StridePrefetcher(confidence_threshold=2)
        prefetcher.observe(0)
        prefetcher.observe(PAGE_SIZE)
        prefetcher.observe(2 * PAGE_SIZE)      # stride P confident
        assert prefetcher.observe(10 * PAGE_SIZE) == []  # break

    def test_validation(self):
        with pytest.raises(ConfigError):
            StridePrefetcher(degree=0)


class TestRuntimeIntegration:
    def test_prefetching_reduces_demand_faults_on_scans(self):
        """The §3.2 payoff: predictable patterns + offload prefetch."""
        data = corpus_pages("json-records", 64, seed=41)

        def build(prefetcher):
            backend = XfmBackend(capacity_bytes=256 * PAGE_SIZE)
            runtime = FarMemoryRuntime(
                backend,
                local_capacity_pages=16,
                controller=ColdScanController(
                    cold_threshold_s=1.0, scan_period_s=1.0
                ),
                prefetcher=prefetcher,
            )
            vaddrs = runtime.allocate(data, now_s=0.0)
            return runtime, vaddrs

        def scan_workload(runtime, vaddrs):
            now = 0.0
            for sweep in range(4):
                for vaddr in vaddrs:
                    runtime.read(vaddr, now)
                    now += 0.05
                runtime.maintain(now)
                now += 30.0  # everything goes cold between sweeps
                runtime.maintain(now)
            return runtime.stats.demand_faults

        baseline_faults = scan_workload(*build(None))
        prefetch_faults = scan_workload(
            *build(SequentialPrefetcher(degree=8))
        )
        assert prefetch_faults < baseline_faults

    def test_prefetch_promotions_use_offload_path(self):
        data = corpus_pages("json-records", 32, seed=42)
        backend = XfmBackend(capacity_bytes=256 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=8,
            controller=ColdScanController(
                cold_threshold_s=1.0, scan_period_s=1.0
            ),
            prefetcher=SequentialPrefetcher(degree=4),
        )
        vaddrs = runtime.allocate(data, now_s=0.0)
        now = 0.0
        for sweep in range(3):
            for vaddr in vaddrs:
                runtime.read(vaddr, now)
                now += 0.1
            now += 30.0
            runtime.maintain(now)
        assert backend.stats.offloaded_decompressions > 0
        assert runtime.stats.prefetch_promotions > 0
