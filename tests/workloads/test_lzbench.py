"""lzbench-style harness tests."""

import pytest

from repro.errors import ConfigError
from repro.workloads.lzbench import (
    format_lzbench,
    run_lzbench,
    summarize_by_codec,
)


@pytest.fixture(scope="module")
def rows():
    return run_lzbench(
        corpora=("json-records", "random-bytes", "zero-pages"),
        pages_per_corpus=2,
        seed=91,
    )


class TestRunLzbench:
    def test_full_grid(self, rows):
        assert len(rows) == 9  # 3 corpora x 3 codecs
        assert {row.codec for row in rows} == {
            "deflate", "lzfast", "zstd-like",
        }

    def test_ratios_sane(self, rows):
        for row in rows:
            if row.corpus == "random-bytes":
                assert row.ratio < 1.05
            if row.corpus == "zero-pages":
                assert row.ratio > 10
            assert row.compressed_bytes > 0

    def test_throughputs_positive(self, rows):
        for row in rows:
            assert row.compress_mbps > 0
            assert row.decompress_mbps > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            run_lzbench(pages_per_corpus=0)
        with pytest.raises(ConfigError):
            run_lzbench(codecs=("snappy",))


class TestReporting:
    def test_format(self, rows):
        text = format_lzbench(rows)
        assert "codec" in text
        assert "json-records" in text
        assert len(text.splitlines()) == 3 + len(rows)

    def test_summary(self, rows):
        summary = summarize_by_codec(rows)
        assert set(summary) == {"deflate", "lzfast", "zstd-like"}
        for stats in summary.values():
            assert stats["geomean_ratio"] >= 0.9
            assert stats["mean_compress_mbps"] > 0
        # The byte-aligned codec compresses fastest (its design point).
        assert (
            summary["lzfast"]["mean_compress_mbps"]
            > summary["deflate"]["mean_compress_mbps"]
        )
