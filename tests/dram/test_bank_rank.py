"""Bank and rank state-machine protocol tests."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.device import DDR5_32GB, timings_for_device
from repro.dram.rank import Rank
from repro.errors import DramProtocolError


@pytest.fixture
def timings():
    return timings_for_device(DDR5_32GB)


@pytest.fixture
def bank(timings):
    return Bank(device=DDR5_32GB, timings=timings)


@pytest.fixture
def rank(timings):
    return Rank(device=DDR5_32GB, timings=timings)


class TestBankProtocol:
    def test_activate_then_access(self, bank, timings):
        bank.activate(100, now_ns=0.0)
        done = bank.column_access(100, now_ns=timings.trcd_ns)
        assert done == pytest.approx(
            timings.trcd_ns + timings.tcl_ns + timings.tburst_ns
        )

    def test_access_without_activate_rejected(self, bank):
        with pytest.raises(DramProtocolError):
            bank.column_access(100, now_ns=0.0)

    def test_access_wrong_row_rejected(self, bank, timings):
        bank.activate(100, now_ns=0.0)
        with pytest.raises(DramProtocolError):
            bank.column_access(101, now_ns=timings.trcd_ns)

    def test_trcd_enforced(self, bank):
        bank.activate(100, now_ns=0.0)
        with pytest.raises(DramProtocolError):
            bank.column_access(100, now_ns=1.0)

    def test_double_activate_rejected(self, bank):
        bank.activate(100, now_ns=0.0)
        with pytest.raises(DramProtocolError):
            bank.activate(101, now_ns=100.0)

    def test_trp_enforced(self, bank, timings):
        bank.activate(100, now_ns=0.0)
        bank.precharge(now_ns=50.0)
        with pytest.raises(DramProtocolError):
            bank.activate(101, now_ns=50.0 + timings.trp_ns / 2)
        bank.activate(101, now_ns=50.0 + timings.trp_ns)

    def test_row_range_checked(self, bank):
        with pytest.raises(DramProtocolError):
            bank.activate(DDR5_32GB.rows_per_bank, now_ns=0.0)


class TestBankRefreshWindow:
    def test_host_locked_during_refresh(self, bank):
        bank.begin_refresh(range(0, 16), now_ns=0.0)
        with pytest.raises(DramProtocolError):
            bank.activate(5000, now_ns=10.0)

    def test_conditional_access_targets_refreshing_rows(self, bank):
        bank.begin_refresh(range(0, 16), now_ns=0.0)
        assert bank.nma_access_allowed(5, conditional=True)
        assert not bank.nma_access_allowed(5000, conditional=True)

    def test_random_access_avoids_busy_subarray(self, bank):
        bank.begin_refresh(range(0, 16), now_ns=0.0)  # subarray 0 busy
        assert not bank.nma_access_allowed(100, conditional=False)
        assert bank.nma_access_allowed(512 * 3, conditional=False)

    def test_no_nma_access_outside_window(self, bank):
        assert not bank.nma_access_allowed(5, conditional=True)

    def test_end_refresh_precharges(self, bank, timings):
        bank.begin_refresh(range(0, 16), now_ns=0.0)
        bank.end_refresh(now_ns=timings.trfc_ns)
        assert bank.state is BankState.IDLE
        bank.activate(7, now_ns=timings.trfc_ns + timings.trp_ns)

    def test_refresh_with_open_row_rejected(self, bank):
        bank.activate(3, now_ns=0.0)
        with pytest.raises(DramProtocolError):
            bank.begin_refresh(range(0, 16), now_ns=10.0)

    def test_end_refresh_when_idle_rejected(self, bank):
        with pytest.raises(DramProtocolError):
            bank.end_refresh(now_ns=0.0)


class TestRank:
    def test_refresh_locks_all_banks(self, rank):
        window = rank.begin_refresh(now_ns=0.0)
        assert rank.in_refresh
        assert not rank.host_accessible()
        assert all(
            bank.state is BankState.REFRESHING for bank in rank.banks
        )
        assert list(window.rows) == list(range(0, 16))

    def test_nma_access_during_window(self, rank):
        rank.begin_refresh(now_ns=0.0)
        assert rank.nma_access_allowed(bank=0, row=3, conditional=True)
        assert rank.nma_access_allowed(bank=5, row=512 * 4, conditional=False)

    def test_double_refresh_rejected(self, rank):
        rank.begin_refresh(now_ns=0.0)
        with pytest.raises(DramProtocolError):
            rank.begin_refresh(now_ns=100.0)

    def test_end_refresh_restores_host_access(self, rank, timings):
        rank.begin_refresh(now_ns=0.0)
        rank.end_refresh(now_ns=timings.trfc_ns)
        assert rank.host_accessible()
        assert rank.current_window is None

    def test_sequential_windows_advance_rows(self, rank, timings):
        w0 = rank.begin_refresh(now_ns=0.0)
        rank.end_refresh(now_ns=timings.trfc_ns)
        w1 = rank.begin_refresh(now_ns=timings.trefi_ns)
        assert w1.rows.start == w0.rows.stop

    def test_capacity(self, rank):
        assert rank.capacity_bytes == 32 * (1 << 30)

    def test_open_banks_tracking(self, rank, timings):
        assert rank.open_banks() == []
        rank.banks[3].activate(9, now_ns=0.0)
        assert rank.open_banks() == [3]
