"""Cycle-approximate controller tests."""

import pytest

from repro.dram.controller import (
    ChannelController,
    MemoryRequest,
    loaded_latency_ns,
)
from repro.dram.device import DDR5_32GB, timings_for_device
from repro.errors import ConfigError


@pytest.fixture
def controller():
    return ChannelController(DDR5_32GB, timings_for_device(DDR5_32GB))


def _burst(arrival, rank=0, bank=0, row=0):
    return MemoryRequest(arrival_ns=arrival, rank=rank, bank=bank, row=row)


class TestServiceOrder:
    def test_empty_stream(self, controller):
        stats = controller.run([])
        assert stats.completed == 0
        assert stats.bandwidth_bps == 0.0

    def test_row_hit_faster_than_miss(self, controller):
        same_row = [_burst(0.0, row=5), _burst(0.1, row=5)]
        diff_row = [_burst(0.0, row=5), _burst(0.1, row=9)]
        hit_stats = controller.run(same_row)
        miss_stats = controller.run(diff_row)
        assert hit_stats.row_hits == 1
        assert miss_stats.row_hits == 0
        assert hit_stats.total_time_ns < miss_stats.total_time_ns

    def test_bank_parallelism_beats_same_bank(self, controller):
        same_bank = [_burst(i * 0.1, bank=0, row=i) for i in range(8)]
        spread = [_burst(i * 0.1, bank=i, row=0) for i in range(8)]
        assert (
            controller.run(spread).total_time_ns
            < controller.run(same_bank).total_time_ns
        )

    def test_bandwidth_bounded_by_bus(self, controller):
        requests = [_burst(0.0, bank=i % 16, row=0) for i in range(64)]
        stats = controller.run(requests)
        timings = timings_for_device(DDR5_32GB)
        peak = 128 / timings.tburst_ns * 1e9  # line bytes per burst slot
        assert stats.bandwidth_bps <= peak * 1.001

    def test_refresh_stalls_requests(self, controller):
        timings = timings_for_device(DDR5_32GB)
        # A request arriving inside the t=0 refresh window must wait.
        stats = controller.run([_burst(timings.trfc_ns / 2)])
        assert stats.refresh_stall_ns > 0
        assert stats.avg_latency_ns >= timings.trfc_ns / 2

    def test_latency_accounting(self, controller):
        timings = timings_for_device(DDR5_32GB)
        stats = controller.run([_burst(timings.trfc_ns + 10.0, row=3)])
        expected = timings.trcd_ns + timings.tcl_ns + timings.tburst_ns
        assert stats.avg_latency_ns == pytest.approx(expected)
        assert stats.max_latency_ns == pytest.approx(expected)

    def test_num_ranks_validated(self):
        with pytest.raises(ConfigError):
            ChannelController(
                DDR5_32GB, timings_for_device(DDR5_32GB), num_ranks=0
            )


class TestLoadedLatency:
    def test_flat_below_knee(self):
        assert loaded_latency_ns(80.0, 0.3) == 80.0
        assert loaded_latency_ns(80.0, 0.65) == 80.0

    def test_rises_past_knee(self):
        assert loaded_latency_ns(80.0, 0.8) > 80.0
        assert loaded_latency_ns(80.0, 0.95) > loaded_latency_ns(80.0, 0.8)

    def test_monotone(self):
        values = [loaded_latency_ns(80.0, u / 100) for u in range(0, 99)]
        assert values == sorted(values)

    def test_range_checked(self):
        with pytest.raises(ConfigError):
            loaded_latency_ns(80.0, 1.0)
        with pytest.raises(ConfigError):
            loaded_latency_ns(80.0, -0.1)


class TestEnergyModel:
    def test_movement_saving_is_69_pct(self):
        from repro.dram.energy import AccessEnergyModel

        assert AccessEnergyModel().data_movement_saving() == pytest.approx(
            0.69, abs=0.01
        )

    def test_conditional_saving_near_10_pct(self):
        from repro.dram.energy import AccessEnergyModel

        assert AccessEnergyModel().conditional_saving() == pytest.approx(
            0.101, abs=0.005
        )

    def test_nma_cheaper_than_cpu(self):
        from repro.dram.energy import AccessEnergyModel

        model = AccessEnergyModel()
        assert model.nma_page_access_j(4096, conditional=True) < (
            model.cpu_page_access_j(4096)
        )

    def test_link_ordering_enforced(self):
        from repro.dram.energy import AccessEnergyModel
        from repro.errors import ConfigError as CE

        with pytest.raises(CE):
            AccessEnergyModel(
                ddr_io_pj_per_bit=1.0, on_dimm_io_pj_per_bit=2.0
            )
