"""Refresh policies: all-bank baseline equivalence, per-bank windows,
integer-tick drift regression, and policy selection plumbing."""

from fractions import Fraction

import pytest

from repro.dram.device import DDR5_32GB, timings_for_device
from repro.dram.refresh import RefreshScheduler
from repro.dram.refresh_policy import (
    PER_BANK_TRFC_FRACTION,
    POLICY_ALL_BANK,
    POLICY_PER_BANK,
    REFRESH_POLICY_ENV,
    AllBankRefreshPolicy,
    PerBankRefreshPolicy,
    default_policy_name,
    make_refresh_policy,
)
from repro.errors import ConfigError
from repro.sim import TICKS_PER_NS, ns_to_ticks


@pytest.fixture
def timings():
    return timings_for_device(DDR5_32GB)


@pytest.fixture
def all_bank(timings):
    return AllBankRefreshPolicy(DDR5_32GB, timings)


@pytest.fixture
def per_bank(timings):
    return PerBankRefreshPolicy(DDR5_32GB, timings)


class TestAllBankBaseline:
    """The default policy reproduces the pre-policy scheduler exactly."""

    def test_window_geometry_matches_legacy_values(self, all_bank, timings):
        for ref in (0, 1, 7, 8191, 8192, 100_000):
            window = all_bank.window(ref)
            assert window.start_ns == ref * timings.trefi_ns
            assert window.duration_ns == timings.trfc_ns
            assert window.bank is None
            assert window.slot == ref % 8192
            assert window.rows == range(
                window.slot * 16, window.slot * 16 + 16
            )

    def test_one_window_per_trefi_full_budget(self, all_bank):
        assert all_bank.windows_per_trefi == 1
        assert all_bank.access_budget(3) == 3
        assert all_bank.trefi_bin(17) == 17

    def test_scheduler_default_policy_is_all_bank(self, monkeypatch, timings):
        monkeypatch.delenv(REFRESH_POLICY_ENV, raising=False)
        scheduler = RefreshScheduler(DDR5_32GB, timings)
        assert scheduler.policy.name == POLICY_ALL_BANK


class TestIntegerTickStarts:
    """The float-drift fix: window N's start is index x tREFI in integer
    ticks for any N, never an accumulated float."""

    def test_large_ref_counts_stay_exact(self, all_bank, timings):
        # A retention-month of REFs: the float product ref * 3906.25 is
        # exact (both factors short binary decimals), so the tick path
        # must agree bit-for-bit even at indices where a repeated
        # `start += trefi` accumulation has long since drifted.
        for ref in (10**4, 10**6, 2 * 10**6):
            window = all_bank.window(ref)
            assert window.start_ticks == ref * ns_to_ticks(timings.trefi_ns)
            assert window.start_ns == ref * timings.trefi_ns

    def test_per_bank_starts_match_exact_rationals(self, per_bank, timings):
        # Sub-tREFI starts are not float-representable (tREFI/32 has a
        # remainder); the integer division must match the true rational
        # value to within half a tick at any index.
        trefi_ticks = ns_to_ticks(timings.trefi_ns)
        per = per_bank.windows_per_trefi
        for index in (1, 31, 32, 1_000_003, 10**8 + 7):
            exact = Fraction(index * trefi_ticks, per)
            assert abs(Fraction(per_bank.start_ticks(index)) - exact) < 1
            assert per_bank.window(index).start_ns == (
                per_bank.start_ticks(index) / TICKS_PER_NS
            )

    def test_trefi_boundaries_never_drift(self, per_bank, timings):
        # Window k*W starts exactly at k whole tREFIs — the remainder
        # distribution inside a tREFI can never leak across bins.
        trefi_ticks = ns_to_ticks(timings.trefi_ns)
        per = per_bank.windows_per_trefi
        for k in (1, 8192, 10**6, 10**9):
            assert per_bank.start_ticks(k * per) == k * trefi_ticks

    def test_consecutive_windows_are_monotone(self, per_bank):
        starts = [per_bank.start_ticks(i) for i in range(200)]
        assert starts == sorted(starts)
        assert len(set(starts)) == len(starts)


class TestPerBankPolicy:
    def test_one_window_per_bank_per_trefi(self, per_bank):
        per = per_bank.windows_per_trefi
        assert per == DDR5_32GB.banks_per_chip
        banks = [per_bank.window(i).bank for i in range(per)]
        assert banks == list(range(per))
        # All of tREFI-0's windows refresh the same REF slot's rows.
        assert {per_bank.window(i).slot for i in range(per)} == {0}
        assert per_bank.window(per).slot == 1

    def test_short_windows_fit_the_stagger_gap(self, per_bank, timings):
        gap_ticks = ns_to_ticks(timings.trefi_ns) // per_bank.windows_per_trefi
        assert per_bank.duration_ns == (
            timings.trfc_ns * PER_BANK_TRFC_FRACTION
        )
        assert ns_to_ticks(per_bank.duration_ns) <= gap_ticks

    def test_budget_scales_down_but_never_to_zero(self, per_bank):
        assert per_bank.access_budget(3) == max(
            1, round(3 * PER_BANK_TRFC_FRACTION)
        )
        assert per_bank.access_budget(1) == 1

    def test_oversized_fraction_rejected(self, timings):
        with pytest.raises(ConfigError):
            PerBankRefreshPolicy(DDR5_32GB, timings, trfc_fraction=0.9)
        with pytest.raises(ConfigError):
            PerBankRefreshPolicy(DDR5_32GB, timings, trfc_fraction=0.0)

    def test_same_retention_coverage_as_all_bank(self, all_bank, per_bank):
        # Over one retention interval both policies refresh every row.
        per = per_bank.windows_per_trefi
        covered = set()
        for slot in range(per_bank.refs_per_retention):
            covered.update(per_bank.window(slot * per).rows)
        assert len(covered) == DDR5_32GB.rows_per_bank
        assert covered == set(
            row
            for slot in range(all_bank.refs_per_retention)
            for row in all_bank.window(slot).rows
        )

    def test_many_more_windows_per_horizon(self, timings):
        horizon_ns = 16 * timings.trefi_ns
        all_bank = RefreshScheduler(
            DDR5_32GB, timings,
            policy=make_refresh_policy(POLICY_ALL_BANK, DDR5_32GB, timings),
        )
        per_bank = RefreshScheduler(
            DDR5_32GB, timings,
            policy=make_refresh_policy(POLICY_PER_BANK, DDR5_32GB, timings),
        )
        n_all = len(all_bank.windows_between(0.0, horizon_ns))
        n_per = len(per_bank.windows_between(0.0, horizon_ns))
        assert n_all == 16
        assert n_per == 16 * DDR5_32GB.banks_per_chip


class TestPolicySelection:
    def test_default_is_all_bank(self, monkeypatch, timings):
        monkeypatch.delenv(REFRESH_POLICY_ENV, raising=False)
        assert default_policy_name() == POLICY_ALL_BANK
        policy = make_refresh_policy(None, DDR5_32GB, timings)
        assert isinstance(policy, AllBankRefreshPolicy)

    def test_env_var_selects_per_bank(self, monkeypatch, timings):
        monkeypatch.setenv(REFRESH_POLICY_ENV, POLICY_PER_BANK)
        policy = make_refresh_policy(None, DDR5_32GB, timings)
        assert isinstance(policy, PerBankRefreshPolicy)
        # Explicit names always beat the environment.
        assert isinstance(
            make_refresh_policy(POLICY_ALL_BANK, DDR5_32GB, timings),
            AllBankRefreshPolicy,
        )

    def test_bad_names_raise(self, monkeypatch, timings):
        with pytest.raises(ConfigError):
            make_refresh_policy("sub-array", DDR5_32GB, timings)
        monkeypatch.setenv(REFRESH_POLICY_ENV, "bogus")
        with pytest.raises(ConfigError):
            default_policy_name()


class TestPerBankYieldsMoreUsableWindows:
    """The point of the plug point: under a tight per-window budget the
    accelerator gets many more scheduling opportunities per tREFI."""

    def test_emulator_completes_more_offloads_per_bank(self):
        from repro.core.emulator import EmulatorConfig, XfmEmulator

        reports = {}
        for name in (POLICY_ALL_BANK, POLICY_PER_BANK):
            config = EmulatorConfig(
                sim_time_s=0.001,
                accesses_per_ref=1,
                promotion_rate=1.0,
                refresh_policy=name,
            )
            reports[name] = XfmEmulator(config).run()

        all_bank, per_bank = (
            reports[POLICY_ALL_BANK], reports[POLICY_PER_BANK]
        )
        # Same arrival stream either way...
        assert per_bank.total_ops == all_bank.total_ops
        # ...but the per-bank window stream drains far more of it.
        assert per_bank.completed_ops > all_bank.completed_ops
        executed = lambda r: r.conditional_accesses + r.random_accesses
        assert executed(per_bank) > executed(all_bank)
