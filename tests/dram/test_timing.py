"""DRAM timing preset tests."""

import pytest

from repro.dram.timing import (
    DDR4_2400,
    DDR5_3200,
    REF_COMMANDS_PER_RETENTION,
    TIMING_PRESETS,
    DramTimings,
)
from repro.errors import ConfigError


class TestDerivedQuantities:
    def test_trefi_matches_paper(self):
        """32 ms retention / 8192 REFs = ~3.9 us."""
        assert DDR5_3200.trefi_ns == pytest.approx(3906.25)

    def test_refresh_lock_fraction(self):
        """tRFC/tREFI with the 32 Gb part's 410 ns is ~10.5%; the paper's
        §4.3 example with 300 ns gives ~8%."""
        assert DDR5_3200.refresh_lock_fraction == pytest.approx(0.105, abs=0.001)
        example = DDR5_3200.with_retention_ms(32.0)
        from dataclasses import replace

        example = replace(example, trfc_ns=300.0)
        assert example.refresh_lock_fraction == pytest.approx(0.0768)

    def test_burst_bytes(self):
        assert DDR5_3200.burst_bytes == 16
        assert DDR4_2400.burst_bytes == 8

    def test_channel_bandwidth(self):
        assert DDR5_3200.channel_bandwidth_bps() == pytest.approx(25.6e9)

    def test_trc_sum(self):
        assert DDR5_3200.trc_ns == pytest.approx(45.0)

    def test_tck(self):
        assert DDR5_3200.tck_ns == pytest.approx(0.625)


class TestValidation:
    def test_trefi_must_exceed_trfc(self):
        with pytest.raises(ConfigError):
            DramTimings(
                name="bogus",
                transfer_rate_mts=3200,
                trcd_ns=15,
                tcl_ns=15,
                trp_ns=15,
                trfc_ns=5000,
                retention_ms=0.02,
                burst_length=16,
                device_width_bits=8,
            )

    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigError):
            DramTimings(
                name="bogus",
                transfer_rate_mts=3200,
                trcd_ns=-1,
                tcl_ns=15,
                trp_ns=15,
                trfc_ns=410,
                retention_ms=32,
                burst_length=16,
                device_width_bits=8,
            )

    def test_retention_scaling(self):
        hot = DDR5_3200.with_retention_ms(16.0)
        assert hot.trefi_ns == pytest.approx(DDR5_3200.trefi_ns / 2)
        assert hot.refresh_lock_fraction == pytest.approx(
            DDR5_3200.refresh_lock_fraction * 2
        )

    def test_presets_registered(self):
        assert set(TIMING_PRESETS) == {
            "DDR4-2400", "DDR4-3200", "DDR5-3200", "DDR5-4800",
        }
        assert REF_COMMANDS_PER_RETENTION == 8192
