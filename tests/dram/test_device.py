"""Device geometry (Table 1) tests."""

import pytest

from repro.dram.device import (
    DDR5_16GB,
    DDR5_32GB,
    DDR5_8GB,
    DEVICE_TRFC_NS,
    DramDeviceConfig,
    timings_for_device,
)
from repro.errors import ConfigError


class TestTable1:
    """The derived columns of Table 1 must reproduce exactly."""

    def test_rows_refreshed_per_trfc(self):
        assert DDR5_8GB.rows_refreshed_per_trfc == 8
        assert DDR5_16GB.rows_refreshed_per_trfc == 8
        assert DDR5_32GB.rows_refreshed_per_trfc == 16

    def test_subarrays_per_bank(self):
        assert DDR5_8GB.subarrays_per_bank == 128
        assert DDR5_16GB.subarrays_per_bank == 128
        assert DDR5_32GB.subarrays_per_bank == 256

    def test_banks_and_rows(self):
        assert DDR5_8GB.banks_per_chip == 16
        assert DDR5_16GB.banks_per_chip == 32
        assert DDR5_32GB.rows_per_bank == 128 * 1024

    def test_trfc_values(self):
        assert DEVICE_TRFC_NS == {
            "DDR5-8Gb": 195.0,
            "DDR5-16Gb": 295.0,
            "DDR5-32Gb": 410.0,
        }

    def test_conditional_accesses_match_section5(self):
        """Sec. 5: max 4KB conditional accesses are 4/3/2 for 32/16/8 Gb."""
        expected = {DDR5_32GB: 4, DDR5_16GB: 3, DDR5_8GB: 2}
        for device, count in expected.items():
            timings = timings_for_device(device)
            assert device.conditional_accesses_per_trfc(timings) == count


class TestGeometry:
    def test_capacity_consistency_enforced(self):
        with pytest.raises(ConfigError):
            DramDeviceConfig(
                name="bogus",
                capacity_gbit=8,
                rows_per_bank=32 * 1024,
                banks_per_chip=16,
            )

    def test_subarray_of_row(self):
        assert DDR5_32GB.subarray_of_row(0) == 0
        assert DDR5_32GB.subarray_of_row(511) == 0
        assert DDR5_32GB.subarray_of_row(512) == 1

    def test_subarray_of_row_range_checked(self):
        with pytest.raises(ConfigError):
            DDR5_32GB.subarray_of_row(DDR5_32GB.rows_per_bank)

    def test_rank_capacity(self):
        assert DDR5_32GB.rank_capacity_bytes == 32 * (1 << 30)

    def test_page_stream_time_matches_fig6(self):
        """Fig. 6b: 110 ns = tRCD + tCL + 32 x tBURST for a 4 KiB page."""
        timings = timings_for_device(DDR5_32GB)
        assert DDR5_32GB.page_stream_time_ns(timings) == pytest.approx(110.0)
        assert DDR5_32GB.page_stream_time_ns(
            timings, first=False
        ) == pytest.approx(80.0)

    def test_nma_bandwidth(self):
        timings = timings_for_device(DDR5_32GB)
        bw = DDR5_32GB.nma_bandwidth_bps(timings, accesses_per_trfc=4)
        # 4 pages per 3.906 us.
        assert bw == pytest.approx(4 * 4096 / 3.90625e-6, rel=1e-6)
