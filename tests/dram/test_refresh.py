"""Refresh scheduler tests: slot mapping, windows, conditional rules."""

import pytest

from repro.dram.device import DDR5_32GB, DDR5_8GB, timings_for_device
from repro.dram.refresh import RefreshScheduler
from repro.errors import ConfigError


@pytest.fixture
def scheduler():
    return RefreshScheduler(DDR5_32GB, timings_for_device(DDR5_32GB))


class TestRowCoverage:
    def test_every_row_refreshed_once_per_retention(self, scheduler):
        seen = set()
        for ref in range(scheduler.refs_per_retention):
            rows = scheduler.rows_refreshed(ref)
            assert len(rows) == 16
            for row in rows:
                assert row not in seen
                seen.add(row)
        assert len(seen) == DDR5_32GB.rows_per_bank

    def test_slot_round_trip(self, scheduler):
        for row in (0, 15, 16, 511, 512, 130000):
            slot = scheduler.ref_slot_for_row(row)
            assert row in scheduler.rows_refreshed(slot)

    def test_slot_range_checked(self, scheduler):
        with pytest.raises(ConfigError):
            scheduler.ref_slot_for_row(DDR5_32GB.rows_per_bank)

    def test_wraps_across_retention_cycles(self, scheduler):
        last = scheduler.refs_per_retention - 1
        assert scheduler.rows_refreshed(last + 1) == scheduler.rows_refreshed(0)


class TestNextRef:
    def test_future_slot_same_cycle(self, scheduler):
        row = 16 * 100  # slot 100
        assert scheduler.next_ref_for_row(row, 50) == 100
        assert scheduler.wait_refs_for_row(row, 50) == 50

    def test_past_slot_wraps_to_next_cycle(self, scheduler):
        row = 16 * 100
        wait = scheduler.wait_refs_for_row(row, 101)
        assert wait == scheduler.refs_per_retention - 1

    def test_current_slot_is_zero_wait(self, scheduler):
        row = 16 * 7
        assert scheduler.wait_refs_for_row(row, 7) == 0

    def test_is_conditional(self, scheduler):
        row = 16 * 42 + 3
        assert scheduler.is_conditional(row, 42)
        assert not scheduler.is_conditional(row, 43)


class TestRandomAccessRule:
    def test_conflicting_subarray_blocked(self, scheduler):
        """A random access must avoid subarrays busy refreshing."""
        window_rows = scheduler.rows_refreshed(0)
        busy_row = window_rows[0]
        # Another row in the same subarray conflicts.
        sibling = busy_row + 1 if busy_row + 1 < 512 else busy_row - 1
        assert not scheduler.random_access_allowed(sibling, 0)

    def test_distant_subarray_allowed(self, scheduler):
        # Slot 0 refreshes rows 0..15, all in subarray 0.
        far_row = 512 * 10
        assert scheduler.random_access_allowed(far_row, 0)


class TestAggregates:
    def test_locked_fraction(self, scheduler):
        assert scheduler.locked_fraction() == pytest.approx(410 / 3906.25)

    def test_lock_time_per_retention(self, scheduler):
        assert scheduler.lock_time_per_retention_ms() == pytest.approx(
            8192 * 410 / 1e6
        )

    def test_tick_advances(self, scheduler):
        w0 = scheduler.tick()
        w1 = scheduler.tick()
        assert w1.ref_index == w0.ref_index + 1
        assert scheduler.refs_issued == 2
        scheduler.reset()
        assert scheduler.refs_issued == 0

    def test_windows_between(self, scheduler):
        windows = scheduler.windows_between(0.0, 5 * scheduler.trefi_ns)
        assert len(windows) == 5

    def test_negative_random_slots_rejected(self):
        with pytest.raises(ConfigError):
            RefreshScheduler(
                DDR5_8GB,
                timings_for_device(DDR5_8GB),
                random_slots_per_ref=-1,
            )
