"""Command-trace validation tests, including the controller cross-check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.controller import ChannelController, MemoryRequest
from repro.dram.device import DDR5_32GB, timings_for_device
from repro.dram.trace import (
    TraceValidator,
    refresh_command_stream,
)
from repro.errors import DramProtocolError

TIMINGS = timings_for_device(DDR5_32GB)


def _validator(num_ranks=2):
    return TraceValidator(DDR5_32GB, TIMINGS, num_ranks=num_ranks)


def _cmd(t, kind, rank=0, bank=0, row=0):
    return TimedCommand(time_ns=t, kind=kind, rank=rank, bank=bank, row=row)


class TestBasicRules:
    def test_legal_act_rd_pre(self):
        stats = _validator().validate(
            [
                _cmd(500.0, CommandKind.ACT, row=7),
                _cmd(500.0 + TIMINGS.trcd_ns, CommandKind.RD, row=7),
                _cmd(600.0, CommandKind.PRE),
            ]
        )
        assert stats.host_reads == 1
        assert stats.commands == 3

    def test_read_without_activate_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator().validate([_cmd(500.0, CommandKind.RD, row=7)])

    def test_unordered_trace_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator().validate(
                [
                    _cmd(600.0, CommandKind.ACT, row=7),
                    _cmd(500.0, CommandKind.PRE),
                ]
            )

    def test_host_command_inside_refresh_window_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator().validate(
                [
                    _cmd(0.0, CommandKind.REF),
                    _cmd(TIMINGS.trfc_ns / 2, CommandKind.ACT, row=7),
                ]
            )

    def test_host_command_after_window_allowed(self):
        stats = _validator().validate(
            [
                _cmd(0.0, CommandKind.REF),
                _cmd(TIMINGS.trfc_ns + 1, CommandKind.ACT, row=7),
            ]
        )
        assert stats.refresh_windows == 1

    def test_nma_outside_window_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator().validate(
                [_cmd(500.0, CommandKind.NMA_RD, row=0)]
            )

    def test_nma_conditional_inside_window(self):
        stats = _validator().validate(
            [
                _cmd(0.0, CommandKind.REF),
                # Window 0 refreshes rows 0..15: row 3 is conditional.
                _cmd(50.0, CommandKind.NMA_RD, row=3),
                # Distant subarray: a legal random access.
                _cmd(100.0, CommandKind.NMA_WR, row=512 * 5),
            ]
        )
        assert stats.nma_accesses == 2

    def test_nma_random_into_busy_subarray_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator().validate(
                [
                    _cmd(0.0, CommandKind.REF),
                    _cmd(50.0, CommandKind.NMA_RD, row=100),  # subarray 0 busy
                ]
            )

    def test_ref_acts_as_precharge_all(self):
        """An open row at REF time is implicitly closed (PREA)."""
        stats = _validator().validate(
            [
                _cmd(500.0, CommandKind.ACT, row=7),
                _cmd(TIMINGS.trefi_ns, CommandKind.REF),
                _cmd(
                    TIMINGS.trefi_ns + TIMINGS.trfc_ns + TIMINGS.trp_ns,
                    CommandKind.ACT,
                    row=9,
                ),
            ]
        )
        assert stats.count(CommandKind.ACT) == 2

    def test_unknown_rank_rejected(self):
        with pytest.raises(DramProtocolError):
            _validator(num_ranks=1).validate(
                [_cmd(0.0, CommandKind.REF, rank=5)]
            )


class TestControllerCrossCheck:
    """The controller's closed-form math must imply a legal command stream."""

    def _validate_requests(self, requests):
        controller = ChannelController(DDR5_32GB, TIMINGS, num_ranks=2)
        log = []
        stats = controller.run(requests, command_log=log)
        refs = refresh_command_stream(
            stats.total_time_ns + TIMINGS.trefi_ns, num_ranks=2,
            timings=TIMINGS,
        )
        stream = sorted(log + refs, key=lambda c: (c.time_ns, c.kind.name))
        return TraceValidator(DDR5_32GB, TIMINGS, num_ranks=2).validate(
            stream
        ), stats

    def test_simple_stream_validates(self):
        requests = [
            MemoryRequest(arrival_ns=500.0 + i * 30, rank=i % 2,
                          bank=i % 8, row=i % 64)
            for i in range(64)
        ]
        trace_stats, run_stats = self._validate_requests(requests)
        assert trace_stats.host_reads == run_stats.completed

    def test_same_bank_conflict_stream_validates(self):
        requests = [
            MemoryRequest(arrival_ns=500.0 + i * 10, rank=0, bank=0, row=i)
            for i in range(32)
        ]
        trace_stats, _ = self._validate_requests(requests)
        assert trace_stats.count(CommandKind.PRE) > 0

    def test_closed_page_policy_stream_validates(self):
        """Auto-precharge streams (closed policy) are protocol-legal."""
        controller = ChannelController(
            DDR5_32GB, TIMINGS, num_ranks=2, row_policy="closed"
        )
        log = []
        requests = [
            MemoryRequest(arrival_ns=500.0 + i * 8, rank=0, bank=i % 4,
                          row=(i * 13) % 64)
            for i in range(48)
        ]
        stats = controller.run(requests, command_log=log)
        assert stats.row_hits == 0
        refs = refresh_command_stream(
            stats.total_time_ns + TIMINGS.trefi_ns, num_ranks=2,
            timings=TIMINGS,
        )
        stream = sorted(log + refs, key=lambda c: (c.time_ns, c.kind.name))
        trace_stats = TraceValidator(
            DDR5_32GB, TIMINGS, num_ranks=2
        ).validate(stream)
        # Every access carries its own PRE under auto-precharge.
        assert trace_stats.count(CommandKind.PRE) == stats.completed

    def test_bad_policy_rejected(self):
        import pytest as _pytest

        from repro.errors import ConfigError

        with _pytest.raises(ConfigError):
            ChannelController(DDR5_32GB, TIMINGS, row_policy="fr-fcfs")

    def test_stream_spanning_many_refresh_epochs_validates(self):
        requests = [
            MemoryRequest(
                arrival_ns=100.0 + i * TIMINGS.trefi_ns / 3,
                rank=i % 2, bank=(i * 3) % 16, row=(i * 7) % 128,
            )
            for i in range(120)
        ]
        trace_stats, run_stats = self._validate_requests(requests)
        assert trace_stats.refresh_windows > 30
        assert trace_stats.host_reads == run_stats.completed


@settings(deadline=None, max_examples=25)
@given(
    requests=st.lists(
        st.tuples(
            st.floats(0.0, 50_000.0),
            st.integers(0, 1),    # rank
            st.integers(0, 15),   # bank
            st.integers(0, 255),  # row
            st.booleans(),        # write
        ),
        max_size=80,
    )
)
def test_controller_streams_always_validate_property(requests):
    """Property: any request pattern produces a protocol-legal stream."""
    controller = ChannelController(DDR5_32GB, TIMINGS, num_ranks=2)
    log = []
    stats = controller.run(
        [
            MemoryRequest(
                arrival_ns=arrival, rank=rank, bank=bank, row=row,
                is_write=write,
            )
            for arrival, rank, bank, row, write in requests
        ],
        command_log=log,
    )
    refs = refresh_command_stream(
        stats.total_time_ns + TIMINGS.trefi_ns, num_ranks=2, timings=TIMINGS
    )
    stream = sorted(log + refs, key=lambda c: (c.time_ns, c.kind.name))
    TraceValidator(DDR5_32GB, TIMINGS, num_ranks=2).validate(stream)
