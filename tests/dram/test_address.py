"""Address-mapping tests, including the Fig. 6a page layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.device import DDR5_32GB, DDR5_8GB
from repro.errors import AddressMapError, ConfigError


@pytest.fixture(scope="module")
def mapping():
    return AddressMapping()


class TestDecode:
    def test_address_zero(self, mapping):
        coord = mapping.decode(0)
        assert coord == DramCoordinate(
            channel=0, dimm=0, rank=0, bank=0, row=0, row_offset=0
        )

    def test_channel_interleave_at_256b(self, mapping):
        assert mapping.decode(0).channel == 0
        assert mapping.decode(256).channel == 1
        assert mapping.decode(512).channel == 2
        assert mapping.decode(768).channel == 3
        assert mapping.decode(1024).channel == 0

    def test_bank_interleave_at_128b_within_channel(self, mapping):
        assert mapping.decode(0).bank == 0
        assert mapping.decode(128).bank == 1
        # Next 256 B chunk goes to channel 1; same banks there.
        assert mapping.decode(256).bank == 0
        assert mapping.decode(256 + 128).bank == 1

    def test_out_of_range_rejected(self, mapping):
        with pytest.raises(AddressMapError):
            mapping.decode(mapping.total_capacity_bytes)
        with pytest.raises(AddressMapError):
            mapping.decode(-1)

    def test_capacity(self, mapping):
        # 4 channels x 2 DIMMs x 1 rank x 32 GiB.
        assert mapping.total_capacity_bytes == 8 * 32 * (1 << 30)


class TestPageFootprint:
    def test_page_spans_4_channels_2_banks(self, mapping):
        """Fig. 6a: a 4 KiB page is interleaved between four channels and
        two banks, a single row in each."""
        footprint = mapping.page_footprint(0)
        assert len(footprint) == 8
        channels = {entry[0] for entry in footprint}
        banks = {entry[3] for entry in footprint}
        rows = {entry[4] for entry in footprint}
        assert channels == {0, 1, 2, 3}
        assert banks == {0, 1}
        assert rows == {0}

    def test_per_dimm_bytes(self, mapping):
        assert mapping.per_dimm_bytes() == 1024

    def test_unaligned_page_rejected(self, mapping):
        with pytest.raises(AddressMapError):
            mapping.page_lines(64)

    def test_single_channel_config(self):
        single = AddressMapping(channels=1, dimms_per_channel=1)
        footprint = single.page_footprint(0)
        banks = {entry[3] for entry in footprint}
        assert {entry[0] for entry in footprint} == {0}
        assert banks == {0, 1}


class TestValidation:
    def test_interleave_granularity_constraint(self):
        with pytest.raises(ConfigError):
            AddressMapping(channel_interleave_bytes=100, bank_interleave_bytes=64)

    def test_positive_topology(self):
        with pytest.raises(ConfigError):
            AddressMapping(channels=0)


class TestEncodeInverse:
    def test_manual_round_trip(self, mapping):
        for addr in (0, 128, 4096, 123 * 4096 + 256, 5 * (1 << 30)):
            assert mapping.encode(mapping.decode(addr)) == addr


@settings(deadline=None, max_examples=200)
@given(addr=st.integers(min_value=0, max_value=8 * 32 * (1 << 30) - 1))
def test_decode_encode_round_trip_property(addr):
    mapping = AddressMapping()
    assert mapping.encode(mapping.decode(addr)) == addr


@settings(deadline=None, max_examples=100)
@given(addr=st.integers(min_value=0, max_value=2 * 8 * (1 << 30) - 1))
def test_round_trip_small_device_property(addr):
    mapping = AddressMapping(
        device=DDR5_8GB, channels=2, dimms_per_channel=1
    )
    coord = mapping.decode(addr)
    assert 0 <= coord.bank < DDR5_8GB.banks_per_chip
    assert 0 <= coord.row < DDR5_8GB.rows_per_bank
    assert mapping.encode(coord) == addr
