"""DRAM data-array tests: Fig. 6a's layout with real bytes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.address import AddressMapping
from repro.dram.data import DramArray
from repro.dram.device import DDR5_8GB
from repro.errors import AddressMapError


@pytest.fixture
def array():
    return DramArray()


class TestByteAccess:
    def test_write_read_round_trip(self, array):
        data = bytes(range(256)) * 16  # 4 KiB
        array.write(0x10000, data)
        assert array.read(0x10000, len(data)) == data

    def test_unaligned_small_access(self, array):
        array.write(1000, b"hello world")
        assert array.read(1000, 11) == b"hello world"
        assert array.read(1003, 5) == b"lo wo"

    def test_overwrite(self, array):
        array.write(0, b"a" * 512)
        array.write(128, b"b" * 64)
        got = array.read(0, 512)
        assert got[:128] == b"a" * 128
        assert got[128:192] == b"b" * 64
        assert got[192:] == b"a" * 320

    def test_untouched_memory_reads_zero(self, array):
        assert array.read(1 << 33, 64) == bytes(64)


class TestFig6aLayout:
    def test_page_touches_expected_rows(self, array, json_pages):
        """A 4 KiB page materializes 4 channels x 2 banks = 8 rows."""
        array.write(0, json_pages[0])
        assert array.touched_rows() == 8

    def test_channel_stripes_partition_the_page(self, array, json_pages):
        """Per-channel stripes are 1 KiB each and re-interleave to the
        original page — the multi-channel NMA's input streams."""
        page = json_pages[0]
        array.write(0, page)
        stripes = [array.page_stripe(0, channel) for channel in range(4)]
        assert all(len(stripe) == 1024 for stripe in stripes)
        # Stripe c holds chunks c, c+4, c+8, ... of 256 B each.
        for channel, stripe in enumerate(stripes):
            for index in range(4):
                chunk_index = channel + 4 * index
                expected = page[
                    chunk_index * 256 : (chunk_index + 1) * 256
                ]
                assert stripe[index * 256 : (index + 1) * 256] == expected

    def test_row_content_alternates_between_banks(self, array):
        """Within a channel, consecutive 128 B lines alternate banks
        (Fig. 6a's bank interleaving)."""
        page = bytes([i % 251 for i in range(4096)])
        array.write(0, page)
        row_bank0 = array.row_bytes(0, 0, 0, 0, 0)
        row_bank1 = array.row_bytes(0, 0, 0, 1, 0)
        # Channel 0 gets chunks 0,4,8,12 (256 B each); each chunk's first
        # 128 B line goes to bank 0, second to bank 1.
        assert row_bank0[:128] == page[0:128]
        assert row_bank1[:128] == page[128:256]

    def test_stripe_requires_alignment(self, array):
        with pytest.raises(AddressMapError):
            array.page_stripe(5, 0)

    def test_consistency_check(self, array, json_pages):
        array.write(0, json_pages[0])
        array.verify_consistency()


@settings(deadline=None, max_examples=40)
@given(
    addr_line=st.integers(0, (2 << 30) // 128 - 64),
    seed_chunk=st.binary(min_size=1, max_size=64),
    repeats=st.integers(1, 64),
)
def test_write_read_round_trip_property(addr_line, seed_chunk, repeats):
    """Any write at any line-aligned address reads back exactly."""
    array = DramArray(
        mapping=AddressMapping(
            device=DDR5_8GB, channels=2, dimms_per_channel=1
        )
    )
    addr = addr_line * 128
    data = seed_chunk * repeats
    array.write(addr, data)
    assert array.read(addr, len(data)) == data
    array.verify_consistency()
