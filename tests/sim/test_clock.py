"""SimClock: tick exactness, monotonic advance, save/restore scoping."""

import pytest

from repro.errors import ConfigError
from repro.sim import CLOCK, SimClock, TICKS_PER_NS, ns_to_ticks, ticks_to_ns


class TestTickExactness:
    def test_short_decimal_ns_round_trip_exactly(self):
        # 10^6 ticks/ns = 2^6 * 5^6, so every short-decimal ns value the
        # repo uses survives ns -> ticks -> ns without error.
        for value in (0.0, 1.0, 2.5, 1000.0, 3906.25, 410.0, 195.3125):
            assert ticks_to_ns(ns_to_ticks(value)) == value

    def test_trefi_multiples_match_float_multiplication(self):
        # The golden traces were produced by `ref * 3906.25` in floats;
        # the tick path must reproduce those bit-for-bit.
        trefi_ns = 3906.25
        trefi_ticks = ns_to_ticks(trefi_ns)
        for ref in (0, 1, 7, 8191, 10**6):
            assert ticks_to_ns(ref * trefi_ticks) == ref * trefi_ns

    def test_advance_accumulates_without_drift(self):
        clock = SimClock()
        for _ in range(10_000):
            clock.advance_ns(3906.25)
        assert clock.now_ns() == 10_000 * 3906.25
        assert clock.now_ticks() == 10_000 * ns_to_ticks(3906.25)

    def test_ticks_per_ns_is_femtoseconds(self):
        assert TICKS_PER_NS == 1_000_000


class TestMonotonicAdvance:
    def test_negative_advance_raises(self):
        clock = SimClock(start_ns=100.0)
        with pytest.raises(ConfigError):
            clock.advance_ns(-1.0)
        with pytest.raises(ConfigError):
            clock.advance_ticks(-1)
        assert clock.now_ns() == 100.0

    def test_set_may_rewind(self):
        # set_* is the timeline-owner API: rewinding is allowed there.
        clock = SimClock(start_ns=100.0)
        clock.set_ns(5.0)
        assert clock.now_ns() == 5.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance_ns(2.5) == 2.5
        assert clock.advance_ns(0.0) == 2.5


class TestScoping:
    def test_save_restore_round_trip(self):
        clock = SimClock(start_ns=42.0)
        state = clock.save()
        clock.advance_ns(1000.0)
        clock.restore(state)
        assert clock.now_ns() == 42.0

    def test_scoped_restores_on_exit(self):
        clock = SimClock(start_ns=7.0)
        with clock.scoped(start_ns=0.0):
            clock.advance_ns(500.0)
            assert clock.now_ns() == 500.0
        assert clock.now_ns() == 7.0

    def test_scoped_restores_on_error(self):
        clock = SimClock(start_ns=7.0)
        with pytest.raises(RuntimeError):
            with clock.scoped(start_ns=0.0):
                raise RuntimeError("boom")
        assert clock.now_ns() == 7.0

    def test_nested_scopes_compose_like_a_stack(self):
        clock = SimClock(start_ns=1.0)
        with clock.scoped(start_ns=10.0):
            clock.advance_ns(5.0)
            with clock.scoped(start_ns=100.0):
                clock.advance_ns(50.0)
                assert clock.now_ns() == 150.0
            assert clock.now_ns() == 15.0
        assert clock.now_ns() == 1.0

    def test_scoped_without_start_keeps_current_time(self):
        clock = SimClock(start_ns=9.0)
        with clock.scoped():
            assert clock.now_ns() == 9.0
            clock.set_ns(77.0)
        assert clock.now_ns() == 9.0


class TestSharedInstance:
    def test_module_clock_is_a_simclock(self):
        assert isinstance(CLOCK, SimClock)

    def test_telemetry_shims_delegate_to_shared_clock(self):
        from repro.telemetry import trace as _trace

        with CLOCK.scoped(start_ns=0.0):
            _trace.set_clock_ns(123.0)
            assert CLOCK.now_ns() == 123.0
            _trace.advance_clock_ns(2.0)
            assert _trace.clock_ns() == 125.0
