"""Clock scoping across layers: borrowed timelines always hand back.

The shared :data:`repro.sim.CLOCK` is one mutable timeline; every
component that *owns* time for a while (telemetry sessions, trace
replays, scenario builds) must save/restore it so nesting composes.
These tests pin that contract at the integration level.
"""

import pytest

from repro.scenarios.replayer import TraceReplayer
from repro.scenarios.zoo import build_scenario, load_scenario
from repro.sfm.page import PAGE_SIZE
from repro.sim import CLOCK
from repro.telemetry import TelemetrySession, trace
from repro.tiering.factory import make_tier


@pytest.fixture(autouse=True)
def _pinned_clock():
    """Park the shared clock at a sentinel and verify every test leaves
    it exactly where it found it."""
    state = CLOCK.save()
    CLOCK.set_ns(1_234_567.0)
    trace.set_tracing(False)
    yield
    assert CLOCK.now_ns() == 1_234_567.0, "test leaked clock state"
    CLOCK.restore(state)
    trace.set_tracing(False)


class TestSessionScoping:
    def test_session_zeroes_then_restores_the_clock(self):
        with TelemetrySession():
            assert CLOCK.now_ns() == 0.0
            CLOCK.advance_ns(999.0)
        assert CLOCK.now_ns() == 1_234_567.0

    def test_nested_sessions_restore_like_a_stack(self):
        with TelemetrySession():
            CLOCK.advance_ns(50.0)
            with TelemetrySession():
                assert CLOCK.now_ns() == 0.0
                CLOCK.advance_ns(7.0)
            assert CLOCK.now_ns() == 50.0
        assert CLOCK.now_ns() == 1_234_567.0

    def test_session_restores_on_workload_error(self):
        with pytest.raises(RuntimeError):
            with TelemetrySession():
                CLOCK.advance_ns(3.0)
                raise RuntimeError("workload died")
        assert CLOCK.now_ns() == 1_234_567.0


class TestReplayerScoping:
    def test_replay_drives_then_restores_the_clock(self):
        trace_art = load_scenario("web-session")
        target = make_tier("pipeline", capacity_bytes=40 * PAGE_SIZE)
        report = TraceReplayer(trace_art, target, backend_name="pipeline").run()
        assert report.events > 0
        assert CLOCK.now_ns() == 1_234_567.0

    def test_replays_nest_inside_sessions(self):
        trace_art = load_scenario("web-session")
        with TelemetrySession() as session:
            CLOCK.advance_ns(11.0)
            target = make_tier(
                "pipeline",
                capacity_bytes=40 * PAGE_SIZE,
                registry=session.registry,
            )
            TraceReplayer(
                trace_art, target, backend_name="pipeline", session=session
            ).run()
            assert CLOCK.now_ns() == 11.0
        assert CLOCK.now_ns() == 1_234_567.0


class TestZooScoping:
    def test_build_scenario_restores_the_clock(self):
        trace_art = build_scenario("web-session")
        assert len(trace_art.events) > 0
        assert CLOCK.now_ns() == 1_234_567.0
