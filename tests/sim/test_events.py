"""EventScheduler: ordering, tie-breaking, horizons, cancellation."""

import random

import pytest

from repro.errors import ConfigError
from repro.sim import EventScheduler, SimClock, ns_to_ticks


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def events(clock):
    return EventScheduler(clock=clock)


class TestOrdering:
    def test_events_fire_in_timestamp_order(self, events, clock):
        fired = []
        events.schedule(30.0, lambda: fired.append(("c", clock.now_ns())))
        events.schedule(10.0, lambda: fired.append(("a", clock.now_ns())))
        events.schedule(20.0, lambda: fired.append(("b", clock.now_ns())))
        assert events.run() == 3
        assert fired == [("a", 10.0), ("b", 20.0), ("c", 30.0)]

    def test_equal_timestamps_fire_in_schedule_order(self, events):
        fired = []
        for tag in ("first", "second", "third"):
            events.schedule(5.0, lambda tag=tag: fired.append(tag))
        events.run()
        assert fired == ["first", "second", "third"]

    def test_equal_timestamp_order_is_stable_under_any_interleaving(self):
        # Property: however a seeded stream of (time, tag) schedules
        # lands in the heap, equal-time events fire in schedule order —
        # a run is a pure function of the schedule.
        rng = random.Random(20260809)
        for _ in range(25):
            events = EventScheduler(clock=SimClock())
            schedule = [
                (float(rng.randrange(8)), seq) for seq in range(40)
            ]
            fired = []
            for t_ns, seq in schedule:
                events.schedule(
                    t_ns, lambda t=t_ns, s=seq: fired.append((t, s))
                )
            events.run()
            assert fired == sorted(schedule)

    def test_step_sets_clock_to_event_time(self, events, clock):
        events.schedule(12.5, lambda: None)
        assert events.step() is True
        assert clock.now_ns() == 12.5
        assert events.step() is False

    def test_callbacks_can_self_reschedule(self, events):
        fired = []

        def tick(n):
            fired.append(n)
            if n < 4:
                events.schedule_after(10.0, lambda: tick(n + 1))

        events.schedule(0.0, lambda: tick(0))
        assert events.run() == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_snap_back_after_callback_advances_clock(self, events, clock):
        # A consumer may advance the shared clock inside a callback; the
        # scheduler owns the timeline and snaps back to the next event's
        # exact tick (the refresh window chain relies on this).
        seen = []
        events.schedule(10.0, lambda: clock.advance_ns(500.0))
        events.schedule(20.0, lambda: seen.append(clock.now_ns()))
        events.run()
        assert seen == [20.0]


class TestGuards:
    def test_scheduling_in_the_past_raises(self, events, clock):
        clock.set_ns(100.0)
        with pytest.raises(ConfigError):
            events.schedule(99.0, lambda: None)

    def test_scheduling_at_now_is_allowed(self, events, clock):
        clock.set_ns(100.0)
        events.schedule(100.0, lambda: None)
        assert events.run() == 1

    def test_negative_delay_raises(self, events):
        with pytest.raises(ConfigError):
            events.schedule_after(-1.0, lambda: None)


class TestHorizons:
    def test_run_until_inclusive_boundary(self, events):
        fired = []
        for t in (1.0, 2.0, 3.0):
            events.schedule(t, lambda t=t: fired.append(t))
        assert events.run_until(2.0) == 2
        assert fired == [1.0, 2.0]
        assert len(events) == 1

    def test_run_until_exclusive_boundary(self, events):
        fired = []
        for t in (1.0, 2.0, 3.0):
            events.schedule(t, lambda t=t: fired.append(t))
        assert events.run_until(2.0, inclusive=False) == 1
        assert fired == [1.0]

    def test_run_until_leaves_clock_at_last_fired_event(self, events, clock):
        events.schedule(1.0, lambda: None)
        events.schedule(5.0, lambda: None)
        events.run_until(3.0)
        assert clock.now_ns() == 1.0

    def test_run_max_events_bound(self, events):
        for t in range(10):
            events.schedule(float(t), lambda: None)
        assert events.run(max_events=4) == 4
        assert len(events) == 6


class TestCancellation:
    def test_cancelled_events_are_skipped(self, events):
        fired = []
        keep = events.schedule(1.0, lambda: fired.append("keep"))
        drop = events.schedule(2.0, lambda: fired.append("drop"))
        events.cancel(drop)
        assert len(events) == 1
        assert events.run() == 1
        assert fired == ["keep"]
        assert keep.cancelled is False

    def test_peek_skips_cancelled_head(self, events):
        head = events.schedule(1.0, lambda: None)
        events.schedule(2.0, lambda: None)
        events.cancel(head)
        assert events.peek_ns() == 2.0

    def test_exact_tick_scheduling_has_no_float_round_trip(self, events):
        # 1/3 tREFI is not float-representable; the tick API must land
        # the event on the exact integer tick the policy computed.
        ticks = ns_to_ticks(3906.25) // 3
        event = events.schedule_at_ticks(ticks, lambda: None)
        assert event.ticks == ticks
