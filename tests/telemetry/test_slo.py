"""SLO engine: windowing over simulated time, burn rates, objectives."""

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import (
    AvailabilityObjective,
    LatencyObjective,
    SloEngine,
)


def _latency_setup():
    reg = MetricsRegistry()
    hist = reg.quantile("op_latency_ns", op="store", tier="pipeline")
    obj = LatencyObjective(
        "store-fast",
        op="store",
        tier="pipeline",
        threshold_ns=1000.0,
        target=0.9,
    )
    return reg, hist, obj


class TestValidation:
    def test_bad_targets_rejected(self):
        with pytest.raises(ConfigError):
            LatencyObjective("x", "store", "t", 10.0, target=1.0)
        with pytest.raises(ConfigError):
            LatencyObjective("x", "store", "t", -1.0, target=0.9)
        with pytest.raises(ConfigError):
            AvailabilityObjective("x", 0.0, ("bad",), ("total",))
        with pytest.raises(ConfigError):
            AvailabilityObjective("x", 0.9, (), ("total",))

    def test_engine_needs_objectives_and_positive_window(self):
        reg, _, obj = _latency_setup()
        with pytest.raises(ConfigError):
            SloEngine(reg, [], window_ns=100.0)
        with pytest.raises(ConfigError):
            SloEngine(reg, [obj], window_ns=0)
        with pytest.raises(ConfigError):
            SloEngine(reg, [obj, obj], window_ns=100.0)  # duplicate name


class TestLatencyWindows:
    def test_windows_close_on_simulated_boundaries(self):
        reg, hist, obj = _latency_setup()
        engine = SloEngine(reg, [obj], window_ns=100.0)
        hist.observe(500.0)   # good
        hist.observe(500.0)   # good
        engine.tick(150.0)    # closes [0, 100)
        hist.observe(5000.0)  # bad, lands in second window
        engine.finalize(200.0)
        windows = engine.windows
        assert len(windows) == 2
        assert (windows[0].total, windows[0].bad) == (2, 0)
        assert (windows[1].total, windows[1].bad) == (1, 1)
        assert windows[0].attainment == 1.0
        assert windows[1].attainment == 0.0

    def test_burn_rate_scales_with_error_budget(self):
        reg, hist, obj = _latency_setup()  # target 0.9 => budget 10%
        engine = SloEngine(reg, [obj], window_ns=100.0)
        for _ in range(8):
            hist.observe(1.0)
        hist.observe(9999.0)
        hist.observe(9999.0)
        engine.finalize(100.0)
        (window,) = engine.windows
        # 2 bad / 10 total against a 10% budget: burn = 2.0.
        assert window.burn_rate(obj.target) == pytest.approx(2.0)

    def test_empty_window_counts_as_met(self):
        reg, _, obj = _latency_setup()
        engine = SloEngine(reg, [obj], window_ns=100.0)
        engine.tick(350.0)
        assert len(engine.windows) == 3
        assert all(w.attainment == 1.0 for w in engine.windows)
        assert all(w.burn_rate(obj.target) == 0.0 for w in engine.windows)

    def test_finalize_is_idempotent(self):
        reg, hist, obj = _latency_setup()
        engine = SloEngine(reg, [obj], window_ns=100.0)
        hist.observe(1.0)
        engine.finalize(50.0)
        engine.finalize(50.0)
        assert len(engine.windows) == 1


class TestAvailability:
    def test_counts_sum_all_label_variants(self):
        reg = MetricsRegistry()
        reg.counter("ops", tier="a").inc(60)
        reg.counter("ops", tier="b").inc(40)
        reg.counter("errors", tier="a").inc(5)
        obj = AvailabilityObjective(
            "avail", target=0.99, bad_metrics=("errors",),
            total_metrics=("ops",),
        )
        engine = SloEngine(reg, [obj], window_ns=100.0)
        engine.finalize(100.0)
        (window,) = engine.windows
        assert (window.total, window.bad) == (100, 5)
        assert window.attainment == pytest.approx(0.95)

    def test_deltas_not_cumulative_across_windows(self):
        reg = MetricsRegistry()
        ops = reg.counter("ops")
        errors = reg.counter("errors")
        obj = AvailabilityObjective(
            "avail", target=0.9, bad_metrics=("errors",),
            total_metrics=("ops",),
        )
        engine = SloEngine(reg, [obj], window_ns=100.0)
        ops.inc(10)
        errors.inc(2)
        engine.tick(100.0)
        ops.inc(10)  # clean second window
        engine.finalize(200.0)
        first, second = engine.windows
        assert (first.total, first.bad) == (10, 2)
        assert (second.total, second.bad) == (10, 0)


class TestReporting:
    def test_summary_and_as_dict(self):
        reg, hist, obj = _latency_setup()
        engine = SloEngine(reg, [obj], window_ns=100.0)
        for _ in range(9):
            hist.observe(1.0)
        hist.observe(9999.0)
        engine.finalize(100.0)
        summary = engine.summary()["store-fast"]
        assert summary["total"] == 10
        assert summary["bad"] == 1
        assert summary["attainment"] == pytest.approx(0.9)
        assert summary["met"] is True  # attainment == target
        doc = engine.as_dict()
        assert doc["schema_version"] == 1
        assert doc["objectives"][0]["kind"] == "latency"
        assert doc["windows"][0]["burn_rate"] == pytest.approx(1.0)
