"""TelemetrySession export, the golden emulator mini-trace, and the CLI."""

import json

import numpy as np
import pytest

from repro.core.emulator import EmulatorConfig, XfmEmulator
from repro.sfm.page import PAGE_SIZE
from repro.telemetry import TelemetrySession, trace
from repro.telemetry.runner import WORKLOADS, run_traced


@pytest.fixture(autouse=True)
def _tracing_off():
    trace.set_tracing(False)
    yield
    trace.set_tracing(False)


def _load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


class TestSession:
    def test_enables_and_disables_tracing(self):
        assert not trace.tracing_enabled()
        with TelemetrySession() as session:
            assert trace.tracing_enabled()
            assert trace.current_ring() is session.ring
        assert not trace.tracing_enabled()

    def test_writes_trace_and_metrics(self, tmp_path):
        from repro.sfm.metrics import SwapStats

        with TelemetrySession(out_dir=tmp_path) as session:
            trace.instant("x", trace.TRACK_CPU)
            session.registry.counter("demo").inc(3)
            session.add_stats("swap", SwapStats(swap_outs=2))
        doc = _load(tmp_path / "trace.json")
        assert any(e["name"] == "x" for e in doc["traceEvents"])
        metrics = _load(tmp_path / "metrics.json")
        assert metrics["schema"] == 1
        assert metrics["registry"]["demo"] == 3
        assert metrics["stats"]["swap"]["swap_outs"] == 2
        assert metrics["trace"]["events"] == 1

    def test_no_write_on_exception(self, tmp_path):
        with pytest.raises(RuntimeError):
            with TelemetrySession(out_dir=tmp_path):
                raise RuntimeError("boom")
        assert not (tmp_path / "trace.json").exists()


class TestRingCapacity:
    def test_kwarg_sets_capacity(self):
        session = TelemetrySession(ring_capacity=4)
        assert session.ring.capacity == 4

    def test_env_var_sets_default(self, monkeypatch):
        from repro.telemetry.session import RING_CAPACITY_ENV

        monkeypatch.setenv(RING_CAPACITY_ENV, "128")
        assert TelemetrySession().ring.capacity == 128

    def test_kwarg_wins_over_env(self, monkeypatch):
        from repro.telemetry.session import RING_CAPACITY_ENV

        monkeypatch.setenv(RING_CAPACITY_ENV, "128")
        assert TelemetrySession(ring_capacity=8).ring.capacity == 8

    def test_non_integer_env_raises(self, monkeypatch):
        from repro.errors import ConfigError
        from repro.telemetry.session import RING_CAPACITY_ENV

        monkeypatch.setenv(RING_CAPACITY_ENV, "lots")
        with pytest.raises(ConfigError):
            TelemetrySession()

    def test_default_capacity_without_env(self, monkeypatch):
        from repro.telemetry.session import (
            DEFAULT_RING_CAPACITY,
            RING_CAPACITY_ENV,
        )

        monkeypatch.delenv(RING_CAPACITY_ENV, raising=False)
        assert TelemetrySession().ring.capacity == DEFAULT_RING_CAPACITY

    def test_dropped_events_exported_as_gauge(self, tmp_path):
        with TelemetrySession(out_dir=tmp_path, ring_capacity=2):
            for i in range(5):
                trace.instant(f"e{i}", trace.TRACK_CPU)
        metrics = _load(tmp_path / "metrics.json")
        assert metrics["registry"]["trace.ring_dropped"] == 3
        assert metrics["trace"]["dropped"] == 3
        assert metrics["trace"]["capacity"] == 2
        assert metrics["trace"]["events"] == 2


class TestFlightRecorderLifecycle:
    def test_session_installs_and_removes_recorder(self):
        from repro.telemetry import flightrec

        assert flightrec.current_recorder() is None
        with TelemetrySession() as session:
            assert flightrec.current_recorder() is session.flight
        assert flightrec.current_recorder() is None

    def test_nested_sessions_restore_outer_recorder(self):
        from repro.telemetry import flightrec

        with TelemetrySession() as outer:
            with TelemetrySession() as inner:
                assert flightrec.current_recorder() is inner.flight
            assert flightrec.current_recorder() is outer.flight

    def test_trigger_dump_lands_in_out_dir_and_metrics(self, tmp_path):
        from repro.telemetry import flightrec

        with TelemetrySession(out_dir=tmp_path):
            trace.instant("boom", trace.TRACK_CPU)
            flightrec.trigger(flightrec.REASON_POISON, {"vaddr": 0})
        assert (tmp_path / "flight_poison.json").exists()
        metrics = _load(tmp_path / "metrics.json")
        assert metrics["flight_records"] == [
            str(tmp_path / "flight_poison.json")
        ]


class TestGoldenEmulatorTrace:
    """A 3-window emulator run has a fully deterministic event sequence."""

    def _run(self):
        emulator = XfmEmulator(
            EmulatorConfig(spm_bytes=PAGE_SIZE, crq_depth=4)
        )
        comp = np.array([2, 1, 0])
        decomp = np.zeros(3, dtype=int)
        with trace.tracing() as ring:
            report = emulator._simulate(comp, decomp)
        return emulator, ring, report

    def test_event_sequence(self):
        _, ring, _ = self._run()
        names = [e.name for e in ring.events()]
        assert names == [
            # REF 0: op 1 admitted, op 2 falls back (SPM holds one page),
            # op 1's read rides the window.
            "ref_window", "offload_enqueue", "cpu_fallback", "window_access",
            # REF 1: arrival falls back, op 1's grouped writeback lands.
            "ref_window", "cpu_fallback", "window_access", "offload_complete",
            # REF 2: idle window.
            "ref_window",
        ]

    def test_window_timestamps_follow_ref_cadence(self):
        emulator, ring, _ = self._run()
        trefi = emulator.timings.trefi_ns
        windows = [e for e in ring.events() if e.name == "ref_window"]
        assert [w.ts_ns for w in windows] == [0.0, trefi, 2 * trefi]
        assert all(w.dur_ns == emulator.timings.trfc_ns for w in windows)
        assert all(w.track == "refresh/ch0" for w in windows)

    def test_fallback_reasons_reconcile_with_report(self):
        _, ring, report = self._run()
        reasons = [
            e.args["reason"]
            for e in ring.events()
            if e.name == "cpu_fallback"
        ]
        assert report.total_ops == 3
        assert report.completed_ops == 1
        assert reasons.count("spm_full") == report.fallback_spm_full == 2
        assert reasons.count("queue_full") == report.fallback_queue_full == 0
        assert (
            report.fallback_spm_full + report.fallback_queue_full
            == report.fallback_ops
        )

    def test_untraced_run_is_identical(self):
        """Emission must never perturb the simulation itself."""
        _, _, traced = self._run()
        emulator = XfmEmulator(
            EmulatorConfig(spm_bytes=PAGE_SIZE, crq_depth=4)
        )
        untraced = emulator._simulate(
            np.array([2, 1, 0]), np.zeros(3, dtype=int)
        )
        assert untraced.total_ops == traced.total_ops
        assert untraced.fallback_ops == traced.fallback_ops
        assert untraced.completed_ops == traced.completed_ops
        assert untraced.conditional_accesses == traced.conditional_accesses


class TestRunnerAndCli:
    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_traced("nope")

    def test_zswap_workload_reconciles(self, tmp_path):
        session, summary = run_traced("zswap", out_dir=tmp_path)
        trace_doc = _load(tmp_path / "trace.json")
        metrics = _load(tmp_path / "metrics.json")

        tracks = {
            e["args"]["name"]
            for e in trace_doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert len(tracks) >= 3
        assert {"cpu", "nma", "driver", "refresh/ch0"} <= tracks

        by_reason = {}
        for event in trace_doc["traceEvents"]:
            if event["name"] == "cpu_fallback":
                reason = event["args"]["reason"]
                by_reason[reason] = by_reason.get(reason, 0) + 1
        swap = metrics["stats"]["swap"]
        assert by_reason.get("spm_full", 0) == swap["fallbacks_spm_full"] > 0
        assert (
            by_reason.get("queue_full", 0) == swap["fallbacks_queue_full"] > 0
        )
        assert (
            by_reason.get("demand_fault", 0) == swap["fallbacks_demand"] > 0
        )
        # Every fallback counter increments exactly one trace event.
        assert sum(by_reason.values()) == (
            swap["fallbacks_spm_full"]
            + swap["fallbacks_queue_full"]
            + swap["fallbacks_demand"]
        )
        assert summary["trace_events"] == len(session.ring)

    def test_cli_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "out"
        assert main(["trace", "zswap", "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace workload: zswap" in printed
        assert (out / "trace.json").exists()
        assert (out / "metrics.json").exists()

    def test_cli_trace_unknown_workload(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["trace", "bogus", "--out", str(tmp_path)]) == 2
        assert "unknown trace workload" in capsys.readouterr().err

    def test_all_workloads_registered(self):
        assert set(WORKLOADS) == {"zswap", "emulator", "tiers"}
