"""Metrics registry semantics: counters, gauges, histograms, export."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry.quantiles import QuantileHistogram
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_inc_and_set(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5
        c.set(2)
        assert c.value == 2

    def test_registry_dedupes_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("swap.outs")
        b = reg.counter("swap.outs")
        assert a is b
        labelled = reg.counter("swap.outs", dimm=0)
        assert labelled is not a
        assert reg.counter("swap.outs", dimm=0) is labelled

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.snapshot() == 12


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("h", buckets=(10, 20, 30))
        for value in (5, 10, 11, 25, 31, 1000):
            h.observe(value)
        # <=10: 5, 10 | <=20: 11 | <=30: 25 | overflow: 31, 1000
        assert h.counts == [2, 1, 1, 2]
        assert h.total == 6
        assert h.mean == pytest.approx(sum((5, 10, 11, 25, 31, 1000)) / 6)

    def test_needs_buckets_on_first_use(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h")
        h = reg.histogram("h", buckets=(1, 2))
        # Subsequent lookups may omit the bounds.
        assert reg.histogram("h") is h

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=())


class TestSnapshotExport:
    def test_snapshot_keys_include_labels(self):
        reg = MetricsRegistry()
        reg.counter("driver.mmio_writes", dimm=1).inc(7)
        reg.gauge("occupancy").set(0.5)
        snap = reg.snapshot()
        assert snap["driver.mmio_writes{dimm=1}"] == 7
        assert snap["occupancy"] == 0.5

    def test_collector_folds_into_snapshot(self):
        reg = MetricsRegistry()
        state = {"row_hits": 3, "row_misses": 1}
        reg.register_collector("dram", lambda: dict(state))
        snap = reg.snapshot()
        assert snap["dram.row_hits"] == 3
        state["row_hits"] = 9  # point-in-time: next snapshot sees updates
        assert reg.snapshot()["dram.row_hits"] == 9

    def test_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc["a"] == 2
        assert doc["h"]["counts"] == [1, 0]

    def test_csv_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        h = reg.histogram("h", buckets=(10,))
        h.observe(5)
        h.observe(50)
        csv = reg.to_csv()
        assert "metric,value" in csv
        assert "a,1" in csv
        assert "h|le=10.0,1" in csv
        assert "h|le=+inf,1" in csv
        assert "h|sum,55.0" in csv


class TestQuantileKind:
    def test_registry_dedupes_and_types_quantiles(self):
        reg = MetricsRegistry()
        q = reg.quantile("lat", op="store")
        assert isinstance(q, QuantileHistogram)
        assert reg.quantile("lat", op="store") is q
        assert reg.quantile("lat", op="load") is not q
        with pytest.raises(ConfigError):
            reg.counter("lat", op="store")  # kind conflict

    def test_snapshot_embeds_quantile_dict(self):
        reg = MetricsRegistry()
        reg.quantile("lat").observe(100.0)
        snap = reg.snapshot()["lat"]
        assert snap["kind"] == "quantile"
        assert snap["count"] == 1
        assert set(snap["quantiles"]) == {"p50", "p90", "p99", "p999"}

    def test_csv_flattens_quantiles(self):
        reg = MetricsRegistry()
        q = reg.quantile("lat", op="store")
        q.observe(100.0)
        q.observe(200.0)
        csv = reg.to_csv()
        assert "lat{op=store}|count,2" in csv
        assert "lat{op=store}|sum,300.0" in csv
        assert any(
            line.startswith("lat{op=store}|p50,") for line in csv.splitlines()
        )


class TestCsvAndSnapshotDeterminism:
    """Flattening shape guarantees: bucket order, overflow bin, stable
    label keys across repeated exports."""

    def test_histogram_rows_in_bucket_order_with_overflow_last(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(10, 20, 30))
        for value in (5, 15, 25, 31, 1000):
            h.observe(value)
        lines = [
            line for line in reg.to_csv().splitlines()
            if line.startswith("h|")
        ]
        assert lines == [
            "h|le=10.0,1",
            "h|le=20.0,1",
            "h|le=30.0,1",
            "h|le=+inf,2",
            "h|sum,1076.0",
        ]

    def test_label_keys_are_sorted_and_deterministic(self):
        reg = MetricsRegistry()
        # Construction order of labels must not leak into the key.
        reg.counter("c", zeta=1, alpha=2).inc()
        (key,) = [k for k in reg.snapshot() if k.startswith("c{")]
        assert key == "c{alpha=2,zeta=1}"
        assert reg.counter("c", alpha=2, zeta=1).value == 1

    def test_repeated_exports_are_identical(self):
        reg = MetricsRegistry()
        reg.counter("a", tier="xfm").inc(3)
        reg.histogram("h", buckets=(10,), tier="xfm").observe(50)
        reg.quantile("q", tier="xfm").observe(7.0)
        assert reg.to_csv() == reg.to_csv()
        assert reg.snapshot() == reg.snapshot()


class TestMerge:
    def test_counters_sum_gauges_take_latest(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9

    def test_histograms_sum_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10, 20)).observe(5)
        b.histogram("h", buckets=(10, 20)).observe(15)
        a.merge(b)
        h = a.histogram("h")
        assert h.counts == [1, 1, 0]
        assert h.total == 2

    def test_histogram_bucket_bound_mismatch_raises(self):
        """Regression: merging histograms whose bucket bounds differ must
        raise ConfigError, never silently mis-fold counts."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10, 20)).observe(5)
        b.histogram("h", buckets=(10, 30)).observe(5)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_quantiles_merge_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.quantile("q", tier="xfm").observe(10.0)
        b.quantile("q", tier="xfm").observe(1000.0)
        a.merge(b)
        q = a.quantile("q", tier="xfm")
        assert q.total == 2
        assert q.sum == 1010.0

    def test_quantile_config_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.quantile("q", relative_error=0.01).observe(1.0)
        b.quantile("q", relative_error=0.05).observe(1.0)
        with pytest.raises(ConfigError):
            a.merge(b)

    def test_merge_creates_missing_quantile_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.quantile("q", tier="dfm").observe(42.0)
        a.merge(b)
        assert a.quantile("q", tier="dfm").total == 1


def test_default_registry_is_shared():
    assert default_registry() is default_registry()
