"""Metrics registry semantics: counters, gauges, histograms, export."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_inc_and_set(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5
        c.set(2)
        assert c.value == 2

    def test_registry_dedupes_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("swap.outs")
        b = reg.counter("swap.outs")
        assert a is b
        labelled = reg.counter("swap.outs", dimm=0)
        assert labelled is not a
        assert reg.counter("swap.outs", dimm=0) is labelled

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.snapshot() == 12


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("h", buckets=(10, 20, 30))
        for value in (5, 10, 11, 25, 31, 1000):
            h.observe(value)
        # <=10: 5, 10 | <=20: 11 | <=30: 25 | overflow: 31, 1000
        assert h.counts == [2, 1, 1, 2]
        assert h.total == 6
        assert h.mean == pytest.approx(sum((5, 10, 11, 25, 31, 1000)) / 6)

    def test_needs_buckets_on_first_use(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h")
        h = reg.histogram("h", buckets=(1, 2))
        # Subsequent lookups may omit the bounds.
        assert reg.histogram("h") is h

    def test_empty_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", buckets=())


class TestSnapshotExport:
    def test_snapshot_keys_include_labels(self):
        reg = MetricsRegistry()
        reg.counter("driver.mmio_writes", dimm=1).inc(7)
        reg.gauge("occupancy").set(0.5)
        snap = reg.snapshot()
        assert snap["driver.mmio_writes{dimm=1}"] == 7
        assert snap["occupancy"] == 0.5

    def test_collector_folds_into_snapshot(self):
        reg = MetricsRegistry()
        state = {"row_hits": 3, "row_misses": 1}
        reg.register_collector("dram", lambda: dict(state))
        snap = reg.snapshot()
        assert snap["dram.row_hits"] == 3
        state["row_hits"] = 9  # point-in-time: next snapshot sees updates
        assert reg.snapshot()["dram.row_hits"] == 9

    def test_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h", buckets=(1,)).observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc["a"] == 2
        assert doc["h"]["counts"] == [1, 0]

    def test_csv_flattens_histograms(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        h = reg.histogram("h", buckets=(10,))
        h.observe(5)
        h.observe(50)
        csv = reg.to_csv()
        assert "metric,value" in csv
        assert "a,1" in csv
        assert "h|le=10.0,1" in csv
        assert "h|le=+inf,1" in csv
        assert "h|sum,55.0" in csv


class TestMerge:
    def test_counters_sum_gauges_take_latest(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.gauge("g").set(1)
        b.gauge("g").set(9)
        a.merge(b)
        assert a.counter("c").value == 5
        assert a.gauge("g").value == 9

    def test_histograms_sum_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(10, 20)).observe(5)
        b.histogram("h", buckets=(10, 20)).observe(15)
        a.merge(b)
        h = a.histogram("h")
        assert h.counts == [1, 1, 0]
        assert h.total == 2


def test_default_registry_is_shared():
    assert default_registry() is default_registry()
