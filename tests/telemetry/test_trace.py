"""Trace ring, emission guards, and Chrome trace-event export."""

import pytest

from repro.errors import ConfigError
from repro.telemetry import trace


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts and ends with tracing disabled."""
    trace.set_tracing(False)
    trace.set_clock_ns(0.0)
    yield
    trace.set_tracing(False)


class TestRing:
    def test_overflow_drops_oldest(self):
        ring = trace.TraceRing(capacity=3)
        for i in range(5):
            ring.append(
                trace.TraceEvent(f"e{i}", trace.PH_INSTANT, float(i), "cpu")
            )
        assert len(ring) == 3
        assert ring.dropped == 2
        assert [e.name for e in ring.events()] == ["e2", "e3", "e4"]

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            trace.TraceRing(capacity=0)

    def test_clear_resets_dropped(self):
        ring = trace.TraceRing(capacity=1)
        ring.append(trace.TraceEvent("a", "i", 0.0, "cpu"))
        ring.append(trace.TraceEvent("b", "i", 0.0, "cpu"))
        ring.clear()
        assert len(ring) == 0 and ring.dropped == 0


class TestEmission:
    def test_disabled_is_noop(self):
        assert not trace.tracing_enabled()
        trace.instant("x", trace.TRACK_CPU)  # must not raise, must not store
        assert trace.current_ring() is None

    def test_scoped_tracing_collects_and_restores(self):
        with trace.tracing() as ring:
            assert trace.tracing_enabled()
            trace.instant("a", trace.TRACK_CPU, args={"k": 1})
            trace.complete("b", trace.TRACK_NMA, 100.0, 50.0)
        assert not trace.tracing_enabled()
        names = [e.name for e in ring.events()]
        assert names == ["a", "b"]

    def test_timestamps_default_to_clock(self):
        with trace.tracing() as ring:
            trace.set_clock_ns(123.0)
            trace.instant("a", trace.TRACK_CPU)
            trace.advance_clock_ns(7.0)
            trace.instant("b", trace.TRACK_CPU)
        ts = [e.ts_ns for e in ring.events()]
        assert ts == [123.0, 130.0]

    def test_fallback_event_shape(self):
        with trace.tracing() as ring:
            trace.fallback("spm_full", "compress", vaddr=0x1000)
        (event,) = ring.events()
        assert event.name == "cpu_fallback"
        assert event.track == trace.TRACK_CPU
        assert event.args == {
            "reason": "spm_full",
            "op": "compress",
            "vaddr": 0x1000,
        }


class TestChromeExport:
    def _trace_doc(self):
        with trace.tracing() as ring:
            trace.complete(
                "ref_window", trace.refresh_track(0), 0.0, 350.0,
                args={"ref_index": 0},
            )
            trace.instant("doorbell", trace.TRACK_DRIVER)
            trace.complete("nma_compress", trace.TRACK_NMA, 400.0, 276.0)
            trace.fallback("queue_full", "compress")
        return trace.to_chrome_trace(ring)

    def test_every_event_has_required_fields(self):
        doc = self._trace_doc()
        assert doc["otherData"]["dropped_events"] == 0
        for event in doc["traceEvents"]:
            assert event["ph"] in ("X", "i", "M")
            assert "ts" in event and "pid" in event and "tid" in event
            assert "name" in event
            if event["ph"] == "X":
                assert "dur" in event
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_one_track_per_actor(self):
        doc = self._trace_doc()
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"cpu", "nma", "driver", "refresh/ch0"}

    def test_timestamps_are_microseconds(self):
        doc = self._trace_doc()
        span = next(
            e for e in doc["traceEvents"] if e["name"] == "nma_compress"
        )
        assert span["ts"] == pytest.approx(0.4)  # 400 ns
        assert span["dur"] == pytest.approx(0.276)

    def test_tracks_get_distinct_tids(self):
        doc = self._trace_doc()
        tids = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert len(set(tids.values())) == len(tids)
