"""QuantileHistogram: bounded error, merge semantics, flattening."""

import random

import pytest

from repro.errors import ConfigError
from repro.telemetry.quantiles import (
    STANDARD_QUANTILES,
    QuantileHistogram,
    collect_percentiles,
    observe_many,
)
from repro.telemetry.registry import MetricsRegistry


class TestRecording:
    def test_empty_histogram_reports_zeros(self):
        h = QuantileHistogram("h")
        assert h.total == 0
        assert h.mean == 0.0
        assert h.value_at_quantile(0.5) == 0.0
        assert h.percentiles() == {
            label: 0.0 for label, _ in STANDARD_QUANTILES
        }

    def test_counts_sum_min_max(self):
        h = QuantileHistogram("h")
        observe_many(h, [1.0, 10.0, 100.0])
        assert h.total == 3
        assert h.sum == 111.0
        assert h.min == 1.0
        assert h.max == 100.0
        assert h.mean == pytest.approx(37.0)

    def test_values_at_or_below_min_value_share_bucket_zero(self):
        h = QuantileHistogram("h", min_value=10.0)
        observe_many(h, [0.001, 5.0, 10.0])
        assert h.counts == {0: 3}

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            QuantileHistogram("h", min_value=0)
        with pytest.raises(ConfigError):
            QuantileHistogram("h", relative_error=0)
        with pytest.raises(ConfigError):
            QuantileHistogram("h", relative_error=1.5)

    def test_quantile_out_of_range_rejected(self):
        h = QuantileHistogram("h")
        h.observe(1.0)
        with pytest.raises(ConfigError):
            h.value_at_quantile(1.5)


class TestAccuracy:
    def test_relative_error_bound_holds(self):
        """Every reported quantile is within relative_error of the exact
        same-rank order statistic."""
        rng = random.Random(7)
        values = [rng.lognormvariate(10, 1.5) for _ in range(5000)]
        h = QuantileHistogram("h", relative_error=0.01)
        observe_many(h, values)
        ordered = sorted(values)
        for _, q in STANDARD_QUANTILES:
            exact = ordered[
                max(0, int(-(-q * len(ordered) // 1)) - 1)
            ]
            got = h.value_at_quantile(q)
            assert got == pytest.approx(exact, rel=0.011), q

    def test_extremes_clamped_to_observed_range(self):
        h = QuantileHistogram("h")
        observe_many(h, [5.0, 7.0, 9.0])
        assert h.value_at_quantile(0.0) >= 5.0
        assert h.value_at_quantile(1.0) <= 9.0

    def test_count_below(self):
        h = QuantileHistogram("h", min_value=1.0)
        observe_many(h, [1.0, 50.0, 5000.0])
        assert h.count_below(0.5) == 0  # bucket-0 representative is 1.0
        assert h.count_below(1.0) == 1
        assert h.count_below(100.0) == 2
        assert h.count_below(1e9) == 3


class TestMerge:
    def test_merge_sums_buckets_and_stats(self):
        a = QuantileHistogram("h")
        b = QuantileHistogram("h")
        observe_many(a, [10.0, 20.0])
        observe_many(b, [30.0, 40.0])
        a.merge_from(b)
        assert a.total == 4
        assert a.sum == 100.0
        assert a.min == 10.0
        assert a.max == 40.0
        assert a.value_at_quantile(0.5) == pytest.approx(20.0, rel=0.011)

    def test_merge_config_mismatch_raises(self):
        a = QuantileHistogram("h", relative_error=0.01)
        with pytest.raises(ConfigError):
            a.merge_from(QuantileHistogram("h", relative_error=0.05))
        with pytest.raises(ConfigError):
            a.merge_from(QuantileHistogram("h", min_value=2.0))

    def test_merge_is_exact_bucketwise(self):
        """Merging two halves equals observing the whole stream."""
        rng = random.Random(3)
        values = [rng.uniform(1, 1e6) for _ in range(400)]
        whole = QuantileHistogram("h")
        left, right = QuantileHistogram("h"), QuantileHistogram("h")
        observe_many(whole, values)
        observe_many(left, values[:200])
        observe_many(right, values[200:])
        left.merge_from(right)
        assert left.counts == whole.counts
        assert left.total == whole.total


class TestSnapshotAndCollect:
    def test_snapshot_shape(self):
        h = QuantileHistogram("h")
        observe_many(h, [2.0, 4.0])
        snap = h.snapshot()
        assert snap["kind"] == "quantile"
        assert snap["count"] == 2
        assert snap["sum"] == 6.0
        assert set(snap["quantiles"]) == {
            label for label, _ in STANDARD_QUANTILES
        }

    def test_collect_percentiles_rows_sorted_and_labelled(self):
        reg = MetricsRegistry()
        reg.quantile("op_latency_ns", op="store", tier="xfm").observe(5.0)
        reg.quantile("op_latency_ns", op="load", tier="cpu").observe(3.0)
        reg.quantile("op_latency_ns", op="load", tier="xfm")  # empty
        reg.quantile("other_metric", op="load", tier="cpu").observe(1.0)
        rows = collect_percentiles(reg)
        assert [(r["op"], r["tier"]) for r in rows] == [
            ("load", "cpu"),
            ("store", "xfm"),
        ]
        assert rows[0]["count"] == 1
        assert "p999" in rows[0]
