"""Span causality: nesting, parent ids, leaf stamping, determinism."""

import pytest

from repro.telemetry import spans, trace


@pytest.fixture(autouse=True)
def _clean_state():
    trace.set_tracing(False)
    spans.reset()
    yield
    trace.set_tracing(False)
    spans.reset()


def _events(ring):
    return {e.args["span"]: e for e in ring.events() if "span" in e.args}


class TestNesting:
    def test_child_records_parent_id(self):
        with trace.tracing() as ring:
            with spans.span("outer", "tier") as outer:
                with spans.span("inner", "tier"):
                    pass
        by_id = _events(ring)
        inner = next(
            e for e in by_id.values() if e.name == "inner"
        )
        assert inner.args["parent"] == outer.span_id
        outer_event = by_id[outer.span_id]
        assert "parent" not in outer_event.args

    def test_siblings_share_parent_but_not_ids(self):
        with trace.tracing() as ring:
            with spans.span("outer", "tier") as outer:
                with spans.span("a", "tier") as a:
                    pass
                with spans.span("b", "tier") as b:
                    pass
        assert a.span_id != b.span_id
        by_id = _events(ring)
        assert by_id[a.span_id].args["parent"] == outer.span_id
        assert by_id[b.span_id].args["parent"] == outer.span_id

    def test_duration_is_clock_delta(self):
        with trace.tracing() as ring:
            trace.set_clock_ns(0)
            handle = spans.begin("op", "tier")
            trace.advance_clock_ns(1500.0)
            dur = spans.end(handle)
        assert dur == 1500.0
        (event,) = ring.events()
        assert event.ts_ns == 0.0
        assert event.dur_ns == 1500.0

    def test_end_unwinds_leaked_inner_spans(self):
        with trace.tracing():
            outer = spans.begin("outer", "tier")
            spans.begin("leaked", "tier")
            spans.end(outer)
            assert spans.current_span_id() is None

    def test_args_and_extra_merge_into_event(self):
        with trace.tracing() as ring:
            handle = spans.begin("op", "tier", args={"vaddr": 4096})
            spans.end(handle, extra={"victims": 3})
        (event,) = ring.events()
        assert event.args["vaddr"] == 4096
        assert event.args["victims"] == 3


class TestLeafStamping:
    def test_emit_under_parents_to_open_span(self):
        with trace.tracing() as ring:
            with spans.span("store", "tier") as store:
                leaf = spans.emit_under("cpu_compress", "cpu", 0.0, 10.0)
        by_id = _events(ring)
        assert by_id[leaf].args["parent"] == store.span_id
        assert by_id[leaf].name == "cpu_compress"

    def test_emit_under_outside_any_span_has_no_parent(self):
        with trace.tracing() as ring:
            leaf = spans.emit_under("cpu_compress", "cpu", 0.0, 10.0)
        assert "parent" not in _events(ring)[leaf].args

    def test_instant_under_tags_parent(self):
        with trace.tracing() as ring:
            with spans.span("store", "tier") as store:
                spans.instant_under("poison_page", "tier")
        instant = next(e for e in ring.events() if e.name == "poison_page")
        assert instant.args["parent"] == store.span_id


class TestDeterminism:
    def test_reset_restarts_ids(self):
        with trace.tracing():
            with spans.span("a", "tier") as first:
                pass
        spans.reset()
        with trace.tracing():
            with spans.span("a", "tier") as again:
                pass
        assert first.span_id == again.span_id == 1

    def test_session_entry_resets_ids(self):
        from repro.telemetry import TelemetrySession

        with TelemetrySession():
            with spans.span("a", "tier") as first:
                pass
        with TelemetrySession():
            with spans.span("a", "tier") as again:
                pass
        assert first.span_id == again.span_id == 1
