"""StatsFacade: the dataclass-shaped view over registry counters."""

import pytest

from repro.core.driver import DriverStats
from repro.sfm.metrics import SwapStats
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import StatsFacade


class _Demo(StatsFacade):
    _PREFIX = "demo"
    _FIELDS = {"hits": 0, "misses": 0, "ratio_sum": 0.0}


class TestFacadeSurface:
    def test_defaults_and_kwargs(self):
        s = _Demo(misses=3)
        assert s.hits == 0 and s.misses == 3

    def test_positional_follow_declaration_order(self):
        s = _Demo(1, 2)
        assert (s.hits, s.misses) == (1, 2)

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            _Demo(nonexistent=1)

    def test_duplicate_positional_kwarg_rejected(self):
        with pytest.raises(TypeError):
            _Demo(1, hits=2)

    def test_increment_and_decrement(self):
        s = _Demo()
        s.hits += 2
        s.hits -= 1
        assert s.hits == 1

    def test_repr_and_eq(self):
        assert _Demo(hits=1) == _Demo(hits=1)
        assert _Demo(hits=1) != _Demo(hits=2)
        assert "hits=1" in repr(_Demo(hits=1))

    def test_values_live_in_registry(self):
        reg = MetricsRegistry()
        s = _Demo(registry=reg, labels={"dimm": 2})
        s.hits += 5
        assert reg.counter("demo.hits", dimm=2).value == 5
        assert reg.snapshot()["demo.hits{dimm=2}"] == 5

    def test_private_registry_by_default(self):
        a, b = _Demo(), _Demo()
        a.hits += 1
        assert b.hits == 0
        assert a.registry is not b.registry


class TestMergeAsDict:
    def test_as_dict_order(self):
        assert list(_Demo().as_dict()) == ["hits", "misses", "ratio_sum"]

    def test_merge_sums_fields(self):
        total = _Demo(hits=1).merge(_Demo(hits=2, misses=3))
        assert total.as_dict() == {"hits": 3, "misses": 3, "ratio_sum": 0.0}

    def test_merged_classmethod(self):
        total = _Demo.merged([_Demo(hits=1), _Demo(hits=2), _Demo(misses=1)])
        assert (total.hits, total.misses) == (3, 1)

    def test_merge_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            SwapStats().merge(DriverStats())

    def test_swap_and_driver_stats_share_the_surface(self):
        swap = SwapStats(swap_outs=2)
        driver = DriverStats(mmio_writes=4)
        assert SwapStats.merged([swap, SwapStats(swap_outs=1)]).swap_outs == 3
        assert driver.as_dict()["mmio_writes"] == 4


class TestExistingCallSites:
    """The facades must keep the historical dataclass behaviour."""

    def test_swap_stats_properties_still_work(self):
        stats = SwapStats(
            bytes_out_uncompressed=8192, bytes_out_compressed=2048
        )
        assert stats.mean_compression_ratio == 4.0

    def test_shared_registry_with_labels_keeps_series_apart(self):
        reg = MetricsRegistry()
        d0 = DriverStats(registry=reg, labels={"dimm": 0})
        d1 = DriverStats(registry=reg, labels={"dimm": 1})
        d0.mmio_writes += 1
        d1.mmio_writes += 10
        snap = reg.snapshot()
        assert snap["driver.mmio_writes{dimm=0}"] == 1
        assert snap["driver.mmio_writes{dimm=1}"] == 10
