"""Flight recorder: bounded capture, triggers, dumps, installation."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import flightrec, trace
from repro.telemetry.flightrec import (
    REASON_BREAKER_OPEN,
    REASON_POISON,
    FlightRecorder,
)
from repro.telemetry.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_state():
    trace.set_tracing(False)
    flightrec.uninstall()
    yield
    trace.set_tracing(False)
    flightrec.uninstall()


class TestBoundedCapture:
    def test_capacity_bounds_and_counts_drops(self):
        rec = FlightRecorder(capacity=3)
        flightrec.install(rec)
        with trace.tracing():
            for i in range(5):
                trace.instant(f"e{i}", trace.TRACK_CPU)
        assert len(rec) == 3
        assert rec.dropped == 2
        doc = rec.document("poison")
        assert [e["name"] for e in doc["events"]] == ["e2", "e3", "e4"]
        assert doc["events_dropped"] == 2

    def test_records_even_without_a_ring(self):
        """The flight sink sees (unguarded) emissions even while tracing
        is off and no ring exists — it is "always on" once installed."""
        rec = FlightRecorder(capacity=8)
        flightrec.install(rec)
        assert not trace.tracing_enabled()
        assert trace.current_ring() is None
        trace.instant("x", trace.TRACK_CPU)
        assert len(rec) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)


class TestMetricDeltas:
    def test_deltas_are_relative_to_install_baseline(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(100)
        rec = FlightRecorder(registry=reg)
        reg.counter("ops").inc(7)
        reg.counter("untouched").inc(0)
        assert rec.metric_deltas() == {"ops": 7}

    def test_no_registry_means_no_deltas(self):
        assert FlightRecorder().metric_deltas() == {}


class TestTrigger:
    def test_dump_written_with_out_dir(self, tmp_path):
        rec = FlightRecorder(out_dir=str(tmp_path))
        flightrec.install(rec)
        with trace.tracing():
            trace.instant("last_gasp", trace.TRACK_CPU)
            name = flightrec.trigger(REASON_POISON, {"vaddr": 4096})
        assert name == "flight_poison.json"
        doc = json.loads((tmp_path / name).read_text())
        assert doc["reason"] == "poison"
        assert doc["detail"] == {"vaddr": 4096}
        assert [e["name"] for e in doc["events"]] == ["last_gasp"]
        assert rec.dumps == [str(tmp_path / name)]

    def test_repeat_triggers_get_numbered_files(self, tmp_path):
        rec = FlightRecorder(out_dir=str(tmp_path))
        assert rec.trigger(REASON_BREAKER_OPEN) == "flight_breaker_open.json"
        assert (
            rec.trigger(REASON_BREAKER_OPEN) == "flight_breaker_open_2.json"
        )
        assert rec.trigger(REASON_POISON) == "flight_poison.json"
        assert len(list(tmp_path.glob("flight_*.json"))) == 3

    def test_without_out_dir_documents_kept_no_files_written(self, tmp_path,
                                                             monkeypatch):
        monkeypatch.chdir(tmp_path)
        rec = FlightRecorder()
        rec.trigger(REASON_POISON)
        assert rec.dump_names == ["flight_poison.json"]
        assert len(rec.documents) == 1
        assert rec.dumps == []
        assert list(tmp_path.glob("flight_*.json")) == []


class TestInstallation:
    def test_module_trigger_is_noop_when_uninstalled(self):
        assert flightrec.current_recorder() is None
        assert flightrec.trigger(REASON_POISON) is None

    def test_install_returns_previous_and_uninstall_restores_none(self):
        first, second = FlightRecorder(), FlightRecorder()
        assert flightrec.install(first) is None
        assert flightrec.install(second) is first
        assert flightrec.current_recorder() is second
        assert flightrec.uninstall() is second
        assert flightrec.current_recorder() is None

    def test_module_trigger_routes_to_installed_recorder(self):
        rec = FlightRecorder()
        flightrec.install(rec)
        assert flightrec.trigger(REASON_POISON) == "flight_poison.json"
        assert rec.dump_names == ["flight_poison.json"]
