"""The versioned swap-trace format: round-trips, reproducibility, and
typed failure on every malformation a reader can encounter."""

import base64
import gzip
import json
import zlib

import pytest

from repro.errors import (
    ConfigError,
    ScenarioError,
    TraceFormatError,
    TraceVersionError,
)
from repro.scenarios.format import (
    OP_INVALIDATE,
    OP_LOAD,
    OP_STORE,
    TRACE_FORMAT_VERSION,
    ScenarioTrace,
    TraceEvent,
    digest_hex,
    trace_fingerprint,
)
from repro.sfm.page import PAGE_SIZE
from repro.workloads.corpus import corpus_pages
from repro.workloads.traces import SWAP_IN, SWAP_OUT


def _sample_trace(num_pages: int = 3, name: str = "sample") -> ScenarioTrace:
    trace = ScenarioTrace(name=name, seed=3, meta={"origin": "unit-test"})
    pages = corpus_pages("json-records", num_pages, seed=3)
    digests = [trace.add_page(page) for page in pages]
    t = 0.0
    for index, digest in enumerate(digests):
        t += 1000.0
        trace.append(t, OP_STORE, index * PAGE_SIZE, digest=digest,
                     compressed_len=1024, origin="accepted")
    t += 1000.0
    trace.append(t, OP_LOAD, 0, digest=digests[0], origin="demand")
    t += 1000.0
    trace.append(t, OP_INVALIDATE, PAGE_SIZE)
    return trace


class TestEventAndConstruction:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigError):
            TraceEvent(seq=0, t_ns=0.0, op="teleport", vaddr=0)

    def test_negative_time_and_vaddr_rejected(self):
        with pytest.raises(ConfigError):
            TraceEvent(seq=0, t_ns=-1.0, op=OP_STORE, vaddr=0)
        with pytest.raises(ConfigError):
            TraceEvent(seq=0, t_ns=0.0, op=OP_STORE, vaddr=-4096)

    def test_add_page_wrong_size_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioTrace().add_page(b"short")

    def test_append_unknown_digest_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioTrace().append(0.0, OP_STORE, 0, digest="ff" * 16)

    def test_page_for_unknown_digest_is_typed(self):
        with pytest.raises(TraceFormatError):
            ScenarioTrace().page_for("ab" * 16)

    def test_pages_are_interned_once(self):
        trace = ScenarioTrace()
        page = corpus_pages("json-records", 1, seed=1)[0]
        assert trace.add_page(page) == trace.add_page(page)
        assert len(trace.pages) == 1


class TestRoundTrip:
    def test_save_load_preserves_everything(self, tmp_path):
        trace = _sample_trace()
        path = trace.save(tmp_path / "t.trace.jsonl.gz")
        loaded = ScenarioTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.seed == trace.seed
        assert loaded.meta == trace.meta
        assert loaded.pages == trace.pages
        assert [e.to_json() for e in loaded] == [
            e.to_json() for e in trace
        ]
        assert trace_fingerprint(loaded) == trace_fingerprint(trace)

    def test_save_is_byte_reproducible(self, tmp_path):
        trace = _sample_trace()
        a = trace.save(tmp_path / "a.gz").read_bytes()
        b = trace.save(tmp_path / "b.gz").read_bytes()
        assert a == b

    def test_fingerprint_tracks_content(self):
        assert trace_fingerprint(_sample_trace()) == trace_fingerprint(
            _sample_trace()
        )
        assert trace_fingerprint(_sample_trace(num_pages=2)) != (
            trace_fingerprint(_sample_trace(num_pages=3))
        )

    def test_to_swap_trace_bridge(self):
        swap = _sample_trace().to_swap_trace()
        # 3 stores -> outs, 1 load -> in, invalidate dropped.
        assert swap.count(SWAP_OUT) == 3
        assert swap.count(SWAP_IN) == 1
        assert swap.events[0].time_s == pytest.approx(1e-6)
        assert swap.events[0].compressed_len == 1024


def _rewrite(path, mutate):
    """Load the JSONL lines of a trace file, apply ``mutate``, regzip."""
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        lines = [line.rstrip("\n") for line in fh]
    lines = mutate(lines)
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")


class TestTypedLoadErrors:
    @pytest.fixture()
    def saved(self, tmp_path):
        return _sample_trace().save(tmp_path / "t.trace.jsonl.gz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError):
            ScenarioTrace.load(tmp_path / "nope.gz")

    def test_not_gzip(self, saved):
        saved.write_bytes(b"this is not gzip at all")
        with pytest.raises(TraceFormatError):
            ScenarioTrace.load(saved)

    def test_truncated_gzip_stream(self, saved):
        saved.write_bytes(saved.read_bytes()[:-40])
        with pytest.raises(ScenarioError):
            ScenarioTrace.load(saved)

    def test_empty_file(self, saved):
        with gzip.open(saved, "wt") as fh:
            fh.write("")
        with pytest.raises(TraceFormatError):
            ScenarioTrace.load(saved)

    def test_corrupt_json_line(self, saved):
        _rewrite(saved, lambda lines: lines[:1] + ["{not json"] + lines[2:])
        with pytest.raises(TraceFormatError):
            ScenarioTrace.load(saved)

    def test_newer_version_rejected(self, saved):
        def bump(lines):
            header = json.loads(lines[0])
            header["version"] = TRACE_FORMAT_VERSION + 1
            return [json.dumps(header)] + lines[1:]

        _rewrite(saved, bump)
        with pytest.raises(TraceVersionError):
            ScenarioTrace.load(saved)

    def test_dropped_event_is_truncation(self, saved):
        # Header still declares the old counts -> typed truncation error.
        _rewrite(saved, lambda lines: lines[:-1])
        with pytest.raises(TraceFormatError, match="truncated"):
            ScenarioTrace.load(saved)

    def test_page_digest_mismatch(self, saved):
        def corrupt(lines):
            out, poisoned = [], False
            for line in lines:
                record = json.loads(line)
                if record["kind"] == "page" and not poisoned:
                    record["z"] = base64.b64encode(
                        zlib.compress(bytes(PAGE_SIZE))
                    ).decode("ascii")
                    poisoned = True
                out.append(json.dumps(record))
            return out

        _rewrite(saved, corrupt)
        with pytest.raises(TraceFormatError, match="digest"):
            ScenarioTrace.load(saved)

    def test_event_with_unknown_digest(self, saved):
        def retarget(lines):
            out = []
            for line in lines:
                record = json.loads(line)
                if record["kind"] == "event" and record["digest"]:
                    record["digest"] = "ee" * 16
                out.append(json.dumps(record))
            return out

        _rewrite(saved, retarget)
        with pytest.raises(TraceFormatError, match="unknown page"):
            ScenarioTrace.load(saved)

    def test_unknown_record_kind(self, saved):
        _rewrite(
            saved,
            lambda lines: lines + [json.dumps({"kind": "mystery"})],
        )
        with pytest.raises(TraceFormatError, match="kind"):
            ScenarioTrace.load(saved)

    def test_all_load_errors_are_scenario_errors(self):
        # Callers can catch the whole family with one except clause.
        assert issubclass(TraceFormatError, ScenarioError)
        assert issubclass(TraceVersionError, TraceFormatError)


def test_digest_hex_matches_page_digest():
    page = corpus_pages("json-records", 1, seed=5)[0]
    assert digest_hex(page) == digest_hex(page)
    assert len(digest_hex(page)) == 32
