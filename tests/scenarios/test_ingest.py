"""Corpus ingestion: deterministic artifacts, strict typed loads."""

import gzip
import json

import pytest

from repro.errors import ConfigError, ManifestError
from repro.scenarios.ingest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    CorpusManifest,
    IngestConfig,
    chunk_pages,
    classify,
    gather_files,
    ingest_tree,
)
from repro.sfm.page import PAGE_SIZE


@pytest.fixture()
def tree(tmp_path):
    """A small mixed-domain source tree with things that must be skipped."""
    root = tmp_path / "corpus"
    (root / "pkg").mkdir(parents=True)
    (root / "pkg" / "mod.py").write_text("def f():\n    return 42\n" * 200)
    (root / "README.md").write_text("# corpus\n" + "lorem ipsum " * 500)
    (root / "data.json").write_text(json.dumps({"k": list(range(500))}))
    (root / "table.csv").write_text("a,b,c\n" + "1,2,3\n" * 900)
    # Must all be skipped:
    (root / ".git").mkdir()
    (root / ".git" / "config.py").write_text("never = True\n")
    (root / "__pycache__").mkdir()
    (root / "__pycache__" / "mod.py").write_text("cached = True\n")
    (root / "blob.bin").write_bytes(bytes(64))  # unknown suffix
    (root / "huge.txt").write_text("x" * (8 * 1024 + 1))
    return root


SMALL = IngestConfig(max_file_bytes=8 * 1024)


class TestGatherAndChunk:
    def test_gather_is_sorted_and_filtered(self, tree):
        files = gather_files(tree, SMALL)
        names = [p.relative_to(tree).as_posix() for p in files]
        assert names == sorted(names)
        assert names == [
            "README.md", "data.json", "pkg/mod.py", "table.csv"
        ]  # .git/, __pycache__/, blob.bin, oversized huge.txt all out

    def test_gather_rejects_non_directory(self, tmp_path):
        with pytest.raises(ConfigError):
            gather_files(tmp_path / "missing", SMALL)

    def test_classify(self, tree):
        assert classify(tree / "pkg" / "mod.py") == "source"
        assert classify(tree / "blob.bin") is None

    def test_chunk_pads_final_page_with_zeros(self):
        pages = chunk_pages(b"x" * (PAGE_SIZE + 7), PAGE_SIZE)
        assert [len(p) for p in pages] == [PAGE_SIZE, PAGE_SIZE]
        assert pages[1] == b"x" * 7 + bytes(PAGE_SIZE - 7)
        assert chunk_pages(b"", PAGE_SIZE) == []

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            IngestConfig(page_size=0)
        with pytest.raises(ConfigError):
            IngestConfig(max_file_bytes=-1)


class TestDeterminismAndRoundTrip:
    def test_double_ingest_is_byte_identical(self, tree, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        ingest_tree(tree, a, SMALL)
        ingest_tree(tree, b, SMALL)
        a_files = sorted(p.name for p in a.iterdir())
        assert a_files == sorted(p.name for p in b.iterdir())
        for name in a_files:
            assert (a / name).read_bytes() == (b / name).read_bytes(), name

    def test_manifest_round_trip(self, tree, tmp_path):
        out = tmp_path / "out"
        written = ingest_tree(tree, out, SMALL)
        loaded = CorpusManifest.load(out)
        assert loaded.page_size == written.page_size
        assert loaded.root_label == "corpus"
        assert loaded.summary() == written.summary()
        assert set(loaded.summary()) == {"source", "text", "json", "tabular"}
        assert loaded.total_pages() == written.total_pages() > 0
        for domain, corpus in written.domains.items():
            assert loaded.domains[domain].page_digests == (
                corpus.page_digests
            )
            assert loaded.domains[domain].files == corpus.files

    def test_load_pages_verifies_every_digest(self, tree, tmp_path):
        out = tmp_path / "out"
        written = ingest_tree(tree, out, SMALL)
        loaded = CorpusManifest.load(out)
        for domain in loaded.summary():
            pages = loaded.load_pages(domain)
            assert pages == written.domains[domain].pages
            assert all(len(p) == PAGE_SIZE for p in pages)

    def test_domain_whitelist(self, tree, tmp_path):
        config = IngestConfig(
            max_file_bytes=8 * 1024, domains=("source",)
        )
        manifest = ingest_tree(tree, tmp_path / "out", config)
        assert set(manifest.summary()) == {"source"}


class TestTypedLoadErrors:
    @pytest.fixture()
    def out(self, tree, tmp_path):
        target = tmp_path / "out"
        ingest_tree(tree, target, SMALL)
        return target

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError):
            CorpusManifest.load(tmp_path)

    def test_corrupt_manifest_json(self, out):
        (out / MANIFEST_NAME).write_text("{broken")
        with pytest.raises(ManifestError, match="corrupt JSON"):
            CorpusManifest.load(out)

    def test_wrong_schema_version(self, out):
        doc = json.loads((out / MANIFEST_NAME).read_text())
        doc["schema"] = MANIFEST_VERSION + 1
        (out / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="schema"):
            CorpusManifest.load(out)

    def test_malformed_domain_entry(self, out):
        doc = json.loads((out / MANIFEST_NAME).read_text())
        del doc["domains"]["source"]["files"]
        (out / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="malformed"):
            CorpusManifest.load(out)

    def test_num_pages_digest_count_mismatch(self, out):
        doc = json.loads((out / MANIFEST_NAME).read_text())
        doc["domains"]["source"]["num_pages"] += 1
        (out / MANIFEST_NAME).write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="declares"):
            CorpusManifest.load(out)

    def test_truncated_pages_file(self, out):
        loaded = CorpusManifest.load(out)
        path = out / "source.pages.gz"
        with gzip.open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
                fh.write(blob[: -PAGE_SIZE])
        with pytest.raises(ManifestError, match="bytes on disk"):
            loaded.load_pages("source")

    def test_corrupted_page_bytes(self, out):
        loaded = CorpusManifest.load(out)
        path = out / "source.pages.gz"
        with gzip.open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[10] ^= 0xFF
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
                fh.write(bytes(blob))
        with pytest.raises(ManifestError, match="does not match"):
            loaded.load_pages("source")

    def test_unknown_domain(self, out):
        with pytest.raises(ManifestError, match="no domain"):
            CorpusManifest.load(out).load_pages("holograms")

    def test_unsaved_manifest_has_no_pages(self):
        manifest = CorpusManifest(
            page_size=PAGE_SIZE, root_label="x", domains={}
        )
        with pytest.raises(ManifestError, match="base_dir"):
            manifest.load_pages("source")


def test_repo_source_tree_is_ingestible(tmp_path):
    """The repo's own src/ tree — the first shipped corpus — ingests
    with at least a source domain and verifiable pages."""
    import repro

    src_root = __import__("pathlib").Path(repro.__file__).parents[1]
    manifest = ingest_tree(src_root, tmp_path / "out")
    assert "source" in manifest.summary()
    assert manifest.total_pages() > 50
    loaded = CorpusManifest.load(tmp_path / "out")
    assert loaded.load_pages("source")  # digest-verified read
