"""TraceRecorder: transparent protocol shim + faithful event capture."""

import pytest

from repro.scenarios.format import (
    OP_INVALIDATE,
    OP_LOAD,
    OP_PROMOTE,
    OP_STORE,
    ORIGIN_UPWARD,
    digest_hex,
)
from repro.scenarios.recorder import TraceRecorder
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import trace as _trace
from repro.tiering import FarMemoryTier, TierPipeline
from repro.workloads.corpus import corpus_pages


@pytest.fixture()
def recorder():
    return TraceRecorder(
        SfmBackend(capacity_bytes=64 * PAGE_SIZE), name="unit", seed=9
    )


@pytest.fixture()
def pages():
    return corpus_pages("json-records", 6, seed=9)


class TestProtocolShim:
    def test_recorder_satisfies_the_protocol(self, recorder):
        assert isinstance(recorder, FarMemoryTier)

    def test_passthrough_surfaces(self, recorder, pages):
        page = Page(vaddr=0x1000, data=pages[0])
        assert recorder.swap_out(page).accepted
        assert recorder.contains(0x1000)
        assert recorder.stored_pages() == 1
        assert recorder.used_bytes() > 0
        assert recorder.capacity_bytes == 64 * PAGE_SIZE
        assert recorder.tier_name == recorder.inner.tier_name
        assert recorder.stats is recorder.inner.stats
        assert recorder.ledger is recorder.inner.ledger
        assert recorder.swap_latency_s("in") > 0
        # Non-protocol attributes pass through un-recorded.
        assert recorder.zpool is recorder.inner.zpool

    def test_meta_carries_recording_origin(self, recorder):
        assert recorder.trace.meta["recorded_from"] == (
            recorder.inner.tier_name
        )


class TestEventCapture:
    def test_roundtrip_records_store_and_load(self, recorder, pages):
        page = Page(vaddr=0x2000, data=pages[1])
        recorder.swap_out(page)
        data = recorder.swap_in(Page(vaddr=0x2000, swapped=True))
        assert data == pages[1]
        ops = [e.op for e in recorder.trace]
        assert ops == [OP_STORE, OP_LOAD]
        store, load = recorder.trace.events
        assert store.digest == load.digest == digest_hex(pages[1])
        assert store.origin == "accepted"
        assert store.compressed_len > 0
        assert load.origin == "demand"
        assert recorder.trace.page_for(store.digest) == pages[1]

    def test_prefetch_promote_is_tagged(self, recorder, pages):
        recorder.swap_out(Page(vaddr=0x3000, data=pages[2]))
        recorder.promote(Page(vaddr=0x3000, swapped=True))
        assert recorder.trace.events[-1].op == OP_LOAD
        assert recorder.trace.events[-1].origin == "prefetch"

    def test_rejected_store_is_recorded_with_reason(self, pages):
        tiny = TraceRecorder(SfmBackend(capacity_bytes=PAGE_SIZE))
        noise = corpus_pages("random-bytes", 1, seed=2)[0]
        outcome = tiny.swap_out(Page(vaddr=0, data=noise))
        assert not outcome.accepted
        event = tiny.trace.events[-1]
        assert event.op == OP_STORE
        assert event.origin.startswith("reject:")

    def test_invalidate_recorded_only_when_dropped(self, recorder, pages):
        recorder.swap_out(Page(vaddr=0x4000, data=pages[3]))
        assert recorder.invalidate(0x4000)
        assert not recorder.invalidate(0x4000)  # second drop is a no-op
        invalidates = [
            e for e in recorder.trace if e.op == OP_INVALIDATE
        ]
        assert len(invalidates) == 1

    def test_timestamps_strictly_increase_without_a_clock(
        self, recorder, pages
    ):
        _trace.set_clock_ns(0.0)  # parked clock: recorder self-advances
        for index, data in enumerate(pages):
            recorder.swap_out(Page(vaddr=index * PAGE_SIZE, data=data))
        times = [e.t_ns for e in recorder.trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)


class TestKeyedApiCapture:
    @pytest.fixture()
    def piped(self):
        pipeline = TierPipeline.build(
            cpu_capacity_bytes=8 * PAGE_SIZE,
            xfm_capacity_bytes=8 * PAGE_SIZE,
            dfm_capacity_bytes=64 * PAGE_SIZE,
        )
        return TraceRecorder(pipeline, name="keyed")

    def test_keyed_store_load_promote(self, piped, pages):
        assert piped.store(0, pages[0])
        assert piped.store(1, pages[1])
        assert piped.promote_key(1) is not None
        assert piped.load(0) == pages[0]
        assert piped.load(99) is None  # never stored: not recorded
        ops = [(e.op, e.origin) for e in piped.trace]
        assert ops == [
            (OP_STORE, "accepted"),
            (OP_STORE, "accepted"),
            (OP_PROMOTE, ORIGIN_UPWARD),
            (OP_LOAD, "demand"),
        ]
        # Upward promotes carry the digest of the stored content.
        promote = piped.trace.events[2]
        assert promote.digest == digest_hex(pages[1])
        assert promote.vaddr == 1 * PAGE_SIZE
