"""Replay reports grow latency percentile tables — only under tracing.

The committed replay goldens are rendered from session-less replays, so
the percentile block must be entirely absent there; a traced replay of
the same scenario must populate it.
"""

import pytest

from repro.scenarios.replayer import TraceReplayer, format_report
from repro.scenarios.zoo import load_scenario
from repro.sfm.page import PAGE_SIZE
from repro.telemetry import TelemetrySession, trace
from repro.telemetry.slo import LatencyObjective, SloEngine
from repro.tiering.factory import make_tier


@pytest.fixture(autouse=True)
def _tracing_off():
    trace.set_tracing(False)
    yield
    trace.set_tracing(False)


def _replay(session=None, slo_engine=None):
    trace_art = load_scenario("web-session")
    registry = session.registry if session is not None else None
    target = make_tier(
        "pipeline", capacity_bytes=40 * PAGE_SIZE, registry=registry
    )
    return TraceReplayer(
        trace_art,
        target,
        backend_name="pipeline",
        session=session,
        slo_engine=slo_engine,
    ).run()


class TestTracedReplay:
    def test_percentile_rows_cover_ops_and_tiers(self):
        with TelemetrySession() as session:
            report = _replay(session)
        rows = report.latency_percentiles
        assert rows
        pairs = {(r["op"], r["tier"]) for r in rows}
        assert ("store", "pipeline") in pairs
        assert ("load", "pipeline") in pairs
        assert rows == sorted(
            rows, key=lambda r: (r["op"], r["tier"])
        )

    def test_report_dict_and_rendering_include_percentiles(self):
        with TelemetrySession() as session:
            report = _replay(session)
        doc = report.as_dict()
        assert doc["latency_percentiles"] == report.latency_percentiles
        rendered = format_report(report)
        assert "latency percentiles:" in rendered
        assert "p999_us" in rendered

    def test_slo_engine_ticks_on_trace_timestamps(self):
        with TelemetrySession() as session:
            registry = session.registry
            engine = SloEngine(
                registry,
                [
                    LatencyObjective(
                        "store",
                        op="store",
                        tier="pipeline",
                        threshold_ns=1e9,
                        target=0.5,
                    )
                ],
                window_ns=15000.0,
            )
            _replay(session, slo_engine=engine)
        # web-session spans 90000 ns of simulated time: six whole
        # windows, no trailing partial (everything is within budget by
        # the time the last boundary closes).
        assert len(engine.windows) >= 6
        summary = engine.summary()["store"]
        assert summary["total"] > 0
        assert summary["met"] is True


class TestUntracedReplay:
    def test_no_percentiles_and_unchanged_rendering(self):
        report = _replay()
        assert report.latency_percentiles == []
        assert "latency_percentiles" not in report.as_dict()
        assert "latency percentiles" not in format_report(report)
