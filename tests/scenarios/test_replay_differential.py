"""Differential replay: every shipped scenario against every target.

The acceptance matrix of the scenario zoo: each checked-in trace
artifact replays against all four flat backends plus the 3-tier
pipeline, and on every target

* every load returns byte-identical page contents (digest-verified by
  the replayer: ``digest_mismatches == 0`` and ``missing_pages == 0``),
* two replays of the same trace against the same config produce
  identical stats (full report dict compared), and
* the target's registry counters reconcile 1:1 with its bandwidth
  ledger, exactly like the tiering acceptance tests.
"""

import json

import pytest

from repro.scenarios.format import OP_STORE
from repro.scenarios.replayer import TraceReplayer, replay_trace
from repro.scenarios.zoo import SCENARIOS, load_scenario
from repro.sfm.page import PAGE_SIZE
from repro.tiering import TIER_KINDS, make_tier

SCENARIO_NAMES = sorted(SCENARIOS)


@pytest.fixture(scope="module")
def traces():
    """Load each shipped artifact once for the whole matrix."""
    return {name: load_scenario(name) for name in SCENARIO_NAMES}


@pytest.mark.parametrize("backend", TIER_KINDS)
@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
class TestDifferentialMatrix:
    def test_replay_is_clean_and_reconciles(
        self, traces, scenario, backend
    ):
        trace = traces[scenario]
        target = make_tier(backend)
        report = replay_trace(trace, target, backend_name=backend)

        # Byte-identical page contents on every load, no page ever
        # falls off the world.
        assert report.digest_mismatches == 0, (scenario, backend)
        assert report.missing_pages == 0, (scenario, backend)
        assert report.clean
        assert report.events == len(trace)
        assert report.stores == trace.count(OP_STORE)
        assert report.bytes_moved > 0

        # Ledger <-> counter reconciliation, per concrete tier.
        tiers = (
            target.tiers if backend == "pipeline" else [target]
        )
        for tier in tiers:
            _reconcile(tier)


def _reconcile(tier):
    """Registry byte counters must match ledger totals 1:1."""
    stats = tier.stats
    if tier.tier_name == "dfm":
        assert tier.ledger.total("dfm_link") == (
            stats.bytes_out_uncompressed + stats.bytes_in_uncompressed
        )
        assert tier.ledger.total("dfm_link") == (
            (stats.swap_outs + stats.swap_ins) * PAGE_SIZE
        )
        return
    moved = (
        stats.bytes_out_uncompressed
        + stats.bytes_out_compressed
        + stats.bytes_in_uncompressed
        + stats.bytes_in_compressed
    )
    ledger_total = tier.ledger.total("sfm_cpu") + tier.ledger.total("nma")
    assert ledger_total == moved, tier.tier_name


@pytest.mark.parametrize("scenario", SCENARIO_NAMES)
@pytest.mark.parametrize("backend", ["dfm", "pipeline"])
def test_replay_stats_are_deterministic(traces, scenario, backend):
    """Two replays of one trace against one config: identical reports
    (counters, bytes moved, AMAT, per-tier breakdowns — everything)."""
    trace = traces[scenario]
    first = replay_trace(
        trace, make_tier(backend), backend_name=backend
    ).as_dict()
    second = replay_trace(
        trace, make_tier(backend), backend_name=backend
    ).as_dict()
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def test_chaos_replay_transient_faults_heal(traces):
    """Replaying under the transient fault profile must never corrupt
    or lose data — faults heal via retry/fallback (the chaos gate
    applied to recorded workloads)."""
    report = replay_trace(
        traces["chaos-soak"],
        make_tier("pipeline"),
        backend_name="pipeline",
        fault_profile="transient",
        fault_seed=5,
    )
    assert report.digest_mismatches == 0
    assert report.data_loss_events == 0
    assert report.missing_pages == 0


def test_chaos_replay_is_deterministic_in_fault_seed(traces):
    kwargs = dict(
        backend_name="dfm", fault_profile="transient", fault_seed=11
    )
    first = replay_trace(
        traces["chaos-soak"], make_tier("dfm"), **kwargs
    ).as_dict()
    second = replay_trace(
        traces["chaos-soak"], make_tier("dfm"), **kwargs
    ).as_dict()
    assert first == second


def test_replayer_exports_into_telemetry_session(traces, tmp_path):
    """A session-attached replay lands gauges + an annotation block in
    metrics.json."""
    from repro.telemetry.session import TelemetrySession

    session = TelemetrySession(out_dir=tmp_path)
    with session:
        target = make_tier("dfm", registry=session.registry)
        TraceReplayer(
            traces["kv-cache"],
            target,
            backend_name="dfm",
            session=session,
        ).run()
    doc = json.loads((tmp_path / "metrics.json").read_text())
    assert doc["annotations"]["replay"]["scenario"] == "kv-cache"
    assert doc["annotations"]["replay"]["clean"] is True
    assert "replay_target" in doc["stats"]


@pytest.mark.slow
def test_soak_replay_across_all_backends_repeatedly(traces):
    """Long soak: the chaos-soak trace replayed three times per target,
    clean every time (exercises allocator/compaction paths that only
    show up under sustained reuse)."""
    for backend in TIER_KINDS:
        for _ in range(3):
            report = replay_trace(
                traces["chaos-soak"],
                make_tier(backend),
                backend_name=backend,
            )
            assert report.clean, backend
