"""Golden replay snapshots for the shipped scenario artifacts.

Replaying a checked-in trace against the pinned golden backend config
must render byte-identically to ``benchmarks/results/replay_*.txt``.
A diff means replay semantics (hit accounting, AMAT model, per-tier
routing) moved — regenerate the goldens only after confirming the shift
is intentional.  A second guard pins the artifacts themselves: the zoo
builders must still reproduce the committed traces bit-for-bit.
"""

from pathlib import Path

import pytest

from repro.analysis.goldens import (
    REPLAY_GOLDEN_BACKEND,
    REPLAY_GOLDEN_FILES,
    REPLAY_GOLDEN_KWARGS,
    replay_summary,
)
from repro.scenarios.format import trace_fingerprint
from repro.scenarios.replayer import replay_trace
from repro.scenarios.zoo import SCENARIOS, build_scenario, load_scenario
from repro.tiering import make_tier

RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _golden(name: str) -> str:
    path = RESULTS / name
    if not path.exists():
        pytest.skip(f"golden file {path} not committed")
    return path.read_text()


@pytest.mark.parametrize("scenario", sorted(REPLAY_GOLDEN_FILES))
def test_replay_matches_golden(scenario):
    trace = load_scenario(scenario)
    target = make_tier(REPLAY_GOLDEN_BACKEND, **REPLAY_GOLDEN_KWARGS)
    report = replay_trace(
        trace, target, backend_name=REPLAY_GOLDEN_BACKEND
    )
    rendered = replay_summary(report) + "\n"
    golden = _golden(REPLAY_GOLDEN_FILES[scenario])
    assert rendered == golden, (
        f"replay of {scenario} drifted from "
        f"benchmarks/results/{REPLAY_GOLDEN_FILES[scenario]} — regenerate "
        "via scripts in EXPERIMENTS.md only if the change is intentional"
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_shipped_artifact_matches_builder(scenario):
    """The committed .trace.jsonl.gz must be exactly what the zoo
    builder produces today — stale artifacts fail here."""
    assert trace_fingerprint(load_scenario(scenario)) == (
        trace_fingerprint(build_scenario(scenario))
    ), (
        f"shipped artifact for {scenario} is stale — regenerate with "
        "repro.scenarios.zoo.regenerate_artifacts()"
    )
