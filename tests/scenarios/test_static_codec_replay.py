"""Static-table codecs under the replay harness's shadow oracle.

The replayer digest-verifies every load against what was recorded, so
replaying a scenario against a backend whose codec uses corpus-trained
static tables proves mode-3 blobs survive a full swap data plane — not
just codec-level round-trips."""

import pytest

from repro.compression.static_tables import StaticTableRegistry
from repro.scenarios.replayer import replay_trace
from repro.scenarios.zoo import load_scenario
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE
from repro.tiering.pipeline import TierPipeline
from repro.workloads.corpus import corpus_pages

CAPACITY = 4096 * PAGE_SIZE


@pytest.fixture(scope="module")
def static_codec():
    registry = StaticTableRegistry()
    # Train on the synthetic json corpus: deterministic, and the same
    # byte class several zoo scenarios store.
    registry.train(
        corpus_pages("json-records", 32, seed=1),
        "replay-json",
        source_label="replay-test",
    )
    return registry.codec_for("replay-json")


@pytest.fixture(scope="module")
def trace():
    return load_scenario("kv-cache")


def test_flat_backend_with_static_tables_replays_clean(
    static_codec, trace
):
    target = SfmBackend(capacity_bytes=CAPACITY, codec=static_codec)
    report = replay_trace(trace, target, backend_name="sfm-static")
    assert report.digest_mismatches == 0
    assert report.missing_pages == 0
    assert report.clean
    assert report.events == len(trace)


def test_replay_stats_identical_to_dynamic_codec(static_codec, trace):
    """Static tables change blob bytes, never replay semantics: the
    same trace produces the same functional stats (stores, loads,
    shadow traffic) under static and dynamic deflate."""
    from repro.compression import DeflateCodec

    def run(codec):
        report = replay_trace(
            trace,
            SfmBackend(capacity_bytes=CAPACITY, codec=codec),
            backend_name="sfm",
        ).as_dict()
        # Compression-dependent fields legitimately differ.
        for key in ("bytes_moved", "per_tier", "channel_bytes", "amat_us"):
            report.pop(key, None)
        return report

    assert run(static_codec) == run(DeflateCodec())


def test_pipeline_with_static_top_tier_replays_clean(static_codec, trace):
    pipeline = TierPipeline(
        [
            (
                "cpu-zswap",
                SfmBackend(
                    capacity_bytes=4 * PAGE_SIZE,
                    codec=static_codec,
                    page_cache_entries=0,
                ),
            ),
            ("xfm", SfmBackend(capacity_bytes=CAPACITY)),
        ]
    )
    report = replay_trace(trace, pipeline, backend_name="pipeline-static")
    assert report.digest_mismatches == 0
    assert report.missing_pages == 0
    assert report.clean
    # The small static-codec top tier forces demotion traffic, so the
    # mode-3 blobs also crossed the batched demotion cascade.
    assert pipeline.pipeline_stats.demotions > 0
