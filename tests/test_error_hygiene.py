"""Hygiene lints: typed errors in device layers, one clock for the stack.

Error hygiene: the resilience layer's recovery logic dispatches on the
:mod:`repro.errors` hierarchy (``DeviceFault`` retries, ``SfmError``
surfaces, ``CorruptedBlobError`` poisons, ...). A bare builtin raise in
those layers would silently bypass every one of those contracts, so
this test greps them out of existence. Builtins stay allowed elsewhere
(e.g. compression codecs predate the hierarchy and raise ``ValueError``
for malformed arguments by design).

Clock hygiene: all simulated time originates from
:data:`repro.sim.CLOCK`. Wall-clock reads (``time.time`` /
``time.monotonic`` / ``time.perf_counter``) and ad-hoc module-level
clock state anywhere else in ``src/repro`` would fork the timeline —
timestamps that drift from refresh windows, backoff charges invisible
to breaker cool-downs — so the grep forbids both outside ``repro/sim``,
with a short allowlist for the two places that *measure the host*
(the lzbench perf harness and the fuzzer's wall-time budget).
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Layers whose raises must come from repro.errors.
LINTED_DIRS = ("core", "sfm", "dfm", "tiering", "scenarios", "fleet")

#: Builtin exception types forbidden as `raise X(...)` in linted dirs.
FORBIDDEN = ("ValueError", "RuntimeError", "Exception", "KeyError",
             "TypeError", "IOError", "OSError")

_RAISE = re.compile(
    r"^\s*raise\s+(?:" + "|".join(FORBIDDEN) + r")\b"
)


def _linted_files():
    for directory in LINTED_DIRS:
        yield from sorted((SRC / directory).rglob("*.py"))


def test_linted_layers_exist():
    files = list(_linted_files())
    assert len(files) >= 8, "lint scope unexpectedly small"


def test_no_builtin_raises_in_device_layers():
    offenders = []
    for path in _linted_files():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _RAISE.match(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "builtin exceptions raised in device layers (use repro.errors):\n"
        + "\n".join(offenders)
    )


def test_resilience_error_types_are_wired():
    """The three error types the resilience layer dispatches on exist
    and sit in the right places in the hierarchy."""
    from repro.errors import (
        CorruptedBlobError,
        DeviceFault,
        ReproError,
        SfmError,
        TierUnavailableError,
    )

    assert issubclass(DeviceFault, ReproError)
    assert issubclass(TierUnavailableError, ReproError)
    assert issubclass(CorruptedBlobError, SfmError)
    # CorruptedBlobError carries the poisoned vaddr for reporting.
    assert CorruptedBlobError("x", vaddr=0x123).vaddr == 0x123


def test_overload_error_types_are_wired():
    """The fleet serving layer's shed/fast-fail types exist, nest so a
    single ``except OverloadError`` catches both, and carry the
    machine-readable fields clients dispatch on."""
    from repro.errors import OverloadError, ReproError, RetryBudgetExhausted

    assert issubclass(OverloadError, ReproError)
    assert issubclass(RetryBudgetExhausted, OverloadError)
    exc = OverloadError("shed", reason="queue-full", retry_after_ns=1500.0)
    assert exc.reason == "queue-full"
    assert exc.retry_after_ns == 1500.0
    assert RetryBudgetExhausted("no budget").reason == "retry-budget"


# -- clock hygiene -----------------------------------------------------------

#: Wall-clock reads forbidden in src/repro outside repro/sim. Matches
#: call sites (`time.monotonic(`), not the words in prose/docstrings.
_WALL_CLOCK = re.compile(
    r"\btime\.(?:time|monotonic|perf_counter|monotonic_ns|time_ns"
    r"|perf_counter_ns)\s*\("
)

#: Ad-hoc simulated-clock state: module-level mutable time variables of
#: the shape the pre-sim telemetry layer used (`_clock_ns = 0.0`). Any
#: new one must live in repro/sim instead.
_ADHOC_CLOCK = re.compile(r"^_[a-z_]*clock[a-z_]*\s*(?::[^=]+)?=\s*[-0-9]")

#: Files allowed to read the host clock: they measure the host itself
#: (codec throughput, fuzz wall-time budget), not simulated time.
WALL_CLOCK_ALLOWLIST = {
    "workloads/lzbench.py",
    "validation/fuzz.py",
}


def _all_src_files():
    yield from sorted(SRC.rglob("*.py"))


def test_no_wall_clock_outside_sim():
    offenders = []
    for path in _all_src_files():
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith("sim/") or rel in WALL_CLOCK_ALLOWLIST:
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _WALL_CLOCK.search(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "wall-clock reads outside repro/sim (use repro.sim.CLOCK, or add "
        "a host-measurement file to WALL_CLOCK_ALLOWLIST):\n"
        + "\n".join(offenders)
    )


def test_no_adhoc_clock_state_outside_sim():
    offenders = []
    for path in _all_src_files():
        rel = path.relative_to(SRC).as_posix()
        if rel.startswith("sim/"):
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _ADHOC_CLOCK.match(line):
                offenders.append(f"{rel}:{lineno}: {line.strip()}")
    assert not offenders, (
        "ad-hoc module-level clock state outside repro/sim (the shared "
        "timeline lives in repro.sim.CLOCK):\n" + "\n".join(offenders)
    )


def test_wall_clock_allowlist_is_tight():
    """Every allowlisted file exists and actually reads the host clock —
    stale entries would quietly widen the lint hole."""
    for rel in sorted(WALL_CLOCK_ALLOWLIST):
        path = SRC / rel
        assert path.exists(), f"allowlist entry gone: {rel}"
        assert _WALL_CLOCK.search(path.read_text(encoding="utf-8")), (
            f"allowlist entry no longer reads the wall clock: {rel}"
        )


def test_scenario_error_types_are_wired():
    """Trace/manifest readers raise one catchable family."""
    from repro.errors import (
        ManifestError,
        ReproError,
        ScenarioError,
        TraceFormatError,
        TraceVersionError,
    )

    assert issubclass(ScenarioError, ReproError)
    assert issubclass(TraceFormatError, ScenarioError)
    assert issubclass(TraceVersionError, TraceFormatError)
    assert issubclass(ManifestError, ScenarioError)
