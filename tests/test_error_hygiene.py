"""Error-hygiene lint: the device/backends layers raise typed errors.

The resilience layer's recovery logic dispatches on the
:mod:`repro.errors` hierarchy (``DeviceFault`` retries, ``SfmError``
surfaces, ``CorruptedBlobError`` poisons, ...). A bare builtin raise in
those layers would silently bypass every one of those contracts, so
this test greps them out of existence. Builtins stay allowed elsewhere
(e.g. compression codecs predate the hierarchy and raise ``ValueError``
for malformed arguments by design).
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Layers whose raises must come from repro.errors.
LINTED_DIRS = ("core", "sfm", "dfm", "tiering", "scenarios")

#: Builtin exception types forbidden as `raise X(...)` in linted dirs.
FORBIDDEN = ("ValueError", "RuntimeError", "Exception", "KeyError",
             "TypeError", "IOError", "OSError")

_RAISE = re.compile(
    r"^\s*raise\s+(?:" + "|".join(FORBIDDEN) + r")\b"
)


def _linted_files():
    for directory in LINTED_DIRS:
        yield from sorted((SRC / directory).rglob("*.py"))


def test_linted_layers_exist():
    files = list(_linted_files())
    assert len(files) >= 8, "lint scope unexpectedly small"


def test_no_builtin_raises_in_device_layers():
    offenders = []
    for path in _linted_files():
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if _RAISE.match(line):
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
    assert not offenders, (
        "builtin exceptions raised in device layers (use repro.errors):\n"
        + "\n".join(offenders)
    )


def test_resilience_error_types_are_wired():
    """The three error types the resilience layer dispatches on exist
    and sit in the right places in the hierarchy."""
    from repro.errors import (
        CorruptedBlobError,
        DeviceFault,
        ReproError,
        SfmError,
        TierUnavailableError,
    )

    assert issubclass(DeviceFault, ReproError)
    assert issubclass(TierUnavailableError, ReproError)
    assert issubclass(CorruptedBlobError, SfmError)
    # CorruptedBlobError carries the poisoned vaddr for reporting.
    assert CorruptedBlobError("x", vaddr=0x123).vaddr == 0x123


def test_scenario_error_types_are_wired():
    """Trace/manifest readers raise one catchable family."""
    from repro.errors import (
        ManifestError,
        ReproError,
        ScenarioError,
        TraceFormatError,
        TraceVersionError,
    )

    assert issubclass(ScenarioError, ReproError)
    assert issubclass(TraceFormatError, ScenarioError)
    assert issubclass(TraceVersionError, TraceFormatError)
    assert issubclass(ManifestError, ScenarioError)
