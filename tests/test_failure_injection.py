"""Failure-injection tests: corruption, misuse, and resource exhaustion
must surface as typed errors, never as silent wrong answers."""

import pytest

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.core.backend import XfmBackend
from repro.errors import (
    CorruptStreamError,
    EntryNotFoundError,
    MmioError,
    ReproError,
    SfmError,
)
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.corpus import corpus_pages


def _swap_one(backend, data):
    page = Page(vaddr=0, data=data)
    assert backend.swap_out(page).accepted
    return page


class TestPoolCorruption:
    """Bit flips inside the compressed pool must be detected on swap-in."""

    @pytest.mark.parametrize(
        "backend_cls", [SfmBackend, XfmBackend], ids=["baseline", "xfm"]
    )
    def test_corrupted_blob_detected(self, backend_cls, json_pages):
        backend = backend_cls(capacity_bytes=16 * PAGE_SIZE)
        page = _swap_one(backend, json_pages[0])
        handle = backend.index.lookup(page.vaddr)
        entry = backend.zpool.entry(handle)
        slab = backend.zpool._slabs[entry.slab]
        # Flip a byte in the middle of the compressed stream.
        slab.buffer[entry.offset + entry.length // 2] ^= 0xFF
        with pytest.raises(ReproError):
            backend.swap_in(page)

    def test_truncation_detected_by_every_codec(self, json_pages):
        for codec in (DeflateCodec(), LzFastCodec(), ZstdLikeCodec()):
            blob = codec.compress(json_pages[0])
            for cut in (1, len(blob) // 3, len(blob) - 1):
                with pytest.raises(CorruptStreamError):
                    codec.decompress(blob[:cut])

    def test_header_length_mismatch_detected(self, json_pages):
        codec = LzFastCodec()
        blob = bytearray(codec.compress(json_pages[0]))
        # Corrupt the varint original-length field.
        blob[2] ^= 0x01
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(blob))


class TestIndexConsistency:
    def test_double_free_detected(self, json_pages):
        backend = SfmBackend(capacity_bytes=16 * PAGE_SIZE)
        page = _swap_one(backend, json_pages[0])
        handle = backend.index.lookup(page.vaddr)
        backend.zpool.free(handle)  # simulate an index/pool desync
        with pytest.raises(EntryNotFoundError):
            backend.swap_in(page)

    def test_stale_page_flag_detected(self, json_pages):
        backend = SfmBackend(capacity_bytes=16 * PAGE_SIZE)
        page = Page(vaddr=0, data=json_pages[0])
        page.swapped = True  # lies about being in far memory
        page.data = None
        with pytest.raises(EntryNotFoundError):
            backend.swap_in(page)


class TestDriverMisuse:
    def test_writing_device_registers_rejected(self):
        backend = XfmBackend(capacity_bytes=16 * PAGE_SIZE)
        from repro.core.registers import Registers

        with pytest.raises(MmioError):
            backend.nma.registers.mmio_write(int(Registers.SP_CAPACITY), 0)

    def test_fallbacks_keep_system_functional_under_exhaustion(
        self, json_pages
    ):
        """With a 1-deep CRQ, most offloads fail — but every swap must
        still succeed via CPU_Fallback and contents stay intact."""
        from repro.core.nma import NearMemoryAccelerator, NmaConfig

        nma = NearMemoryAccelerator(NmaConfig(crq_depth=1, spm_bytes=PAGE_SIZE))
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE, nma=nma)
        # Wedge the queue permanently.
        nma.submit(True, 0, None, PAGE_SIZE)
        data = corpus_pages("server-log", 6, seed=61)
        pages = [Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(data)]
        for page in pages:
            assert backend.xfm_swap_out(page).accepted
        assert backend.stats.cpu_fallback_compressions == len(pages)
        for page, original in zip(pages, data):
            assert backend.swap_in(page) == original


class TestStateMachineMisuse:
    def test_swap_in_twice_rejected(self, json_pages):
        backend = SfmBackend(capacity_bytes=16 * PAGE_SIZE)
        page = _swap_one(backend, json_pages[0])
        backend.swap_in(page)
        with pytest.raises(SfmError):
            backend.swap_in(page)

    def test_interleaved_misuse_never_corrupts_others(self, json_pages):
        """Errors on one page must not damage other stored pages."""
        backend = SfmBackend(capacity_bytes=32 * PAGE_SIZE)
        pages = [
            Page(vaddr=i * PAGE_SIZE, data=d)
            for i, d in enumerate(json_pages)
        ]
        for page in pages:
            backend.swap_out(page)
        with pytest.raises(SfmError):
            backend.swap_out(pages[0])  # already swapped
        for page, original in zip(pages, json_pages):
            assert backend.swap_in(page) == original
