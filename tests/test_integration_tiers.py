"""Tier-interchangeability integration tests.

The whole stack — web front-end, AIFM runtime, cold-scan controller,
zswap frontend — must run unchanged over every far-memory tier: baseline
CPU SFM, single-DIMM XFM, multi-channel XFM, and DFM. This is the
"downstream user" seam: swap the tier, keep the application.
"""

import pytest

from repro.core.backend import XfmBackend
from repro.core.system import MultiChannelXfmBackend
from repro.dfm import DfmBackend
from repro.sfm.backend import SfmBackend
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.prefetch import SequentialPrefetcher
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig

TIERS = {
    "baseline": lambda: SfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "xfm": lambda: XfmBackend(capacity_bytes=512 * PAGE_SIZE),
    "xfm-multichannel": lambda: MultiChannelXfmBackend(
        capacity_bytes=512 * PAGE_SIZE, num_dimms=4
    ),
    "dfm": lambda: DfmBackend(capacity_bytes=512 * PAGE_SIZE),
}


def _run_frontend(backend, prefetcher=None, duration_s=30.0):
    runtime = FarMemoryRuntime(
        backend,
        local_capacity_pages=32,
        controller=ColdScanController(cold_threshold_s=3.0, scan_period_s=2.0),
        prefetcher=prefetcher,
    )
    frontend = WebFrontend(
        runtime,
        WebFrontendConfig(num_pages=96, lookups_per_s=25, seed=19),
    )
    report = frontend.run(duration_s=duration_s)
    return runtime, report


@pytest.mark.parametrize("tier", list(TIERS), ids=list(TIERS))
class TestEveryTier:
    def test_frontend_runs_and_swaps(self, tier):
        runtime, report = _run_frontend(TIERS[tier]())
        assert report.swap_outs > 0
        assert report.swap_ins > 0
        assert runtime.resident_pages() <= 96

    def test_contents_survive_churn(self, tier):
        from repro.workloads.corpus import corpus_pages

        runtime, _ = _run_frontend(TIERS[tier]())
        original = corpus_pages("json-records", 96, seed=19)
        for index, vaddr in enumerate(
            sorted(runtime.pages)
        ):
            assert runtime.read(vaddr, now_s=9999.0) == original[index], (
                tier,
                index,
            )


class TestTierDifferences:
    def test_only_cpu_tier_burns_compress_cycles(self):
        results = {
            name: _run_frontend(factory())[0].backend
            for name, factory in TIERS.items()
        }
        assert results["baseline"].stats.cpu_compress_cycles > 0
        assert results["xfm"].stats.cpu_compress_cycles == 0
        assert results["dfm"].stats.total_cpu_cycles == 0

    def test_dfm_accepts_everything_sfm_rejects_incompressible(self):
        from repro.sfm.page import Page
        from repro.workloads.corpus import corpus_pages

        noise = corpus_pages("random-bytes", 2, seed=23)
        sfm = SfmBackend(capacity_bytes=16 * PAGE_SIZE)
        dfm = DfmBackend(capacity_bytes=16 * PAGE_SIZE)
        assert not sfm.swap_out(Page(vaddr=0, data=noise[0])).accepted
        assert dfm.swap_out(Page(vaddr=0, data=noise[0])).accepted

    def test_prefetcher_drives_offloads_on_multichannel(self):
        backend = MultiChannelXfmBackend(
            capacity_bytes=512 * PAGE_SIZE, num_dimms=4
        )
        _run_frontend(
            backend, prefetcher=SequentialPrefetcher(degree=4),
            duration_s=45.0,
        )
        assert backend.stats.offloaded_decompressions > 0
