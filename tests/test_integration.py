"""Cross-module integration tests.

These exercise the seams the unit tests cannot: the full application ->
runtime -> controller -> backend -> zpool/NMA path, baseline-vs-XFM
equivalence, and the public API surface.
"""

import pytest

import repro
from repro import (
    PAGE_SIZE,
    Page,
    SfmBackend,
    XfmBackend,
    corpus_pages,
)
from repro.sfm.controller import ColdScanController, PressureController
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig


class TestBaselineXfmEquivalence:
    """XFM must be a functionally transparent drop-in for the baseline."""

    def test_identical_content_behaviour(self):
        data = corpus_pages("db-btree", 12, seed=21)
        baseline = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        xfm = XfmBackend(capacity_bytes=64 * PAGE_SIZE, codec=baseline.codec)
        base_pages = [Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(data)]
        xfm_pages = [Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(data)]
        for bp, xp in zip(base_pages, xfm_pages):
            assert baseline.swap_out(bp).accepted == xfm.swap_out(xp).accepted
        for bp, xp, original in zip(base_pages, xfm_pages, data):
            assert baseline.swap_in(bp) == original
            assert xfm.swap_in(xp) == original

    def test_xfm_moves_traffic_off_the_channel(self):
        """The whole point: same work, zero DDR-channel bytes for swap-outs."""
        data = corpus_pages("server-log", 8, seed=22)
        baseline = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        xfm = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        for i, d in enumerate(data):
            baseline.swap_out(Page(vaddr=i * PAGE_SIZE, data=d))
            xfm.swap_out(Page(vaddr=i * PAGE_SIZE, data=d))
        assert baseline.ledger.channel_bytes() > 8 * PAGE_SIZE
        assert xfm.ledger.channel_bytes() == 0
        assert xfm.ledger.total("nma") > 0

    def test_cpu_cycles_eliminated(self):
        data = corpus_pages("xml-config", 4, seed=23)
        xfm = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        for i, d in enumerate(data):
            xfm.xfm_swap_out(Page(vaddr=i * PAGE_SIZE, data=d))
        assert xfm.stats.cpu_compress_cycles == 0.0


class TestFullStackWebFrontend:
    @pytest.mark.parametrize("backend_cls", [SfmBackend, XfmBackend])
    def test_application_runs_on_both_backends(self, backend_cls):
        backend = backend_cls(capacity_bytes=512 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=48,
            controller=ColdScanController(
                cold_threshold_s=4.0, scan_period_s=2.0
            ),
        )
        frontend = WebFrontend(
            runtime,
            WebFrontendConfig(num_pages=160, lookups_per_s=25, seed=13),
        )
        report = frontend.run(duration_s=40.0)
        assert report.swap_outs > 10
        assert report.swap_ins > 0
        assert runtime.trace.duration_s > 0

    def test_pressure_controller_full_stack(self):
        backend = SfmBackend(capacity_bytes=512 * PAGE_SIZE)
        controller = PressureController(
            initial_threshold_s=8.0, min_threshold_s=2.0, adjust_period_s=5.0
        )

        class _Adapter(ColdScanController):
            """Expose the pressure controller through the scan interface."""

            def __init__(self):
                super().__init__(cold_threshold_s=1.0, scan_period_s=2.0)

            def scan(self, pages, now_s):
                super().scan([], now_s)  # keep period bookkeeping
                return controller.scan(pages, now_s)

        runtime = FarMemoryRuntime(
            backend, local_capacity_pages=32, controller=_Adapter()
        )
        frontend = WebFrontend(
            runtime, WebFrontendConfig(num_pages=128, lookups_per_s=20, seed=14)
        )
        report = frontend.run(duration_s=60.0)
        assert report.swap_outs > 0

    def test_observed_promotion_rate_reasonable(self):
        backend = SfmBackend(capacity_bytes=512 * PAGE_SIZE)
        runtime = FarMemoryRuntime(
            backend,
            local_capacity_pages=48,
            controller=ColdScanController(cold_threshold_s=4.0, scan_period_s=2.0),
        )
        frontend = WebFrontend(
            runtime, WebFrontendConfig(num_pages=160, lookups_per_s=25, seed=15)
        )
        frontend.run(duration_s=60.0)
        far_bytes = max(1, backend.stored_pages()) * PAGE_SIZE
        assert runtime.trace.promotion_rate(far_bytes) >= 0.0


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
        page = Page(vaddr=0, data=b"x" * PAGE_SIZE)
        outcome = backend.xfm_swap_out(page)
        assert outcome.accepted
        assert backend.xfm_swap_in(page) == b"x" * PAGE_SIZE
