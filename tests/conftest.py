"""Shared fixtures for the XFM reproduction test suite."""

from __future__ import annotations

import pytest

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.sfm.page import PAGE_SIZE
from repro.workloads.corpus import corpus_pages


@pytest.fixture(scope="session")
def json_pages():
    """Compressible 4 KiB pages (fixed-schema JSON records)."""
    return corpus_pages("json-records", 8, seed=11)


@pytest.fixture(scope="session")
def text_pages():
    return corpus_pages("text-english", 8, seed=11)


@pytest.fixture(scope="session")
def random_pages():
    """Incompressible pages."""
    return corpus_pages("random-bytes", 4, seed=11)


@pytest.fixture(scope="session")
def sample_buffers(json_pages, random_pages):
    """A spectrum of buffers every codec must round-trip."""
    return [
        b"",
        b"a",
        b"abc",
        b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        bytes(range(256)),
        bytes(PAGE_SIZE),
        json_pages[0],
        random_pages[0],
        (b"0123456789" * 500)[:PAGE_SIZE],
    ]


@pytest.fixture(params=["deflate", "lzfast", "zstd-like"])
def codec(request):
    """Each registered codec, parametrized."""
    return {
        "deflate": DeflateCodec(),
        "lzfast": LzFastCodec(),
        "zstd-like": ZstdLikeCodec(),
    }[request.param]
