"""Shared fixtures and suite-wide options for the XFM reproduction tests.

Options (also see the marker scheme in ``pyproject.toml``):

``--validation``
    Turn on the invariant checkpoints in :mod:`repro.validation.hooks`
    for the whole run, so every mutating operation on the instrumented
    data structures (rbtree, zpool, SPM, NMA, register file, xfm_module)
    validates its structural invariants. Equivalent to setting
    ``REPRO_VALIDATION=1`` in the environment.

``--runslow``
    Also run tests marked ``slow`` (skipped by default).
"""

from __future__ import annotations

import pytest

from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.sfm.page import PAGE_SIZE
from repro.validation.hooks import set_validation
from repro.workloads.corpus import corpus_pages


def pytest_addoption(parser):
    parser.addoption(
        "--validation",
        action="store_true",
        default=False,
        help="enable repro.validation invariant checkpoints for the run",
    )
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow",
    )


def pytest_configure(config):
    if config.getoption("--validation"):
        set_validation(True)


def pytest_collection_modifyitems(config, items):
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            if not config.getoption("--runslow"):
                item.add_marker(skip_slow)
        elif "fuzz" not in item.keywords:
            # Everything that is neither slow nor fuzz is the tier-1 gate.
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def json_pages():
    """Compressible 4 KiB pages (fixed-schema JSON records)."""
    return corpus_pages("json-records", 8, seed=11)


@pytest.fixture(scope="session")
def text_pages():
    return corpus_pages("text-english", 8, seed=11)


@pytest.fixture(scope="session")
def random_pages():
    """Incompressible pages."""
    return corpus_pages("random-bytes", 4, seed=11)


@pytest.fixture(scope="session")
def sample_buffers(json_pages, random_pages):
    """A spectrum of buffers every codec must round-trip."""
    return [
        b"",
        b"a",
        b"abc",
        b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa",
        bytes(range(256)),
        bytes(PAGE_SIZE),
        json_pages[0],
        random_pages[0],
        (b"0123456789" * 500)[:PAGE_SIZE],
    ]


@pytest.fixture(params=["deflate", "lzfast", "zstd-like"])
def codec(request):
    """Each registered codec, parametrized."""
    return {
        "deflate": DeflateCodec(),
        "lzfast": LzFastCodec(),
        "zstd-like": ZstdLikeCodec(),
    }[request.param]
