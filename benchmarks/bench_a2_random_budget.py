"""Ablation A2 — random-access budget per tRFC.

The paper's methodology assumes one random access per tRFC (unused TRR
slots). This ablation varies the budget 0/1/2 and shows it is what keeps
fixed-row decompression reads serviceable: with no random slots those
reads wait a full retention sweep for their conditional window, backing up
the SPM; extra slots buy little once one is available.
"""

from repro.analysis.report import format_table
from repro.core.emulator import EmulatorConfig, XfmEmulator


def _sweep():
    reports = []
    for random_budget in (0, 1, 2):
        config = EmulatorConfig(
            promotion_rate=1.0,
            accesses_per_ref=3,
            random_per_ref=random_budget,
            spm_bytes=8 << 20,
            sim_time_s=0.05,
        )
        reports.append((random_budget, XfmEmulator(config).run()))
    return reports


def test_a2_random_budget(once, emit):
    reports = once(_sweep)
    rows = [
        [
            budget,
            round(100 * report.fallback_fraction, 2),
            round(100 * report.random_fraction, 1),
            round(report.mean_latency_ms, 2),
            round(100 * report.conditional_energy_saving, 2),
        ]
        for budget, report in reports
    ]
    table = format_table(
        [
            "randoms/tRFC",
            "fallback %",
            "random %",
            "mean latency ms",
            "energy saved %",
        ],
        rows,
        title="A2 — random-access budget ablation (100% promo, 3 acc/REF)",
    )
    emit("a2_random_budget", table)

    by_budget = dict(reports)
    # No random slots -> fixed-row reads starve -> fallbacks appear.
    assert by_budget[0].fallback_fraction > by_budget[1].fallback_fraction
    # One slot suffices (the paper's working assumption).
    assert by_budget[1].fallback_fraction == 0.0
    assert by_budget[2].fallback_fraction == 0.0
    # All-conditional operation saves the most energy per access.
    assert (
        by_budget[0].conditional_energy_saving
        >= by_budget[1].conditional_energy_saving
    )
