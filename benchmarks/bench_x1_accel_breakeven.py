"""X1 (§3.2) — integrated on-chip accelerator break-even promotion rate.

Paper claims: a QAT-class accelerator (9.8 / 13.3 GBps measured) can absorb
all compression of a 512 GB SFM even at 100% promotion, and becomes
beneficial above a ~6% average promotion rate (our equations with a 1-core
management cost give ~4%; see EXPERIMENTS.md).
"""

from repro.analysis.report import format_table
from repro.costmodel import CostParams, integrated_accel_breakeven_promotion
from repro.costmodel.accel import IntegratedAccelerator, cores_needed_for_sfm


def test_x1_accel_breakeven(once, emit):
    params = CostParams()
    accel = IntegratedAccelerator()
    breakeven = once(integrated_accel_breakeven_promotion, params, accel)
    rows = [
        [
            f"{int(rate * 100)}%",
            round(cores_needed_for_sfm(params, rate), 2),
            "yes" if cores_needed_for_sfm(params, rate) > accel.management_cores else "no",
            "yes" if accel.can_sustain(params, rate) else "no",
        ]
        for rate in (0.01, 0.02, 0.04, 0.06, 0.10, 0.20, 0.50, 1.00)
    ]
    table = format_table(
        ["promotion", "SW cores needed", "accel pays off", "QAT sustains"],
        rows,
        title="X1 — integrated accelerator break-even (512 GB SFM)",
    )
    table += (
        f"\nbreak-even promotion rate: {100 * breakeven:.1f}%"
        f" (paper: ~6%)"
    )
    emit("x1_accel_breakeven", table)

    assert 0.02 <= breakeven <= 0.08
    assert accel.can_sustain(params, 1.0)
