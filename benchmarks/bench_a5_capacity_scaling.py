"""Ablation A5 — SFM capacity scaling: where does XFM run out?

The abstract claims XFM "eliminates memory bandwidth utilization when
performing compression and decompression operations with SFMs of
capacities up to 1 TB". This bench sweeps the far-memory capacity at a
100% promotion rate on a 16-rank server (4 channels x 2 DIMMs x 2 ranks,
the 1 TB-class configuration; 3 accesses/REF, 8 MiB SPM per DIMM) and
locates the knee where CPU fallbacks appear — the emulated counterpart of
the analytical Fig. 1 crossover.
"""

from repro.analysis.figures import max_supported_sfm_gb
from repro.analysis.report import format_table
from repro.core.emulator import EmulatorConfig, XfmEmulator

CAPACITIES_GB = (256, 512, 768, 1024, 1536, 2048, 3072)
NUM_RANKS = 16


def _sweep():
    reports = []
    for capacity_gb in CAPACITIES_GB:
        config = EmulatorConfig(
            sfm_capacity_bytes=capacity_gb * 1e9,
            promotion_rate=1.0,
            accesses_per_ref=3,
            spm_bytes=8 << 20,
            num_ranks=NUM_RANKS,
            sim_time_s=0.05,
        )
        reports.append((capacity_gb, XfmEmulator(config).run()))
    return reports


def test_a5_capacity_scaling(once, emit):
    reports = once(_sweep)
    rows = [
        [
            capacity,
            round(100 * report.fallback_fraction, 2),
            round(report.nma_bandwidth_bps / 1e9, 3),
            round(100 * report.random_fraction, 1),
            round(report.mean_latency_ms, 2),
        ]
        for capacity, report in reports
    ]
    analytic_max = max_supported_sfm_gb(
        num_ranks=NUM_RANKS, accesses_per_ref=3
    )
    table = format_table(
        ["SFM GB", "fallback %", "NMA GBps/rank", "random %", "latency ms"],
        rows,
        title="A5 — capacity scaling (100% promotion, 16 ranks, 3 acc/REF)",
    )
    table += (
        f"\nanalytic side-channel limit @16 ranks: {analytic_max:.0f} GB"
        f"\n(paper claim: XFM absorbs SFM bandwidth up to ~1 TB)"
    )
    emit("a5_capacity_scaling", table)

    by_capacity = dict(reports)
    # Up to ~1 TB on this topology: no fallbacks (the paper's claim).
    assert by_capacity[512].fallback_fraction == 0.0
    assert by_capacity[1024].fallback_fraction < 0.02
    # Well past the side-channel limit the emulator must saturate.
    assert by_capacity[3072].fallback_fraction > 0.1
    # Fallbacks are monotone-ish in offered load.
    assert (
        by_capacity[3072].fallback_fraction
        > by_capacity[512].fallback_fraction
    )
