"""Table 3 — power consumption breakdown of the XFM prototype.

Paper values: 7.024 W total = 5.718 W dynamic (81%) + 1.306 W static (19%).
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.tables import TABLE3_HEADERS, table3_rows


def test_table3_power(once, emit):
    rows = once(table3_rows)
    table = format_table(
        TABLE3_HEADERS, rows, title="Table 3 — XFM power consumption"
    )
    emit("table3_power", table)

    values = {row[0]: float(row[1]) for row in rows}
    assert values["Dynamic"] == pytest.approx(5.718)
    assert values["Static"] == pytest.approx(1.306)
    assert values["Total"] == pytest.approx(7.024)
