"""Ablation A6 — zpool fragmentation under churn and compaction cost.

zsmalloc's "intermittent compaction operations to address internal
fragmentation" (§2.1) and the manually-initiated ``xfm_compact()`` (§6)
exist because swap churn punches holes in the encapsulating pages. This
bench drives a store/free churn, measures fragmentation growth, and
prices compaction in memcpy bytes — the cost an SFM controller weighs
when scheduling ``xfm_compact``.
"""

import random

from repro.analysis.report import format_table
from repro.sfm.page import PAGE_SIZE
from repro.sfm.zpool import Zpool
from repro.workloads.corpus import corpus_pages


def _churn(compact_every: int, rounds: int = 300, seed: int = 5):
    rng = random.Random(seed)
    pool = Zpool(capacity_bytes=64 * PAGE_SIZE)
    blobs = [
        page[: rng.randint(600, 2200)]
        for page in corpus_pages("json-records", 16, seed=seed)
        for _ in range(2)
    ]
    live = []
    frag_samples = []
    explicit_memcpy = 0
    for round_index in range(rounds):
        blob = bytes(blobs[round_index % len(blobs)])
        try:
            live.append(pool.store(blob))
        except Exception:
            if live:
                pool.free(live.pop(rng.randrange(len(live))))
        if live and rng.random() < 0.45:
            pool.free(live.pop(rng.randrange(len(live))))
        if compact_every and round_index % compact_every == compact_every - 1:
            explicit_memcpy += pool.compact()
        frag_samples.append(pool.fragmentation())
    return {
        "mean_frag": sum(frag_samples) / len(frag_samples),
        "peak_frag": max(frag_samples),
        "used_slabs": pool.used_slabs(),
        "memcpy_kib": pool.compaction_memcpy_bytes / 1024,
        "compactions": pool.compactions,
    }


def _sweep():
    return {
        "never (demand only)": _churn(compact_every=0),
        "every 64 ops": _churn(compact_every=64),
        "every 16 ops": _churn(compact_every=16),
    }


def test_a6_compaction_policy(once, emit):
    results = once(_sweep)
    rows = [
        [
            policy,
            round(100 * stats["mean_frag"], 1),
            round(100 * stats["peak_frag"], 1),
            stats["used_slabs"],
            round(stats["memcpy_kib"], 1),
            stats["compactions"],
        ]
        for policy, stats in results.items()
    ]
    table = format_table(
        [
            "compaction policy",
            "mean frag %",
            "peak frag %",
            "final slabs",
            "memcpy KiB",
            "compactions",
        ],
        rows,
        title="A6 — fragmentation vs compaction frequency (store/free churn)",
    )
    emit("a6_compaction", table)

    never = results["never (demand only)"]
    eager = results["every 16 ops"]
    # Compaction trades memcpy traffic for fragmentation.
    assert eager["mean_frag"] <= never["mean_frag"] + 1e-9
    assert eager["memcpy_kib"] > never["memcpy_kib"] * 0.5
