"""Fig. 8 — compression ratio of page-divided corpora at interleave
granularity, 1/2/4-DIMM configurations.

Paper claims (§6, §8): interleaved multi-DIMM compression retains ~86.2%
of the in-order compression ratio on average at 4 DIMMs; memory savings
drop ~5% at 2 channels and ~14% at 4 channels (window shrink + same-offset
placement fragmentation).
"""

from repro.analysis.figures import fig8_ratios
from repro.analysis.report import format_table
from repro.workloads.corpus import CORPUS_NAMES


def test_fig8_multichannel_ratio(once, emit):
    reports = once(fig8_ratios, corpora=tuple(CORPUS_NAMES), pages_per_corpus=6)
    rows = []
    for report in reports:
        rows.append(
            [
                report.corpus,
                round(report.stored_ratio[1], 2),
                round(report.stored_ratio[2], 2),
                round(report.stored_ratio[4], 2),
                round(100 * report.ratio_retention(4), 1),
                round(100 * report.savings_reduction_vs_inorder(2), 1),
                round(100 * report.savings_reduction_vs_inorder(4), 1),
            ]
        )
    compressible = [r for r in reports if r.stored_ratio[1] > 1.3]
    mean_retention = sum(
        r.ratio_retention(4) for r in compressible
    ) / len(compressible)
    mean_red2 = sum(
        r.savings_reduction_vs_inorder(2) for r in compressible
    ) / len(compressible)
    mean_red4 = sum(
        r.savings_reduction_vs_inorder(4) for r in compressible
    ) / len(compressible)
    table = format_table(
        [
            "corpus",
            "ratio 1-DIMM",
            "ratio 2-DIMM",
            "ratio 4-DIMM",
            "retained@4 %",
            "savings loss@2 %",
            "savings loss@4 %",
        ],
        rows,
        title="Fig. 8 — multi-channel compression ratios (deflate)",
    )
    table += (
        f"\nmean ratio retained @4 DIMMs (compressible corpora):"
        f" {100 * mean_retention:.1f}% (paper: 86.2%)"
        f"\nmean savings reduction @2: {100 * mean_red2:.1f}% (paper: ~5%)"
        f"\nmean savings reduction @4: {100 * mean_red4:.1f}% (paper: ~14%)"
    )
    emit("fig08_multichannel", table)

    # Shape: monotone degradation, in the paper's ballpark.
    for report in reports:
        assert (
            report.stored_ratio[1] + 1e-9
            >= report.stored_ratio[2] - 1e-9
        )
        assert report.stored_ratio[2] + 1e-9 >= report.stored_ratio[4] - 1e-9
    assert 0.6 <= mean_retention <= 1.0
    assert 0.0 <= mean_red2 <= 0.25
    assert mean_red2 <= mean_red4 <= 0.40
