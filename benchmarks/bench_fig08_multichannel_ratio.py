"""Fig. 8 — compression ratio of page-divided corpora at interleave
granularity, 1/2/4-DIMM configurations.

Paper claims (§6, §8): interleaved multi-DIMM compression retains ~86.2%
of the in-order compression ratio on average at 4 DIMMs; memory savings
drop ~5% at 2 channels and ~14% at 4 channels (window shrink + same-offset
placement fragmentation).

The table body is rendered by :func:`repro.analysis.goldens.fig8_table`,
shared with the golden-snapshot regression test in
``tests/validation/test_golden_figures.py``.
"""

from repro.analysis.figures import fig8_ratios
from repro.analysis.goldens import FIG8_GOLDEN_KWARGS, fig8_table
from repro.core.multichannel import measure_corpus
from repro.workloads.corpus import CORPUS_NAMES
from repro.workloads.ingested import ingested_corpus_pages, ingested_domains


def test_fig8_multichannel_ratio(once, emit):
    reports = once(
        fig8_ratios, corpora=tuple(CORPUS_NAMES), **FIG8_GOLDEN_KWARGS
    )
    emit("fig08_multichannel", fig8_table(reports))

    compressible = [r for r in reports if r.stored_ratio[1] > 1.3]
    mean_retention = sum(
        r.ratio_retention(4) for r in compressible
    ) / len(compressible)
    mean_red2 = sum(
        r.savings_reduction_vs_inorder(2) for r in compressible
    ) / len(compressible)
    mean_red4 = sum(
        r.savings_reduction_vs_inorder(4) for r in compressible
    ) / len(compressible)

    # Shape: monotone degradation, in the paper's ballpark.
    for report in reports:
        assert (
            report.stored_ratio[1] + 1e-9
            >= report.stored_ratio[2] - 1e-9
        )
        assert report.stored_ratio[2] + 1e-9 >= report.stored_ratio[4] - 1e-9
    assert 0.6 <= mean_retention <= 1.0
    assert 0.0 <= mean_red2 <= 0.25
    assert mean_red2 <= mean_red4 <= 0.40


def _measure_ingested():
    """The same interleave sweep over *real* ingested pages (this repo's
    tree, or $REPRO_CORPUS_DIR) — the synthetic golden stays untouched;
    this checks the paper's multi-channel degradation shape holds on
    actual source/text bytes too."""
    return [
        measure_corpus(
            f"ingested-{domain}",
            ingested_corpus_pages(domain, 16),
            dimm_counts=(1, 2, 4),
        )
        for domain in ingested_domains()
    ]


def test_fig8_on_ingested_corpus(once, emit):
    reports = once(_measure_ingested)
    emit("fig08_ingested", fig8_table(reports))

    for report in reports:
        # Real pages compress; interleave splitting degrades monotonically
        # (window shrink + same-offset fragmentation), exactly the shape
        # the synthetic golden pins numerically.
        assert report.stored_ratio[1] > 1.2, report
        assert (
            report.stored_ratio[1] + 1e-9 >= report.stored_ratio[2] - 1e-9
        )
        assert (
            report.stored_ratio[2] + 1e-9 >= report.stored_ratio[4] - 1e-9
        )
        assert 0.5 <= report.ratio_retention(4) <= 1.0 + 1e-9
