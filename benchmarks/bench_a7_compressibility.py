"""Ablation A7 — compressibility as the independent variable.

§1's precondition: SFM pays off "for applications whose data sets are
compressible". This bench sweeps page compressibility with the tunable
generator and measures what the SFM backend actually delivers at each
point: acceptance rate (zswap-style rejection of poorly-compressing
pages), effective local memory freed per pool byte, and where the tier
stops being worth running.
"""

from repro.analysis.report import format_table
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.corpus import tunable_page

TARGET_RATIOS = (1.0, 1.2, 1.5, 2.0, 3.0, 5.0, 8.0)
PAGES_PER_POINT = 12


def _sweep():
    out = []
    for target in TARGET_RATIOS:
        backend = SfmBackend(capacity_bytes=64 * PAGE_SIZE)
        accepted = 0
        for index in range(PAGES_PER_POINT):
            page = Page(
                vaddr=index * PAGE_SIZE,
                data=tunable_page(target, seed=index),
            )
            if backend.swap_out(page).accepted:
                accepted += 1
        freed = backend.effective_bytes_freed()
        out.append(
            {
                "target": target,
                "accept_rate": accepted / PAGES_PER_POINT,
                "achieved_ratio": backend.stats.mean_compression_ratio,
                "freed_kib": freed / 1024,
            }
        )
    return out


def test_a7_compressibility_sweep(once, emit):
    results = once(_sweep)
    table = format_table(
        [
            "target ratio",
            "accept rate %",
            "achieved ratio",
            "local KiB freed",
        ],
        [
            [
                r["target"],
                round(100 * r["accept_rate"], 1),
                round(r["achieved_ratio"], 2),
                round(r["freed_kib"], 1),
            ]
            for r in results
        ],
        title="A7 — SFM value vs data compressibility "
        f"({PAGES_PER_POINT} pages per point, zstd-like codec)",
    )
    emit("a7_compressibility", table)

    by_target = {r["target"]: r for r in results}
    # Incompressible data: everything rejected, nothing freed.
    assert by_target[1.0]["accept_rate"] == 0.0
    assert by_target[1.0]["freed_kib"] == 0.0
    # Packing granularity: a blob larger than half a slab cannot share
    # its encapsulating page, so mildly-compressible data (ratio < ~2)
    # frees nothing even though it is accepted — the reason production
    # zswap rejects poor compressions outright.
    assert by_target[1.5]["accept_rate"] == 1.0
    assert by_target[1.5]["freed_kib"] == 0.0
    # Genuinely compressible data: freed memory grows with the ratio.
    assert by_target[3.0]["accept_rate"] == 1.0
    assert by_target[8.0]["freed_kib"] > by_target[3.0]["freed_kib"] > 0
