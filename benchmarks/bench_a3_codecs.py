"""Ablation A3 — codec choice: ratio and measured throughput on corpora.

Grounds the cost model's codec assumptions (§2.1's lzo/zstd trade-off and
the Deflate accelerator choice): the Deflate-style codec is densest, the
LZO-style codec fastest, the zstd-style codec in between.
"""

import time

from repro.analysis.report import format_table
from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.compression.static_tables import StaticTableRegistry
from repro.workloads.corpus import corpus_pages
from repro.workloads.ingested import ingested_corpus_pages, ingested_domains

CORPORA = ("json-records", "server-log", "source-code", "heap-pointers")

#: Pages per ingested domain in the real-corpus ablation (strided across
#: the corpus; kept small so the sweep stays interactive).
INGESTED_PAGES = 24


def _measure():
    pages = [
        page
        for corpus in CORPORA
        for page in corpus_pages(corpus, 4, seed=33)
    ]
    total = sum(len(p) for p in pages)
    out = []
    for codec in (DeflateCodec(), LzFastCodec(), ZstdLikeCodec()):
        start = time.perf_counter()
        blobs = [codec.compress(p) for p in pages]
        compress_s = time.perf_counter() - start
        start = time.perf_counter()
        for blob, page in zip(blobs, pages):
            assert codec.decompress(blob) == page
        decompress_s = time.perf_counter() - start
        out.append(
            {
                "name": codec.name,
                "ratio": total / sum(len(b) for b in blobs),
                "compress_mbps": total / compress_s / 1e6,
                "decompress_mbps": total / decompress_s / 1e6,
            }
        )
    return out


def test_a3_codec_comparison(once, emit):
    results = once(_measure)
    rows = [
        [
            r["name"],
            round(r["ratio"], 2),
            round(r["compress_mbps"], 2),
            round(r["decompress_mbps"], 2),
        ]
        for r in results
    ]
    table = format_table(
        ["codec", "ratio", "compress MB/s*", "decompress MB/s*"],
        rows,
        title="A3 — codec ablation on mixed corpora "
        "(*pure-Python throughput; relative ordering is the signal)",
    )
    emit("a3_codecs", table)

    by_name = {r["name"]: r for r in results}
    # Density ordering: deflate >= zstd-like >= lzfast on mixed corpora.
    assert by_name["deflate"]["ratio"] >= by_name["lzfast"]["ratio"]
    # Speed ordering: the byte-aligned codec compresses fastest.
    assert (
        by_name["lzfast"]["compress_mbps"]
        > by_name["deflate"]["compress_mbps"]
    )


def _measure_ingested():
    """Codec sweep over *real* pages (this repo's ingested tree or
    $REPRO_CORPUS_DIR), including the corpus-trained static-table deflate
    variant, all through the page-batch API."""
    registry = StaticTableRegistry.load_default()
    rows = []
    for domain in ingested_domains():
        pages = ingested_corpus_pages(domain, INGESTED_PAGES)
        total = sum(len(p) for p in pages)
        candidates = [
            ("deflate", DeflateCodec()),
            ("lzfast", LzFastCodec()),
            ("zstd-like", ZstdLikeCodec()),
        ]
        if registry is not None and domain in registry:
            candidates.append(
                (f"deflate-static[{domain}]", registry.codec_for(domain))
            )
        for label, codec in candidates:
            start = time.perf_counter()
            blobs = codec.compress_batch(pages)
            compress_s = time.perf_counter() - start
            assert codec.decompress_batch(blobs) == pages
            rows.append(
                {
                    "domain": domain,
                    "codec": label,
                    "ratio": total / sum(len(b) for b in blobs),
                    "compress_mbps": total / compress_s / 1e6,
                    "static_blobs": sum(b[1] == 3 for b in blobs),
                    "pages": len(pages),
                }
            )
    return rows


def test_a3_codecs_on_ingested_corpus(once, emit):
    rows = once(_measure_ingested)
    table = format_table(
        ["domain", "codec", "ratio", "compress MB/s*", "mode-3 blobs"],
        [
            [
                r["domain"],
                r["codec"],
                round(r["ratio"], 2),
                round(r["compress_mbps"], 2),
                f"{r['static_blobs']}/{r['pages']}",
            ]
            for r in rows
        ],
        title="A3b — codecs on ingested (real) corpora "
        "(*batch-API throughput; values drift as the tree grows)",
    )
    emit("a3_codecs_ingested", table)

    # Real text/source pages compress well under every codec.
    for r in rows:
        assert r["ratio"] > 1.2, r
    # Where trained tables exist, the static variant must actually emit
    # self-describing mode-3 blobs (not silently fall back) and stay in
    # the same density ballpark as dynamic deflate.
    static_rows = [r for r in rows if r["codec"].startswith("deflate-static")]
    dynamic = {r["domain"]: r for r in rows if r["codec"] == "deflate"}
    for r in static_rows:
        assert r["static_blobs"] > 0, r
        assert r["ratio"] > 0.85 * dynamic[r["domain"]]["ratio"], r
