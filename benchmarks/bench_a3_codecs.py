"""Ablation A3 — codec choice: ratio and measured throughput on corpora.

Grounds the cost model's codec assumptions (§2.1's lzo/zstd trade-off and
the Deflate accelerator choice): the Deflate-style codec is densest, the
LZO-style codec fastest, the zstd-style codec in between.
"""

import time

from repro.analysis.report import format_table
from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
from repro.workloads.corpus import corpus_pages

CORPORA = ("json-records", "server-log", "source-code", "heap-pointers")


def _measure():
    pages = [
        page
        for corpus in CORPORA
        for page in corpus_pages(corpus, 4, seed=33)
    ]
    total = sum(len(p) for p in pages)
    out = []
    for codec in (DeflateCodec(), LzFastCodec(), ZstdLikeCodec()):
        start = time.perf_counter()
        blobs = [codec.compress(p) for p in pages]
        compress_s = time.perf_counter() - start
        start = time.perf_counter()
        for blob, page in zip(blobs, pages):
            assert codec.decompress(blob) == page
        decompress_s = time.perf_counter() - start
        out.append(
            {
                "name": codec.name,
                "ratio": total / sum(len(b) for b in blobs),
                "compress_mbps": total / compress_s / 1e6,
                "decompress_mbps": total / decompress_s / 1e6,
            }
        )
    return out


def test_a3_codec_comparison(once, emit):
    results = once(_measure)
    rows = [
        [
            r["name"],
            round(r["ratio"], 2),
            round(r["compress_mbps"], 2),
            round(r["decompress_mbps"], 2),
        ]
        for r in results
    ]
    table = format_table(
        ["codec", "ratio", "compress MB/s*", "decompress MB/s*"],
        rows,
        title="A3 — codec ablation on mixed corpora "
        "(*pure-Python throughput; relative ordering is the signal)",
    )
    emit("a3_codecs", table)

    by_name = {r["name"]: r for r in results}
    # Density ordering: deflate >= zstd-like >= lzfast on mixed corpora.
    assert by_name["deflate"]["ratio"] >= by_name["lzfast"]["ratio"]
    # Speed ordering: the byte-aligned codec compresses fastest.
    assert (
        by_name["lzfast"]["compress_mbps"]
        > by_name["deflate"]["compress_mbps"]
    )
