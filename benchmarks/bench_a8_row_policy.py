"""Ablation A8 — memory-controller page policy under SFM traffic.

SFM's swap streams are page-granular and sequential within a page (row
hits), while co-runner traffic is scattered (row conflicts). This
ablation runs both stream shapes through the channel controller under
open- and close-page policies — context for why the CPU-side controller
state machine matters to §5's design goal G2 (XFM must not perturb it).
"""

from repro.analysis.report import format_table
from repro.dram.controller import ChannelController, MemoryRequest
from repro.dram.device import DDR5_32GB, timings_for_device

TIMINGS = timings_for_device(DDR5_32GB)


def _sequential_stream(n=256):
    """Page-granular SFM-style traffic: long same-row bursts."""
    return [
        MemoryRequest(
            arrival_ns=500.0 + i * 5.0,
            rank=0,
            bank=(i // 64) % 16,
            row=i // 64,
        )
        for i in range(n)
    ]


def _scattered_stream(n=256):
    """Co-runner-style traffic: every access a different row."""
    return [
        MemoryRequest(
            arrival_ns=500.0 + i * 5.0,
            rank=0,
            bank=(i * 7) % 16,
            row=(i * 131) % 4096,
        )
        for i in range(n)
    ]


def _measure():
    out = {}
    for shape, stream_fn in (
        ("sequential", _sequential_stream),
        ("scattered", _scattered_stream),
    ):
        for policy in ("open", "closed"):
            controller = ChannelController(
                DDR5_32GB, TIMINGS, row_policy=policy
            )
            stats = controller.run(stream_fn())
            out[(shape, policy)] = stats
    return out


def test_a8_row_policy(once, emit):
    results = once(_measure)
    rows = [
        [
            shape,
            policy,
            round(stats.avg_latency_ns, 1),
            round(stats.bandwidth_bps / 1e9, 2),
            round(100 * stats.row_hit_rate, 1),
        ]
        for (shape, policy), stats in results.items()
    ]
    table = format_table(
        ["stream", "policy", "avg latency ns", "GBps", "row hit %"],
        rows,
        title="A8 — controller page policy vs traffic shape",
    )
    emit("a8_row_policy", table)

    # Open-page wins on sequential (SFM-shaped) streams...
    assert (
        results[("sequential", "open")].avg_latency_ns
        < results[("sequential", "closed")].avg_latency_ns
    )
    assert results[("sequential", "open")].row_hit_rate > 0.9
    # ...and closed-page never sees a row hit by construction.
    assert results[("scattered", "closed")].row_hit_rate == 0.0
    # On scattered streams the policies converge (no locality to keep).
    open_lat = results[("scattered", "open")].avg_latency_ns
    closed_lat = results[("scattered", "closed")].avg_latency_ns
    assert closed_lat <= open_lat * 1.1
