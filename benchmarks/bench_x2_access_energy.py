"""X2 (§4.3, §8) — data-movement and access-energy savings.

Paper claims: keeping (de)compression traffic on-DIMM cuts data-movement
energy by 69%; conditional accesses reduce NMA access energy by ~10.1%
versus paying for activations.
"""

import pytest

from repro.analysis.report import format_table
from repro.dram.energy import AccessEnergyModel
from repro.hwmodel.energy import SwapEnergyModel


def _summary():
    access = AccessEnergyModel()
    swap = SwapEnergyModel(access=access)
    return {
        "movement_saving": access.data_movement_saving(),
        "conditional_saving": access.conditional_saving(),
        "cpu_swap_out_uj": swap.cpu_swap_out_j() * 1e6,
        "xfm_swap_out_uj": swap.xfm_swap_out_j() * 1e6,
        "cpu_swap_in_uj": swap.cpu_swap_in_j() * 1e6,
        "xfm_swap_in_uj": swap.xfm_swap_in_j() * 1e6,
        "total_saving": swap.total_saving(),
    }


def test_x2_access_energy(once, emit):
    summary = once(_summary)
    table = format_table(
        ["metric", "value"],
        [
            ["on-DIMM data-movement saving", f"{100 * summary['movement_saving']:.1f}% (paper: 69%)"],
            ["conditional vs random access saving", f"{100 * summary['conditional_saving']:.1f}% (paper: 10.1%)"],
            ["CPU swap-out energy", f"{summary['cpu_swap_out_uj']:.1f} uJ/page"],
            ["XFM swap-out energy", f"{summary['xfm_swap_out_uj']:.2f} uJ/page"],
            ["CPU swap-in energy", f"{summary['cpu_swap_in_uj']:.1f} uJ/page"],
            ["XFM swap-in energy", f"{summary['xfm_swap_in_uj']:.2f} uJ/page"],
            ["whole-operation saving", f"{100 * summary['total_saving']:.1f}%"],
        ],
        title="X2 — swap-path energy, CPU vs XFM",
    )
    emit("x2_access_energy", table)

    assert summary["movement_saving"] == pytest.approx(0.69, abs=0.01)
    assert summary["conditional_saving"] == pytest.approx(0.101, abs=0.01)
    assert summary["xfm_swap_out_uj"] < summary["cpu_swap_out_uj"]
