"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, writes the
rendered rows/series to ``benchmarks/results/<name>.txt``, prints them
(visible with ``pytest -s`` and in the teed bench log), and asserts the
qualitative shape the paper reports. Absolute numbers are not asserted —
the substrate is a simulator, not the authors' testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Write (and echo) a bench's rendered output."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===")
        print(text)

    return _emit


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once under pytest-benchmark.

    The experiment engines are deterministic simulations, not
    micro-kernels; one timed round is the meaningful measurement.
    """

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once
