"""X5 (§2.1/§3) — the DFM vs SFM trade, measured on the functional tiers.

The paper's qualitative framing: DFM gives fast, CPU-free swap-ins but
statically provisioned, uncompressed capacity; SFM gives elastic,
compression-multiplied capacity at CPU/latency cost — and XFM removes the
CPU cost. This bench runs the same page set through all three tiers and
tabulates the trade.
"""

from repro.analysis.report import format_table
from repro.core.backend import XfmBackend
from repro.dfm import CXL_LINK, DfmBackend, RDMA_LINK
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.workloads.corpus import corpus_pages


def _exercise(backend, data):
    pages = [Page(vaddr=i * PAGE_SIZE, data=d) for i, d in enumerate(data)]
    accepted = sum(1 for p in pages if backend.swap_out(p).accepted)
    restored = 0
    for page, original in zip(pages, data):
        if page.swapped and backend.swap_in(page) == original:
            restored += 1
    return accepted, restored


def _run():
    data = corpus_pages("json-records", 16, seed=77)
    tiers = {
        "DFM (CXL)": DfmBackend(capacity_bytes=64 * PAGE_SIZE, link=CXL_LINK),
        "DFM (RDMA)": DfmBackend(capacity_bytes=64 * PAGE_SIZE, link=RDMA_LINK),
        "SFM (CPU)": SfmBackend(capacity_bytes=64 * PAGE_SIZE),
        "XFM": XfmBackend(capacity_bytes=64 * PAGE_SIZE),
    }
    rows = []
    for name, backend in tiers.items():
        accepted, restored = _exercise(backend, data)
        ratio = backend.stats.mean_compression_ratio
        rows.append(
            {
                "tier": name,
                "accepted": accepted,
                "restored": restored,
                "ratio": ratio,
                "swap_in_us": backend.swap_latency_s("in") * 1e6,
                "cpu_cycles": backend.stats.total_cpu_cycles,
                "channel_bytes": backend.ledger.channel_bytes(),
            }
        )
    return rows


def test_x5_dfm_vs_sfm(once, emit):
    rows = once(_run)
    table = format_table(
        [
            "tier",
            "pages accepted",
            "restored ok",
            "capacity multiplier",
            "swap-in latency us",
            "CPU cycles",
            "DDR channel bytes",
        ],
        [
            [
                r["tier"],
                r["accepted"],
                r["restored"],
                round(r["ratio"], 2),
                round(r["swap_in_us"], 2),
                round(r["cpu_cycles"]),
                r["channel_bytes"],
            ]
            for r in rows
        ],
        title="X5 — DFM vs SFM vs XFM on identical pages",
    )
    emit("x5_dfm_vs_sfm", table)

    by_tier = {r["tier"]: r for r in rows}
    # DFM: latency wins, capacity multiplier 1.0, zero CPU.
    assert by_tier["DFM (CXL)"]["swap_in_us"] < by_tier["SFM (CPU)"]["swap_in_us"]
    assert by_tier["DFM (CXL)"]["ratio"] == 1.0
    assert by_tier["DFM (CXL)"]["cpu_cycles"] == 0
    # SFM: capacity multiplier > 2 on this corpus, CPU cycles burned.
    assert by_tier["SFM (CPU)"]["ratio"] > 2.0
    assert by_tier["SFM (CPU)"]["cpu_cycles"] > 0
    # XFM: SFM's capacity with DFM-like CPU profile on the swap-out path,
    # and nothing on the DDR channel for offloads.
    assert by_tier["XFM"]["ratio"] > 2.0
    # Everything restored byte-exact everywhere.
    assert all(r["restored"] == r["accepted"] for r in rows)