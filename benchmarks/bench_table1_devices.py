"""Table 1 — DDR5 device configurations and refresh-window arithmetic.

Paper values: 8/16/32 Gb devices with 64K/64K/128K rows per bank,
16/32/32 banks, tRFC 195/295/410 ns, 8/8/16 rows refreshed per tRFC,
128/128/256 subarrays per bank; §5 derives 2/3/4 conditional 4 KiB
accesses per tRFC.
"""

from repro.analysis.report import format_table
from repro.analysis.tables import TABLE1_HEADERS, table1_rows


def test_table1_devices(once, emit):
    rows = once(table1_rows)
    table = format_table(
        TABLE1_HEADERS, rows, title="Table 1 — DDR5 device configuration"
    )
    emit("table1_devices", table)

    expected = [
        ["DDR5-8Gb", "64K", 16, 195.0, 8, 128, 2],
        ["DDR5-16Gb", "64K", 32, 295.0, 8, 128, 3],
        ["DDR5-32Gb", "128K", 32, 410.0, 16, 256, 4],
    ]
    assert rows == expected
