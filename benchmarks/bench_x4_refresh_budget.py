"""X4 (§4.3) — refresh-window budget arithmetic.

Paper claims: with tRFC ~300 ns and 32 ms retention, banks are locked
~2.46 ms per retention interval (~8% of cycles); a 512 GB SFM on a
4-channel/2-DPC server needs ~426 MBps of DRAM-NMA bandwidth; offloads
are delayed by at most a tREFI (~3.9 us) batching interval.
"""

import pytest

from repro.analysis.figures import refresh_budget_summary
from repro.analysis.report import format_table


def test_x4_refresh_budget(once, emit):
    summary = once(refresh_budget_summary)
    table = format_table(
        ["quantity", "value", "paper"],
        [
            ["locked ms / 32 ms retention", round(summary["locked_ms_per_retention"], 3), "~2.46 ms"],
            ["locked fraction", f"{100 * summary['locked_fraction']:.2f}%", "~8%"],
            ["tREFI", f"{summary['trefi_us']:.2f} us", "~3.9 us"],
            ["per-DIMM NMA bandwidth", f"{summary['per_dimm_nma_mbps']:.0f} MBps", "426 MBps"],
            ["with compressed blobs", f"{summary['per_dimm_with_blobs_mbps']:.0f} MBps", "-"],
            ["max offload batching delay", f"{summary['page_batch_delay_us']:.2f} us", "~3.9 us"],
        ],
        title="X4 — refresh side-channel budget (512 GB SFM, 20% promotion)",
    )
    emit("x4_refresh_budget", table)

    assert summary["locked_ms_per_retention"] == pytest.approx(2.46, abs=0.01)
    assert summary["locked_fraction"] == pytest.approx(0.0768, abs=0.001)
    assert summary["per_dimm_nma_mbps"] == pytest.approx(426.7, abs=1.0)
