"""Ablation A1 — eager vs lazy SPM writeback flushing.

The emulator coalesces compressed blobs into page-sized writeback groups
(one refresh-window access each). Below the SPM pressure threshold, groups
flush only when full (lazy, batch-efficient); above it, partial groups
flush immediately to free scratchpad space. Sweeping the threshold shows
the trade: an over-eager policy (low threshold) spends access-budget slots
on small writebacks and *increases* fallbacks, while a lazy policy batches
well and keeps the budget for reads — the design reason Fig. 10 defers
COMPLETED writebacks to subsequent tRFCs instead of flushing per-op.
"""

from repro.analysis.report import format_table
from repro.core.emulator import EmulatorConfig, XfmEmulator


def _sweep():
    reports = []
    for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
        config = EmulatorConfig(
            promotion_rate=1.0,
            accesses_per_ref=2,
            spm_bytes=4 << 20,
            pressure_threshold=threshold,
            sim_time_s=0.05,
        )
        reports.append((threshold, XfmEmulator(config).run()))
    return reports


def test_a1_spm_writeback_policy(once, emit):
    reports = once(_sweep)
    rows = [
        [
            threshold,
            round(100 * report.fallback_fraction, 2),
            round(100 * report.random_fraction, 1),
            round(100 * report.conditional_energy_saving, 2),
            round(report.mean_latency_ms, 2),
        ]
        for threshold, report in reports
    ]
    table = format_table(
        [
            "flush threshold",
            "fallback %",
            "random %",
            "energy saved %",
            "mean latency ms",
        ],
        rows,
        title="A1 — SPM writeback flush-policy ablation "
        "(100% promo, 2 acc/REF, 4 MiB SPM)",
    )
    emit("a1_spm_policy", table)

    fallbacks = [report.fallback_fraction for _, report in reports]
    # Eager partial flushing (low threshold) wastes access budget:
    # fallbacks must not improve as the policy gets more eager.
    assert fallbacks[0] >= fallbacks[-1]
    # Lazy batching strictly helps somewhere in the sweep.
    assert max(fallbacks) > min(fallbacks)
