"""Codec hot-path microbenchmark kernels.

Each kernel times one stage of the compression hot path the SFM store /
load paths exercise millions of times per experiment: full codec
round-trips on 4 KiB pages, the LZ77 tokenizer stage, the Huffman
entropy stage, and one end-to-end emulator window. Kernels measure
*what the codecs actually use* — when the packed-token fast path exists
it is timed, because that is the code the store path runs.

The harness is deliberately version-agnostic: it runs unmodified against
the pre-overhaul kernels (bit-serial Huffman, per-token objects), which
is how the pinned ``reference`` section of ``BENCH_perf.json`` was
produced, and against the current tree, which produces the ``baseline``
section CI compares against.

Timing protocol: every kernel is measured as ``repeats`` timed batches
of ``inner`` operations each; the *best* batch (minimum wall-clock per
op) is reported, which is the standard way to strip scheduler noise from
a CPU-bound microbenchmark.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from repro.compression.bitio import BitReader, BitWriter
from repro.compression.deflate import DeflateCodec
from repro.compression.huffman import HuffmanTable
from repro.compression.lz77 import Lz77Matcher, detokenize
from repro.compression.lzfast import LzFastCodec
from repro.compression.zstd_like import ZstdLikeCodec
from repro.workloads.corpus import corpus_pages

PAGE = 4096

#: Page mix used by the codec kernels: compressible structured data,
#: text, and binary records — the shapes the Fig. 8 sweeps compress.
_BENCH_CORPORA = ("json-records", "text-english", "binary-structs")


def _bench_pages() -> List[bytes]:
    pages: List[bytes] = []
    for name in _BENCH_CORPORA:
        pages.extend(corpus_pages(name, 2, seed=11))
    return pages


def _codec_roundtrip(codec) -> Callable[[], None]:
    pages = _bench_pages()
    blobs = [codec.compress(page) for page in pages]

    def op() -> None:
        for page, blob in zip(pages, blobs):
            if codec.decompress(codec.compress(page)) != page:
                raise AssertionError("round-trip mismatch")
            codec.decompress(blob)

    return op


def _kernel_deflate_roundtrip() -> Callable[[], None]:
    return _codec_roundtrip(DeflateCodec(window_size=4096))


def _kernel_zstd_like_roundtrip() -> Callable[[], None]:
    return _codec_roundtrip(ZstdLikeCodec())


def _kernel_lzfast_roundtrip() -> Callable[[], None]:
    return _codec_roundtrip(LzFastCodec())


def _kernel_lz77_tokenize() -> Callable[[], None]:
    matcher = Lz77Matcher(window_size=4096)
    pages = _bench_pages()
    # Time the entry point the codecs drive: the packed fast path when
    # present, the seed token-object path otherwise.
    tokenize = getattr(matcher, "tokenize_packed", matcher.tokenize)

    def op() -> None:
        for page in pages:
            tokenize(page)

    return op


def _kernel_lz77_tokenize_batch() -> Callable[[], None]:
    """The page-batch tokenizer entry the batch codec API drives: one
    call amortizes scratch allocation and dispatch over all pages."""
    matcher = Lz77Matcher(window_size=4096)
    pages = _bench_pages()

    def op() -> None:
        matcher.tokenize_packed_batch(pages)

    return op


def _kernel_deflate_static_table() -> Callable[[], None]:
    """Mode-3 deflate: corpus-trained tables, batch compress + decode.

    This is the static-table store path end to end — no per-page table
    build, pre-rendered header, batch API — against the same page mix
    the dynamic round-trip kernel times."""
    from repro.compression.deflate import train_static_tables

    pages = _bench_pages()
    tables = train_static_tables(pages, domain="bench", window_size=4096)
    codec = DeflateCodec(window_size=4096, static_tables=tables)

    def op() -> None:
        blobs = codec.compress_batch(pages)
        if codec.decompress_batch(blobs) != pages:
            raise AssertionError("static-table round-trip mismatch")

    return op


def _kernel_lz77_detokenize() -> Callable[[], None]:
    import repro.compression.lz77 as lz77mod

    matcher = Lz77Matcher(window_size=4096)
    pages = _bench_pages()
    packed_fn = getattr(lz77mod, "detokenize_packed", None)
    if packed_fn is not None:
        streams = [matcher.tokenize_packed(page) for page in pages]
        rebuild = packed_fn
    else:
        streams = [matcher.tokenize(page) for page in pages]
        rebuild = detokenize

    def op() -> None:
        for page, stream in zip(pages, streams):
            if rebuild(stream) != page:
                raise AssertionError("detokenize mismatch")

    return op


def _huffman_fixture() -> Tuple[HuffmanTable, List[bytes]]:
    pages = _bench_pages()
    freq = [0] * 256
    for page in pages:
        for byte in page:
            freq[byte] += 1
    return HuffmanTable.from_frequencies(freq), pages


def _kernel_huffman_encode() -> Callable[[], None]:
    table, pages = _huffman_fixture()

    def op() -> None:
        for page in pages:
            writer = BitWriter()
            encode = table.encode
            for byte in page:
                encode(writer, byte)
            writer.getvalue()

    return op


def _kernel_huffman_decode() -> Callable[[], None]:
    table, pages = _huffman_fixture()
    encoded = []
    for page in pages:
        writer = BitWriter()
        for byte in page:
            table.encode(writer, byte)
        encoded.append(writer.getvalue())

    def op() -> None:
        # build_decoder() is *inside* the op on purpose: the per-page
        # decode paths historically rebuilt the decoder every page, and
        # the decoder cache is one of the kernels under test.
        for blob in encoded:
            decoder = table.build_decoder()
            reader = BitReader(blob)
            decode = decoder.decode
            for _ in range(PAGE):
                decode(reader)

    return op


def _kernel_emulator_window() -> Callable[[], None]:
    from repro.core.emulator import EmulatorConfig, XfmEmulator

    config = EmulatorConfig(sim_time_s=0.01, seed=7)

    def op() -> None:
        XfmEmulator(config).run()

    return op


def _swap_path_setup(traced: bool) -> Callable[[], None]:
    """Full store/load path (zpool + rbtree + codec + telemetry guards),
    with tracing disabled or enabled — the pair that brackets what the
    instrumentation costs on the real hot path."""
    from repro.sfm.backend import SfmBackend
    from repro.sfm.page import Page
    from repro.telemetry import trace as _trace

    codec = DeflateCodec(window_size=4096)
    pages = _bench_pages()

    def body() -> None:
        backend = SfmBackend(
            capacity_bytes=len(pages) * PAGE * 2,
            codec=codec,
            page_cache_entries=0,
        )
        for i, data in enumerate(pages):
            page = Page(vaddr=i * PAGE, data=data)
            if backend.swap_out(page).accepted:
                backend.swap_in(page)

    if not traced:
        return body

    def traced_body() -> None:
        with _trace.tracing():
            body()

    return traced_body


def _kernel_swap_telemetry_off() -> Callable[[], None]:
    return _swap_path_setup(traced=False)


def _kernel_swap_telemetry_on() -> Callable[[], None]:
    return _swap_path_setup(traced=True)


def _tier_pipeline_fixture():
    from repro.tiering import TierPipeline

    pages = _bench_pages()
    pipeline = TierPipeline.build(
        cpu_capacity_bytes=len(pages) * PAGE * 2,
        xfm_capacity_bytes=len(pages) * PAGE * 2,
        dfm_capacity_bytes=len(pages) * PAGE * 2,
    )
    return pipeline, pages


def _kernel_tier_pipeline_store() -> Callable[[], None]:
    pipeline, pages = _tier_pipeline_fixture()

    def op() -> None:
        # Steady-state keyed stores: after the first batch every store
        # replaces the previous copy (invalidate + re-place), which is
        # what a swap-out-heavy workload does to a warm pipeline.
        for key, data in enumerate(pages):
            if not pipeline.store(key, data):
                raise AssertionError("pipeline store rejected")

    return op


def _kernel_tier_pipeline_load() -> Callable[[], None]:
    pipeline, pages = _tier_pipeline_fixture()

    def op() -> None:
        # load() is exclusive (a demand fault removes the far copy), so
        # each batch re-stores first; the store half is identical to the
        # store kernel, making the delta the pure load-path cost.
        for key, data in enumerate(pages):
            pipeline.store(key, data)
        for key, data in enumerate(pages):
            if pipeline.load(key) != data:
                raise AssertionError("pipeline load mismatch")

    return op


def _kernel_tier_demote_batch() -> Callable[[], None]:
    """Demotion cascade with batched placement: fill a top tier, then
    sink every page one tier down via ``demote_coldest`` — the path that
    routes whole victim batches through the codec's batch API."""
    from repro.sfm.backend import SfmBackend
    from repro.sfm.page import Page
    from repro.tiering import TierPipeline

    pages = _bench_pages()

    def op() -> None:
        top = SfmBackend(
            capacity_bytes=len(pages) * PAGE * 2, page_cache_entries=0
        )
        bottom = SfmBackend(
            capacity_bytes=len(pages) * PAGE * 4, page_cache_entries=0
        )
        pipeline = TierPipeline([("cpu-zswap", top), ("xfm", bottom)])
        for i, data in enumerate(pages):
            if not pipeline.swap_out(Page(vaddr=i * PAGE, data=data)).accepted:
                raise AssertionError("store rejected")
        if pipeline.demote_coldest(count=len(pages)) != len(pages):
            raise AssertionError("demotion incomplete")

    return op


def telemetry_overhead_ratio(repeats: int = 5) -> float:
    """Cost of the *disabled* telemetry guards on the deflate round-trip.

    Times the plain codec round-trip loop against the identical loop with
    the hot path's guard pattern (``tracing_enabled()`` check + early
    out) at the same emission-site density as the real swap path. The
    ratio is measured in-process so it is machine-independent; CI gates
    it at < 3% (``run_perf.py telemetry-guard``).
    """
    from repro.telemetry import trace as _trace

    codec = DeflateCodec(window_size=4096)
    pages = _bench_pages()
    blobs = [codec.compress(page) for page in pages]

    def plain() -> None:
        for page, blob in zip(pages, blobs):
            codec.decompress(codec.compress(page))
            codec.decompress(blob)

    def guarded() -> None:
        # Two guarded sites per page, like swap_out + swap_in.
        for page, blob in zip(pages, blobs):
            if _trace.tracing_enabled():
                _trace.complete(
                    "cpu_compress", _trace.TRACK_CPU, _trace.clock_ns(), 0.0
                )
            codec.decompress(codec.compress(page))
            if _trace.tracing_enabled():
                _trace.complete(
                    "cpu_decompress", _trace.TRACK_CPU, _trace.clock_ns(), 0.0
                )
            codec.decompress(blob)

    def best_of(op: Callable[[], None]) -> float:
        op()  # warm up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            op()
            best = min(best, time.perf_counter() - start)
        return best

    assert not _trace.tracing_enabled(), "guard must measure the off path"
    return best_of(guarded) / best_of(plain)


def span_overhead_ratio(repeats: int = 5) -> float:
    """Cost of the *disabled* span/quantile instrumentation.

    The span layer added guarded sites to every pipeline operation: a
    ``tracing_enabled()`` branch that (when on) opens a span, observes
    the op's quantile histogram, and arms the flight-recorder trigger.
    This times the plain codec round-trip loop against the identical
    loop carrying that full guard pattern — span dispatch branch per op
    plus the flight-recorder's no-op module read on the (rare) failure
    path — at the pipeline's real site density. CI gates the off-path
    cost at < 3% (``run_perf.py span-guard``), same in-process-ratio
    protocol as :func:`telemetry_overhead_ratio`.
    """
    from repro.telemetry import flightrec as _flightrec
    from repro.telemetry import spans as _spans
    from repro.telemetry import trace as _trace

    codec = DeflateCodec(window_size=4096)
    pages = _bench_pages()
    blobs = [codec.compress(page) for page in pages]

    def plain() -> None:
        for page, blob in zip(pages, blobs):
            codec.decompress(codec.compress(page))
            codec.decompress(blob)

    def guarded() -> None:
        # One store-shaped and one load-shaped site per page, like the
        # pipeline's swap_out/swap_in dispatch. Failure paths (the
        # flight-recorder trigger) are rare in a clean run — once per
        # batch is already denser than reality.
        for page, blob in zip(pages, blobs):
            if _trace.tracing_enabled():
                handle = _spans.begin("pipeline_store", "tier")
                try:
                    codec.decompress(codec.compress(page))
                finally:
                    _spans.end(handle)
            else:
                codec.decompress(codec.compress(page))
            if _trace.tracing_enabled():
                handle = _spans.begin("pipeline_load", "tier")
                try:
                    codec.decompress(blob)
                finally:
                    _spans.end(handle)
            else:
                codec.decompress(blob)
        _flightrec.trigger(_flightrec.REASON_POISON)

    def best_of(op: Callable[[], None]) -> float:
        op()  # warm up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            op()
            best = min(best, time.perf_counter() - start)
        return best

    assert not _trace.tracing_enabled(), "guard must measure the off path"
    assert _flightrec.current_recorder() is None, (
        "guard must measure the uninstalled flight-recorder path"
    )
    return best_of(guarded) / best_of(plain)


def tier_overhead_ratio(repeats: int = 5) -> float:
    """Cost of TierPipeline bookkeeping on the single-tier zswap path.

    Times a zswap store/load loop over a bare ``SfmBackend`` against the
    identical loop over a single-CPU-tier ``TierPipeline`` wrapping the
    same backend class. Both loops are codec-dominated, so the ratio
    isolates the pipeline's placement/LRU/accounting bookkeeping; CI
    gates it at < 5% (``run_perf.py tier-guard``). Measured in-process
    (same machine, same run) like :func:`telemetry_overhead_ratio`.
    """
    from repro.sfm.backend import SfmBackend
    from repro.sfm.zswap import ZswapFrontend
    from repro.tiering import TierPipeline

    pages = _bench_pages()
    capacity = len(pages) * PAGE * 4

    def frontend_over(backend) -> ZswapFrontend:
        return ZswapFrontend(
            backend,
            total_ram_bytes=len(pages) * PAGE * 8,
            max_pool_percent=50,
        )

    plain_frontend = frontend_over(SfmBackend(capacity_bytes=capacity))
    piped_frontend = frontend_over(
        TierPipeline([("cpu-zswap", SfmBackend(capacity_bytes=capacity))])
    )

    def loop(frontend: ZswapFrontend) -> Callable[[], None]:
        def op() -> None:
            # Exclusive loads empty the pool, so every batch is a full
            # store-all / load-all cycle — the single-tier store path
            # the gate protects.
            for offset, data in enumerate(pages):
                if not frontend.store(0, offset, data):
                    raise AssertionError("zswap store rejected")
            for offset, data in enumerate(pages):
                if frontend.load(0, offset) != data:
                    raise AssertionError("zswap load mismatch")

        return op

    def best_of(op: Callable[[], None]) -> float:
        op()  # warm up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            op()
            best = min(best, time.perf_counter() - start)
        return best

    return best_of(loop(piped_frontend)) / best_of(loop(plain_frontend))


#: name -> (setup, default inner iterations per timed batch).
KERNELS: Dict[str, Tuple[Callable[[], Callable[[], None]], int]] = {
    "deflate_roundtrip_4k": (_kernel_deflate_roundtrip, 1),
    "zstd_like_roundtrip_4k": (_kernel_zstd_like_roundtrip, 1),
    "lzfast_roundtrip_4k": (_kernel_lzfast_roundtrip, 2),
    "lz77_tokenize_4k": (_kernel_lz77_tokenize, 2),
    "lz77_tokenize_batch_4k": (_kernel_lz77_tokenize_batch, 2),
    "deflate_static_table_4k": (_kernel_deflate_static_table, 2),
    "lz77_detokenize_4k": (_kernel_lz77_detokenize, 5),
    "huffman_encode_4k": (_kernel_huffman_encode, 2),
    "huffman_decode_4k": (_kernel_huffman_decode, 1),
    "emulator_window": (_kernel_emulator_window, 1),
    "swap_telemetry_off": (_kernel_swap_telemetry_off, 1),
    "swap_telemetry_on": (_kernel_swap_telemetry_on, 1),
    "tier_pipeline_store": (_kernel_tier_pipeline_store, 20),
    "tier_pipeline_load": (_kernel_tier_pipeline_load, 2),
    "tier_demote_batch": (_kernel_tier_demote_batch, 1),
}


def run_kernel(
    name: str, inner_scale: float = 1.0, repeats: int = 3
) -> Dict[str, float]:
    """Measure one kernel; returns its result record."""
    setup, inner = KERNELS[name]
    inner = max(1, int(round(inner * inner_scale)))
    op = setup()
    op()  # warm up: JIT-free but primes caches and lazy imports
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            op()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / inner)
    return {"seconds_per_op": best, "inner": inner, "repeats": repeats}


def run_all(
    inner_scale: float = 1.0, repeats: int = 3, names=None
) -> Dict[str, Dict[str, float]]:
    results: Dict[str, Dict[str, float]] = {}
    for name in names or KERNELS:
        results[name] = run_kernel(name, inner_scale, repeats)
    return results
