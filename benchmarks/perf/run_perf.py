"""CLI for the codec hot-path perf harness.

Modes:

``run``
    Measure every kernel and print the results as JSON. With
    ``--update-baseline`` the committed ``BENCH_perf.json`` is rewritten:
    the fresh numbers become the ``baseline`` section while the pinned
    pre-overhaul ``reference`` section is preserved verbatim (it is a
    historical measurement and must never be re-run on new code).

``check``
    Re-measure with reduced iterations (CI smoke mode) and compare each
    kernel against the committed baseline. Exits non-zero when any
    kernel is more than ``--max-slowdown`` times slower than its
    committed number. The threshold is deliberately loose (2.5x) because
    CI machines differ from the baseline machine; the gate catches
    algorithmic regressions (accidentally reverting to a bit-serial
    loop), not percent-level noise.

``telemetry-guard``
    Assert that the *disabled* telemetry guards cost < ``--max-overhead``
    (default 3%) on the deflate round-trip kernel. Unlike ``check`` this
    is an in-process ratio (guarded loop vs plain loop on the same
    machine, same run), so the gate can afford to be tight.

``span-guard``
    Assert that the *disabled* span/quantile/flight-recorder guards cost
    < ``--max-overhead`` (default 3%) at the pipeline's real
    instrumentation-site density. Same in-process-ratio protocol as
    ``telemetry-guard``.

``tier-guard``
    Assert that routing the zswap store/load path through a single-tier
    ``TierPipeline`` costs < ``--max-overhead`` (default 5%) over the
    same path on a bare ``SfmBackend``. Same in-process-ratio protocol
    as ``telemetry-guard``.

``sim-guard``
    Assert that the shared simulated-clock/event core added <
    ``--max-overhead`` (default 5%) to the ``tier_pipeline_store`` /
    ``tier_pipeline_load`` kernels, best-of-``--trials`` against their
    committed pre-refactor ``BENCH_perf.json`` baselines.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_perf.py run
    PYTHONPATH=src python benchmarks/perf/run_perf.py run --update-baseline
    PYTHONPATH=src python benchmarks/perf/run_perf.py check --inner-scale 0.5
    PYTHONPATH=src python benchmarks/perf/run_perf.py telemetry-guard
    PYTHONPATH=src python benchmarks/perf/run_perf.py tier-guard
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import microbench  # noqa: E402  (sibling module, path-injected above)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_perf.json"


def _load(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _measure(args: argparse.Namespace) -> dict:
    """Run all kernels, optionally inside a telemetry session.

    With ``--trace-dir`` the measurement runs under tracing and writes
    ``trace.json``/``metrics.json`` there (the measured numbers then
    include the enabled-tracing overhead — useful for inspecting the
    harness itself, not for updating baselines).
    """
    trace_dir = getattr(args, "trace_dir", None)
    if not trace_dir:
        return microbench.run_all(args.inner_scale, args.repeats)
    from repro.telemetry import TelemetrySession

    with TelemetrySession(out_dir=trace_dir):
        results = microbench.run_all(args.inner_scale, args.repeats)
    print(f"telemetry written to {trace_dir}", file=sys.stderr)
    return results


def _report_deltas(fresh: dict, previous: dict) -> None:
    """Per-kernel deltas vs the *previous committed baseline* — the
    numbers a reviewer of a perf PR actually needs. (The pinned
    ``reference`` section answers a different question: cumulative
    speedup since the pre-overhaul seed.)"""
    if not previous:
        print("no previous baseline to diff against", file=sys.stderr)
        return
    width = max(len(name) for name in fresh)
    print(
        f"{'kernel'.ljust(width)}  previous(s/op)  fresh(s/op)   delta",
        file=sys.stderr,
    )
    for name, record in sorted(fresh.items()):
        base = previous.get(name)
        if base is None:
            print(f"{name.ljust(width)}  (new kernel)", file=sys.stderr)
            continue
        ratio = record["seconds_per_op"] / base["seconds_per_op"]
        print(
            f"{name.ljust(width)}  {base['seconds_per_op']:.6f}"
            f"        {record['seconds_per_op']:.6f}"
            f"     {(ratio - 1.0) * 100:+6.1f}%",
            file=sys.stderr,
        )


def cmd_run(args: argparse.Namespace) -> int:
    results = _measure(args)
    payload = {"schema": 1, "kernels": results}
    baseline_path = Path(args.baseline)
    doc = _load(baseline_path) if baseline_path.exists() else {}
    previous = doc.get("baseline", {}).get("kernels", {})
    _report_deltas(results, previous)
    if args.update_baseline:
        doc["schema"] = 1
        doc["baseline"] = {"kernels": results}
        if previous:
            doc["delta_vs_previous_baseline"] = {
                name: round(
                    results[name]["seconds_per_op"]
                    / previous[name]["seconds_per_op"],
                    3,
                )
                for name in results
                if name in previous
            }
        reference = doc.get("reference", {}).get("kernels", {})
        if reference:
            doc["speedup_vs_reference"] = {
                name: round(
                    reference[name]["seconds_per_op"]
                    / results[name]["seconds_per_op"],
                    2,
                )
                for name in results
                if name in reference
            }
        with open(baseline_path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline updated: {baseline_path}")
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    doc = _load(Path(args.baseline))
    committed = doc["baseline"]["kernels"]
    fresh = _measure(args)
    failures = []
    width = max(len(name) for name in fresh)
    print(f"{'kernel'.ljust(width)}  committed(s/op)  fresh(s/op)  ratio")
    for name, record in sorted(fresh.items()):
        base = committed.get(name)
        if base is None:
            print(f"{name.ljust(width)}  (no committed baseline — skipped)")
            continue
        ratio = record["seconds_per_op"] / base["seconds_per_op"]
        flag = "  FAIL" if ratio > args.max_slowdown else ""
        print(
            f"{name.ljust(width)}  {base['seconds_per_op']:.6f}"
            f"         {record['seconds_per_op']:.6f}     {ratio:5.2f}x{flag}"
        )
        if ratio > args.max_slowdown:
            failures.append((name, ratio))
    if failures:
        print(
            f"\nperf regression: {len(failures)} kernel(s) exceeded the "
            f"{args.max_slowdown}x slowdown gate:"
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x slower than committed baseline")
        return 1
    print(f"\nall kernels within the {args.max_slowdown}x gate")
    return 0


def cmd_telemetry_guard(args: argparse.Namespace) -> int:
    # Best-of-N both ways; take the minimum over trials so a single
    # noisy plain-loop batch can't fail the gate spuriously.
    ratio = min(
        microbench.telemetry_overhead_ratio(repeats=args.repeats)
        for _ in range(args.trials)
    )
    overhead = ratio - 1.0
    print(
        f"disabled-telemetry overhead on deflate round-trip: "
        f"{overhead * 100:+.2f}% (gate: < {args.max_overhead * 100:.0f}%)"
    )
    if overhead > args.max_overhead:
        print(
            "telemetry guard FAILED: the tracing_enabled() fast path must "
            "stay free when tracing is off"
        )
        return 1
    print("telemetry guard passed")
    return 0


def cmd_span_guard(args: argparse.Namespace) -> int:
    ratio = min(
        microbench.span_overhead_ratio(repeats=args.repeats)
        for _ in range(args.trials)
    )
    overhead = ratio - 1.0
    print(
        f"disabled span/quantile instrumentation overhead: "
        f"{overhead * 100:+.2f}% (gate: < {args.max_overhead * 100:.0f}%)"
    )
    if overhead > args.max_overhead:
        print(
            "span guard FAILED: the span/quantile/flight-recorder guards "
            "must stay free when tracing is off"
        )
        return 1
    print("span guard passed")
    return 0


def cmd_tier_guard(args: argparse.Namespace) -> int:
    ratio = min(
        microbench.tier_overhead_ratio(repeats=args.repeats)
        for _ in range(args.trials)
    )
    overhead = ratio - 1.0
    print(
        f"single-tier pipeline overhead on zswap store/load: "
        f"{overhead * 100:+.2f}% (gate: < {args.max_overhead * 100:.0f}%)"
    )
    if overhead > args.max_overhead:
        print(
            "tier guard FAILED: TierPipeline bookkeeping must stay "
            "negligible next to the codec on the single-tier store path"
        )
        return 1
    print("tier guard passed")
    return 0


def cmd_batch_guard(args: argparse.Namespace) -> int:
    """Assert the page-batch codec API is genuinely batched end to end.

    Three checks, all on the process-wide ``batch_stats`` telemetry:
    every registered hot-path codec's ``compress_batch``/
    ``decompress_batch`` must be a real batched implementation (zero
    trips through the base-class scalar adapter); the multi-channel
    backend's swap path must route stripes through it (``multichannel``
    site); and the tier pipeline's demotion cascade must route victim
    batches through it (``tier_demote`` site)."""
    from repro.compression import DeflateCodec, LzFastCodec, ZstdLikeCodec
    from repro.compression.base import batch_stats

    pages = microbench._bench_pages()
    failures = []
    for codec in (DeflateCodec(window_size=4096), LzFastCodec(), ZstdLikeCodec()):
        batch_stats.reset()
        blobs = codec.compress_batch(pages)
        if codec.decompress_batch(blobs) != pages:
            failures.append(f"{codec.name}: batch round-trip mismatch")
        if (
            batch_stats.compress_scalar_fallback_calls
            or not batch_stats.compress_batch_calls
        ):
            failures.append(
                f"{codec.name}: compress_batch fell back to the scalar "
                "adapter"
            )
        if (
            batch_stats.decompress_scalar_fallback_calls
            or not batch_stats.decompress_batch_calls
        ):
            failures.append(
                f"{codec.name}: decompress_batch fell back to the scalar "
                "adapter"
            )

    from repro.sfm.page import PAGE_SIZE, Page
    from repro.tiering.factory import make_tier

    batch_stats.reset()
    mc = make_tier("xfm-mc")
    for i, data in enumerate(pages):
        page = Page(vaddr=i * PAGE_SIZE, data=data)
        if mc.swap_out(page).accepted:
            mc.swap_in(page)
    mc_pages = batch_stats.site_pages.get("multichannel", 0)
    if not mc_pages:
        failures.append(
            "multichannel swap path recorded no batched pages "
            "(site 'multichannel' empty)"
        )

    batch_stats.reset()
    microbench.KERNELS["tier_demote_batch"][0]()()
    demote_pages = batch_stats.site_pages.get("tier_demote", 0)
    if not demote_pages:
        failures.append(
            "tier demotion cascade recorded no batched pages "
            "(site 'tier_demote' empty)"
        )

    print(
        f"batch sites: multichannel={mc_pages} pages, "
        f"tier_demote={demote_pages} pages"
    )
    if failures:
        print(f"batch guard FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("batch guard passed: no scalar fallbacks on the batch API")
    return 0


def cmd_sim_guard(args: argparse.Namespace) -> int:
    """Assert the repro.sim clock/event core added < ``--max-overhead``
    to the tier pipeline hot path.

    The tier store/load kernels route every operation through the
    pieces the simulation-core refactor touched (span clock reads,
    breaker checks, latency accounting), so they are the canary: each
    is re-measured (best-of-``--trials`` full kernel runs) and compared
    against its committed ``BENCH_perf.json`` baseline, which was
    recorded immediately before the shared-clock refactor landed."""
    doc = _load(Path(args.baseline))
    committed = doc["baseline"]["kernels"]
    kernels = ("tier_pipeline_store", "tier_pipeline_load")
    failures = []
    for name in kernels:
        fresh = min(
            microbench.run_kernel(name, args.inner_scale, args.repeats)[
                "seconds_per_op"
            ]
            for _ in range(args.trials)
        )
        base = committed[name]["seconds_per_op"]
        overhead = fresh / base - 1.0
        print(
            f"{name}: committed {base:.6f} s/op, fresh {fresh:.6f} s/op "
            f"({overhead * 100:+.2f}%, gate: < {args.max_overhead * 100:.0f}%)"
        )
        if overhead > args.max_overhead:
            failures.append((name, overhead))
    if failures:
        print(f"\nsim guard FAILED ({len(failures)} kernel(s)):")
        for name, overhead in failures:
            print(
                f"  {name}: {overhead * 100:+.2f}% over the pre-sim "
                "baseline — scheduler/clock bookkeeping leaked into the "
                "hot path"
            )
        return 1
    print("sim guard passed: event-core overhead within the gate")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    run = sub.add_parser("run", help="measure and print/update baseline")
    run.add_argument("--update-baseline", action="store_true")
    run.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    run.add_argument("--inner-scale", type=float, default=1.0)
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument("--trace-dir", default=None)
    run.set_defaults(func=cmd_run)

    check = sub.add_parser("check", help="compare against committed baseline")
    check.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    check.add_argument("--inner-scale", type=float, default=1.0)
    check.add_argument("--repeats", type=int, default=2)
    check.add_argument("--max-slowdown", type=float, default=2.5)
    check.add_argument("--trace-dir", default=None)
    check.set_defaults(func=cmd_check)

    guard = sub.add_parser(
        "telemetry-guard",
        help="assert disabled telemetry costs < --max-overhead",
    )
    guard.add_argument("--max-overhead", type=float, default=0.03)
    guard.add_argument("--repeats", type=int, default=3)
    guard.add_argument("--trials", type=int, default=3)
    guard.set_defaults(func=cmd_telemetry_guard)

    span_guard = sub.add_parser(
        "span-guard",
        help="assert disabled span/quantile guards cost < --max-overhead",
    )
    span_guard.add_argument("--max-overhead", type=float, default=0.03)
    span_guard.add_argument("--repeats", type=int, default=3)
    span_guard.add_argument("--trials", type=int, default=3)
    span_guard.set_defaults(func=cmd_span_guard)

    tier_guard = sub.add_parser(
        "tier-guard",
        help="assert single-tier pipeline overhead < --max-overhead",
    )
    tier_guard.add_argument("--max-overhead", type=float, default=0.05)
    tier_guard.add_argument("--repeats", type=int, default=3)
    tier_guard.add_argument("--trials", type=int, default=3)
    tier_guard.set_defaults(func=cmd_tier_guard)

    batch_guard = sub.add_parser(
        "batch-guard",
        help="assert the page-batch codec API never falls back to scalar",
    )
    batch_guard.set_defaults(func=cmd_batch_guard)

    sim_guard = sub.add_parser(
        "sim-guard",
        help="assert the sim clock/event core overhead on the tier "
        "pipeline kernels stays < --max-overhead vs the committed "
        "baseline",
    )
    sim_guard.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    sim_guard.add_argument("--max-overhead", type=float, default=0.05)
    sim_guard.add_argument("--inner-scale", type=float, default=1.0)
    sim_guard.add_argument("--repeats", type=int, default=3)
    sim_guard.add_argument("--trials", type=int, default=3)
    sim_guard.set_defaults(func=cmd_sim_guard)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
