"""Ablation A4 — DRAM retention time (temperature) sensitivity.

The side channel's bandwidth is set by how often refresh windows come
around: tREFI = retention / 8192. Hot parts refresh twice as often
(16 ms retention), doubling XFM's access budget per second; low-power
extended retention (64 ms) halves it. This ablation sweeps retention at a
fixed access budget and shows the fallback rate tracking the side
channel's delivered bandwidth — a deployment consideration the paper's
32 ms working point hides.
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.core.emulator import EmulatorConfig, XfmEmulator
from repro.dram.device import DDR5_32GB, timings_for_device


def _sweep():
    reports = []
    for retention_ms in (16.0, 32.0, 64.0):
        timings = timings_for_device(DDR5_32GB)
        timings = replace(timings, retention_ms=retention_ms)
        config = EmulatorConfig(
            promotion_rate=1.0,
            accesses_per_ref=2,
            spm_bytes=4 << 20,
            timings=timings,
            sim_time_s=0.05,
        )
        reports.append((retention_ms, XfmEmulator(config).run()))
    return reports


def test_a4_retention_sensitivity(once, emit):
    reports = once(_sweep)
    rows = [
        [
            f"{retention:.0f} ms",
            round(report.config.resolved_timings().trefi_ns / 1000, 2),
            round(100 * report.fallback_fraction, 2),
            round(report.nma_bandwidth_bps / 1e9, 3),
            round(100 * report.random_fraction, 1),
        ]
        for retention, report in reports
    ]
    table = format_table(
        ["retention", "tREFI us", "fallback %", "NMA GBps", "random %"],
        rows,
        title="A4 — retention/temperature sensitivity "
        "(100% promo, 2 acc/REF, 4 MiB SPM)",
    )
    emit("a4_retention", table)

    by_retention = dict(reports)
    # Faster refresh -> more windows -> fewer fallbacks.
    assert (
        by_retention[16.0].fallback_fraction
        <= by_retention[32.0].fallback_fraction
        <= by_retention[64.0].fallback_fraction
    )
    # Delivered NMA bandwidth scales with refresh frequency.
    assert (
        by_retention[16.0].nma_bandwidth_bps
        > by_retention[64.0].nma_bandwidth_bps
    )
