"""Table 2 — FPGA resource utilization of the XFM prototype.

Paper values: 435467/522720 LUTs (83.30%), 94135/1045440 FFs (9.00%),
51/984 BRAM (5.18%), dominated by the open-source Deflate engines.
"""

from repro.analysis.report import format_table
from repro.analysis.tables import TABLE2_HEADERS, table2_rows
from repro.hwmodel.fpga import xfm_fpga_design


def test_table2_fpga(once, emit):
    rows = once(table2_rows)
    table = format_table(
        TABLE2_HEADERS, rows, title="Table 2 — FPGA resource utilization"
    )
    design = xfm_fpga_design()
    breakdown = format_table(
        ["component", "LUTs", "FFs", "BRAM", "dynamic W"],
        [
            [c["name"], c["luts"], c["ffs"], c["bram"], c["dynamic_w"]]
            for c in design.breakdown()
        ],
        title="component inventory",
    )
    emit("table2_fpga", table + "\n\n" + breakdown)

    by_resource = {row[0]: row for row in rows}
    assert by_resource["LUTs"][1] == 435467
    assert by_resource["FFs"][1] == 94135
    assert by_resource["BRAM"][1] == 51
