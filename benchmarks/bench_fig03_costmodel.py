"""Fig. 3 — capital cost and emissions of SFM vs DFM, normalized to DFM.

Paper claims: SFM at 100% promotion takes ~8.5 years to break even with a
DRAM-based DFM in cost; at 20% promotion SFM can beat even PMem-based DFM;
DRAM-DFM's embodied emissions mean the (accelerated) SFM never breaks even
within a 5-year server lifetime.
"""

import pytest

from repro.analysis.report import format_table
from repro.costmodel import CostParams, MemoryKind, fig3_series
from repro.costmodel.breakeven import (
    sfm_vs_dfm_cost_breakeven,
    sfm_vs_dfm_emission_breakeven,
)


def _series_table(metric: str) -> str:
    series = fig3_series(metric=metric)
    years = series["dfm-dram"].years
    headers = ["year"] + list(series)
    rows = [
        [year] + [round(series[k].normalized[i], 3) for k in series]
        for i, year in enumerate(years)
    ]
    return format_table(
        headers, rows, title=f"Fig. 3 ({metric}) — normalized to DFM (DRAM)"
    )


def test_fig3_cost(once, emit):
    table = once(_series_table, "cost")
    params = CostParams()
    be_100 = sfm_vs_dfm_cost_breakeven(params, 1.0)
    be_20_pmem = sfm_vs_dfm_cost_breakeven(params, 0.2, MemoryKind.PMEM)
    table += (
        f"\ncost break-even, SFM@100% vs DFM-DRAM: {be_100:.1f} years"
        f" (paper: 8.5)"
        f"\ncost break-even, SFM@20% vs DFM-PMem: "
        f"{'never' if be_20_pmem is None else f'{be_20_pmem:.1f} years'}"
        f" (paper: SFM can beat even PMem)"
    )
    emit("fig03_cost", table)
    assert be_100 == pytest.approx(8.5, abs=0.3)
    assert be_20_pmem is None or be_20_pmem > 10.0


def test_fig3_emissions(once, emit):
    table = once(_series_table, "emission")
    params = CostParams()
    be_xfm = sfm_vs_dfm_emission_breakeven(params, 1.0, accelerated=True)
    be_cpu = sfm_vs_dfm_emission_breakeven(params, 0.2)
    table += (
        f"\nemission break-even, XFM-SFM@100% vs DFM-DRAM: "
        f"{'never' if be_xfm is None else f'{be_xfm:.1f} years'}"
        f" (paper: never within server lifetime)"
        f"\nemission break-even, CPU-SFM@20% vs DFM-DRAM: "
        f"{'never' if be_cpu is None else f'{be_cpu:.1f} years'}"
        f" (literal EQ5 crosses earlier than the paper's figure; see"
        f" EXPERIMENTS.md)"
    )
    emit("fig03_emissions", table)
    assert be_xfm is None
    assert be_cpu is not None and be_cpu > 1.0
