"""Fig. 12 — CPU fallback rate vs SPM size and accesses-per-REF.

Paper claims (§8): with 3 NMA accesses per REF, an 8 MB SPM eliminates all
CPU fallbacks regardless of the promotion rate; the random-access rate
scales with the promotion rate but conditional accesses dominate; the
conditional accesses cut NMA access energy by ~10%.

The table body is rendered by :func:`repro.analysis.goldens.fig12_table`,
shared with the golden-snapshot regression test in
``tests/validation/test_golden_figures.py``.
"""

from repro.analysis.figures import fig12_fallbacks
from repro.analysis.goldens import FIG12_GOLDEN_KWARGS, fig12_table


def test_fig12_fallbacks(once, emit):
    grid = once(fig12_fallbacks, **FIG12_GOLDEN_KWARGS)
    emit("fig12_fallbacks", fig12_table(grid))

    by_key = {
        (promo, r.config.spm_bytes >> 20, r.config.accesses_per_ref): r
        for promo, reports in grid.items()
        for r in reports
    }
    # 3 accesses/REF + 8 MB SPM -> zero fallbacks at both promotion rates.
    assert by_key[(0.5, 8, 3)].fallback_fraction == 0.0
    assert by_key[(1.0, 8, 3)].fallback_fraction == 0.0
    # 1 access/REF cannot keep up at 100% promotion, SPM notwithstanding.
    assert by_key[(1.0, 8, 1)].fallback_fraction > 0.25
    # Fallbacks fall with SPM size at a fixed budget.
    assert (
        by_key[(1.0, 8, 2)].fallback_fraction
        <= by_key[(1.0, 1, 2)].fallback_fraction
    )
    # Conditional accesses dominate; randoms scale with promotion rate.
    for report in grid[1.0]:
        assert report.random_fraction < 0.5
    rand_50 = by_key[(0.5, 8, 3)].random_accesses / by_key[(0.5, 8, 3)].sim_time_s
    rand_100 = by_key[(1.0, 8, 3)].random_accesses / by_key[(1.0, 8, 3)].sim_time_s
    assert rand_100 > 1.5 * rand_50
    # Conditional accesses save ~10% NMA access energy (paper: 10.1%).
    saving = by_key[(1.0, 8, 3)].conditional_energy_saving
    assert 0.02 < saving < 0.12
