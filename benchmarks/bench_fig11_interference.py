"""Fig. 11 — interference between SPEC and SFM operations.

Paper claims (§8): under Baseline-CPU the SFM throughput degrades 5–20%
and SPEC sees up to ~8% slowdown; Host-Lockout-NMA spares the SFM but
costs SPEC up to ~15%; XFM eliminates the interference on both sides,
yielding a 5–27% combined-performance improvement depending on the mix.
"""

from repro.analysis.report import format_table
from repro.interference.bandwidth import MemorySystem
from repro.interference.corun import (
    AntagonistConfig,
    CorunConfig,
    SfmMode,
    simulate_corun,
    xfm_improvement_pct,
)

JOB_MIXES = {
    "mix-default": CorunConfig(),
    "mix-heavy": CorunConfig(
        workloads=(
            "lbm", "fotonik3d", "bwaves", "roms",
            "mcf", "cactuBSSN", "lbm", "fotonik3d",
        ),
        antagonist=AntagonistConfig(promotion_rate=0.25, num_cores=4),
    ),
    "mix-light": CorunConfig(
        workloads=("gcc", "wrf", "xalancbmk", "omnetpp", "mcf", "cactuBSSN"),
        antagonist=AntagonistConfig(promotion_rate=0.10),
    ),
}


def _run_all():
    return {
        name: {mode: simulate_corun(config, mode) for mode in SfmMode}
        for name, config in JOB_MIXES.items()
    }


def test_fig11_interference(once, emit):
    results = once(_run_all)
    rows = []
    for mix, by_mode in results.items():
        for mode, result in by_mode.items():
            rows.append(
                [
                    mix,
                    mode.value,
                    round(result.spec_mean_degradation_pct, 2),
                    round(result.spec_max_degradation_pct, 2),
                    round(result.sfm_degradation_pct, 2),
                    round(result.combined_throughput(), 4),
                ]
            )
    table = format_table(
        [
            "job mix",
            "config",
            "SPEC mean deg %",
            "SPEC max deg %",
            "SFM deg %",
            "combined tput",
        ],
        rows,
        title="Fig. 11 — SPEC x SFM co-run interference",
    )
    improvements = []
    for name, config in JOB_MIXES.items():
        for against in (SfmMode.BASELINE_CPU, SfmMode.HOST_LOCKOUT_NMA):
            improvements.append(
                (name, against.value, xfm_improvement_pct(config, against))
            )
    table += "\nXFM combined-performance improvement:"
    for name, against, pct in improvements:
        table += f"\n  vs {against:18s} on {name}: {pct:5.1f}%"
    table += "\n(paper: 5~27% depending on mix and comparison point)"
    emit("fig11_interference", table)

    default = results["mix-default"]
    # Shape assertions mirroring the paper's reading of the figure.
    assert default[SfmMode.XFM].spec_max_degradation_pct < 0.01
    assert default[SfmMode.XFM].sfm_degradation_pct < 0.01
    assert 0 < default[SfmMode.BASELINE_CPU].spec_max_degradation_pct <= 10
    assert 3 <= default[SfmMode.BASELINE_CPU].sfm_degradation_pct <= 22
    assert (
        default[SfmMode.HOST_LOCKOUT_NMA].spec_max_degradation_pct
        > default[SfmMode.BASELINE_CPU].spec_max_degradation_pct
    )
    pct_values = [pct for _, _, pct in improvements]
    assert max(pct_values) >= 15.0
    assert min(pct_values) >= 2.0
    assert max(pct_values) <= 30.0
