"""Fig. 1 — SFM memory-bandwidth utilization vs rank count.

Paper claim: CPU-centric SFM's DDR traffic grows with capacity (rank
count) toward the channel limit, while XFM's per-rank refresh side channel
absorbs the same traffic with rank-level parallelism; XFM eliminates SFM
channel bandwidth for capacities up to ~1 TB.
"""

from repro.analysis.figures import (
    fig1_bandwidth_series,
    max_supported_sfm_gb,
    side_channel_gbps,
)
from repro.analysis.report import format_table


def test_fig1_bandwidth(once, emit):
    points = once(fig1_bandwidth_series, rank_counts=(4, 8, 16, 32, 64))
    rows = [
        [
            p.num_ranks,
            p.sfm_capacity_gb,
            round(p.cpu_sfm_channel_gbps, 2),
            round(100 * p.cpu_utilization, 1),
            round(p.xfm_per_rank_gbps, 3),
            round(p.side_channel_per_rank_gbps, 2),
            round(100 * p.xfm_utilization, 1),
        ]
        for p in points
    ]
    table = format_table(
        [
            "ranks",
            "SFM GB",
            "CPU-SFM GBps",
            "chan util %",
            "XFM/rank GBps",
            "side-chan GBps",
            "XFM util %",
        ],
        rows,
        title="Fig. 1 — SFM bandwidth vs ranks (100% promotion)",
    )
    max_gb = max_supported_sfm_gb(num_ranks=16)
    table += (
        f"\nside channel/rank: {side_channel_gbps():.2f} GBps"
        f"\nmax SFM capacity @16 ranks, 100% promotion:"
        f" {max_gb:.0f} GB (paper: up to ~1 TB)"
    )
    emit("fig01_bandwidth", table)

    # Shape: CPU traffic scales with ranks; XFM per-rank demand flat & fits.
    assert points[-1].cpu_sfm_channel_gbps > 8 * points[0].cpu_sfm_channel_gbps
    assert all(p.xfm_utilization < 0.5 for p in points)
    assert max_gb >= 1000.0
