"""XFM_Backend: the modified SFM backend with near-memory offload (§6).

``xfm_swap_out`` mirrors the baseline swap-out flow but pushes the selected
page into the Compress_Request_Queue instead of compressing on the CPU;
``xfm_swap_in`` calls ``CPU_Fallback`` *by default* — decompression latency
sits on the fault path, so offload happens only when the controller asserts
``do_offload`` (prefetch-style promotions). All NMA data movement is
charged to the ``nma`` ledger (on-DIMM, invisible to the DDR channel),
which is exactly the bandwidth-elimination claim of Fig. 1/Fig. 11.
"""

from __future__ import annotations

from typing import Optional

from repro.compression.base import Codec
from repro.core.driver import XfmDriver
from repro.core.nma import NearMemoryAccelerator, NmaConfig
from repro.errors import (
    CorruptedBlobError,
    DeviceFault,
    QueueFullError,
    SfmError,
    SpmFullError,
    ZpoolFullError,
)
from repro.resilience.integrity import content_digest
from repro.resilience.retry import retry_with_backoff
from repro.sfm.backend import SfmBackend
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import reasons, spans as _spans, trace as _trace
from repro.tiering.protocol import SwapOutcome


class XfmBackend(SfmBackend):
    """SFM backend whose data plane is the near-memory accelerator."""

    def __init__(
        self,
        capacity_bytes: int,
        nma: Optional[NearMemoryAccelerator] = None,
        codec: Optional[Codec] = None,
        cpu_freq_hz: float = 2.6e9,
        row_bytes: int = 8192,
        registry=None,
        ledger=None,
        tier: Optional[str] = None,
    ) -> None:
        self.nma = nma if nma is not None else NearMemoryAccelerator(
            NmaConfig(), codec=codec
        )
        super().__init__(
            capacity_bytes,
            codec=self.nma.codec,
            cpu_freq_hz=cpu_freq_hz,
            registry=registry,
            ledger=ledger,
            tier=tier,
        )
        if tier is None:
            self.tier_name = "xfm"
        # Driver counters re-home into the same per-System registry as
        # the swap statistics.
        self.driver = XfmDriver(self.nma, registry=self.registry)
        self.driver.xfm_paramset(sfm_base=0, sfm_size=capacity_bytes)
        self.row_bytes = row_bytes

    def _row_of(self, addr: int) -> int:
        """Rank-row index of an address inside the SFM region (the
        granularity the refresh side channel schedules on)."""
        return addr // self.row_bytes

    def _count_fallback_reason(self, exc: Exception) -> str:
        """Map a submit failure to its reason code and bump the
        matching per-reason counter."""
        if isinstance(exc, DeviceFault):
            self.stats.fallbacks_device_fault += 1
            return reasons.DEVICE_FAULT
        if isinstance(exc, SpmFullError):
            self.stats.fallbacks_spm_full += 1
            return reasons.SPM_FULL
        self.stats.fallbacks_queue_full += 1
        return reasons.QUEUE_FULL

    def _read_staged_verified(self, entry_id: int, expected_digest: bytes):
        """Read a staged SPM payload back, digest-verified with bounded
        re-reads (SPM read flips are transient). Raises
        :class:`DeviceFault` when the retries are exhausted — the caller
        recovers through the CPU path, so a flipped bit never escapes."""

        def read_once() -> bytes:
            staged = self.nma.spm.read_payload(entry_id)
            if staged is None or content_digest(staged) != expected_digest:
                self.stats.corruptions_detected += 1
                raise DeviceFault("SPM readback failed its digest check")
            return staged

        detected_before = self.stats.corruptions_detected
        staged = retry_with_backoff(
            read_once, on_retry=self._count_transient_retry
        )
        if self.stats.corruptions_detected > detected_before:
            self.stats.corruptions_recovered += 1
        return staged

    # -- swap-out: offload with CPU fallback ---------------------------------

    def _fallback_compress(self, page: Page, exc: Exception) -> SwapOutcome:
        """Degrade a failed offload to the baseline CPU swap-out."""
        self.stats.cpu_fallback_compressions += 1
        reason = self._count_fallback_reason(exc)
        if _trace.tracing_enabled():
            extra = {"vaddr": page.vaddr}
            parent = _spans.current_span_id()
            if parent is not None:
                extra["parent"] = parent
            _trace.fallback(reason, "compress", **extra)
        return super().swap_out(page)

    def _fallback_decompress(self, page: Page, exc: Exception) -> bytes:
        """Degrade a failed offload to the baseline CPU swap-in."""
        self.stats.cpu_fallback_decompressions += 1
        reason = self._count_fallback_reason(exc)
        if _trace.tracing_enabled():
            extra = {"vaddr": page.vaddr}
            parent = _spans.current_span_id()
            if parent is not None:
                extra["parent"] = parent
            _trace.fallback(reason, "decompress", **extra)
        return super().swap_in(page)

    def xfm_swap_out(self, page: Page) -> SwapOutcome:
        """Offload compression to the NMA; falls back to the CPU when the
        SPM or the request queue is exhausted."""
        if page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} already swapped")
        if page.data is None:
            raise SfmError(f"page 0x{page.vaddr:x} has no resident data")
        try:
            # The doorbell may be transiently lost (DeviceFault): bounded
            # retries re-ring it; exhaustion degrades to the CPU path.
            request = retry_with_backoff(
                lambda: self.driver.submit_compress(
                    source_row=self._row_of(page.vaddr),
                    input_bytes=PAGE_SIZE,
                ),
                on_retry=self._count_transient_retry,
            )
        except (SpmFullError, QueueFullError, DeviceFault) as exc:
            if isinstance(exc, DeviceFault):
                self.stats.device_faults += 1
            return self._fallback_compress(page, exc)

        # Device side: stage, compress, write back — all on-DIMM.
        self.nma.pop_request()
        try:
            entry = self.nma.spm.admit(PAGE_SIZE)
        except SpmFullError as exc:
            # The device-side staging admit can lose a race the driver's
            # lazy bound did not see.
            self.driver.notify_release(PAGE_SIZE)
            return self._fallback_compress(page, exc)
        try:
            blob = retry_with_backoff(
                lambda: self.nma.compress_page(page.data),
                on_retry=self._count_transient_retry,
            )
        except DeviceFault as exc:
            self.stats.device_faults += 1
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            return self._fallback_compress(page, exc)
        self.ledger.record("nma", "read", PAGE_SIZE)
        if len(blob) > int(PAGE_SIZE * self.max_stored_fraction):
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="incompressible")
        # The blob is staged in the SPM before the pool writeback; the
        # readback is digest-verified (SPM bit flips happen *here*).
        self.nma.spm.complete(
            entry.entry_id, output_bytes=len(blob), payload=blob
        )
        try:
            blob = self._read_staged_verified(
                entry.entry_id, content_digest(blob)
            )
        except DeviceFault as exc:
            # Persistent readback corruption: the page is still resident
            # in host memory, so the CPU path recovers it loss-free.
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            self.stats.corruptions_recovered += 1
            return self._fallback_compress(page, exc)
        try:
            handle = self.zpool.store(blob)
        except ZpoolFullError:
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="pool-full")
        self.ledger.record("nma", "write", len(blob))
        self.nma.spm.release(entry.entry_id)
        self.driver.notify_release(PAGE_SIZE)

        self._record_integrity(handle, blob, page.data)
        self.index.insert(page.vaddr, handle)
        page.swapped = True
        page.data = None
        self.stats.swap_outs += 1
        self.stats.offloaded_compressions += 1
        self.stats.bytes_out_uncompressed += PAGE_SIZE
        self.stats.bytes_out_compressed += len(blob)
        self.blob_sizes.observe(len(blob))
        if _trace.tracing_enabled():
            dur_ns = self.nma.config.compress_time_ns(PAGE_SIZE)
            _spans.emit_under(
                "nma_compress",
                _trace.TRACK_NMA,
                _trace.clock_ns(),
                dur_ns,
                args={
                    "request_id": request.request_id,
                    "blob_bytes": len(blob),
                },
            )
            self._lat_store.observe(dur_ns)
        del request
        return SwapOutcome(accepted=True, compressed_len=len(blob))

    # -- swap-in: CPU by default, offload for prefetch ------------------------

    def xfm_swap_in(self, page: Page, do_offload: bool = False) -> bytes:
        """Promote a page out of far memory.

        ``CPU_Fallback`` is the default (§6: applications are sensitive to
        the XFM datapath's decompression latency); the controller asserts
        ``do_offload`` for prefetch promotions.
        """
        if not do_offload:
            self.stats.cpu_fallback_decompressions += 1
            self.stats.fallbacks_demand += 1
            if _trace.tracing_enabled():
                _trace.fallback(
                    reasons.DEMAND_FAULT, "decompress", vaddr=page.vaddr
                )
            return super().swap_in(page)
        if not page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} is not in far memory")
        handle = self.index.lookup(page.vaddr)
        blob_len = self.zpool.entry(handle).length
        try:
            request = retry_with_backoff(
                lambda: self.driver.submit_decompress(
                    source_row=self._row_of(page.vaddr),
                    input_bytes=blob_len,
                    dest_row=self._row_of(page.vaddr),
                ),
                on_retry=self._count_transient_retry,
            )
        except (SpmFullError, QueueFullError, DeviceFault) as exc:
            if isinstance(exc, DeviceFault):
                self.stats.device_faults += 1
            return self._fallback_decompress(page, exc)

        self.nma.pop_request()
        try:
            # Verified read: corruption is detected (and poisoned when
            # unrecoverable) before the accelerator touches the blob.
            blob = self._load_verified(handle, page.vaddr)
        except CorruptedBlobError:
            self.driver.notify_release(PAGE_SIZE)
            raise
        self.ledger.record("nma", "read", len(blob))
        try:
            entry = self.nma.spm.admit(PAGE_SIZE)
        except SpmFullError as exc:
            self.driver.notify_release(PAGE_SIZE)
            return self._fallback_decompress(page, exc)
        try:
            data = retry_with_backoff(
                lambda: self.nma.decompress_blob(blob),
                on_retry=self._count_transient_retry,
            )
        except DeviceFault as exc:
            self.stats.device_faults += 1
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            return self._fallback_decompress(page, exc)
        if len(data) != PAGE_SIZE:
            raise SfmError(
                f"decompressed page is {len(data)} bytes, expected {PAGE_SIZE}"
            )
        # The decompressed page stages in the SPM before its writeback;
        # verify the readback just like the compress direction.
        self.nma.spm.complete(entry.entry_id, payload=data)
        try:
            data = self._read_staged_verified(
                entry.entry_id, content_digest(data)
            )
        except DeviceFault as exc:
            # The blob is still intact in the pool: the CPU path decodes
            # it again, loss-free.
            self.nma.spm.release(entry.entry_id)
            self.driver.notify_release(PAGE_SIZE)
            self.stats.corruptions_recovered += 1
            return self._fallback_decompress(page, exc)
        self.ledger.record("nma", "write", PAGE_SIZE)
        self.nma.spm.release(entry.entry_id)
        self.driver.notify_release(PAGE_SIZE)

        self.zpool.free(handle)
        self.index.delete(page.vaddr)
        self._integrity.pop(handle, None)
        page.swapped = False
        page.data = data
        self.stats.swap_ins += 1
        self.stats.offloaded_decompressions += 1
        self.stats.bytes_in_uncompressed += PAGE_SIZE
        self.stats.bytes_in_compressed += len(blob)
        if _trace.tracing_enabled():
            dur_ns = self.nma.config.decompress_time_ns(len(blob))
            _spans.emit_under(
                "nma_decompress",
                _trace.TRACK_NMA,
                _trace.clock_ns(),
                dur_ns,
                args={
                    "request_id": request.request_id,
                    "blob_bytes": len(blob),
                },
            )
            self._lat_load.observe(dur_ns)
        return data

    # -- drop-in aliases --------------------------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Drop-in override: route the baseline API through the NMA."""
        return self.xfm_swap_out(page)

    def swap_in(self, page: Page) -> bytes:
        """Drop-in override: demand faults use the CPU path (§6 default)."""
        return self.xfm_swap_in(page, do_offload=False)

    def promote(self, page: Page) -> bytes:
        """Prefetch-style promotion: the controller asserts offload."""
        return self.xfm_swap_in(page, do_offload=True)

    def xfm_compact(self) -> int:
        """Manually-initiated compaction (host memcpys, §6)."""
        return self.compact()
