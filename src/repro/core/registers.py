"""XFM MMIO register file.

The XFM_Driver communicates with the DIMM through memory-mapped registers
(§6): ``SP_Capacity_Register`` exposes free scratchpad bytes, the
``Compress_Request_Queue`` doorbell/head registers carry offload
submissions, and configuration registers receive the SFM region base/size
set by ``xfm_paramset()``. This module models the register file with
read-only enforcement so driver tests can catch protocol misuse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.errors import MmioError
from repro.validation.hooks import checkpoint


class Registers(enum.IntEnum):
    """Register offsets within the XFM MMIO window."""

    #: Free bytes in the ScratchPad Memory (read-only, device-updated).
    SP_CAPACITY = 0x00
    #: Compress_Request_Queue tail doorbell (host writes submissions).
    CRQ_TAIL = 0x08
    #: Compress_Request_Queue head (read-only, device consumption pointer).
    CRQ_HEAD = 0x10
    #: Free CRQ slots (read-only convenience register).
    CRQ_FREE = 0x18
    #: SFM region base physical address (set via xfm_paramset).
    SFM_BASE = 0x20
    #: SFM region size in bytes (set via xfm_paramset).
    SFM_SIZE = 0x28
    #: Control bits (bit 0: enable offload engine).
    CTRL = 0x30
    #: Status bits (bit 0: engine idle, bit 1: SPM writeback pending).
    STATUS = 0x38


_READ_ONLY = {
    Registers.SP_CAPACITY,
    Registers.CRQ_HEAD,
    Registers.CRQ_FREE,
    Registers.STATUS,
}


@dataclass
class RegisterFile:
    """MMIO register storage with host/device-side access rules."""

    _values: Dict[int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._values = {int(reg): 0 for reg in Registers}

    def mmio_read(self, offset: int) -> int:
        """Host-side MMIO read."""
        try:
            return self._values[offset]
        except KeyError:
            raise MmioError(f"read from unknown register 0x{offset:x}") from None

    def mmio_write(self, offset: int, value: int) -> None:
        """Host-side MMIO write; read-only registers reject writes."""
        if offset not in self._values:
            raise MmioError(f"write to unknown register 0x{offset:x}")
        if offset in {int(r) for r in _READ_ONLY}:
            raise MmioError(
                f"write to read-only register {Registers(offset).name}"
            )
        if value < 0:
            raise MmioError("register values are unsigned")
        self._values[offset] = value
        checkpoint(self)

    def device_set(self, register: Registers, value: int) -> None:
        """Device-side update (bypasses read-only protection)."""
        self._values[int(register)] = value

    def __getitem__(self, register: Registers) -> int:
        return self._values[int(register)]
