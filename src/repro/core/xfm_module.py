"""XFM memory module: the scheduler bound to real rank/bank state.

The emulator (:mod:`repro.core.emulator`) trades protocol detail for
speed; this module keeps the detail. :class:`XfmModule` advances a
:class:`~repro.dram.rank.Rank` through its refresh windows and executes
every :class:`~repro.core.refresh_channel.WindowScheduler` decision
against the bank state machines — each access is double-checked by
:meth:`~repro.dram.bank.Bank.nma_access_allowed`, so a scheduler bug that
claimed an illegal access (conditional to a non-refreshing row, random
into a busy subarray) raises :class:`~repro.errors.DramProtocolError`
instead of silently producing optimistic numbers.

This is the model the protocol-level integration tests and the
command-trace tooling drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.refresh_channel import (
    AccessKind,
    ExecutedAccess,
    WindowScheduler,
)
from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.device import DDR5_32GB, DramDeviceConfig, timings_for_device
from repro.dram.rank import Rank
from repro.dram.timing import DramTimings
from repro.errors import DramProtocolError
from repro.validation.hooks import checkpoint


@dataclass
class XfmModule:
    """One rank with an XFM side channel, advanced REF by REF."""

    device: DramDeviceConfig = DDR5_32GB
    timings: Optional[DramTimings] = None
    accesses_per_ref: int = 3
    random_per_ref: int = 1
    #: Bank the side channel targets (page stripes use the same row index
    #: in each interleaved bank; checking one bank checks them all).
    target_bank: int = 0

    rank: Rank = field(init=False)
    scheduler: WindowScheduler = field(init=False)
    #: Full command trace (REF + NMA accesses), for inspection/validation.
    commands: List[TimedCommand] = field(default_factory=list, init=False)
    _ref_index: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        timings = (
            self.timings
            if self.timings is not None
            else timings_for_device(self.device)
        )
        self.timings = timings
        self.rank = Rank(device=self.device, timings=timings)
        self.scheduler = WindowScheduler(
            refresh=self.rank.scheduler,
            accesses_per_ref=self.accesses_per_ref,
            random_per_ref=self.random_per_ref,
        )

    @property
    def now_ns(self) -> float:
        return self._ref_index * self.timings.trefi_ns

    # -- submissions ---------------------------------------------------------

    def submit_read(self, row: Optional[int], nbytes: int = 4096):
        return self.scheduler.submit(
            AccessKind.READ, row, self._ref_index, nbytes=nbytes
        )

    def submit_write(self, row: Optional[int], nbytes: int = 4096):
        return self.scheduler.submit(
            AccessKind.WRITE, row, self._ref_index, nbytes=nbytes
        )

    # -- the refresh-window step ------------------------------------------------

    def step(self, pressure: bool = False) -> List[ExecutedAccess]:
        """One tREFI: open the refresh window, execute the scheduler's
        picks under full protocol checking, close the window."""
        start = self.now_ns
        window = self.rank.begin_refresh(start)
        self.commands.append(
            TimedCommand(
                time_ns=start,
                kind=CommandKind.REF,
                rank=self.rank.index,
                row=window.rows.start,
            )
        )
        executed = self.scheduler.drain(self._ref_index, pressure=pressure)
        elapsed = 0.0
        for access in executed:
            row = access.request.row
            if row is None:
                # Placement-flexible: the allocator targets a row in this
                # window's refresh set — conditional by construction.
                row = window.rows.start
            if not self.rank.nma_access_allowed(
                self.target_bank, row, conditional=access.conditional
            ):
                raise DramProtocolError(
                    f"scheduler chose an illegal "
                    f"{'conditional' if access.conditional else 'random'} "
                    f"access to row {row} in window {self._ref_index}"
                )
            elapsed += self.device.page_stream_time_ns(
                self.timings, access.request.nbytes, first=(elapsed == 0.0)
            )
            if elapsed > self.timings.trfc_ns:
                raise DramProtocolError(
                    f"window {self._ref_index} overran tRFC: "
                    f"{elapsed:.0f} ns of accesses"
                )
            kind = (
                CommandKind.NMA_RD
                if access.request.kind is AccessKind.READ
                else CommandKind.NMA_WR
            )
            self.commands.append(
                TimedCommand(
                    time_ns=start + elapsed,
                    kind=kind,
                    rank=self.rank.index,
                    bank=self.target_bank,
                    row=row,
                )
            )
        self.rank.end_refresh(start + self.timings.trfc_ns)
        self._ref_index += 1
        checkpoint(self)
        return executed

    def run(self, num_refs: int, pressure: bool = False) -> List[ExecutedAccess]:
        """Advance ``num_refs`` windows; returns everything executed."""
        executed: List[ExecutedAccess] = []
        for _ in range(num_refs):
            executed.extend(self.step(pressure=pressure))
        return executed

    # -- host-side view --------------------------------------------------------

    def host_window_clean(self) -> bool:
        """After every window the rank must look untouched to the host:
        no refresh in progress, no rows left open."""
        return self.rank.host_accessible() and not self.rank.open_banks()
