"""Refresh-window access scheduling: XFM's transparent DRAM side channel.

XFM batches NMA accesses received during a tREFI interval and executes
them during the next tRFC, in parallel with the all-bank refresh (§4.3,
Fig. 5). Accesses are *conditional* when their target row is in the set
being refreshed (the row is open in its local row buffer anyway) and
*random* otherwise (served from a non-refreshing subarray via the Fig. 7
latches, budgeted by unused TRR slots — one per REF in the paper's
methodology).

:class:`WindowScheduler` keeps per-REF-slot buckets so each refresh window
pops its conditional matches in O(1), and serves randoms oldest-first from
a deadline heap when budget remains.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.refresh import RefreshScheduler, RefreshWindow
from repro.errors import ConfigError
from repro.telemetry import trace as _trace


class AccessKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass
class AccessRequest:
    """One pending NMA access to a rank-local row."""

    request_id: int
    kind: AccessKind
    #: Target row; None means placement-flexible (the compressed-blob
    #: writeback case: the allocator can target whatever row is being
    #: refreshed right now, making the access conditional by construction).
    row: Optional[int]
    #: REF index at which the request was enqueued.
    enqueued_ref: int
    #: Bytes moved by this access (page or blob).
    nbytes: int = 4096
    #: Bank holding the fixed-row target, or None when the request is
    #: bank-agnostic (all-bank windows serve any bank; per-bank windows
    #: serve conditional matches only in the refreshing bank).
    bank: Optional[int] = None


@dataclass
class ExecutedAccess:
    """Record of one access performed inside a refresh window."""

    request: AccessRequest
    ref_index: int
    conditional: bool

    @property
    def waited_refs(self) -> int:
        return self.ref_index - self.request.enqueued_ref


@dataclass
class WindowScheduler:
    """Batches NMA accesses and drains them through refresh windows."""

    refresh: RefreshScheduler
    #: Total NMA accesses accommodated per tRFC (Fig. 12's 1/2/3 series).
    accesses_per_ref: int = 3
    #: Of those, how many may be random (methodology: 1).
    random_per_ref: int = 1
    #: Randoms are spent on the oldest requests once they have waited this
    #: many REFs, or immediately when pressure (see :meth:`drain`) demands
    #: it. The default of 0 makes the scheduler work-conserving: conditional
    #: service is still preferred (it is tried first and costs less energy),
    #: but leftover budget is never wasted while fixed-row requests starve.
    random_age_refs: int = 0

    _slot_buckets: Dict[int, List[AccessRequest]] = field(
        default_factory=dict, init=False
    )
    _age_heap: List[Tuple[int, int, AccessRequest]] = field(
        default_factory=list, init=False
    )
    _flexible: List[AccessRequest] = field(default_factory=list, init=False)
    _done: set = field(default_factory=set, init=False)
    _next_id: int = field(default=1, init=False)
    pending_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.accesses_per_ref < 1:
            raise ConfigError("accesses_per_ref must be >= 1")
        if not 0 <= self.random_per_ref <= self.accesses_per_ref:
            raise ConfigError(
                "random_per_ref must be within [0, accesses_per_ref]"
            )

    # -- enqueue -----------------------------------------------------------

    def submit(
        self,
        kind: AccessKind,
        row: Optional[int],
        current_ref: int,
        nbytes: int = 4096,
        bank: Optional[int] = None,
    ) -> AccessRequest:
        """Queue an access; it will execute in some later refresh window."""
        request = AccessRequest(
            request_id=self._next_id,
            kind=kind,
            row=row,
            enqueued_ref=current_ref,
            nbytes=nbytes,
            bank=bank,
        )
        self._next_id += 1
        if row is None:
            self._flexible.append(request)
        else:
            slot = self.refresh.ref_slot_for_row(row)
            self._slot_buckets.setdefault(slot, []).append(request)
            heapq.heappush(
                self._age_heap,
                (request.enqueued_ref, request.request_id, request),
            )
        self.pending_count += 1
        return request

    # -- drain -------------------------------------------------------------

    def drain(
        self, ref_index: int, pressure: bool = False
    ) -> List[ExecutedAccess]:
        """Execute accesses in the ``ref_index``-th refresh window.

        Legacy entry point: builds the policy's window for ``ref_index``
        and delegates to :meth:`drain_window` (identical behavior under
        the default all-bank policy).
        """
        return self.drain_window(
            self.refresh.window(ref_index), pressure=pressure
        )

    def drain_window(
        self, window: RefreshWindow, pressure: bool = False
    ) -> List[ExecutedAccess]:
        """Execute up to the window's access budget during ``window``.

        Priority: (1) placement-flexible writebacks (conditional by
        construction), (2) row-matching conditional accesses — restricted
        to the refreshing bank when the window is per-bank, (3) random
        accesses for the oldest starving requests — always when
        ``pressure`` is set (SPM high-watermark), otherwise only past
        ``random_age_refs``. All-bank windows get the full
        ``accesses_per_ref`` budget; shorter per-bank windows get the
        policy-scaled share.
        """
        ref_index = window.ref_index
        budget = self.refresh.policy.access_budget(self.accesses_per_ref)
        random_budget = min(self.random_per_ref, budget)
        executed: List[ExecutedAccess] = []

        # (1) flexible writebacks ride the current refresh rows.
        while budget and self._flexible:
            request = self._flexible.pop(0)
            executed.append(
                ExecutedAccess(request=request, ref_index=ref_index, conditional=True)
            )
            budget -= 1

        # (2) conditional matches for this window's slot (and bank).
        slot = (
            window.slot
            if window.slot is not None
            else ref_index % self.refresh.refs_per_retention
        )
        bucket = self._slot_buckets.get(slot)
        if bucket:
            if window.bank is None:
                while budget and bucket:
                    request = bucket.pop(0)
                    self._done.add(request.request_id)
                    executed.append(
                        ExecutedAccess(
                            request=request, ref_index=ref_index, conditional=True
                        )
                    )
                    budget -= 1
            else:
                # Per-bank window: only requests in the refreshing bank
                # (or bank-agnostic ones) are conditional right now.
                position = 0
                while budget and position < len(bucket):
                    request = bucket[position]
                    if request.bank not in (None, window.bank):
                        position += 1
                        continue
                    bucket.pop(position)
                    self._done.add(request.request_id)
                    executed.append(
                        ExecutedAccess(
                            request=request, ref_index=ref_index, conditional=True
                        )
                    )
                    budget -= 1
            if not bucket:
                del self._slot_buckets[slot]

        # (3) randoms for the oldest requests, subarray conflicts avoided.
        while budget and random_budget and self._age_heap:
            enqueued_ref, _, request = self._age_heap[0]
            if request.request_id in self._done:
                heapq.heappop(self._age_heap)
                continue
            old_enough = ref_index - enqueued_ref >= self.random_age_refs
            if not (pressure or old_enough):
                break
            assert request.row is not None
            if not self.refresh.random_allowed_in_window(request.row, window):
                # Subarray conflict with a refreshing row: the reorder
                # logic defers this request to the next window.
                break
            heapq.heappop(self._age_heap)
            self._remove_from_bucket(request)
            self._done.add(request.request_id)
            executed.append(
                ExecutedAccess(
                    request=request, ref_index=ref_index, conditional=False
                )
            )
            budget -= 1
            random_budget -= 1

        self.pending_count -= len(executed)
        if executed and _trace.tracing_enabled():
            # Pure emission: the window placement decisions above are
            # unchanged whether or not a trace ring is attached.
            for access in executed:
                _trace.instant(
                    "window_access",
                    _trace.TRACK_NMA,
                    args={
                        "kind": access.request.kind.value,
                        "conditional": access.conditional,
                        "row": access.request.row,
                        "request_id": access.request.request_id,
                        "waited_refs": access.waited_refs,
                    },
                )
        return executed

    def _remove_from_bucket(self, request: AccessRequest) -> None:
        assert request.row is not None
        slot = self.refresh.ref_slot_for_row(request.row)
        bucket = self._slot_buckets.get(slot)
        if bucket and request in bucket:
            bucket.remove(request)
            if not bucket:
                del self._slot_buckets[slot]

    # -- introspection --------------------------------------------------------

    def oldest_wait_refs(self, ref_index: int) -> int:
        """Age (in REFs) of the oldest pending fixed-row request."""
        while self._age_heap and self._age_heap[0][2].request_id in self._done:
            heapq.heappop(self._age_heap)
        if not self._age_heap:
            return 0
        return ref_index - self._age_heap[0][0]
