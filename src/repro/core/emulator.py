"""Event-driven XFM emulator: the engine behind Fig. 12.

Reproduces the paper's methodology (§7): the emulator skips actual
(de)compression byte work but runs the complete offload pipeline against
the refresh-window timing model — per-rank REF cadence, conditional vs
random access budgets per tRFC, SPM reservation with the driver's lazy
upper-bound tracking, Compress_Request_Queue back-pressure, and
``CPU_Fallback`` when resources are exhausted.

Pipeline per offload (Fig. 10):

1. *arrival* — the backend reserves SPM (driver upper bound) and a CRQ
   slot; failure of either is a CPU fallback.
2. *read* — the input is fetched during a refresh window. Compression
   reads are *slot-flexible*: cold candidates vastly outnumber the access
   budget (30% of memory is cold in Google's fleet, §3.1), so the
   controller always has candidates whose rows are refreshing right now —
   conditional by construction. Decompression (prefetch) reads target the
   *fixed* rows where the blobs live: they are served conditionally when
   their refresh slot comes up, or by the budgeted random slots
   (1 per tRFC) when the scheduler has leftover budget — this is why the
   random-access rate scales with the promotion rate (Fig. 12).
3. *engine* — (de)compression runs between windows (engine throughput far
   exceeds the side channel's bandwidth, §8).
4. *writeback* — compressed blobs are placement-flexible and coalesce into
   4 KiB groups written into whatever rows are refreshing; decompressed
   pages go to freshly allocated frames, also placement-flexible.
5. *release* — SPM bytes return on writeback completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from repro._units import SECONDS_PER_MINUTE
from repro.core.refresh_channel import AccessKind, WindowScheduler
from repro.dram.device import DDR5_32GB, PAGE_SIZE, DramDeviceConfig, timings_for_device
from repro.dram.energy import AccessEnergyModel
from repro.dram.refresh import RefreshScheduler, make_refresh_policy
from repro.dram.timing import DramTimings
from repro.errors import ConfigError
from repro.sim import CLOCK as _sim_clock, EventScheduler
from repro.telemetry import reasons, trace as _trace
from repro.validation.hooks import validation_enabled


@dataclass(frozen=True)
class EmulatorConfig:
    """One Fig. 12 experiment point."""

    #: Far memory capacity across the whole system.
    sfm_capacity_bytes: float = 512e9
    #: Fraction of far memory promoted per minute (§2.1).
    promotion_rate: float = 1.0
    #: Fraction of promotions the controller offloads as prefetches; the
    #: remainder are demand faults that use the CPU path *by design* (§6)
    #: and do not count as fallbacks.
    decompress_offload_fraction: float = 0.5
    #: NMA accesses accommodated per tRFC (Fig. 12's 1 / 2 / 3 series).
    accesses_per_ref: int = 3
    #: Random accesses per tRFC (§7 methodology: 1).
    random_per_ref: int = 1
    #: ScratchPad Memory size per DIMM.
    spm_bytes: int = 8 * 1024 * 1024
    #: Compress_Request_Queue depth per DIMM.
    crq_depth: int = 512
    #: Assumed compression ratio for blob sizes.
    compression_ratio: float = 3.0
    #: System topology: ranks sharing the swap traffic.
    num_ranks: int = 8
    device: DramDeviceConfig = DDR5_32GB
    timings: Optional[DramTimings] = None
    #: SPM occupancy above which randoms fire eagerly.
    pressure_threshold: float = 0.5
    #: Simulated wall-clock per rank.
    sim_time_s: float = 0.25
    seed: int = 1234
    #: Refresh-window granulation: ``"all-bank"`` (default, §2.2) or
    #: ``"per-bank"`` (DDR5 FGR-style); None resolves the process
    #: default (the ``REPRO_REFRESH_POLICY`` environment variable).
    refresh_policy: Optional[str] = None

    def resolved_timings(self) -> DramTimings:
        return (
            self.timings
            if self.timings is not None
            else timings_for_device(self.device)
        )

    @property
    def blob_bytes(self) -> int:
        return max(64, int(PAGE_SIZE / self.compression_ratio))

    def ops_per_second_per_rank(self) -> tuple:
        """(compressions/s, offloaded decompressions/s) per rank."""
        pages_per_s = (
            self.sfm_capacity_bytes
            * self.promotion_rate
            / SECONDS_PER_MINUTE
            / PAGE_SIZE
        )
        per_rank = pages_per_s / self.num_ranks
        return per_rank, per_rank * self.decompress_offload_fraction


@dataclass
class EmulatorReport:
    """Outcome of one emulation run."""

    config: EmulatorConfig
    total_ops: int
    fallback_ops: int
    completed_ops: int
    conditional_accesses: int
    random_accesses: int
    spm_peak_bytes: int
    nma_bytes_moved: int
    sim_time_s: float
    nma_energy_j: float
    all_conditional_energy_j: float
    all_random_energy_j: float
    mean_latency_ms: float
    #: Completion-latency percentiles in ms (p50/p95/p99), empty when no
    #: op completed.
    latency_percentiles_ms: Dict[int, float] = None  # type: ignore[assignment]
    #: ``fallback_ops`` split by reason code; the same split the trace's
    #: ``cpu_fallback`` events carry, so the two reconcile exactly.
    fallback_spm_full: int = 0
    fallback_queue_full: int = 0

    @property
    def fallback_fraction(self) -> float:
        return self.fallback_ops / self.total_ops if self.total_ops else 0.0

    @property
    def random_fraction(self) -> float:
        total = self.conditional_accesses + self.random_accesses
        return self.random_accesses / total if total else 0.0

    @property
    def nma_bandwidth_bps(self) -> float:
        return self.nma_bytes_moved / self.sim_time_s

    @property
    def conditional_energy_saving(self) -> float:
        """Energy saved vs serving every access randomly (§8: ~10.1%)."""
        if self.all_random_energy_j <= 0:
            return 0.0
        return 1.0 - self.nma_energy_j / self.all_random_energy_j


@dataclass
class _Op:
    """One in-flight offload."""

    op_id: int
    is_compress: bool
    spm_reserved: int
    arrival_ref: int
    finish_ref: int = -1


class XfmEmulator:
    """Per-rank refresh-window pipeline simulator."""

    def __init__(self, config: EmulatorConfig) -> None:
        if not 0.0 < config.promotion_rate <= 1.0:
            raise ConfigError("promotion_rate must be in (0, 1]")
        self.config = config
        self.timings = config.resolved_timings()
        self.device = config.device
        self.refresh = RefreshScheduler(
            self.device,
            self.timings,
            policy=make_refresh_policy(
                config.refresh_policy, self.device, self.timings
            ),
        )
        self.scheduler = WindowScheduler(
            refresh=self.refresh,
            accesses_per_ref=config.accesses_per_ref,
            random_per_ref=config.random_per_ref,
        )
        self.energy_model = AccessEnergyModel()

    def _spawn_rngs(self) -> tuple:
        """Independent child streams derived from ``cfg.seed`` via
        ``SeedSequence.spawn`` — one per consumer (arrival sampling,
        trace offload sampling, in-simulation row draws). Reseeding
        ``default_rng(cfg.seed)`` at each site would correlate the
        streams: arrival counts and target rows would be drawn from the
        *same* sequence, coupling load to placement."""
        arrival_seq, trace_seq, sim_seq = np.random.SeedSequence(
            self.config.seed
        ).spawn(3)
        return (
            np.random.default_rng(arrival_seq),
            np.random.default_rng(trace_seq),
            np.random.default_rng(sim_seq),
        )

    def run(self) -> EmulatorReport:
        """Synthetic mode: Poisson arrivals at the promotion-rate-implied
        per-rank operation rates (the Fig. 12 methodology)."""
        cfg = self.config
        arrival_rng, _, sim_rng = self._spawn_rngs()
        trefi_s = self.timings.trefi_ns / 1e9
        num_refs = int(cfg.sim_time_s / trefi_s)
        comp_rate, decomp_rate = cfg.ops_per_second_per_rank()
        comp_arrivals = arrival_rng.poisson(comp_rate * trefi_s, num_refs)
        decomp_arrivals = arrival_rng.poisson(decomp_rate * trefi_s, num_refs)
        return self._simulate(comp_arrivals, decomp_arrivals, rng=sim_rng)

    def run_trace(self, trace, time_scale: float = 1.0) -> EmulatorReport:
        """Trace-driven mode: replay a :class:`~repro.workloads.traces.
        SwapTrace` (e.g. from the AIFM web front-end, §7).

        ``time_scale`` compresses trace time: an event at ``t`` seconds
        arrives at REF index ``t / time_scale / tREFI``. Swap-outs become
        compression offloads; the configured
        ``decompress_offload_fraction`` of swap-ins become prefetch
        decompressions (the rest are demand faults on the CPU path and
        are not emulated).
        """
        from repro.workloads.traces import SWAP_IN, SWAP_OUT

        cfg = self.config
        if time_scale <= 0:
            raise ConfigError("time_scale must be positive")
        _, trace_rng, sim_rng = self._spawn_rngs()
        trefi_s = self.timings.trefi_ns / 1e9
        if not len(trace):
            return self._simulate(
                np.zeros(1, int), np.zeros(1, int), rng=sim_rng
            )
        start = trace.events[0].time_s
        duration = max(trace.duration_s, trefi_s * time_scale)
        num_refs = int(duration / time_scale / trefi_s) + 1
        comp_arrivals = np.zeros(num_refs, dtype=int)
        decomp_arrivals = np.zeros(num_refs, dtype=int)
        for event in trace:
            ref = min(
                num_refs - 1,
                int((event.time_s - start) / time_scale / trefi_s),
            )
            if event.kind == SWAP_OUT:
                comp_arrivals[ref] += 1
            elif event.kind == SWAP_IN and (
                trace_rng.random() < cfg.decompress_offload_fraction
            ):
                decomp_arrivals[ref] += 1
        return self._simulate(comp_arrivals, decomp_arrivals, rng=sim_rng)

    def _simulate(
        self, comp_arrivals, decomp_arrivals, rng=None
    ) -> EmulatorReport:
        cfg = self.config
        if rng is None:
            rng = self._spawn_rngs()[2]
        num_refs = len(comp_arrivals)
        rows = self.device.rows_per_bank

        spm_capacity = cfg.spm_bytes
        spm_used = 0
        spm_peak = 0
        crq_used = 0

        ops: Dict[int, _Op] = {}
        next_op = 1
        #: request_id -> op ids progressed by that access.
        read_of: Dict[int, int] = {}
        write_of: Dict[int, List[int]] = {}
        #: compress blobs awaiting writeback grouping.
        flex_buffer: Deque[int] = deque()
        flex_buffer_bytes = 0

        total_ops = 0
        fallbacks = 0
        fallbacks_spm = 0
        fallbacks_queue = 0
        completed = 0
        conditional = 0
        random_count = 0
        moved_bytes = 0
        energy = 0.0
        energy_all_random = 0.0
        energy_all_conditional = 0.0
        latency_refs_sum = 0.0
        latency_samples: List[int] = []

        blob = cfg.blob_bytes
        group_limit = PAGE_SIZE
        trace_on = _trace.tracing_enabled()
        policy = self.refresh.policy
        banked = policy.windows_per_trefi > 1
        num_banks = policy.windows_per_trefi

        def inject_arrivals(ref: int) -> None:
            """Admit this tREFI interval's offload arrivals (SPM + CRQ
            admission control; either failing is a CPU fallback)."""
            nonlocal total_ops, fallbacks, fallbacks_spm, fallbacks_queue
            nonlocal spm_used, spm_peak, crq_used, next_op
            for is_compress, count in (
                (True, comp_arrivals[ref]),
                (False, decomp_arrivals[ref]),
            ):
                for _ in range(int(count)):
                    total_ops += 1
                    reserve = PAGE_SIZE  # input page or output page
                    if spm_used + reserve > spm_capacity:
                        fallbacks += 1
                        fallbacks_spm += 1
                        if trace_on:
                            _trace.fallback(
                                reasons.SPM_FULL,
                                "compress" if is_compress else "decompress",
                                ref=ref,
                            )
                        continue
                    if crq_used >= cfg.crq_depth:
                        fallbacks += 1
                        fallbacks_queue += 1
                        if trace_on:
                            _trace.fallback(
                                reasons.QUEUE_FULL,
                                "compress" if is_compress else "decompress",
                                ref=ref,
                            )
                        continue
                    spm_used += reserve
                    spm_peak = max(spm_peak, spm_used)
                    crq_used += 1
                    op = _Op(
                        op_id=next_op,
                        is_compress=is_compress,
                        spm_reserved=reserve,
                        arrival_ref=ref,
                    )
                    next_op += 1
                    ops[op.op_id] = op
                    if is_compress:
                        # Cold candidates are abundant: the controller picks
                        # one whose row is refreshing -> slot-flexible.
                        row: Optional[int] = None
                        bank: Optional[int] = None
                        nbytes = PAGE_SIZE
                    else:
                        # The blob's location is fixed.
                        row = int(rng.integers(0, rows))
                        # Per-bank windows serve fixed rows only in the
                        # refreshing bank, so the blob's bank matters;
                        # the extra draw happens only under a banked
                        # policy (the all-bank RNG stream is untouched).
                        bank = (
                            int(rng.integers(0, num_banks)) if banked else None
                        )
                        nbytes = blob
                    request = self.scheduler.submit(
                        AccessKind.READ, row, ref, nbytes=nbytes, bank=bank
                    )
                    read_of[request.request_id] = op.op_id
                    if trace_on:
                        _trace.instant(
                            "offload_enqueue",
                            _trace.TRACK_NMA,
                            args={
                                "op_id": op.op_id,
                                "kind": "compress"
                                if is_compress
                                else "decompress",
                                "request_id": request.request_id,
                            },
                        )

        last_bin = -1

        def process_window(window) -> None:
            """One refresh window fired by the event core: admit the new
            tREFI bin's arrivals (first window of the bin), drain the
            window, coalesce writebacks, checkpoint invariants — the
            exact sequence the legacy per-REF loop ran inline."""
            nonlocal last_bin, spm_used, crq_used, flex_buffer_bytes
            nonlocal completed, conditional, random_count, moved_bytes
            nonlocal energy, energy_all_random, energy_all_conditional
            nonlocal latency_refs_sum
            ref = policy.trefi_bin(window.ref_index)
            if ref != last_bin:
                last_bin = ref
                inject_arrivals(ref)
            # -- drain one refresh window ----------------------------------
            pressure = spm_used / spm_capacity >= cfg.pressure_threshold
            executed = self.scheduler.drain_window(window, pressure=pressure)
            for access in executed:
                nbytes = access.request.nbytes
                moved_bytes += nbytes
                op_energy = self.energy_model.nma_page_access_j(
                    nbytes, conditional=access.conditional
                )
                energy += op_energy
                energy_all_random += self.energy_model.nma_page_access_j(
                    nbytes, conditional=False
                )
                energy_all_conditional += self.energy_model.nma_page_access_j(
                    nbytes, conditional=True
                )
                if access.conditional:
                    conditional += 1
                else:
                    random_count += 1

                rid = access.request.request_id
                if rid in read_of:
                    # Read done -> engine (fast, §8) -> schedule writeback
                    # at the next window.
                    op = ops[read_of.pop(rid)]
                    crq_used -= 1
                    if op.is_compress:
                        flex_buffer.append(op.op_id)
                        flex_buffer_bytes += blob
                    else:
                        # The promoted page lands in a freshly allocated
                        # frame: placement-flexible writeback.
                        wreq = self.scheduler.submit(
                            AccessKind.WRITE, None, ref, nbytes=PAGE_SIZE
                        )
                        write_of[wreq.request_id] = [op.op_id]
                elif rid in write_of:
                    for op_id in write_of.pop(rid):
                        op = ops.pop(op_id)
                        spm_used -= op.spm_reserved
                        completed += 1
                        latency_refs_sum += ref - op.arrival_ref
                        latency_samples.append(ref - op.arrival_ref)
                        if trace_on:
                            _trace.instant(
                                "offload_complete",
                                _trace.TRACK_NMA,
                                args={
                                    "op_id": op_id,
                                    "kind": "compress"
                                    if op.is_compress
                                    else "decompress",
                                    "latency_refs": ref - op.arrival_ref,
                                },
                            )

            # -- coalesce compressed blobs into flexible writebacks ---------
            while flex_buffer_bytes >= group_limit or (
                flex_buffer and pressure
            ):
                group: List[int] = []
                group_bytes = 0
                while flex_buffer and group_bytes + blob <= group_limit:
                    group.append(flex_buffer.popleft())
                    group_bytes += blob
                if not group:
                    break
                flex_buffer_bytes -= group_bytes
                wreq = self.scheduler.submit(
                    AccessKind.WRITE, None, ref, nbytes=group_bytes
                )
                write_of[wreq.request_id] = group

            if validation_enabled():
                self._check_window_state(
                    spm_used=spm_used,
                    crq_used=crq_used,
                    flex_buffer=flex_buffer,
                    flex_buffer_bytes=flex_buffer_bytes,
                    ops=ops,
                    ref=ref,
                )

        # -- event loop: windows arrive as scheduled events --------------
        # The refresh policy publishes its window stream onto the shared
        # discrete-event core; the NMA side consumes windows as they
        # fire instead of deriving them arithmetically. The clock scope
        # keeps the emulator's borrowed timeline from leaking into the
        # caller's (simulation runs are nestable like replays).
        horizon_ns = num_refs * self.timings.trefi_ns
        with _sim_clock.scoped(start_ns=0.0):
            events = EventScheduler(clock=_sim_clock)
            self.refresh.schedule_windows(events, horizon_ns, process_window)
            events.run()

        # Flush: remaining in-flight ops are neither fallbacks nor
        # completions; exclude them from latency statistics.
        mean_latency_ms = (
            latency_refs_sum * (self.timings.trefi_ns / 1e6) / completed
            if completed
            else 0.0
        )
        percentiles: Dict[int, float] = {}
        if latency_samples:
            refs_to_ms = self.timings.trefi_ns / 1e6
            for percentile in (50, 95, 99):
                percentiles[percentile] = float(
                    np.percentile(latency_samples, percentile) * refs_to_ms
                )
        return EmulatorReport(
            config=cfg,
            total_ops=total_ops,
            fallback_ops=fallbacks,
            completed_ops=completed,
            conditional_accesses=conditional,
            random_accesses=random_count,
            spm_peak_bytes=spm_peak,
            nma_bytes_moved=moved_bytes,
            sim_time_s=num_refs * (self.timings.trefi_ns / 1e9),
            nma_energy_j=energy,
            all_conditional_energy_j=energy_all_conditional,
            all_random_energy_j=energy_all_random,
            mean_latency_ms=mean_latency_ms,
            latency_percentiles_ms=percentiles,
            fallback_spm_full=fallbacks_spm,
            fallback_queue_full=fallbacks_queue,
        )

    def _check_window_state(
        self,
        spm_used: int,
        crq_used: int,
        flex_buffer,
        flex_buffer_bytes: int,
        ops,
        ref: int,
    ) -> None:
        """Per-window resource-accounting invariants (validation mode).

        The SPM/CRQ counters are the emulator's whole resource model —
        a drift here silently shifts every fallback curve in Fig. 12.
        """
        from repro.validation.invariants import InvariantViolation

        cfg = self.config
        if not 0 <= spm_used <= cfg.spm_bytes:
            raise InvariantViolation(
                f"emulator: SPM occupancy {spm_used} outside "
                f"[0, {cfg.spm_bytes}] at REF {ref}"
            )
        if not 0 <= crq_used <= cfg.crq_depth:
            raise InvariantViolation(
                f"emulator: CRQ occupancy {crq_used} outside "
                f"[0, {cfg.crq_depth}] at REF {ref}"
            )
        if flex_buffer_bytes != len(flex_buffer) * cfg.blob_bytes:
            raise InvariantViolation(
                f"emulator: flex buffer accounts {flex_buffer_bytes} bytes "
                f"for {len(flex_buffer)} blobs of {cfg.blob_bytes} at "
                f"REF {ref}"
            )
        reserved = sum(op.spm_reserved for op in ops.values())
        if reserved != spm_used:
            raise InvariantViolation(
                f"emulator: in-flight ops reserve {reserved} bytes but "
                f"SPM counter says {spm_used} at REF {ref}"
            )


def fallback_sweep(
    spm_sizes_mib=(1, 2, 4, 8),
    accesses_per_ref=(1, 2, 3),
    promotion_rate: float = 1.0,
    **overrides,
) -> List[EmulatorReport]:
    """Run the Fig. 12 grid and return one report per point."""
    reports = []
    for spm_mib in spm_sizes_mib:
        for budget in accesses_per_ref:
            config = EmulatorConfig(
                promotion_rate=promotion_rate,
                spm_bytes=int(spm_mib * 1024 * 1024),
                accesses_per_ref=budget,
                **overrides,
            )
            reports.append(XfmEmulator(config).run())
    return reports
