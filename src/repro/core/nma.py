"""Near-memory accelerator (NMA): request queue, engines, scratchpad.

The NMA sits in the DIMM's buffer device (RCD, §4.1) and contains a
Compress_Request_Queue fed by MMIO doorbells, compression and decompression
engines, and the ScratchPad Memory. Engine throughputs default to the
paper's memory-customized accelerator (14.8 / 17.2 GBps, §7); the FPGA
prototype's open-source Deflate core (1.4 / 1.7 GBps, §8) is available as
:data:`FPGA_PROTOTYPE`.

Two usage modes:

* **functional** — :meth:`NearMemoryAccelerator.compress_page` /
  :meth:`decompress_blob` run a real codec on real bytes (used by the
  XFM backend so swap contents stay verifiable);
* **timed** — :meth:`advance` moves PENDING scratchpad entries to
  COMPLETED according to engine throughput (used by the emulator).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.compression.base import Codec
from repro.compression.deflate import DeflateCodec
from repro.core.registers import RegisterFile, Registers
from repro.core.spm import ScratchpadMemory, SpmEntry, SpmTag
from repro.errors import ConfigError, DeviceFault, QueueFullError
from repro.resilience import faults as _faults
from repro.validation.hooks import checkpoint

FPGA_PROTOTYPE_COMPRESS_GBPS = 1.4
FPGA_PROTOTYPE_DECOMPRESS_GBPS = 1.7


@dataclass(frozen=True)
class NmaConfig:
    """Static configuration of one DIMM's accelerator."""

    compress_gbps: float = 14.8
    decompress_gbps: float = 17.2
    spm_bytes: int = 2 * 1024 * 1024
    crq_depth: int = 64

    def __post_init__(self) -> None:
        if self.compress_gbps <= 0 or self.decompress_gbps <= 0:
            raise ConfigError("engine throughputs must be positive")
        if self.crq_depth < 1:
            raise ConfigError("CRQ depth must be >= 1")

    def compress_time_ns(self, nbytes: int) -> float:
        return nbytes / self.compress_gbps

    def decompress_time_ns(self, nbytes: int) -> float:
        return nbytes / self.decompress_gbps


#: The paper's FPGA proof-of-concept engine speeds (Table 2 discussion).
FPGA_PROTOTYPE = NmaConfig(
    compress_gbps=FPGA_PROTOTYPE_COMPRESS_GBPS,
    decompress_gbps=FPGA_PROTOTYPE_DECOMPRESS_GBPS,
)


@dataclass
class OffloadRequest:
    """One entry in the Compress_Request_Queue."""

    request_id: int
    is_compress: bool
    #: DRAM row holding the input (page to compress / blob to decompress).
    source_row: int
    #: DRAM row for the output; None = allocator-flexible placement.
    dest_row: Optional[int]
    input_bytes: int


class NearMemoryAccelerator:
    """One DIMM's near-memory (de)compression accelerator."""

    def __init__(
        self,
        config: NmaConfig = NmaConfig(),
        codec: Optional[Codec] = None,
        registers: Optional[RegisterFile] = None,
    ) -> None:
        self.config = config
        self.codec = codec if codec is not None else DeflateCodec()
        self.registers = registers if registers is not None else RegisterFile()
        self.spm = ScratchpadMemory(config.spm_bytes)
        self._queue: Deque[OffloadRequest] = deque()
        self._next_id = 1
        #: Engine-nanoseconds of PENDING work left per entry id.
        self._work_left_ns: dict = {}
        self.completed_ops = 0
        #: Completions the device lost (injected ``nma.drop_completion``
        #: faults); the entry stays PENDING and finishes on a later
        #: advance — observable as a stall, never as corruption.
        self.dropped_completions = 0
        self._sync_registers()

    # -- Compress_Request_Queue -----------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def queue_free_slots(self) -> int:
        return self.config.crq_depth - len(self._queue)

    def submit(
        self,
        is_compress: bool,
        source_row: int,
        dest_row: Optional[int],
        input_bytes: int,
    ) -> OffloadRequest:
        """Push an offload into the CRQ (the MMIO-write path of
        ``xfm_compress``/``xfm_decompress``)."""
        if not self.queue_free_slots():
            raise QueueFullError(
                f"Compress_Request_Queue full ({self.config.crq_depth})"
            )
        request = OffloadRequest(
            request_id=self._next_id,
            is_compress=is_compress,
            source_row=source_row,
            dest_row=dest_row,
            input_bytes=input_bytes,
        )
        self._next_id += 1
        self._queue.append(request)
        self._sync_registers()
        return request

    def pop_request(self) -> Optional[OffloadRequest]:
        """Device side: consume the next queued offload (on a window read)."""
        if not self._queue:
            return None
        request = self._queue.popleft()
        self._sync_registers()
        return request

    # -- timed engine model -------------------------------------------------------

    def stage_input(self, request: OffloadRequest) -> SpmEntry:
        """Place a request's input into the SPM as PENDING work."""
        entry = self.spm.admit(
            request.input_bytes, writeback_row=request.dest_row
        )
        time_ns = (
            self.config.compress_time_ns(request.input_bytes)
            if request.is_compress
            else self.config.decompress_time_ns(request.input_bytes)
        )
        self._work_left_ns[entry.entry_id] = time_ns
        self._sync_registers()
        return entry

    def advance(self, dt_ns: float, output_bytes_of=None) -> List[SpmEntry]:
        """Run the engines for ``dt_ns``; returns entries that COMPLETED.

        ``output_bytes_of(entry)`` maps a finishing entry to its output
        size (compressed blob size or 4 KiB page); defaults to keeping the
        reservation unchanged.
        """
        completed: List[SpmEntry] = []
        budget = dt_ns
        # Engines are pipelined per entry; process oldest-first.
        for entry in self.spm.entries(SpmTag.PENDING):
            if budget <= 0:
                break
            left = self._work_left_ns.get(entry.entry_id, 0.0)
            spend = min(left, budget)
            left -= spend
            budget -= spend
            if left <= 1e-9:
                if _faults.injection_enabled():
                    event = _faults.fire(_faults.NMA_DROP_COMPLETION)
                    if event is not None:
                        # Completion lost: leave the entry PENDING with
                        # no residual work so the next advance retires it.
                        self.dropped_completions += 1
                        self._work_left_ns[entry.entry_id] = 0.0
                        continue
                del self._work_left_ns[entry.entry_id]
                out = (
                    output_bytes_of(entry) if output_bytes_of else None
                )
                self.spm.complete(entry.entry_id, output_bytes=out)
                completed.append(entry)
                self.completed_ops += 1
            else:
                self._work_left_ns[entry.entry_id] = left
        self._sync_registers()
        return completed

    def release(self, entry_id: int) -> None:
        """Free an SPM entry after writeback."""
        self.spm.release(entry_id)
        self._sync_registers()

    # -- functional mode ---------------------------------------------------------

    def compress_page(self, data: bytes) -> bytes:
        """Run the real codec on real bytes (functional backend path).

        Raises :class:`~repro.errors.DeviceFault` when the injected
        ``nma.timeout`` site fires — the engine stalled past its
        deadline; the caller retries or falls back to the CPU.
        """
        if _faults.injection_enabled():
            event = _faults.fire(_faults.NMA_TIMEOUT)
            if event is not None:
                raise DeviceFault("NMA compress engine stalled (timeout)")
        return self.codec.compress(data)

    def decompress_blob(self, blob: bytes) -> bytes:
        if _faults.injection_enabled():
            event = _faults.fire(_faults.NMA_TIMEOUT)
            if event is not None:
                raise DeviceFault("NMA decompress engine stalled (timeout)")
        return self.codec.decompress(blob)

    # -- register mirror -----------------------------------------------------------

    def _sync_registers(self) -> None:
        self.registers.device_set(Registers.SP_CAPACITY, self.spm.free_bytes)
        self.registers.device_set(Registers.CRQ_FREE, self.queue_free_slots())
        self.registers.device_set(Registers.CRQ_HEAD, self._next_id - len(self._queue) - 1)
        status = 0
        if not self._work_left_ns:
            status |= 0x1
        if self.spm.entries(SpmTag.COMPLETED):
            status |= 0x2
        self.registers.device_set(Registers.STATUS, status)
        checkpoint(self)
