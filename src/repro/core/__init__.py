"""XFM core: the paper's primary contribution (systems S7–S8).

The pieces mirror §4–§6 of the paper:

* :mod:`~repro.core.registers` — the MMIO register file the driver talks to
  (``SP_Capacity_Register``, the ``Compress_Request_Queue`` doorbells, SFM
  region configuration).
* :mod:`~repro.core.spm` — the ScratchPad Memory staging buffer with
  PENDING/COMPLETED entry tags.
* :mod:`~repro.core.nma` — the near-memory accelerator: request queue,
  (de)compression engines, SPM.
* :mod:`~repro.core.refresh_channel` — the refresh-window access scheduler:
  conditional vs random access classification, per-tRFC budgets, subarray
  conflict avoidance.
* :mod:`~repro.core.driver` — the host-side XFM_Driver (ioctl/MMIO shim).
* :mod:`~repro.core.backend` — the XFM_Backend (``xfm_swap_in/out`` with
  ``CPU_Fallback``), a drop-in for the baseline SFM backend.
* :mod:`~repro.core.multichannel` — multi-channel mode data layout (Fig. 8/9).
* :mod:`~repro.core.emulator` — the event-driven emulator behind Fig. 12.
"""

from repro.core.backend import XfmBackend
from repro.core.driver import XfmDriver
from repro.core.emulator import EmulatorConfig, EmulatorReport, XfmEmulator
from repro.core.multichannel import MultiChannelLayout, MultiChannelReport
from repro.core.nma import NearMemoryAccelerator, NmaConfig
from repro.core.refresh_channel import AccessKind, AccessRequest, WindowScheduler
from repro.core.registers import RegisterFile, Registers
from repro.core.spm import ScratchpadMemory, SpmTag
from repro.core.system import MultiChannelXfmBackend, XfmDimm
from repro.core.xfm_module import XfmModule

__all__ = [
    "AccessKind",
    "AccessRequest",
    "EmulatorConfig",
    "EmulatorReport",
    "MultiChannelLayout",
    "MultiChannelReport",
    "MultiChannelXfmBackend",
    "NearMemoryAccelerator",
    "NmaConfig",
    "RegisterFile",
    "Registers",
    "ScratchpadMemory",
    "SpmTag",
    "WindowScheduler",
    "XfmBackend",
    "XfmDimm",
    "XfmDriver",
    "XfmEmulator",
    "XfmModule",
]
