"""Multi-channel mode: compressed data layout across interleaved DIMMs.

Commodity servers interleave physical addresses across channels at 256 B
granularity, so the bytes of one 4 KiB page land on several DIMMs and each
DIMM's NMA only ever sees its own stripe (§6, Fig. 9). XFM therefore
compresses the *reordered* per-DIMM byte streams independently (shrinking
the effective compression window from 4 KiB to 4 KiB / #DIMMs) and places
every page's compressed output at the same offset in each DIMM's SFM
region, trading internal fragmentation (the slot must fit the largest
segment) for a layout the host can address without DIMM-side translation.

This module measures both effects on real codecs — Fig. 8's ratio-vs-DIMMs
curves and §8's 5% / 14% memory-savings reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.compression.base import Codec
from repro.compression.deflate import DeflateCodec
from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


def default_codec_factory(window_size: int) -> Codec:
    """Deflate with the given window — the accelerator's algorithm."""
    return DeflateCodec(window_size=max(256, window_size))


@dataclass(frozen=True)
class CompressedPage:
    """One page compressed in multi-channel mode."""

    segments: tuple
    original_len: int

    @property
    def num_dimms(self) -> int:
        return len(self.segments)

    @property
    def payload_bytes(self) -> int:
        """Sum of per-DIMM compressed segment sizes."""
        return sum(len(segment) for segment in self.segments)

    @property
    def stored_bytes(self) -> int:
        """Bytes actually consumed under same-offset placement: every DIMM
        advances its allocation cursor by the *largest* segment (§6)."""
        return max(len(segment) for segment in self.segments) * len(
            self.segments
        )

    @property
    def fragmentation_bytes(self) -> int:
        return self.stored_bytes - self.payload_bytes


class MultiChannelLayout:
    """Split/compress/gather pages for an N-DIMM interleaved system."""

    def __init__(
        self,
        num_dimms: int = 4,
        interleave_bytes: int = 256,
        codec_factory: Callable[[int], Codec] = default_codec_factory,
        page_size: int = PAGE_SIZE,
    ) -> None:
        if num_dimms < 1:
            raise ConfigError("num_dimms must be >= 1")
        if page_size % (num_dimms * interleave_bytes):
            raise ConfigError(
                f"page size {page_size} must divide evenly into "
                f"{num_dimms} x {interleave_bytes} B stripes"
            )
        self.num_dimms = num_dimms
        self.interleave_bytes = interleave_bytes
        self.page_size = page_size
        self.window_size = page_size // num_dimms
        self._codec = codec_factory(self.window_size)

    # -- stripe split / gather ------------------------------------------------

    def split(self, data: bytes) -> List[bytes]:
        """Round-robin 256 B chunks onto the DIMMs (the hardware layout)."""
        if len(data) != self.page_size:
            raise ConfigError(
                f"expected a {self.page_size}-byte page, got {len(data)}"
            )
        streams: List[bytearray] = [bytearray() for _ in range(self.num_dimms)]
        for index in range(0, len(data), self.interleave_bytes):
            dimm = (index // self.interleave_bytes) % self.num_dimms
            streams[dimm] += data[index : index + self.interleave_bytes]
        return [bytes(stream) for stream in streams]

    def gather(self, streams: Sequence[bytes]) -> bytes:
        """Inverse of :meth:`split` — the CPU_Fallback decompress path's
        gather step (Fig. 9b), done here without extra staging copies."""
        if len(streams) != self.num_dimms:
            raise ConfigError(
                f"expected {self.num_dimms} streams, got {len(streams)}"
            )
        out = bytearray(self.page_size)
        chunks_per_dimm = self.page_size // (
            self.interleave_bytes * self.num_dimms
        )
        for dimm, stream in enumerate(streams):
            if len(stream) != chunks_per_dimm * self.interleave_bytes:
                raise ConfigError("stream length mismatch")
            for chunk in range(chunks_per_dimm):
                src = chunk * self.interleave_bytes
                dst = (
                    chunk * self.num_dimms + dimm
                ) * self.interleave_bytes
                out[dst : dst + self.interleave_bytes] = stream[
                    src : src + self.interleave_bytes
                ]
        return bytes(out)

    # -- compression ---------------------------------------------------------------

    def compress_page(self, data: bytes) -> CompressedPage:
        """Compress each DIMM's stripe independently."""
        return CompressedPage(
            segments=tuple(
                self._codec.compress(stream) for stream in self.split(data)
            ),
            original_len=len(data),
        )

    def decompress_page(self, page: CompressedPage) -> bytes:
        """Decompress all stripes and re-interleave."""
        if page.num_dimms != self.num_dimms:
            raise ConfigError("compressed page is for a different layout")
        return self.gather(
            [self._codec.decompress(segment) for segment in page.segments]
        )


@dataclass
class MultiChannelReport:
    """Aggregated Fig. 8 measurements for one corpus."""

    corpus: str
    pages: int
    #: DIMM count -> compression ratio including placement fragmentation.
    stored_ratio: Dict[int, float]
    #: DIMM count -> ratio on payload bytes only (pure window effect).
    payload_ratio: Dict[int, float]

    def savings(self, num_dimms: int) -> float:
        """Space savings fraction under same-offset placement."""
        return 1.0 - 1.0 / self.stored_ratio[num_dimms]

    def savings_reduction_vs_inorder(self, num_dimms: int) -> float:
        """Relative memory-savings loss vs the 1-DIMM in-order layout —
        the 5% / 14% numbers §8 reports for 2 / 4 channels."""
        base = self.savings(1)
        if base <= 0:
            return 0.0
        return 1.0 - self.savings(num_dimms) / base

    def ratio_retention(self, num_dimms: int) -> float:
        """Fraction of the in-order compression ratio retained (86.2%
        average at 4 DIMMs in §6)."""
        return self.stored_ratio[num_dimms] / self.stored_ratio[1]


def measure_corpus(
    corpus: str,
    pages: Sequence[bytes],
    dimm_counts: Sequence[int] = (1, 2, 4),
    codec_factory: Callable[[int], Codec] = default_codec_factory,
    interleave_bytes: int = 256,
    verify: bool = False,
) -> MultiChannelReport:
    """Compress ``pages`` under each DIMM configuration and report ratios."""
    stored: Dict[int, float] = {}
    payload: Dict[int, float] = {}
    for num_dimms in dimm_counts:
        layout = MultiChannelLayout(
            num_dimms=num_dimms,
            interleave_bytes=interleave_bytes,
            codec_factory=codec_factory,
        )
        total_in = 0
        total_stored = 0
        total_payload = 0
        for data in pages:
            compressed = layout.compress_page(data)
            if verify and layout.decompress_page(compressed) != data:
                raise ConfigError("multi-channel round trip failed")
            total_in += compressed.original_len
            total_stored += compressed.stored_bytes
            total_payload += compressed.payload_bytes
        stored[num_dimms] = total_in / total_stored
        payload[num_dimms] = total_in / total_payload
    return MultiChannelReport(
        corpus=corpus, pages=len(pages), stored_ratio=stored,
        payload_ratio=payload,
    )
