"""Multi-DIMM XFM system: multi-channel mode in the functional stack.

Assembles what §6's "Multi-Channel Mode" describes as a working backend:
one XFM DIMM (NMA + driver + per-DIMM SFM region) per channel, pages
striped across them at the 256 B interleave, each DIMM's NMA compressing
its own stripe, and compressed segments placed at the *same offset* in
every DIMM's region (the design that avoids DIMM-side address
translation, at the price of internal fragmentation).

This is the functional counterpart of
:mod:`repro.core.multichannel`'s measurement path: contents really round-
trip through per-DIMM zpools, fragmentation really occupies slots, and the
gather-decompress CPU_Fallback path is exercised for demand faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compression.base import Codec, batch_stats
from repro.core.driver import XfmDriver
from repro.resilience import faults as _faults
from repro.core.multichannel import MultiChannelLayout
from repro.core.nma import NearMemoryAccelerator, NmaConfig
from repro.errors import (
    ConfigError,
    DeviceFault,
    QueueFullError,
    SfmError,
    SpmFullError,
    ZpoolFullError,
)
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.tiering.protocol import SwapOutcome
from repro.sfm.page import PAGE_SIZE, Page
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool
from repro.telemetry import reasons, trace as _trace
from repro.telemetry.registry import MetricsRegistry


@dataclass
class XfmDimm:
    """One channel's XFM-enabled DIMM: NMA, driver, and SFM region."""

    index: int
    nma: NearMemoryAccelerator
    driver: XfmDriver
    region: Zpool

    @classmethod
    def build(
        cls,
        index: int,
        region_bytes: int,
        nma_config: NmaConfig,
        codec: Codec,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, object]] = None,
    ) -> "XfmDimm":
        nma = NearMemoryAccelerator(nma_config, codec=codec)
        # Per-DIMM driver counters share the System registry, labelled
        # by DIMM index so the series stay distinguishable.
        driver_labels = {"dimm": index}
        if labels:
            driver_labels.update(labels)
        driver = XfmDriver(nma, registry=registry, labels=driver_labels)
        driver.xfm_paramset(sfm_base=index << 40, sfm_size=region_bytes)
        return cls(
            index=index,
            nma=nma,
            driver=driver,
            region=Zpool(region_bytes),
        )


@dataclass(frozen=True)
class _StripeEntry:
    """Index record for one page striped across all DIMMs."""

    handles: tuple
    segment_lengths: tuple

    @property
    def slot_bytes(self) -> int:
        """Same-offset placement: every DIMM's cursor advances by the
        largest segment (§6)."""
        return max(self.segment_lengths) * len(self.segment_lengths)


class MultiChannelXfmBackend:
    """Far-memory backend striping pages across N XFM DIMMs."""

    max_stored_fraction = 0.9

    def __init__(
        self,
        capacity_bytes: int,
        num_dimms: int = 4,
        interleave_bytes: int = 256,
        nma_config: Optional[NmaConfig] = None,
        cpu_freq_hz: float = 2.6e9,
        registry: Optional[MetricsRegistry] = None,
        ledger: Optional[BandwidthLedger] = None,
        tier: Optional[str] = None,
    ) -> None:
        if num_dimms < 1:
            raise ConfigError("need at least one DIMM")
        if capacity_bytes % num_dimms:
            raise ConfigError("capacity must divide evenly across DIMMs")
        self.layout = MultiChannelLayout(
            num_dimms=num_dimms, interleave_bytes=interleave_bytes
        )
        config = nma_config if nma_config is not None else NmaConfig()
        # Each DIMM's NMA compresses with the per-DIMM window (Fig. 9b).
        from repro.compression.deflate import DeflateCodec

        self._codec_window = max(256, PAGE_SIZE // num_dimms)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tier_name = tier if tier is not None else "xfm-mc"
        labels = {"tier": tier} if tier is not None else {}
        self.dimms: List[XfmDimm] = [
            XfmDimm.build(
                index=i,
                region_bytes=capacity_bytes // num_dimms,
                nma_config=config,
                codec=DeflateCodec(window_size=self._codec_window),
                registry=self.registry,
                labels=labels,
            )
            for i in range(num_dimms)
        ]
        self.index = RedBlackTree()
        self.stats = SwapStats(registry=self.registry, labels=labels)
        self.ledger = ledger if ledger is not None else BandwidthLedger()
        self.cpu_freq_hz = cpu_freq_hz
        #: Internal fragmentation accumulated by same-offset placement.
        self.fragmentation_bytes = 0

    @property
    def num_dimms(self) -> int:
        return len(self.dimms)

    @property
    def capacity_bytes(self) -> int:
        return sum(dimm.region.capacity_bytes for dimm in self.dimms)

    def stored_pages(self) -> int:
        return len(self.index)

    def used_bytes(self) -> int:
        """Slab footprint summed across every DIMM's region."""
        return sum(
            dimm.region.used_slabs() * dimm.region.slab_size
            for dimm in self.dimms
        )

    def effective_bytes_freed(self) -> int:
        """Resident bytes released minus pool footprint consumed."""
        return self.stored_pages() * PAGE_SIZE - self.used_bytes()

    def contains(self, vaddr: int) -> bool:
        return vaddr in self.index

    # -- swap-out: scatter + per-DIMM offload ---------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Stripe the page, offload each stripe to its DIMM's NMA, and
        place all segments at the same region offset."""
        if page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} already swapped")
        if page.data is None:
            raise SfmError(f"page 0x{page.vaddr:x} has no resident data")

        stripes = self.layout.split(page.data)
        # All stripes compress under the same codec config, so they run
        # as ONE batched call (shared tokenizer working set, warm table
        # caches) — the per-DIMM device model below still accounts each
        # stripe's offload individually. Compression is pure, so the
        # blobs are bit-identical to per-stripe calls. Fault-injection
        # runs fire per-NMA inside compress_page, so batching is only
        # taken when injection is off (the hot path).
        precomputed: Optional[List[bytes]] = None
        if not _faults.injection_enabled():
            precomputed = self.dimms[0].nma.codec.compress_batch(stripes)
            batch_stats.record_site("multichannel", len(stripes))
        segments: List[bytes] = []
        for stripe_index, (dimm, stripe) in enumerate(
            zip(self.dimms, stripes)
        ):
            try:
                dimm.driver.submit_compress(
                    source_row=page.vaddr >> 13, input_bytes=len(stripe)
                )
                dimm.nma.pop_request()
                segments.append(
                    precomputed[stripe_index]
                    if precomputed is not None
                    else dimm.nma.compress_page(stripe)
                )
                self.ledger.record("nma", "read", len(stripe))
                dimm.driver.notify_release(len(stripe))
            except (SpmFullError, QueueFullError, DeviceFault) as exc:
                # CPU fallback for this stripe (rare; accounted as host
                # work + channel traffic).
                self.stats.cpu_fallback_compressions += 1
                if isinstance(exc, DeviceFault):
                    self.stats.device_faults += 1
                    self.stats.fallbacks_device_fault += 1
                    reason = reasons.DEVICE_FAULT
                elif isinstance(exc, SpmFullError):
                    self.stats.fallbacks_spm_full += 1
                    reason = reasons.SPM_FULL
                else:
                    self.stats.fallbacks_queue_full += 1
                    reason = reasons.QUEUE_FULL
                if _trace.tracing_enabled():
                    _trace.fallback(
                        reason, "compress", vaddr=page.vaddr, dimm=dimm.index
                    )
                codec = dimm.nma.codec
                segments.append(
                    precomputed[stripe_index]
                    if precomputed is not None
                    else codec.compress(stripe)
                )
                self.stats.cpu_compress_cycles += (
                    codec.spec.compress_cycles_per_byte * len(stripe)
                )
                self.ledger.record("sfm_cpu", "read", len(stripe))

        slot = max(len(segment) for segment in segments)
        if slot * self.num_dimms > int(PAGE_SIZE * self.max_stored_fraction):
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="incompressible")

        handles: List[int] = []
        try:
            for dimm, segment in zip(self.dimms, segments):
                # Same-offset placement: reserve the full slot on every
                # DIMM; the segment occupies its prefix.
                padded = segment + bytes(slot - len(segment))
                handles.append(dimm.region.store(padded))
                self.ledger.record("nma", "write", len(segment))
        except ZpoolFullError:
            for dimm, handle in zip(self.dimms, handles):
                dimm.region.free(handle)
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="pool-full")

        entry = _StripeEntry(
            handles=tuple(handles),
            segment_lengths=tuple(len(s) for s in segments),
        )
        self.fragmentation_bytes += entry.slot_bytes - sum(
            entry.segment_lengths
        )
        self.index.insert(page.vaddr, entry)
        page.swapped = True
        page.data = None
        self.stats.swap_outs += 1
        self.stats.offloaded_compressions += 1
        self.stats.bytes_out_uncompressed += PAGE_SIZE
        self.stats.bytes_out_compressed += sum(entry.segment_lengths)
        return SwapOutcome(
            accepted=True, compressed_len=sum(entry.segment_lengths)
        )

    # -- swap-in: gather-decompress (CPU_Fallback of Fig. 9b) -------------------

    def swap_in(self, page: Page, do_offload: bool = False) -> bytes:
        """Promote a striped page: decompress each DIMM's segment and
        re-interleave. ``do_offload`` routes decompression through the
        NMAs; the default is the host gather path."""
        if not page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} is not in far memory")
        entry: _StripeEntry = self.index.lookup(page.vaddr)
        stripes: List[bytes] = []
        if not do_offload:
            # Host gather path: every stripe decodes on the CPU with the
            # same codec, so the decode runs as one batched call; the
            # per-stripe accounting below is unchanged.
            blobs = [
                dimm.region.load(handle)[:length]
                for dimm, handle, length in zip(
                    self.dimms, entry.handles, entry.segment_lengths
                )
            ]
            stripes = self.dimms[0].nma.codec.decompress_batch(blobs)
            batch_stats.record_site("multichannel", len(blobs))
            for dimm, length in zip(self.dimms, entry.segment_lengths):
                codec = dimm.nma.codec
                self.stats.cpu_decompress_cycles += (
                    codec.spec.decompress_cycles_per_byte * length
                )
                self.ledger.record("sfm_cpu", "read", length)
                self.stats.cpu_fallback_decompressions += 1
                self.stats.fallbacks_demand += 1
                if _trace.tracing_enabled():
                    _trace.fallback(
                        reasons.DEMAND_FAULT,
                        "decompress",
                        vaddr=page.vaddr,
                        dimm=dimm.index,
                    )
        else:
            for dimm, handle, length in zip(
                self.dimms, entry.handles, entry.segment_lengths
            ):
                blob = dimm.region.load(handle)[:length]
                try:
                    stripes.append(dimm.nma.decompress_blob(blob))
                except DeviceFault:
                    # Stalled engine: this stripe decodes on the host.
                    self.stats.device_faults += 1
                    self.stats.cpu_fallback_decompressions += 1
                    self.stats.fallbacks_device_fault += 1
                    if _trace.tracing_enabled():
                        _trace.fallback(
                            reasons.DEVICE_FAULT,
                            "decompress",
                            vaddr=page.vaddr,
                            dimm=dimm.index,
                        )
                    stripes.append(dimm.nma.codec.decompress(blob))
                    self.stats.cpu_decompress_cycles += (
                        dimm.nma.codec.spec.decompress_cycles_per_byte
                        * length
                    )
                    self.ledger.record("sfm_cpu", "read", length)
                    continue
                self.ledger.record("nma", "read", length)
                self.ledger.record(
                    "nma", "write", PAGE_SIZE // self.num_dimms
                )
                self.stats.offloaded_decompressions += 1
        data = self.layout.gather(stripes)
        if not do_offload:
            self.ledger.record("sfm_cpu", "write", PAGE_SIZE)
        for dimm, handle in zip(self.dimms, entry.handles):
            dimm.region.free(handle)
        self.fragmentation_bytes -= entry.slot_bytes - sum(
            entry.segment_lengths
        )
        self.index.delete(page.vaddr)
        page.swapped = False
        page.data = data
        self.stats.swap_ins += 1
        self.stats.bytes_in_uncompressed += PAGE_SIZE
        self.stats.bytes_in_compressed += sum(entry.segment_lengths)
        return data

    def promote(self, page: Page) -> bytes:
        """Prefetch-style promotion: route decompression through the NMAs."""
        return self.swap_in(page, do_offload=True)

    def invalidate(self, vaddr: int) -> bool:
        """Free every DIMM's segment of a striped page without the
        gather-decompress (swap-slot-freed path)."""
        if vaddr not in self.index:
            return False
        entry: _StripeEntry = self.index.lookup(vaddr)
        for dimm, handle in zip(self.dimms, entry.handles):
            dimm.region.free(handle)
        self.fragmentation_bytes -= entry.slot_bytes - sum(
            entry.segment_lengths
        )
        self.index.delete(vaddr)
        return True

    # -- accounting --------------------------------------------------------------

    def per_dimm_occupancy(self) -> Dict[int, float]:
        return {dimm.index: dimm.region.occupancy() for dimm in self.dimms}

    def effective_ratio(self) -> float:
        """Compression ratio including same-offset slot fragmentation."""
        stored = sum(
            dimm.region.stored_bytes() for dimm in self.dimms
        )
        if not stored:
            return 0.0
        return self.stored_pages() * PAGE_SIZE / stored

    def compact(self) -> int:
        moved = 0
        for dimm in self.dimms:
            moved += dimm.region.compact()
        self.ledger.record("sfm_cpu", "read", moved)
        self.ledger.record("sfm_cpu", "write", moved)
        return moved

    def swap_latency_s(self, direction: str) -> float:
        """Single-stripe host (de)compression latency — the per-DIMM
        window codec over one stripe, at the host clock."""
        spec = self.dimms[0].nma.codec.spec
        stripe = PAGE_SIZE // self.num_dimms
        if direction == "out":
            cycles = spec.compress_cycles_per_byte * stripe
        elif direction == "in":
            cycles = spec.decompress_cycles_per_byte * stripe
        else:
            raise ConfigError(f"direction must be in/out, got {direction}")
        return cycles / self.cpu_freq_hz
