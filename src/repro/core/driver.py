"""XFM_Driver: the host-side kernel-driver shim (§6).

The driver exposes the DIMM through ioctl-style primitives over MMIO:
``xfm_paramset`` programs the SFM region, ``submit_compress`` /
``submit_decompress`` push offloads into the Compress_Request_Queue, and
the SPM occupancy is tracked *lazily*: the driver keeps an upper bound on
consumed scratchpad bytes and only reads ``SP_Capacity_Register`` when that
bound says the SPM might be full. If the register confirms exhaustion, the
call raises and the backend runs ``CPU_Fallback``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.nma import NearMemoryAccelerator, OffloadRequest
from repro.core.registers import Registers
from repro.errors import (
    ConfigError,
    DeviceFault,
    QueueFullError,
    SpmFullError,
)
from repro.resilience import faults as _faults
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import StatsFacade

IOCTL_PARAMSET = 0x5801
IOCTL_COMPACT = 0x5802


class DriverStats(StatsFacade):
    """MMIO/synchronization accounting (registry-backed facade)."""

    _PREFIX = "driver"
    _FIELDS = {
        "mmio_reads": 0,
        "mmio_writes": 0,
        "capacity_syncs": 0,
        "submissions": 0,
        "rejected_submissions": 0,
        # Resilience: doorbells the device never saw / stalls observed.
        "device_faults": 0,
        # Register reads whose value failed the driver's sanity check
        # and were re-read (injected ``driver.reg_corruption``).
        "corrupt_register_reads": 0,
    }


class XfmDriver:
    """Host interface to one XFM DIMM."""

    def __init__(
        self,
        nma: NearMemoryAccelerator,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[dict] = None,
    ) -> None:
        self.nma = nma
        self.stats = DriverStats(registry=registry, labels=labels)
        #: Lazy upper bound on SPM bytes consumed by our submissions.
        self._inferred_spm_used = 0
        self._sfm_base = 0
        self._sfm_size = 0

    # -- ioctl surface --------------------------------------------------------

    def ioctl(self, cmd: int, arg: object) -> int:
        """Character-device ioctl dispatch (§6's Linux integration)."""
        if cmd == IOCTL_PARAMSET:
            base, size = arg  # type: ignore[misc]
            return self.xfm_paramset(base, size)
        if cmd == IOCTL_COMPACT:
            return 0  # compaction is a host-side memcpy path (§6)
        raise ConfigError(f"unknown ioctl 0x{cmd:x}")

    def xfm_paramset(self, sfm_base: int, sfm_size: int) -> int:
        """Program the SFM region base/size configuration registers."""
        if sfm_base < 0 or sfm_size <= 0:
            raise ConfigError("SFM region must have positive size")
        self._mmio_write(Registers.SFM_BASE, sfm_base)
        self._mmio_write(Registers.SFM_SIZE, sfm_size)
        self._mmio_write(Registers.CTRL, 1)
        self._sfm_base = sfm_base
        self._sfm_size = sfm_size
        return 0

    @property
    def sfm_region(self) -> tuple:
        return self._sfm_base, self._sfm_size

    # -- MMIO helpers ------------------------------------------------------------

    def _mmio_read(self, register: Registers) -> int:
        self.stats.mmio_reads += 1
        value = self.nma.registers.mmio_read(int(register))
        if _faults.injection_enabled():
            event = _faults.fire(_faults.DRIVER_REG_CORRUPTION)
            if event is not None:
                # XOR in a guaranteed-high bit so the corruption lands
                # outside any register's legal range — detectable by the
                # sanity checks, deterministic per (seed, site, seq).
                value ^= event.salt | (1 << 62)
        return value

    def _mmio_write(self, register: Registers, value: int) -> None:
        self.stats.mmio_writes += 1
        self.nma.registers.mmio_write(int(register), value)

    def sp_capacity(self) -> int:
        """Read the SP_Capacity_Register (free SPM bytes).

        The value is sanity-checked against the SPM's physical capacity:
        a corrupted read is counted, re-read once, and raises
        :class:`~repro.errors.DeviceFault` if still implausible rather
        than letting a garbage capacity steer placement.
        """
        capacity = self.nma.spm.capacity_bytes
        free = self._mmio_read(Registers.SP_CAPACITY)
        if not 0 <= free <= capacity:
            self.stats.corrupt_register_reads += 1
            free = self._mmio_read(Registers.SP_CAPACITY)
            if not 0 <= free <= capacity:
                self.stats.device_faults += 1
                raise DeviceFault(
                    f"SP_Capacity_Register read implausible twice "
                    f"(0x{free:x} vs capacity {capacity})"
                )
        return free

    # -- offload submission ----------------------------------------------------------

    def _check_submit_faults(self) -> None:
        """Injected submit-path failures, evaluated before any state is
        reserved so nothing needs unwinding:

        - ``driver.lost_doorbell`` — the MMIO doorbell write never
          reached the device: transient :class:`DeviceFault`, the caller
          retries.
        - ``driver.spm_full`` / ``driver.queue_full`` — forced resource
          exhaustion independent of actual occupancy, so the per-reason
          CPU-fallback accounting can be exercised at will.
        """
        if _faults.fire(_faults.DRIVER_LOST_DOORBELL) is not None:
            self.stats.device_faults += 1
            raise DeviceFault("doorbell write lost before the device saw it")
        if _faults.fire(_faults.DRIVER_SPM_FULL) is not None:
            self.stats.rejected_submissions += 1
            raise SpmFullError("injected SPM exhaustion")
        if _faults.fire(_faults.DRIVER_QUEUE_FULL) is not None:
            self.stats.rejected_submissions += 1
            raise QueueFullError("injected Compress_Request_Queue exhaustion")

    def submit_compress(
        self, source_row: int, input_bytes: int, dest_row: Optional[int] = None
    ) -> OffloadRequest:
        """``xfm_compress()``: queue a compression offload.

        Raises :class:`SpmFullError` (caller falls back to the CPU) when
        the scratchpad truly has no room, or
        :class:`~repro.errors.QueueFullError` when the CRQ is full.
        """
        if _faults.injection_enabled():
            self._check_submit_faults()
        self._reserve_spm(input_bytes)
        request = self.nma.submit(
            is_compress=True,
            source_row=source_row,
            dest_row=dest_row,
            input_bytes=input_bytes,
        )
        self.stats.mmio_writes += 1  # CRQ tail doorbell
        self.stats.submissions += 1
        if _trace.tracing_enabled():
            _trace.instant(
                "doorbell",
                _trace.TRACK_DRIVER,
                args={
                    "op": "compress",
                    "request_id": request.request_id,
                    "bytes": input_bytes,
                },
            )
        return request

    def submit_decompress(
        self, source_row: int, input_bytes: int, dest_row: int,
        output_bytes: int = 4096,
    ) -> OffloadRequest:
        """``xfm_decompress()``: queue a decompression offload.

        The SPM reservation is the *output* page size — decompression
        inflates, so the staging buffer must hold the result.
        """
        if _faults.injection_enabled():
            self._check_submit_faults()
        self._reserve_spm(output_bytes)
        request = self.nma.submit(
            is_compress=False,
            source_row=source_row,
            dest_row=dest_row,
            input_bytes=input_bytes,
        )
        self.stats.mmio_writes += 1
        self.stats.submissions += 1
        if _trace.tracing_enabled():
            _trace.instant(
                "doorbell",
                _trace.TRACK_DRIVER,
                args={
                    "op": "decompress",
                    "request_id": request.request_id,
                    "bytes": input_bytes,
                },
            )
        return request

    def _reserve_spm(self, nbytes: int) -> None:
        """Lazy occupancy check: sync with hardware only on inferred-full."""
        capacity = self.nma.spm.capacity_bytes
        if self._inferred_spm_used + nbytes > capacity:
            self.stats.capacity_syncs += 1
            free = self.sp_capacity()
            self._inferred_spm_used = capacity - free
            if _trace.tracing_enabled():
                _trace.instant(
                    "capacity_sync",
                    _trace.TRACK_DRIVER,
                    args={"free_bytes": free, "need_bytes": nbytes},
                )
            if self._inferred_spm_used + nbytes > capacity:
                self.stats.rejected_submissions += 1
                raise SpmFullError(
                    f"SPM exhausted: need {nbytes}, free {free}"
                )
        self._inferred_spm_used += nbytes

    def notify_release(self, nbytes: int) -> None:
        """Optional fast-path hint when the host observes a writeback
        completion; keeps the inferred bound tight without an MMIO read."""
        self._inferred_spm_used = max(0, self._inferred_spm_used - nbytes)
