"""ScratchPad Memory (SPM): the NMA's staging buffer.

The SPM holds accelerator inputs/outputs between refresh windows (§6,
Fig. 10): entries are tagged *PENDING* while the (de)compression operation
is underway and *COMPLETED* once they are ready to be written back to DRAM
in a subsequent tRFC. The SFM backend tracks an upper bound on occupancy
and only reads ``SP_Capacity_Register`` when it infers the SPM might be
full; when it truly is, the driver falls back to the CPU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigError, SpmFullError
from repro.resilience import faults as _faults
from repro.validation.hooks import checkpoint


class SpmTag(enum.Enum):
    """Lifecycle tag of an SPM entry (Fig. 10)."""

    PENDING = "pending"
    COMPLETED = "completed"


@dataclass
class SpmEntry:
    """One staged operation's buffer reservation."""

    entry_id: int
    #: Bytes reserved (input page or output page, whichever is larger —
    #: the buffer is reused in place).
    nbytes: int
    tag: SpmTag
    #: DRAM row the writeback must target; None = placement-flexible
    #: (compressed blobs go wherever the allocator picks, ideally a row
    #: about to be refreshed).
    writeback_row: Optional[int] = None
    #: Arbitrary payload (the functional backend stores real bytes here).
    payload: Optional[bytes] = None


class ScratchpadMemory:
    """Bounded byte-accounted staging buffer with tagged entries."""

    def __init__(self, capacity_bytes: int = 2 * 1024 * 1024) -> None:
        if capacity_bytes <= 0:
            raise ConfigError("SPM capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: Dict[int, SpmEntry] = {}
        self._used = 0
        self._next_id = 1
        self.peak_used = 0
        self.admissions = 0
        self.rejections = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def can_admit(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def admit(
        self,
        nbytes: int,
        writeback_row: Optional[int] = None,
        payload: Optional[bytes] = None,
    ) -> SpmEntry:
        """Reserve ``nbytes`` for a new PENDING operation.

        Raises :class:`SpmFullError` when capacity is exhausted — the
        signal that back-propagates to the Compress_Request_Queue and
        ultimately triggers ``CPU_Fallback`` (§6).
        """
        if nbytes <= 0:
            raise ConfigError("SPM reservation must be positive")
        if not self.can_admit(nbytes):
            self.rejections += 1
            raise SpmFullError(
                f"SPM full: need {nbytes}, free {self.free_bytes}"
            )
        entry = SpmEntry(
            entry_id=self._next_id,
            nbytes=nbytes,
            tag=SpmTag.PENDING,
            writeback_row=writeback_row,
            payload=payload,
        )
        self._next_id += 1
        self._entries[entry.entry_id] = entry
        self._used += nbytes
        self.peak_used = max(self.peak_used, self._used)
        self.admissions += 1
        checkpoint(self)
        return entry

    def complete(
        self,
        entry_id: int,
        output_bytes: Optional[int] = None,
        payload: Optional[bytes] = None,
    ) -> SpmEntry:
        """Mark an entry COMPLETED, optionally resizing to the output size
        (a compressed blob is smaller than the input page)."""
        entry = self._get(entry_id)
        if entry.tag is SpmTag.COMPLETED:
            raise ConfigError(f"entry {entry_id} already completed")
        if output_bytes is not None:
            if output_bytes <= 0:
                raise ConfigError("output size must be positive")
            self._used += output_bytes - entry.nbytes
            entry.nbytes = output_bytes
            self.peak_used = max(self.peak_used, self._used)
        if payload is not None:
            entry.payload = payload
        entry.tag = SpmTag.COMPLETED
        checkpoint(self)
        return entry

    def read_payload(self, entry_id: int) -> Optional[bytes]:
        """Read a staged payload back out of the scratchpad.

        This is the SPM's fault-injection surface: with injection active
        the ``spm.read_flip`` site may flip one bit of the returned copy
        (the stored entry itself is untouched — SPM read disturbs are
        transient, so a re-read can heal). Callers that stage real bytes
        must verify the readback against an integrity digest.
        """
        entry = self._get(entry_id)
        data = entry.payload
        if data is not None and _faults.injection_enabled():
            event = _faults.fire(_faults.SPM_READ_FLIP)
            if event is not None:
                data = _faults.corrupt_bytes(data, event.salt)
        return data

    def release(self, entry_id: int) -> SpmEntry:
        """Free an entry after its writeback (or after fallback cleanup)."""
        entry = self._get(entry_id)
        del self._entries[entry_id]
        self._used -= entry.nbytes
        checkpoint(self)
        return entry

    def _get(self, entry_id: int) -> SpmEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise ConfigError(f"unknown SPM entry {entry_id}") from None

    def entries(self, tag: Optional[SpmTag] = None) -> List[SpmEntry]:
        """Entries, optionally filtered by tag, in admission order."""
        out = [
            entry
            for entry in self._entries.values()
            if tag is None or entry.tag is tag
        ]
        return out

    def occupancy(self) -> float:
        return self._used / self.capacity_bytes
