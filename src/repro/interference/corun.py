"""Co-run simulator: SPEC-like jobs vs SFM antagonists (Fig. 11).

Reproduces the paper's §8 experiment: a mix of LLC/memory-sensitive
workloads runs alongside antagonist processes performing continuous SFM
swap ins/outs, under three configurations:

* ``BASELINE_CPU`` — the antagonists compress/decompress on the CPU: their
  page streams cross the DDR channels (O3) and pollute the shared LLC
  (O4), and the SPEC workloads' own traffic in turn slows the antagonists
  (the paper measures 5–20% SFM throughput loss and up to ~8% SPEC
  slowdown).
* ``HOST_LOCKOUT_NMA`` — a Boroumand-style NMA that locks host access to
  the memory ranks while it works: no cache pollution and no channel
  traffic, but the rank lockouts inflate everyone's memory latency (up to
  ~15% SPEC slowdown); the SFM itself runs at full speed.
* ``XFM`` — NMA accesses ride refresh windows: no pollution, no channel
  traffic, no lockout. Both sides run at (near) full speed.

All outputs are *relative* (normalized runtime / throughput), matching
what Fig. 11 reports.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._units import SECONDS_PER_MINUTE
from repro.errors import ConfigError
from repro.interference.bandwidth import MemorySystem
from repro.interference.cache import shared_llc_shares
from repro.workloads.spec import DEFAULT_JOB_MIX, SpecProfile, job_mix


class SfmMode(enum.Enum):
    BASELINE_CPU = "baseline-cpu"
    HOST_LOCKOUT_NMA = "host-lockout-nma"
    XFM = "xfm"


@dataclass(frozen=True)
class AntagonistConfig:
    """The SFM swap workload co-running with the job mix (§8: 512 GB SFM
    at a moderate 14% promotion rate, pinned to dedicated cores)."""

    sfm_capacity_gb: float = 512.0
    promotion_rate: float = 0.14
    num_cores: int = 2
    cpu_freq_ghz: float = 2.8
    #: Software codec cost (zstd-class), cycles/byte, compression side.
    codec_cycles_per_byte: float = 5.8
    compression_ratio: float = 3.0
    #: LLC working set of the compressor (match/hash tables).
    llc_footprint_mib: float = 3.0
    #: Extra misses per byte when the tables are evicted (calibration knob
    #: for the 5-20% SFM throughput loss the paper measures).
    table_miss_per_byte: float = 0.012
    #: Compulsory streaming misses per byte (page in + blob out).
    stream_miss_per_byte: float = 1.0 / 48.0
    #: Memory-level parallelism of the compressor's misses.
    mlp: float = 3.0
    #: Host-Lockout-NMA: rank-lock time per offloaded page operation
    #: (page transfer + handshake at DDR rates; calibrated so the lockout
    #: configuration lands at the ~15% worst-case SPEC slowdown §8 reports).
    lockout_per_op_us: float = 0.55
    #: Fraction of the DIMM population a lockout blocks at a time.
    lockout_span: float = 0.5

    @property
    def swap_gbps(self) -> float:
        """One-directional swap rate implied by capacity x promotion (EQ1)."""
        return self.sfm_capacity_gb * self.promotion_rate / SECONDS_PER_MINUTE

    @property
    def channel_traffic_gbps(self) -> float:
        """DDR traffic of CPU-side swapping: each direction reads its input
        and writes its output (pages + blobs; §3.2's O3)."""
        return 2.0 * self.swap_gbps * (1.0 + 1.0 / self.compression_ratio)

    @property
    def ops_per_second(self) -> float:
        """Page-granularity swap operations per second (both directions)."""
        return 2.0 * self.swap_gbps * 1e9 / 4096.0

    @property
    def llc_pressure(self) -> float:
        """Insertion pressure for LLC apportioning: GB/s of fills."""
        return self.channel_traffic_gbps


@dataclass(frozen=True)
class CorunConfig:
    workloads: Sequence[str] = tuple(DEFAULT_JOB_MIX)
    antagonist: AntagonistConfig = field(default_factory=AntagonistConfig)
    memory: MemorySystem = field(default_factory=MemorySystem)
    #: Fraction of channel peak usable under thrashing access patterns
    #: (FR-FCFS bank conflicts); calibrates where queueing sets in.
    effective_peak_fraction: float = 0.60
    #: Loaded-latency knee as utilization fraction.
    knee: float = 0.35


@dataclass
class WorkloadOutcome:
    name: str
    solo_cpi: float
    corun_cpi: float

    @property
    def slowdown(self) -> float:
        """Runtime relative to the antagonist-free co-run (>= 1)."""
        return self.corun_cpi / self.solo_cpi

    @property
    def degradation_pct(self) -> float:
        return (self.slowdown - 1.0) * 100.0


@dataclass
class CorunResult:
    mode: SfmMode
    workloads: List[WorkloadOutcome]
    #: SFM throughput relative to running unhindered (<= 1).
    sfm_throughput_ratio: float

    @property
    def spec_mean_degradation_pct(self) -> float:
        return sum(w.degradation_pct for w in self.workloads) / len(
            self.workloads
        )

    @property
    def spec_max_degradation_pct(self) -> float:
        return max(w.degradation_pct for w in self.workloads)

    @property
    def sfm_degradation_pct(self) -> float:
        return (1.0 - self.sfm_throughput_ratio) * 100.0

    def combined_throughput(self) -> float:
        """Geometric-mean normalized throughput across all co-running jobs
        (SPEC mix + the SFM antagonist) — the "combined performance" Fig. 11
        and the abstract speak to."""
        values = [1.0 / w.slowdown for w in self.workloads]
        values.append(self.sfm_throughput_ratio)
        log_sum = sum(math.log(v) for v in values)
        return math.exp(log_sum / len(values))


def _loaded_latency_ns(config: CorunConfig, demand_gbps: float) -> float:
    memory = config.memory
    effective_peak = memory.peak_gbps * config.effective_peak_fraction
    utilization = min(0.97, demand_gbps / effective_peak)
    from repro.dram.controller import loaded_latency_ns

    return loaded_latency_ns(
        memory.idle_latency_ns, utilization, knee=config.knee
    )


def _spec_cpis(
    config: CorunConfig,
    profiles: Sequence[SpecProfile],
    antagonist_llc: bool,
    antagonist_bw_gbps: float,
    latency_inflation: float,
) -> List[float]:
    """CPI of each SPEC job given the antagonist's cache/bandwidth load."""
    memory = config.memory
    footprints = [p.llc_footprint_mib for p in profiles]
    pressures = [p.bandwidth_gbps for p in profiles]
    if antagonist_llc:
        footprints = footprints + [memory.llc_capacity_mib]
        pressures = pressures + [config.antagonist.llc_pressure]
    shares = shared_llc_shares(memory.llc_capacity_mib, footprints, pressures)
    demand = sum(p.bandwidth_gbps for p in profiles) + antagonist_bw_gbps
    latency_ns = _loaded_latency_ns(config, demand) * latency_inflation
    latency_cycles = memory.latency_cycles(latency_ns)
    return [
        profile.cpi(profile.mpki_at_share(shares[i]), latency_cycles)
        for i, profile in enumerate(profiles)
    ]


def _antagonist_throughput(
    config: CorunConfig,
    spec_bw_gbps: float,
    spec_llc_pressure: bool,
) -> float:
    """Bytes/s/core of the CPU compressor under the given co-run load."""
    ant = config.antagonist
    memory = config.memory
    if spec_llc_pressure:
        # Apportion LLC among SPEC jobs and the antagonist's tables.
        profiles = job_mix(list(config.workloads))
        footprints = [p.llc_footprint_mib for p in profiles] + [
            ant.llc_footprint_mib
        ]
        pressures = [p.bandwidth_gbps for p in profiles] + [ant.llc_pressure]
        shares = shared_llc_shares(
            memory.llc_capacity_mib, footprints, pressures
        )
        table_share = shares[-1]
        demand = spec_bw_gbps + ant.channel_traffic_gbps
    else:
        table_share = ant.llc_footprint_mib
        demand = ant.channel_traffic_gbps
    latency_ns = _loaded_latency_ns(config, demand)
    latency_cycles = latency_ns * ant.cpu_freq_ghz
    misses_per_byte = ant.stream_miss_per_byte
    if table_share < ant.llc_footprint_mib:
        misses_per_byte += ant.table_miss_per_byte * (
            1.0 - table_share / ant.llc_footprint_mib
        )
    cycles_per_byte = (
        ant.codec_cycles_per_byte + misses_per_byte * latency_cycles / ant.mlp
    )
    return ant.cpu_freq_ghz * 1e9 / cycles_per_byte


def simulate_corun(
    config: Optional[CorunConfig] = None,
    mode: SfmMode = SfmMode.BASELINE_CPU,
) -> CorunResult:
    """Run one Fig. 11 configuration and return normalized outcomes."""
    if config is None:
        config = CorunConfig()
    profiles = job_mix(list(config.workloads))
    ant = config.antagonist
    spec_bw = sum(p.bandwidth_gbps for p in profiles)

    # Reference: the job mix co-running WITHOUT any antagonist.
    solo_cpis = _spec_cpis(
        config,
        profiles,
        antagonist_llc=False,
        antagonist_bw_gbps=0.0,
        latency_inflation=1.0,
    )
    # Reference for SFM throughput: antagonist running with the machine to
    # itself (tables resident, own traffic only).
    solo_ant_throughput = _antagonist_throughput(
        config, spec_bw_gbps=0.0, spec_llc_pressure=False
    )

    if mode is SfmMode.BASELINE_CPU:
        corun_cpis = _spec_cpis(
            config,
            profiles,
            antagonist_llc=True,
            antagonist_bw_gbps=ant.channel_traffic_gbps,
            latency_inflation=1.0,
        )
        ant_throughput = _antagonist_throughput(
            config, spec_bw_gbps=spec_bw, spec_llc_pressure=True
        )
    elif mode is SfmMode.HOST_LOCKOUT_NMA:
        locked_fraction = min(
            0.8,
            ant.ops_per_second
            * (ant.lockout_per_op_us * 1e-6)
            * ant.lockout_span,
        )
        inflation = config.memory.lockout_inflation(locked_fraction)
        corun_cpis = _spec_cpis(
            config,
            profiles,
            antagonist_llc=False,
            antagonist_bw_gbps=0.0,
            latency_inflation=inflation,
        )
        # The NMA has exclusive access while locked: SFM runs at full rate.
        ant_throughput = solo_ant_throughput
    elif mode is SfmMode.XFM:
        corun_cpis = solo_cpis
        ant_throughput = solo_ant_throughput
    else:
        raise ConfigError(f"unknown mode {mode}")

    outcomes = [
        WorkloadOutcome(name=p.name, solo_cpi=solo, corun_cpi=corun)
        for p, solo, corun in zip(profiles, solo_cpis, corun_cpis)
    ]
    return CorunResult(
        mode=mode,
        workloads=outcomes,
        sfm_throughput_ratio=min(1.0, ant_throughput / solo_ant_throughput),
    )


def xfm_improvement_pct(
    config: Optional[CorunConfig] = None,
    against: SfmMode = SfmMode.BASELINE_CPU,
) -> float:
    """Combined-performance improvement of XFM over another mode (the
    abstract's 5–27% range, depending on mix and comparison point)."""
    xfm = simulate_corun(config, SfmMode.XFM).combined_throughput()
    other = simulate_corun(config, against).combined_throughput()
    return (xfm / other - 1.0) * 100.0
