"""Co-run interference models (system S10, Fig. 11).

* :mod:`~repro.interference.cache` — a real set-associative LRU cache
  simulator (substrate/ground truth) plus the analytic shared-LLC
  apportioning used by the co-run model.
* :mod:`~repro.interference.bandwidth` — channel-utilization bookkeeping
  and the loaded-latency curve.
* :mod:`~repro.interference.corun` — the Fig. 11 experiment: SPEC-like
  workloads co-running with SFM antagonists under Baseline-CPU,
  Host-Lockout-NMA, and XFM configurations.
"""

from repro.interference.bandwidth import MemorySystem
from repro.interference.cache import SetAssociativeCache, shared_llc_shares
from repro.interference.corun import (
    AntagonistConfig,
    CorunConfig,
    CorunResult,
    SfmMode,
    simulate_corun,
)

__all__ = [
    "AntagonistConfig",
    "CorunConfig",
    "CorunResult",
    "MemorySystem",
    "SetAssociativeCache",
    "SfmMode",
    "shared_llc_shares",
    "simulate_corun",
]
