"""Memory-system bandwidth bookkeeping for the co-run model.

Wraps the DRAM substrate's loaded-latency curve
(:func:`repro.dram.controller.loaded_latency_ns`) with the testbed topology
of the paper's evaluation (§7: Xeon Gold 6242, 6 x 16 GiB DIMMs at
3200 MT/s) and the Host-Lockout-NMA rank-blocking penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.controller import loaded_latency_ns
from repro.errors import ConfigError


@dataclass(frozen=True)
class MemorySystem:
    """Channel-level view of the socket's memory system."""

    num_channels: int = 6
    channel_gbps: float = 25.6
    idle_latency_ns: float = 80.0
    cpu_freq_ghz: float = 2.8
    llc_capacity_mib: float = 22.0

    def __post_init__(self) -> None:
        if self.num_channels < 1 or self.channel_gbps <= 0:
            raise ConfigError("memory system must have positive bandwidth")

    @property
    def peak_gbps(self) -> float:
        return self.num_channels * self.channel_gbps

    def utilization(self, demand_gbps: float) -> float:
        """Channel utilization, clamped below saturation."""
        return min(0.98, max(0.0, demand_gbps / self.peak_gbps))

    def loaded_latency(self, demand_gbps: float) -> float:
        """Average memory latency (ns) at the given aggregate demand."""
        return loaded_latency_ns(
            self.idle_latency_ns, self.utilization(demand_gbps)
        )

    def latency_cycles(self, latency_ns: float) -> float:
        return latency_ns * self.cpu_freq_ghz

    def lockout_inflation(self, locked_fraction: float) -> float:
        """Latency inflation when ranks are periodically locked by NMA
        accesses (Host-Lockout-NMA): requests arriving during a lockout
        wait half the lockout on average, and utilization of the remaining
        time rises."""
        if not 0.0 <= locked_fraction < 1.0:
            raise ConfigError("locked fraction must be in [0, 1)")
        return 1.0 / (1.0 - locked_fraction)
