"""Cache substrate: a functional set-associative LRU cache and the
analytic shared-LLC apportioning used by the co-run model.

The paper attributes overhead **O4** (§3.2) to page-granular (de)compression
streams polluting the cache hierarchy. The functional simulator grounds the
analytic model: streaming a 4 KiB-page workload through a set-associative
LRU cache evicts co-runners' lines in proportion to its access pressure,
which is exactly what :func:`shared_llc_shares` models in closed form.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigError


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """LRU set-associative cache over byte addresses."""

    def __init__(
        self,
        capacity_bytes: int = 32 * 1024 * 1024,
        line_bytes: int = 64,
        ways: int = 16,
    ) -> None:
        if capacity_bytes % (line_bytes * ways):
            raise ConfigError(
                "capacity must be a multiple of line_bytes * ways"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        #: per-set OrderedDict of line tag -> owner label (LRU order).
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        self.per_owner: Dict[str, CacheStats] = {}

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes

    def _owner_stats(self, owner: str) -> CacheStats:
        if owner not in self.per_owner:
            self.per_owner[owner] = CacheStats()
        return self.per_owner[owner]

    def access(self, addr: int, owner: str = "app") -> bool:
        """Touch ``addr``; returns True on hit."""
        line = addr // self.line_bytes
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        owner_stats = self._owner_stats(owner)
        if tag in cache_set:
            cache_set.move_to_end(tag)
            cache_set[tag] = owner
            self.stats.hits += 1
            owner_stats.hits += 1
            return True
        self.stats.misses += 1
        owner_stats.misses += 1
        if len(cache_set) >= self.ways:
            cache_set.popitem(last=False)
            self.stats.evictions += 1
        cache_set[tag] = owner
        return False

    def occupancy_by_owner(self) -> Dict[str, int]:
        """Resident lines per owner label."""
        out: Dict[str, int] = {}
        for cache_set in self._sets:
            for owner in cache_set.values():
                out[owner] = out.get(owner, 0) + 1
        return out

    def resident_bytes(self, owner: str) -> int:
        return self.occupancy_by_owner().get(owner, 0) * self.line_bytes


def shared_llc_shares(
    capacity_mib: float,
    footprints_mib: Sequence[float],
    pressures: Sequence[float],
) -> List[float]:
    """Apportion a shared LLC among competitors.

    Each competitor's steady-state share is proportional to its insertion
    *pressure* (miss/streaming rate) but never exceeds its footprint; slack
    from capped competitors is redistributed. This is the standard
    fixed-point model of LRU sharing and matches what the functional
    simulator produces for streaming-vs-reuse mixes.
    """
    n = len(footprints_mib)
    if len(pressures) != n:
        raise ConfigError("footprints and pressures must align")
    if any(p < 0 for p in pressures):
        raise ConfigError("pressures must be non-negative")
    shares = [0.0] * n
    remaining = list(range(n))
    capacity_left = capacity_mib
    # Iteratively cap competitors whose demand is below their pressure share.
    while remaining and capacity_left > 1e-9:
        total_pressure = sum(pressures[i] for i in remaining)
        if total_pressure <= 0:
            equal = capacity_left / len(remaining)
            for i in remaining:
                shares[i] = min(equal, footprints_mib[i])
            break
        capped = []
        for i in remaining:
            proportional = capacity_left * pressures[i] / total_pressure
            if proportional >= footprints_mib[i]:
                shares[i] = footprints_mib[i]
                capped.append(i)
        if not capped:
            for i in remaining:
                shares[i] = capacity_left * pressures[i] / total_pressure
            break
        for i in capped:
            remaining.remove(i)
            capacity_left -= shares[i]
    return shares
