"""Per-bank and per-subarray state machines.

Enforces the protocol rules XFM relies on (§5, Fig. 7): a bank row must be
activated before column accesses and precharged before a different row is
activated; during an all-bank refresh window the refreshed subarrays are
busy, but — with the paper's row-decoder-latch + subarray-select additions
— rows in *other* subarrays remain accessible to the NMA, and a refreshed
row itself can be held open for a conditional access instead of being
immediately precharged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.dram.device import DramDeviceConfig
from repro.dram.timing import DramTimings
from repro.errors import DramProtocolError


class BankState(enum.Enum):
    IDLE = "idle"
    ACTIVE = "active"
    REFRESHING = "refreshing"


@dataclass
class Bank:
    """One DRAM bank with subarray-granular refresh tracking."""

    device: DramDeviceConfig
    timings: DramTimings
    index: int = 0
    state: BankState = BankState.IDLE
    active_row: Optional[int] = None
    _busy_subarrays: Set[int] = field(default_factory=set)
    _last_activate_ns: float = field(default=-1e18)
    _last_precharge_ns: float = field(default=-1e18)

    # -- host-side protocol -------------------------------------------------

    def activate(self, row: int, now_ns: float) -> None:
        """ACT: open ``row`` into its subarray's local row buffer."""
        if self.state is BankState.ACTIVE:
            raise DramProtocolError(
                f"bank {self.index}: ACT while row {self.active_row} open"
            )
        if self.state is BankState.REFRESHING:
            raise DramProtocolError(
                f"bank {self.index}: host ACT during refresh window"
            )
        if now_ns < self._last_precharge_ns + self.timings.trp_ns:
            raise DramProtocolError(
                f"bank {self.index}: ACT violates tRP "
                f"({now_ns:.1f} < {self._last_precharge_ns + self.timings.trp_ns:.1f})"
            )
        if not 0 <= row < self.device.rows_per_bank:
            raise DramProtocolError(f"bank {self.index}: row {row} out of range")
        self.state = BankState.ACTIVE
        self.active_row = row
        self._last_activate_ns = now_ns

    def column_access(self, row: int, now_ns: float) -> float:
        """RD/WR: returns the time the data burst completes."""
        if self.state is not BankState.ACTIVE or self.active_row != row:
            raise DramProtocolError(
                f"bank {self.index}: column access to row {row} but open "
                f"row is {self.active_row}"
            )
        if now_ns < self._last_activate_ns + self.timings.trcd_ns:
            raise DramProtocolError(f"bank {self.index}: access violates tRCD")
        return now_ns + self.timings.tcl_ns + self.timings.tburst_ns

    def precharge(self, now_ns: float) -> None:
        """PRE: close the open row."""
        if self.state is BankState.REFRESHING:
            raise DramProtocolError(
                f"bank {self.index}: host PRE during refresh window"
            )
        self.state = BankState.IDLE
        self.active_row = None
        self._last_precharge_ns = now_ns

    # -- refresh-window behaviour (XFM additions) -----------------------------

    def begin_refresh(self, rows: range, now_ns: float) -> None:
        """Enter an all-bank refresh window covering ``rows``."""
        if self.state is BankState.ACTIVE:
            raise DramProtocolError(
                f"bank {self.index}: REF with row {self.active_row} open"
            )
        self.state = BankState.REFRESHING
        self._busy_subarrays = {
            self.device.subarray_of_row(r) for r in rows
        }

    def end_refresh(self, now_ns: float) -> None:
        """Leave the refresh window; all rows precharged (§5: the CPU-side
        controller starts fresh afterwards). tRFC already covers precharge
        recovery (JEDEC REF-to-ACT), so an ACT is legal immediately."""
        if self.state is not BankState.REFRESHING:
            raise DramProtocolError(f"bank {self.index}: end_refresh while idle")
        self.state = BankState.IDLE
        self.active_row = None
        self._busy_subarrays = set()
        self._last_precharge_ns = now_ns - self.timings.trp_ns

    def nma_access_allowed(self, row: int, conditional: bool) -> bool:
        """Whether the NMA may touch ``row`` in the current refresh window.

        Conditional accesses target rows being refreshed (always allowed —
        the row is already open in its local row buffer). Random accesses
        may only target subarrays not busy refreshing (Fig. 7's subarray
        select + latch make those independently addressable).
        """
        if self.state is not BankState.REFRESHING:
            return False
        subarray = self.device.subarray_of_row(row)
        if conditional:
            return subarray in self._busy_subarrays
        return subarray not in self._busy_subarrays

    @property
    def busy_subarrays(self) -> Set[int]:
        return set(self._busy_subarrays)
