"""DRAM timing parameter sets.

All times are in nanoseconds. The DDR5 presets follow the Micron DDR5
datasheet values the paper cites (Table 1: tRFC of 195/295/410 ns for
8/16/32 Gb devices) and the paper's own working numbers: 32 ms retention,
8192 REF commands per retention interval (tREFI ~= 3.9 us), tBURST 2.5 ns
at 3200 MT/s with BL16 on an 8-bit-wide chip.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

REF_COMMANDS_PER_RETENTION = 8192


@dataclass(frozen=True)
class DramTimings:
    """Timing parameters of one DRAM device generation/speed bin."""

    name: str
    transfer_rate_mts: float
    #: Row activate-to-column command delay.
    trcd_ns: float
    #: Column access (CAS) latency.
    tcl_ns: float
    #: Precharge time.
    trp_ns: float
    #: All-bank refresh cycle time.
    trfc_ns: float
    #: Retention time: every row must be refreshed once per this interval.
    retention_ms: float
    #: Burst length in transfers (BL16 for DDR5, BL8 for DDR4).
    burst_length: int
    #: Per-chip data width in bits.
    device_width_bits: int
    #: Time to stream one burst. Held as an explicit field because the
    #: paper's working value (2.5 ns for BL16, §7 and Fig. 6b's
    #: 110 ns = tRCD + tCL + 32 x tBURST) is what Table 1's conditional
    #: access counts derive from.
    tburst_ns: float = 2.5
    #: Stagger between refresh starts in consecutive banks (power delivery).
    tstag_ns: float = 10.0

    def __post_init__(self) -> None:
        if self.transfer_rate_mts <= 0:
            raise ConfigError("transfer rate must be positive")
        for field in ("trcd_ns", "tcl_ns", "trp_ns", "trfc_ns"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive")
        if self.trefi_ns <= self.trfc_ns:
            raise ConfigError(
                f"{self.name}: tREFI ({self.trefi_ns:.0f} ns) must exceed "
                f"tRFC ({self.trfc_ns:.0f} ns)"
            )

    @property
    def tck_ns(self) -> float:
        """Clock period; two transfers per clock (DDR)."""
        return 2000.0 / self.transfer_rate_mts

    @property
    def trc_ns(self) -> float:
        """Row cycle time: activate + restore + precharge."""
        return self.trcd_ns + self.tcl_ns + self.trp_ns

    @property
    def trefi_ns(self) -> float:
        """Average refresh command interval."""
        return self.retention_ms * 1_000_000.0 / REF_COMMANDS_PER_RETENTION

    @property
    def refresh_lock_fraction(self) -> float:
        """Fraction of time a rank is locked by all-bank refresh (~8%)."""
        return self.trfc_ns / self.trefi_ns

    @property
    def burst_bytes(self) -> int:
        """Bytes moved per burst per chip."""
        return self.burst_length * self.device_width_bits // 8

    def channel_bandwidth_bps(self, channel_width_bits: int = 64) -> float:
        """Peak channel bandwidth in bytes/second."""
        return self.transfer_rate_mts * 1e6 * channel_width_bits / 8

    def with_retention_ms(self, retention_ms: float) -> "DramTimings":
        """Copy with a different retention time (temperature scaling)."""
        return replace(self, retention_ms=retention_ms)


DDR4_2400 = DramTimings(
    name="DDR4-2400",
    transfer_rate_mts=2400.0,
    trcd_ns=14.16,
    tcl_ns=14.16,
    trp_ns=14.16,
    trfc_ns=350.0,
    retention_ms=64.0,
    burst_length=8,
    device_width_bits=8,
    tburst_ns=3.33,
)

DDR4_3200 = DramTimings(
    name="DDR4-3200",
    transfer_rate_mts=3200.0,
    trcd_ns=13.75,
    tcl_ns=13.75,
    trp_ns=13.75,
    trfc_ns=350.0,
    retention_ms=64.0,
    burst_length=8,
    device_width_bits=8,
    tburst_ns=2.5,
)

# The paper's working configuration (§7): 32 ms retention, tRFC 410 ns,
# tBURST 2.5 ns. tRCD + tCL = 30 ns reproduces the 110 ns conditional read
# of Fig. 6b (tRCD + tCL + 32 x tBURST).
DDR5_3200 = DramTimings(
    name="DDR5-3200",
    transfer_rate_mts=3200.0,
    trcd_ns=15.0,
    tcl_ns=15.0,
    trp_ns=15.0,
    trfc_ns=410.0,
    retention_ms=32.0,
    burst_length=16,
    device_width_bits=8,
)

DDR5_4800 = DramTimings(
    name="DDR5-4800",
    transfer_rate_mts=4800.0,
    trcd_ns=14.0,
    tcl_ns=14.0,
    trp_ns=14.0,
    trfc_ns=410.0,
    retention_ms=32.0,
    burst_length=16,
    device_width_bits=8,
)

TIMING_PRESETS = {
    t.name: t for t in (DDR4_2400, DDR4_3200, DDR5_3200, DDR5_4800)
}
