"""DRAM memory-system substrate (systems S3–S5).

Models the parts of a DDR4/DDR5 memory system that XFM's refresh-window
side channel depends on: device geometry (Table 1), command timing,
Skylake-style physical address interleaving (§5, Fig. 6a), the all-bank
auto-refresh schedule (§2.2), per-bank/subarray state, a cycle-approximate
memory controller in the spirit of gem5's DDR4 interface (§7), and an
access-energy model.
"""

from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.device import (
    DDR5_16GB,
    DDR5_32GB,
    DDR5_8GB,
    DEVICE_PRESETS,
    DramDeviceConfig,
)
from repro.dram.energy import AccessEnergyModel
from repro.dram.refresh import RefreshScheduler, RefreshWindow
from repro.dram.refresh_policy import (
    POLICY_ALL_BANK,
    POLICY_PER_BANK,
    REFRESH_POLICIES,
    AllBankRefreshPolicy,
    PerBankRefreshPolicy,
    RefreshPolicy,
    make_refresh_policy,
)
from repro.dram.timing import (
    DDR4_2400,
    DDR4_3200,
    DDR5_3200,
    DDR5_4800,
    TIMING_PRESETS,
    DramTimings,
)

__all__ = [
    "AccessEnergyModel",
    "AddressMapping",
    "AllBankRefreshPolicy",
    "CommandKind",
    "DDR4_2400",
    "DDR4_3200",
    "DDR5_16GB",
    "DDR5_32GB",
    "DDR5_3200",
    "DDR5_4800",
    "DDR5_8GB",
    "DEVICE_PRESETS",
    "DramCoordinate",
    "DramDeviceConfig",
    "DramTimings",
    "POLICY_ALL_BANK",
    "POLICY_PER_BANK",
    "PerBankRefreshPolicy",
    "REFRESH_POLICIES",
    "RefreshPolicy",
    "RefreshScheduler",
    "RefreshWindow",
    "TIMING_PRESETS",
    "TimedCommand",
    "make_refresh_policy",
]
