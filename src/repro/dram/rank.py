"""Rank model: a lockstep set of chips viewed as a set of banks plus the
shared refresh counter.

All chips of a rank act in unison (§2.2), so the rank model keeps one
logical bank array whose rows are rank-wide (chips x 1 KiB). REF commands
advance the shared refresh counter and lock every bank for tRFC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dram.bank import Bank, BankState
from repro.dram.device import DramDeviceConfig
from repro.dram.refresh import RefreshScheduler, RefreshWindow
from repro.dram.timing import DramTimings
from repro.errors import DramProtocolError


@dataclass
class Rank:
    """One DRAM rank: banks + refresh scheduler."""

    device: DramDeviceConfig
    timings: DramTimings
    index: int = 0
    random_slots_per_ref: int = 1
    banks: List[Bank] = field(init=False)
    scheduler: RefreshScheduler = field(init=False)
    _in_refresh: bool = field(default=False, init=False)
    _current_window: Optional[RefreshWindow] = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.banks = [
            Bank(device=self.device, timings=self.timings, index=i)
            for i in range(self.device.banks_per_chip)
        ]
        self.scheduler = RefreshScheduler(
            device=self.device,
            timings=self.timings,
            random_slots_per_ref=self.random_slots_per_ref,
        )

    @property
    def capacity_bytes(self) -> int:
        return (
            self.device.banks_per_chip
            * self.device.rows_per_bank
            * self.device.rank_row_bytes
        )

    @property
    def in_refresh(self) -> bool:
        return self._in_refresh

    @property
    def current_window(self) -> Optional[RefreshWindow]:
        return self._current_window

    def begin_refresh(self, now_ns: float) -> RefreshWindow:
        """Issue the next REF: lock every bank for tRFC."""
        if self._in_refresh:
            raise DramProtocolError(f"rank {self.index}: REF while refreshing")
        window = self.scheduler.tick()
        for bank in self.banks:
            bank.begin_refresh(window.rows, now_ns)
        self._in_refresh = True
        self._current_window = window
        return window

    def end_refresh(self, now_ns: float) -> None:
        """Close the refresh window; all banks precharged."""
        if not self._in_refresh:
            raise DramProtocolError(f"rank {self.index}: end_refresh while open")
        for bank in self.banks:
            bank.end_refresh(now_ns)
        self._in_refresh = False
        self._current_window = None

    def host_accessible(self) -> bool:
        """The CPU can only access the rank outside refresh windows."""
        return not self._in_refresh

    def nma_access_allowed(self, bank: int, row: int, conditional: bool) -> bool:
        """Check an NMA access against the current window's rules."""
        if not self._in_refresh:
            return False
        return self.banks[bank].nma_access_allowed(row, conditional)

    def open_banks(self) -> List[int]:
        """Banks with a row currently open (host side)."""
        return [b.index for b in self.banks if b.state is BankState.ACTIVE]
