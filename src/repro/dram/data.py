"""DRAM data array: actual bytes behind the address mapping.

Fig. 6a shows *where* a 4 KiB page's bytes physically live — striped over
channels at 256 B, over banks at 128 B, all within one row per bank.
:class:`DramArray` stores real bytes at those coordinates, so tests and
tools can verify the layout concretely: write a page at a physical
address, then read individual rank-rows and see exactly the stripes the
figure draws (and that the per-DIMM NMA would see).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.dram.address import AddressMapping, DramCoordinate
from repro.errors import AddressMapError, ConfigError

#: Row storage key: (channel, dimm, rank, bank, row).
RowKey = Tuple[int, int, int, int, int]


@dataclass
class DramArray:
    """Byte-accurate storage addressed through an :class:`AddressMapping`."""

    mapping: AddressMapping = field(default_factory=AddressMapping)
    _rows: Dict[RowKey, bytearray] = field(default_factory=dict, init=False)

    def _row_buffer(self, coord: DramCoordinate) -> bytearray:
        key = (coord.channel, coord.dimm, coord.rank, coord.bank, coord.row)
        buffer = self._rows.get(key)
        if buffer is None:
            buffer = bytearray(self.mapping.device.rank_row_bytes)
            self._rows[key] = buffer
        return buffer

    # -- byte-granular access ------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at physical ``addr``."""
        line = self.mapping.bank_interleave_bytes
        offset = 0
        while offset < len(data):
            coord = self.mapping.decode(addr + offset)
            # Stay within this bank-interleave line.
            line_remaining = line - (coord.row_offset % line)
            chunk = min(line_remaining, len(data) - offset)
            buffer = self._row_buffer(coord)
            buffer[coord.row_offset : coord.row_offset + chunk] = data[
                offset : offset + chunk
            ]
            offset += chunk

    def read(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes starting at physical ``addr``."""
        line = self.mapping.bank_interleave_bytes
        out = bytearray()
        offset = 0
        while offset < length:
            coord = self.mapping.decode(addr + offset)
            line_remaining = line - (coord.row_offset % line)
            chunk = min(line_remaining, length - offset)
            buffer = self._row_buffer(coord)
            out += buffer[coord.row_offset : coord.row_offset + chunk]
            offset += chunk
        return bytes(out)

    # -- row-granular access (the NMA's view) -----------------------------------

    def row_bytes(
        self, channel: int, dimm: int, rank: int, bank: int, row: int
    ) -> bytes:
        """One rank-row's content — what a conditional access streams out."""
        key = (channel, dimm, rank, bank, row)
        buffer = self._rows.get(key)
        if buffer is None:
            return bytes(self.mapping.device.rank_row_bytes)
        return bytes(buffer)

    def page_stripe(
        self, page_addr: int, channel: int, page_size: int = 4096
    ) -> bytes:
        """The bytes of a page that land on ``channel`` — exactly the
        stream the per-DIMM NMA compresses in multi-channel mode."""
        if page_addr % self.mapping.bank_interleave_bytes:
            raise AddressMapError("page address must be line-aligned")
        granularity = self.mapping.channel_interleave_bytes
        out = bytearray()
        for offset in range(0, page_size, granularity):
            coord = self.mapping.decode(page_addr + offset)
            if coord.channel == channel:
                out += self.read(page_addr + offset, granularity)
        return bytes(out)

    # -- accounting -----------------------------------------------------------

    def touched_rows(self) -> int:
        return len(self._rows)

    def stored_bytes(self) -> int:
        """Footprint of materialized rows (a sparse-array diagnostic)."""
        return self.touched_rows() * self.mapping.device.rank_row_bytes

    def verify_consistency(self) -> None:
        """Every materialized row must be the canonical buffer size."""
        expected = self.mapping.device.rank_row_bytes
        for key, buffer in self._rows.items():
            if len(buffer) != expected:
                raise ConfigError(f"row {key} has {len(buffer)} bytes")
