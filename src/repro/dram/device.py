"""DRAM device geometry (Table 1) and derived refresh/access arithmetic.

A :class:`DramDeviceConfig` describes one DRAM chip generation. The three
DDR5 presets reproduce Table 1 of the paper, including the derived "#rows
of a bank refreshed during tRFC" (rows per bank / 8192 REF commands) and
the conditional-access capacity per tRFC of Sec. 5 (4/3/2 page reads for
32/16/8 Gb chips).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import (
    DDR5_3200,
    REF_COMMANDS_PER_RETENTION,
    DramTimings,
)
from repro.errors import ConfigError

ROWS_PER_SUBARRAY = 512
PAGE_SIZE = 4096


@dataclass(frozen=True)
class DramDeviceConfig:
    """Geometry of a single DRAM chip."""

    name: str
    capacity_gbit: int
    rows_per_bank: int
    banks_per_chip: int
    #: Number of banks a contiguous page is interleaved across (Fig. 6a).
    page_bank_ways: int = 2
    rows_per_subarray: int = ROWS_PER_SUBARRAY
    chips_per_rank: int = 8

    def __post_init__(self) -> None:
        if self.rows_per_bank % self.rows_per_subarray:
            raise ConfigError(
                f"{self.name}: rows_per_bank must be a multiple of "
                f"rows_per_subarray"
            )
        if self.rows_per_bank % REF_COMMANDS_PER_RETENTION:
            raise ConfigError(
                f"{self.name}: rows_per_bank must be a multiple of "
                f"{REF_COMMANDS_PER_RETENTION} REF commands"
            )
        expected_bits = (
            self.rows_per_bank * self.banks_per_chip * self.row_bits
        )
        if expected_bits != self.capacity_gbit * (1 << 30):
            raise ConfigError(
                f"{self.name}: geometry implies {expected_bits / (1 << 30):.1f} "
                f"Gbit, declared {self.capacity_gbit} Gbit"
            )

    @property
    def row_bits(self) -> int:
        """Bits per row per chip (fixed 8 Kbit = 1 KiB row for these parts)."""
        return 8 * 1024

    @property
    def row_bytes(self) -> int:
        """Bytes per row per chip."""
        return self.row_bits // 8

    @property
    def rank_row_bytes(self) -> int:
        """Bytes per (rank-wide) row: all chips in lockstep."""
        return self.row_bytes * self.chips_per_rank

    @property
    def subarrays_per_bank(self) -> int:
        return self.rows_per_bank // self.rows_per_subarray

    @property
    def rows_refreshed_per_trfc(self) -> int:
        """Rows of each bank refreshed by a single REF command (Table 1)."""
        return self.rows_per_bank // REF_COMMANDS_PER_RETENTION

    @property
    def chip_capacity_bytes(self) -> int:
        return self.capacity_gbit * (1 << 30) // 8

    @property
    def rank_capacity_bytes(self) -> int:
        return self.chip_capacity_bytes * self.chips_per_rank

    def subarray_of_row(self, row: int) -> int:
        """Subarray index containing ``row``."""
        if not 0 <= row < self.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        return row // self.rows_per_subarray

    # -- refresh-window access arithmetic (Sec. 5) -----------------------

    def page_stream_time_ns(
        self, timings: DramTimings, page_bytes: int = PAGE_SIZE, first: bool = True
    ) -> float:
        """Time to stream one page between a rank and the NMA.

        A page is read as ``page_bytes / (chips * burst_bytes)`` bursts
        alternating between the interleaved banks (Fig. 6b). The first
        access in a tRFC pays tRCD + tCL; subsequent accesses overlap their
        tRCD + tCL with the tail of the previous burst.
        """
        bursts = -(-page_bytes // (self.chips_per_rank * timings.burst_bytes))
        stream = bursts * timings.tburst_ns
        if first:
            return timings.trcd_ns + timings.tcl_ns + stream
        return stream

    def conditional_accesses_per_trfc(
        self, timings: DramTimings, page_bytes: int = PAGE_SIZE
    ) -> int:
        """Max page-sized conditional accesses in one tRFC (4/3/2 in Sec. 5)."""
        first = self.page_stream_time_ns(timings, page_bytes, first=True)
        follow = self.page_stream_time_ns(timings, page_bytes, first=False)
        if first > timings.trfc_ns:
            return 0
        return 1 + int((timings.trfc_ns - first) // follow)

    def nma_bandwidth_bps(
        self,
        timings: DramTimings,
        accesses_per_trfc: int,
        page_bytes: int = PAGE_SIZE,
    ) -> float:
        """Sustained NMA<->DRAM bandwidth from refresh-window accesses only."""
        pages_per_second = accesses_per_trfc * 1e9 / timings.trefi_ns
        return pages_per_second * page_bytes


# Table 1 presets. Row width is 1 KiB/chip, so:
#   8 Gb:  64 Ki rows x 16 banks x 8 Kib = 8 Gb,  8 rows/REF, 128 subarrays
#   16 Gb: 64 Ki rows x 32 banks x 8 Kib = 16 Gb, 8 rows/REF, 128 subarrays
#   32 Gb: 128 Ki rows x 32 banks x 8 Kib = 32 Gb, 16 rows/REF, 256 subarrays
DDR5_8GB = DramDeviceConfig(
    name="DDR5-8Gb", capacity_gbit=8, rows_per_bank=64 * 1024, banks_per_chip=16
)
DDR5_16GB = DramDeviceConfig(
    name="DDR5-16Gb", capacity_gbit=16, rows_per_bank=64 * 1024, banks_per_chip=32
)
DDR5_32GB = DramDeviceConfig(
    name="DDR5-32Gb", capacity_gbit=32, rows_per_bank=128 * 1024, banks_per_chip=32
)

DEVICE_PRESETS = {d.name: d for d in (DDR5_8GB, DDR5_16GB, DDR5_32GB)}

# Per-device tRFC from Table 1 (all-bank refresh).
DEVICE_TRFC_NS = {"DDR5-8Gb": 195.0, "DDR5-16Gb": 295.0, "DDR5-32Gb": 410.0}


def timings_for_device(
    device: DramDeviceConfig, base: DramTimings = DDR5_3200
) -> DramTimings:
    """Timing preset with the device's Table-1 tRFC substituted in."""
    from dataclasses import replace

    trfc = DEVICE_TRFC_NS.get(device.name)
    if trfc is None:
        return base
    return replace(base, name=f"{base.name}/{device.name}", trfc_ns=trfc)
