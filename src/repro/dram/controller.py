"""Cycle-approximate DRAM memory controller.

Models one channel the way gem5's DDR4 interface does at the fidelity the
paper's emulator needs (§7): open-row policy with FCFS arbitration, bank
ready-time tracking, data-bus occupancy, and periodic all-bank refresh that
locks each rank for tRFC. The controller reports per-request latency and
aggregate bandwidth/stall statistics; the interference model (Fig. 11)
additionally uses the closed-form :func:`loaded_latency_ns` queueing curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.device import DramDeviceConfig
from repro.dram.timing import DramTimings
from repro.errors import ConfigError
from repro.telemetry.stats import StatsFacade


@dataclass(frozen=True)
class MemoryRequest:
    """One line-sized (burst) read or write presented to the controller."""

    arrival_ns: float
    rank: int
    bank: int
    row: int
    is_write: bool = False


@dataclass
class CompletedRequest:
    request: MemoryRequest
    start_ns: float
    finish_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.request.arrival_ns


class ControllerStats(StatsFacade):
    """Aggregate outcome of a simulated request stream.

    Registry-backed facade: the DRAM command/latency counters export and
    merge through the same telemetry surface as the swap statistics.
    """

    _PREFIX = "dram.controller"
    _FIELDS = {
        "completed": 0,
        "total_time_ns": 0.0,
        "total_bytes": 0,
        "row_hits": 0,
        "row_misses": 0,
        "refresh_stall_ns": 0.0,
        "avg_latency_ns": 0.0,
        "max_latency_ns": 0.0,
    }

    @property
    def bandwidth_bps(self) -> float:
        if self.total_time_ns <= 0:
            return 0.0
        return self.total_bytes / (self.total_time_ns / 1e9)

    @property
    def row_hit_rate(self) -> float:
        accesses = self.row_hits + self.row_misses
        return self.row_hits / accesses if accesses else 0.0


class ChannelController:
    """FCFS controller for one channel with N ranks.

    ``row_policy`` selects the page policy: ``"open"`` keeps rows open
    for locality (hits pay tCL only, conflicts pay tRP extra), while
    ``"closed"`` auto-precharges after every access (every access pays
    tRCD + tCL, never a conflict) — the classic trade the A8 ablation
    measures.
    """

    def __init__(
        self,
        device: DramDeviceConfig,
        timings: DramTimings,
        num_ranks: int = 2,
        row_policy: str = "open",
    ) -> None:
        if num_ranks < 1:
            raise ConfigError("num_ranks must be >= 1")
        if row_policy not in ("open", "closed"):
            raise ConfigError(
                f"row_policy must be open/closed, got {row_policy!r}"
            )
        self.device = device
        self.timings = timings
        self.num_ranks = num_ranks
        self.row_policy = row_policy

    def _refresh_window(self, time_ns: float) -> Tuple[float, float]:
        """(start, end) of the refresh window active or next at ``time_ns``.

        Refresh is synchronous across ranks here (the common controller
        simplification); the window recurs every tREFI and lasts tRFC.
        """
        trefi = self.timings.trefi_ns
        index = int(time_ns // trefi)
        start = index * trefi
        return start, start + self.timings.trfc_ns

    def _delay_for_refresh(self, time_ns: float) -> Tuple[float, float]:
        """Push ``time_ns`` out of any active refresh window.

        Returns (possibly delayed time, stall added).
        """
        start, end = self._refresh_window(time_ns)
        if start <= time_ns < end:
            return end, end - time_ns
        return time_ns, 0.0

    def run(
        self,
        requests: List[MemoryRequest],
        command_log: Optional[List[TimedCommand]] = None,
    ) -> ControllerStats:
        """Service ``requests`` (sorted by arrival) and return statistics.

        When ``command_log`` is provided, the ACT/PRE/RD/WR commands the
        service math implies are appended to it (the REF stream comes
        from :func:`repro.dram.trace.refresh_command_stream`); the pair
        can then be cross-checked by
        :class:`repro.dram.trace.TraceValidator`.
        """
        timings = self.timings
        open_row: Dict[Tuple[int, int], int] = {}
        bank_ready: Dict[Tuple[int, int], float] = {}
        #: tREFI epoch last observed per rank: each epoch's REF precharges
        #: the whole rank, so open rows do not survive epoch boundaries.
        rank_epoch: Dict[int, int] = {}
        bus_free = 0.0
        row_hits = 0
        row_misses = 0
        refresh_stall = 0.0
        total_latency = 0.0
        max_latency = 0.0
        finish = 0.0

        for req in sorted(requests, key=lambda r: r.arrival_ns):
            key = (req.rank, req.bank)
            start = max(req.arrival_ns, bank_ready.get(key, 0.0))
            # Fixed-point over the three scheduling constraints: outside
            # refresh windows, epoch-fresh row state (each tREFI's REF
            # precharges the rank), and data-bus occupancy. Each retry
            # strictly increases ``start``, so this terminates.
            while True:
                start, stall = self._delay_for_refresh(start)
                refresh_stall += stall
                epoch = int(start // timings.trefi_ns)
                if rank_epoch.get(req.rank) != epoch:
                    open_row = {
                        k: v for k, v in open_row.items() if k[0] != req.rank
                    }
                    rank_epoch[req.rank] = epoch
                current = (
                    open_row.get(key) if self.row_policy == "open" else None
                )
                if current == req.row:
                    access = timings.tcl_ns + timings.tburst_ns
                elif current is None:
                    access = (
                        timings.trcd_ns + timings.tcl_ns + timings.tburst_ns
                    )
                else:
                    access = (
                        timings.trp_ns
                        + timings.trcd_ns
                        + timings.tcl_ns
                        + timings.tburst_ns
                    )
                done = start + access
                # The shared data bus carries this request's burst during
                # the final tBURST; bursts from different banks overlap
                # everything except that data phase.
                if done - timings.tburst_ns < bus_free:
                    start = bus_free + timings.tburst_ns - access
                    continue
                # No command sequence may straddle the next REF: the
                # controller defers the access past that window instead.
                epoch_end = (epoch + 1) * timings.trefi_ns
                if done > epoch_end:
                    start = epoch_end
                    continue
                break
            if current == req.row:
                row_hits += 1
            else:
                row_misses += 1
            if command_log is not None:
                column_kind = (
                    CommandKind.WR if req.is_write else CommandKind.RD
                )
                column_at = done - timings.tcl_ns - timings.tburst_ns
                if current == req.row:
                    pass  # row already open: column command only
                elif current is None:
                    command_log.append(
                        TimedCommand(
                            time_ns=column_at - timings.trcd_ns,
                            kind=CommandKind.ACT,
                            rank=req.rank, bank=req.bank, row=req.row,
                        )
                    )
                else:
                    command_log.append(
                        TimedCommand(
                            time_ns=column_at - timings.trcd_ns - timings.trp_ns,
                            kind=CommandKind.PRE,
                            rank=req.rank, bank=req.bank, row=current,
                        )
                    )
                    command_log.append(
                        TimedCommand(
                            time_ns=column_at - timings.trcd_ns,
                            kind=CommandKind.ACT,
                            rank=req.rank, bank=req.bank, row=req.row,
                        )
                    )
                command_log.append(
                    TimedCommand(
                        time_ns=column_at,
                        kind=column_kind,
                        rank=req.rank, bank=req.bank, row=req.row,
                    )
                )
                if self.row_policy == "closed":
                    # Auto-precharge rides the access.
                    command_log.append(
                        TimedCommand(
                            time_ns=done,
                            kind=CommandKind.PRE,
                            rank=req.rank, bank=req.bank, row=req.row,
                        )
                    )
            if self.row_policy == "open":
                open_row[key] = req.row
                bank_ready[key] = done
            else:
                bank_ready[key] = done + timings.trp_ns
            bus_free = done
            latency = done - req.arrival_ns
            total_latency += latency
            max_latency = max(max_latency, latency)
            finish = max(finish, done)

        n = len(requests)
        line_bytes = self.device.chips_per_rank * timings.burst_bytes
        return ControllerStats(
            completed=n,
            total_time_ns=finish,
            total_bytes=n * line_bytes,
            row_hits=row_hits,
            row_misses=row_misses,
            refresh_stall_ns=refresh_stall,
            avg_latency_ns=total_latency / n if n else 0.0,
            max_latency_ns=max_latency,
        )


def loaded_latency_ns(
    idle_latency_ns: float, utilization: float, knee: float = 0.65
) -> float:
    """Closed-form loaded memory latency versus channel utilization.

    The standard bandwidth-latency curve: flat near idle, super-linear past
    the knee, following ``idle / (1 - ((u - knee)/(1 - knee))^2)`` above the
    knee. Used by the Fig. 11 interference model to turn antagonist
    bandwidth into co-runner slowdown.
    """
    if not 0.0 <= utilization < 1.0:
        raise ConfigError(f"utilization must be in [0, 1), got {utilization}")
    if utilization <= knee:
        return idle_latency_ns
    overshoot = (utilization - knee) / (1.0 - knee)
    return idle_latency_ns / max(1e-9, 1.0 - overshoot * overshoot)
