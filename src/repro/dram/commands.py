"""DRAM command vocabulary and timestamped command records.

The refresh-window side channel is described in terms of the standard
command set (§2.2): ACT/PRE/RD/WR from the CPU memory controller, REF for
auto-refresh, and the NMA-side accesses XFM adds, which never appear on the
DDR command bus (they are issued inside the DIMM during tRFC).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """One DRAM command type."""

    ACT = "activate"
    PRE = "precharge"
    RD = "read"
    WR = "write"
    REF = "refresh"
    #: NMA-side read during a refresh window (conditional or random).
    NMA_RD = "nma_read"
    #: NMA-side write during a refresh window.
    NMA_WR = "nma_write"

    @property
    def is_host(self) -> bool:
        """True for commands issued by the CPU memory controller."""
        return self in (
            CommandKind.ACT,
            CommandKind.PRE,
            CommandKind.RD,
            CommandKind.WR,
            CommandKind.REF,
        )

    @property
    def is_nma(self) -> bool:
        """True for DIMM-internal accelerator accesses."""
        return self in (CommandKind.NMA_RD, CommandKind.NMA_WR)


@dataclass(frozen=True, order=True)
class TimedCommand:
    """A command stamped with its issue time and target."""

    time_ns: float
    kind: CommandKind
    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0

    def __str__(self) -> str:
        return (
            f"{self.time_ns:12.1f} ns {self.kind.name:6s} "
            f"ch{self.channel} rk{self.rank} ba{self.bank} row{self.row}"
        )
