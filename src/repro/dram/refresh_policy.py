"""Pluggable refresh policies: who refreshes what, when, for how long.

The scheduling *mechanism* (``RefreshScheduler`` bookkeeping, the
``WindowScheduler`` access batching, the emulator's event loop) is
policy-agnostic; this module owns the *policy* — the mapping from a
window index to its start time, duration, refreshed rows, and bank
scope. Two policies ship:

* :class:`AllBankRefreshPolicy` — the paper's baseline (§2.2): one REF
  per tREFI locks the whole rank for tRFC and refreshes the slot's rows
  in every bank. This is the default and reproduces the pre-policy
  behavior bit-for-bit.
* :class:`PerBankRefreshPolicy` — DDR5 fine-granularity / same-bank
  refresh in the spirit of REFsb and the refresh-access-parallelism
  literature (PAPERS.md): each tREFI is split into
  ``banks_per_chip`` staggered per-bank windows of ~tRFCpb each. The
  rank as a whole refreshes the same rows per retention interval, but
  the accelerator sees **many more, shorter windows** — more scheduling
  opportunities per tREFI at a smaller per-window access budget.

Window start times are computed from **integer tick arithmetic**
(window index x tREFI in :data:`repro.sim.TICKS_PER_NS` ticks), never
by accumulating floats, so window N's start is exact for any N — the
float-drift fix the regression tests pin down.

Select a policy by name via :func:`make_refresh_policy`; the
``REPRO_REFRESH_POLICY`` environment variable sets the process default
(the CI per-bank smoke uses it to re-run the replay differential matrix
under per-bank refresh without touching any config).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.dram.device import DramDeviceConfig
from repro.dram.timing import REF_COMMANDS_PER_RETENTION, DramTimings
from repro.errors import ConfigError
from repro.sim.clock import ns_to_ticks, ticks_to_ns

POLICY_ALL_BANK = "all-bank"
POLICY_PER_BANK = "per-bank"
REFRESH_POLICIES = (POLICY_ALL_BANK, POLICY_PER_BANK)

#: Environment variable naming the process-default refresh policy.
REFRESH_POLICY_ENV = "REPRO_REFRESH_POLICY"

#: tRFCsb / tRFC: a same-bank refresh cycles one bank, not thirty-two,
#: and completes in roughly a quarter of the all-bank lockout (DDR5
#: datasheet ratios for 16-32 Gb parts: 410 ns tRFC1 vs ~100-130 ns
#: tRFCsb) — which it must, since refreshing every bank once per tREFI
#: leaves only a tREFI/banks stagger gap (~122 ns here) per window.
PER_BANK_TRFC_FRACTION = 0.25


def default_policy_name() -> str:
    """Process-default policy: ``REPRO_REFRESH_POLICY`` or all-bank."""
    name = os.environ.get(REFRESH_POLICY_ENV, POLICY_ALL_BANK)
    if name not in REFRESH_POLICIES:
        raise ConfigError(
            f"{REFRESH_POLICY_ENV}={name!r} is not a refresh policy; "
            f"have {', '.join(REFRESH_POLICIES)}"
        )
    return name


@dataclass(frozen=True)
class RefreshWindow:
    """One refresh window: rows being refreshed while the NMA may ride.

    ``bank`` is None for all-bank windows (the whole rank is locked) and
    the refreshing bank index for per-bank windows. ``slot`` is the REF
    slot within the retention cycle whose rows this window refreshes.
    """

    ref_index: int
    start_ns: float
    #: Rows (same indices in every covered bank) refreshed during this
    #: window.
    rows: range
    #: Exact integer-tick start (repro.sim ticks); ``start_ns`` is its
    #: float rendering. None only for hand-built legacy windows.
    start_ticks: Optional[int] = None
    #: Window length: tRFC (all-bank) or ~tRFCpb (per-bank).
    duration_ns: Optional[float] = None
    #: Refreshing bank, or None when every bank refreshes (all-bank).
    bank: Optional[int] = None
    #: REF slot (0..8191) within the retention cycle.
    slot: Optional[int] = None

    @property
    def row_set(self) -> frozenset:
        return frozenset(self.rows)


class RefreshPolicy:
    """Base policy: integer-tick window cadence over one rank.

    Subclasses define the window multiplicity per tREFI, the per-window
    duration and bank scope; the shared math (exact tick starts, slot
    rows, horizon iteration) lives here. The plug points the rest of the
    stack relies on: :meth:`window`, :meth:`start_ticks`,
    :meth:`trefi_bin`, :meth:`access_budget`.
    """

    #: Registry name; subclasses override.
    name = "base"

    def __init__(
        self, device: DramDeviceConfig, timings: DramTimings
    ) -> None:
        self.device = device
        self.timings = timings
        #: Exact tREFI in integer ticks — every window start derives
        #: from this by integer multiplication, never float accumulation.
        self.trefi_ticks = ns_to_ticks(timings.trefi_ns)

    # -- subclass API --------------------------------------------------------

    @property
    def windows_per_trefi(self) -> int:
        raise NotImplementedError

    @property
    def duration_ns(self) -> float:
        raise NotImplementedError

    def bank_of(self, index: int) -> Optional[int]:
        raise NotImplementedError

    def access_budget(self, accesses_per_ref: int) -> int:
        """Per-window NMA access budget given the per-tRFC budget."""
        raise NotImplementedError

    # -- shared math ---------------------------------------------------------

    @property
    def rows_per_ref(self) -> int:
        return self.device.rows_refreshed_per_trfc

    @property
    def refs_per_retention(self) -> int:
        return REF_COMMANDS_PER_RETENTION

    def start_ticks(self, index: int) -> int:
        """Exact start of window ``index`` in integer ticks."""
        # Distributes tREFI over windows_per_trefi without accumulating
        # error: window k*W starts exactly at k * trefi_ticks.
        return (index * self.trefi_ticks) // self.windows_per_trefi

    def trefi_bin(self, index: int) -> int:
        """Which tREFI interval window ``index`` falls in."""
        return index // self.windows_per_trefi

    def slot_of(self, index: int) -> int:
        """REF slot (0..8191 within a retention cycle) of window
        ``index``."""
        return self.trefi_bin(index) % self.refs_per_retention

    def rows_for_slot(self, slot: int) -> range:
        start = slot * self.rows_per_ref
        return range(start, start + self.rows_per_ref)

    def window(self, index: int) -> RefreshWindow:
        """Full description of window ``index``."""
        ticks = self.start_ticks(index)
        slot = self.slot_of(index)
        return RefreshWindow(
            ref_index=index,
            start_ns=ticks_to_ns(ticks),
            rows=self.rows_for_slot(slot),
            start_ticks=ticks,
            duration_ns=self.duration_ns,
            bank=self.bank_of(index),
            slot=slot,
        )

    def first_index_at_or_after(self, t_ns: float) -> int:
        """Smallest window index starting at or after ``t_ns``."""
        target = ns_to_ticks(t_ns)
        if target <= 0:
            return 0
        index = max(0, (target * self.windows_per_trefi) // self.trefi_ticks)
        while index > 0 and self.start_ticks(index - 1) >= target:
            index -= 1
        while self.start_ticks(index) < target:
            index += 1
        return index


class AllBankRefreshPolicy(RefreshPolicy):
    """One REF per tREFI locks the whole rank for tRFC (§2.2)."""

    name = POLICY_ALL_BANK

    @property
    def windows_per_trefi(self) -> int:
        return 1

    @property
    def duration_ns(self) -> float:
        return self.timings.trfc_ns

    def bank_of(self, index: int) -> Optional[int]:
        return None

    def access_budget(self, accesses_per_ref: int) -> int:
        return accesses_per_ref


class PerBankRefreshPolicy(RefreshPolicy):
    """DDR5 FGR-style same-bank refresh: per-tREFI, every bank gets its
    own staggered ~tRFCpb window refreshing the slot's rows in that bank
    alone. Same retention coverage, ``banks_per_chip`` times as many
    accelerator windows per tREFI."""

    name = POLICY_PER_BANK

    def __init__(
        self,
        device: DramDeviceConfig,
        timings: DramTimings,
        trfc_fraction: float = PER_BANK_TRFC_FRACTION,
    ) -> None:
        super().__init__(device, timings)
        if not 0.0 < trfc_fraction <= 1.0:
            raise ConfigError("trfc_fraction must be in (0, 1]")
        self.trfc_fraction = trfc_fraction
        per_window_ns = ticks_to_ns(self.trefi_ticks // self.windows_per_trefi)
        if timings.trfc_ns * trfc_fraction > per_window_ns:
            raise ConfigError(
                f"per-bank window of {timings.trfc_ns * trfc_fraction} ns "
                f"does not fit the {per_window_ns} ns inter-window gap"
            )

    @property
    def windows_per_trefi(self) -> int:
        return self.device.banks_per_chip

    @property
    def duration_ns(self) -> float:
        return self.timings.trfc_ns * self.trfc_fraction

    def bank_of(self, index: int) -> Optional[int]:
        return index % self.windows_per_trefi

    def access_budget(self, accesses_per_ref: int) -> int:
        # A shorter lockout accommodates proportionally fewer accesses,
        # but never zero: the window still opens the refreshing rows.
        return max(1, round(accesses_per_ref * self.trfc_fraction))


def make_refresh_policy(
    name: Optional[str],
    device: DramDeviceConfig,
    timings: DramTimings,
) -> RefreshPolicy:
    """Build a policy by registry name (None -> process default)."""
    resolved = default_policy_name() if name is None else name
    if resolved == POLICY_ALL_BANK:
        return AllBankRefreshPolicy(device, timings)
    if resolved == POLICY_PER_BANK:
        return PerBankRefreshPolicy(device, timings)
    raise ConfigError(
        f"unknown refresh policy {resolved!r}; "
        f"have {', '.join(REFRESH_POLICIES)}"
    )
