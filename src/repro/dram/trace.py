"""DRAM command-trace validation.

A :class:`TraceValidator` replays a time-ordered stream of
:class:`~repro.dram.commands.TimedCommand` against per-bank state
machines and the refresh schedule, raising
:class:`~repro.errors.DramProtocolError` on any violation: column access
without a matching ACT, ACT inside tRP, host commands inside a refresh
window, NMA accesses outside one, or NMA accesses breaking the
conditional/subarray rules. The channel controller can emit its command
stream (``command_log=`` in :meth:`ChannelController.run`), so the
controller's closed-form service math is cross-checked against the FSMs
— the same validation discipline gem5 applies to its DRAM models.

Conventions (documented simplifications):

* REF acts as precharge-all: open rows are implicitly closed at the
  window start (real controllers issue PREA first);
* a refresh window ends implicitly at ``REF.time + tRFC``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dram.bank import Bank, BankState
from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.device import DramDeviceConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DramTimings
from repro.errors import DramProtocolError


@dataclass
class TraceStats:
    """Outcome of a validated trace."""

    commands: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    refresh_windows: int = 0
    host_reads: int = 0
    host_writes: int = 0
    nma_accesses: int = 0

    def count(self, kind: CommandKind) -> int:
        return self.by_kind.get(kind.name, 0)


class TraceValidator:
    """Replay/validate a command stream for one channel."""

    def __init__(
        self,
        device: DramDeviceConfig,
        timings: DramTimings,
        num_ranks: int = 2,
    ) -> None:
        self.device = device
        self.timings = timings
        self.num_ranks = num_ranks
        self._banks: Dict[Tuple[int, int], Bank] = {
            (rank, bank): Bank(device=device, timings=timings, index=bank)
            for rank in range(num_ranks)
            for bank in range(device.banks_per_chip)
        }
        self._refresh: Dict[int, RefreshScheduler] = {
            rank: RefreshScheduler(device, timings)
            for rank in range(num_ranks)
        }
        #: rank -> (window_start, rows) while a refresh window is open.
        self._open_window: Dict[int, Tuple[float, range]] = {}

    def _rank_banks(self, rank: int) -> List[Bank]:
        return [
            self._banks[(rank, bank)]
            for bank in range(self.device.banks_per_chip)
        ]

    def _close_expired_windows(self, now_ns: float) -> None:
        for rank, (start, _rows) in list(self._open_window.items()):
            if now_ns >= start + self.timings.trfc_ns:
                for bank in self._rank_banks(rank):
                    bank.end_refresh(start + self.timings.trfc_ns)
                del self._open_window[rank]

    def _in_window(self, rank: int, now_ns: float) -> bool:
        window = self._open_window.get(rank)
        return window is not None and now_ns < window[0] + self.timings.trfc_ns

    def validate(self, commands: Iterable[TimedCommand]) -> TraceStats:
        """Replay ``commands`` (sorted by time) and return statistics."""
        stats = TraceStats()
        last_time = float("-inf")
        for command in commands:
            if command.time_ns < last_time:
                raise DramProtocolError(
                    f"trace not time-ordered at {command.time_ns} ns"
                )
            last_time = command.time_ns
            self._close_expired_windows(command.time_ns)
            self._dispatch(command)
            stats.commands += 1
            stats.by_kind[command.kind.name] = (
                stats.by_kind.get(command.kind.name, 0) + 1
            )
            if command.kind is CommandKind.REF:
                stats.refresh_windows += 1
            elif command.kind is CommandKind.RD:
                stats.host_reads += 1
            elif command.kind is CommandKind.WR:
                stats.host_writes += 1
            elif command.kind.is_nma:
                stats.nma_accesses += 1
        self._close_expired_windows(float("inf"))
        return stats

    def _dispatch(self, command: TimedCommand) -> None:
        rank = command.rank
        if rank not in self._refresh:
            raise DramProtocolError(f"command for unknown rank {rank}")
        bank = self._banks.get((rank, command.bank))
        if bank is None:
            raise DramProtocolError(
                f"command for unknown bank {command.bank}"
            )
        kind = command.kind
        now = command.time_ns

        if kind is CommandKind.REF:
            if self._in_window(rank, now):
                raise DramProtocolError(
                    f"REF at {now} ns while rank {rank} is refreshing"
                )
            window = self._refresh[rank].tick()
            for rank_bank in self._rank_banks(rank):
                if rank_bank.state is BankState.ACTIVE:
                    # PREA semantics: close open rows at the window start.
                    rank_bank.precharge(now)
                rank_bank.begin_refresh(window.rows, now)
            self._open_window[rank] = (now, window.rows)
            return

        if kind.is_nma:
            if not self._in_window(rank, now):
                raise DramProtocolError(
                    f"NMA access at {now} ns outside a refresh window"
                )
            _start, rows = self._open_window[rank]
            conditional = command.row in rows
            if not bank.nma_access_allowed(command.row, conditional):
                raise DramProtocolError(
                    f"illegal NMA access to row {command.row} at {now} ns"
                )
            return

        # Host commands are barred during the rank's refresh window.
        if self._in_window(rank, now):
            raise DramProtocolError(
                f"host {kind.name} at {now} ns inside a refresh window"
            )
        if kind is CommandKind.ACT:
            bank.activate(command.row, now)
        elif kind is CommandKind.PRE:
            bank.precharge(now)
        elif kind in (CommandKind.RD, CommandKind.WR):
            bank.column_access(command.row, now)
        else:
            raise DramProtocolError(f"unhandled command kind {kind}")


def refresh_command_stream(
    until_ns: float, num_ranks: int, timings: DramTimings
) -> List[TimedCommand]:
    """The periodic REF stream a controller issues in ``[0, until_ns)``."""
    commands = []
    time_ns = 0.0
    while time_ns < until_ns:
        for rank in range(num_ranks):
            commands.append(
                TimedCommand(time_ns=time_ns, kind=CommandKind.REF, rank=rank)
            )
        time_ns += timings.trefi_ns
    return commands
