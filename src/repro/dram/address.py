"""Physical-address-to-DRAM-topology mapping (Skylake-style, Sec. 5).

The paper assumes Intel Skylake's mapping: 256 B channel interleaving and
128 B bank interleaving, so a contiguous 4 KiB page is striped across four
channels and, within each channel, alternates between two banks of the same
rank (Fig. 6a). :class:`AddressMapping` implements that layout as explicit
nested div/mod strides — LSB to MSB: byte-in-line, bank way, column, row,
bank pair, rank, DIMM — and provides the exact inverse for round-trip
verification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.device import DDR5_32GB, DramDeviceConfig
from repro.errors import AddressMapError, ConfigError


@dataclass(frozen=True)
class DramCoordinate:
    """Location of one bank-interleave line (default 128 B) in the system."""

    channel: int
    dimm: int
    rank: int
    bank: int
    row: int
    #: Byte offset of the line within the rank-wide row.
    row_offset: int


@dataclass(frozen=True)
class AddressMapping:
    """Decode/encode physical addresses onto the DRAM hierarchy."""

    device: DramDeviceConfig = DDR5_32GB
    channels: int = 4
    dimms_per_channel: int = 2
    ranks_per_dimm: int = 1
    channel_interleave_bytes: int = 256
    bank_interleave_bytes: int = 128

    def __post_init__(self) -> None:
        if self.channel_interleave_bytes % self.bank_interleave_bytes:
            raise ConfigError(
                "channel interleave must be a multiple of bank interleave"
            )
        if self.device.banks_per_chip % self.device.page_bank_ways:
            raise ConfigError("banks must divide evenly into interleave ways")
        for field in ("channels", "dimms_per_channel", "ranks_per_dimm"):
            if getattr(self, field) < 1:
                raise ConfigError(f"{field} must be >= 1")

    # -- derived sizes ----------------------------------------------------

    @property
    def ranks_total(self) -> int:
        return self.channels * self.dimms_per_channel * self.ranks_per_dimm

    @property
    def rank_capacity_bytes(self) -> int:
        return (
            self.device.banks_per_chip
            * self.device.rows_per_bank
            * self.device.rank_row_bytes
        )

    @property
    def total_capacity_bytes(self) -> int:
        return self.rank_capacity_bytes * self.ranks_total

    @property
    def _bank_pairs(self) -> int:
        return self.device.banks_per_chip // self.device.page_bank_ways

    @property
    def _lines_per_row(self) -> int:
        return self.device.rank_row_bytes // self.bank_interleave_bytes

    # -- decode / encode ---------------------------------------------------

    def decode(self, addr: int) -> DramCoordinate:
        """Map a physical byte address to its DRAM coordinate."""
        if not 0 <= addr < self.total_capacity_bytes:
            raise AddressMapError(
                f"address 0x{addr:x} outside capacity "
                f"{self.total_capacity_bytes}"
            )
        chan_chunk, chunk_off = divmod(addr, self.channel_interleave_bytes)
        channel = chan_chunk % self.channels
        ch_addr = (
            chan_chunk // self.channels
        ) * self.channel_interleave_bytes + chunk_off

        line, line_off = divmod(ch_addr, self.bank_interleave_bytes)
        ways = self.device.page_bank_ways
        bank_way = line % ways
        per_bank_line = line // ways

        col_line = per_bank_line % self._lines_per_row
        remaining = per_bank_line // self._lines_per_row
        row = remaining % self.device.rows_per_bank
        remaining //= self.device.rows_per_bank
        pair = remaining % self._bank_pairs
        remaining //= self._bank_pairs
        rank = remaining % self.ranks_per_dimm
        dimm = remaining // self.ranks_per_dimm

        return DramCoordinate(
            channel=channel,
            dimm=dimm,
            rank=rank,
            bank=pair * ways + bank_way,
            row=row,
            row_offset=col_line * self.bank_interleave_bytes + line_off,
        )

    def encode(self, coord: DramCoordinate) -> int:
        """Inverse of :meth:`decode`."""
        ways = self.device.page_bank_ways
        pair, bank_way = divmod(coord.bank, ways)
        col_line, line_off = divmod(coord.row_offset, self.bank_interleave_bytes)
        per_bank_line = (
            (
                (coord.dimm * self.ranks_per_dimm + coord.rank)
                * self._bank_pairs
                + pair
            )
            * self.device.rows_per_bank
            + coord.row
        ) * self._lines_per_row + col_line
        line = per_bank_line * ways + bank_way
        ch_addr = line * self.bank_interleave_bytes + line_off
        chan_chunk, chunk_off = divmod(ch_addr, self.channel_interleave_bytes)
        return (
            chan_chunk * self.channels + coord.channel
        ) * self.channel_interleave_bytes + chunk_off

    # -- page-level helpers -------------------------------------------------

    def page_lines(self, page_addr: int, page_size: int = 4096) -> List[DramCoordinate]:
        """Coordinates of every bank-interleave line of a page."""
        if page_addr % self.bank_interleave_bytes:
            raise AddressMapError("page address must be line-aligned")
        return [
            self.decode(page_addr + off)
            for off in range(0, page_size, self.bank_interleave_bytes)
        ]

    def page_footprint(self, page_addr: int, page_size: int = 4096):
        """Distinct (channel, dimm, rank, bank, row) tuples a page touches.

        For the Skylake defaults a 4 KiB page touches 4 channels x 2 banks
        (Fig. 6a): one row in each of two banks per channel.
        """
        return sorted(
            {
                (c.channel, c.dimm, c.rank, c.bank, c.row)
                for c in self.page_lines(page_addr, page_size)
            }
        )

    def per_dimm_bytes(self, page_size: int = 4096) -> int:
        """Bytes of a page landing on each channel's DIMM — the effective
        compression-window size in multi-channel mode (Fig. 8)."""
        return page_size // self.channels
