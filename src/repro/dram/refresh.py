"""All-bank auto-refresh scheduling (§2.2) and the XFM access windows (§5).

The memory controller spreads 8192 REF commands across the retention
interval; each REF locks the whole rank for tRFC and refreshes
``rows_refreshed_per_trfc`` rows *in every bank* (one row per subarray in
parallel, Table 1). :class:`RefreshScheduler` exposes the mapping both ways
— which rows a given REF refreshes, and which REF will next refresh a given
row — which is exactly what XFM's conditional-access scheduling needs.

Target Row Refresh (TRR) slots ride on each REF; when unused by Rowhammer
mitigation they are available to XFM for *random* accesses (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.device import DramDeviceConfig
from repro.dram.timing import REF_COMMANDS_PER_RETENTION, DramTimings
from repro.errors import ConfigError
from repro.telemetry import trace as _trace


@dataclass(frozen=True)
class RefreshWindow:
    """One REF command's window: rank locked, a row set being refreshed."""

    ref_index: int
    start_ns: float
    #: Rows (same indices in every bank) refreshed during this window.
    rows: range

    @property
    def row_set(self) -> frozenset:
        return frozenset(self.rows)


@dataclass
class RefreshScheduler:
    """Per-rank refresh bookkeeping shared by the CPU and NMA sides."""

    device: DramDeviceConfig
    timings: DramTimings
    #: Unused-TRR slots per REF usable for XFM random accesses.
    random_slots_per_ref: int = 1
    _ref_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.random_slots_per_ref < 0:
            raise ConfigError("random_slots_per_ref must be >= 0")

    @property
    def rows_per_ref(self) -> int:
        return self.device.rows_refreshed_per_trfc

    @property
    def refs_per_retention(self) -> int:
        return REF_COMMANDS_PER_RETENTION

    @property
    def trefi_ns(self) -> float:
        return self.timings.trefi_ns

    @property
    def trfc_ns(self) -> float:
        return self.timings.trfc_ns

    # -- REF index <-> rows ------------------------------------------------

    def rows_refreshed(self, ref_index: int) -> range:
        """Rows (in each bank) refreshed by the ``ref_index``-th REF."""
        slot = ref_index % self.refs_per_retention
        start = slot * self.rows_per_ref
        return range(start, start + self.rows_per_ref)

    def window(self, ref_index: int) -> RefreshWindow:
        """Full description of one refresh window."""
        return RefreshWindow(
            ref_index=ref_index,
            start_ns=ref_index * self.trefi_ns,
            rows=self.rows_refreshed(ref_index),
        )

    def ref_slot_for_row(self, row: int) -> int:
        """Which REF slot (0..8191 within a retention cycle) refreshes
        ``row``."""
        if not 0 <= row < self.device.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        return row // self.rows_per_ref

    def next_ref_for_row(self, row: int, current_ref: int) -> int:
        """First REF index >= ``current_ref`` whose window covers ``row``."""
        slot = self.ref_slot_for_row(row)
        cycle, cur_slot = divmod(current_ref, self.refs_per_retention)
        if slot < cur_slot:
            cycle += 1
        return cycle * self.refs_per_retention + slot

    def wait_refs_for_row(self, row: int, current_ref: int) -> int:
        """REF commands until ``row``'s conditional window (0 = this one)."""
        return self.next_ref_for_row(row, current_ref) - current_ref

    def is_conditional(self, row: int, ref_index: int) -> bool:
        """True if accessing ``row`` during REF ``ref_index`` is conditional
        (the row is in the set being refreshed, §5)."""
        return row in self.rows_refreshed(ref_index)

    # -- subarray-conflict rule (§5, Fig. 7) --------------------------------

    def random_access_allowed(self, row: int, ref_index: int) -> bool:
        """A random access must not target a subarray that is busy
        refreshing one of this window's rows.

        With one refreshed row per subarray (Table 1: rows/REF is far below
        subarrays/bank), the conflict set is the subarrays of the refreshed
        rows; XFM reorders pending accesses around conflicts.
        """
        busy = {
            self.device.subarray_of_row(r)
            for r in self.rows_refreshed(ref_index)
        }
        return self.device.subarray_of_row(row) not in busy

    # -- stateful iteration --------------------------------------------------

    @property
    def refs_issued(self) -> int:
        return self._ref_count

    def tick(self) -> RefreshWindow:
        """Advance to the next REF command and return its window."""
        window = self.window(self._ref_count)
        self._ref_count += 1
        self.trace_window(window.ref_index)
        return window

    def trace_window(self, ref_index: int, channel: int = 0) -> None:
        """Emit the per-tRFC timeline span for one refresh window.

        No-op unless tracing is enabled; pure emission, never touches
        scheduler state (the validation oracles drive this class too).
        """
        if not _trace.tracing_enabled():
            return
        rows = self.rows_refreshed(ref_index)
        _trace.complete(
            "ref_window",
            _trace.refresh_track(channel),
            ref_index * self.trefi_ns,
            self.trfc_ns,
            args={
                "ref_index": ref_index,
                "row_start": rows.start,
                "row_stop": rows.stop,
            },
        )

    def reset(self) -> None:
        self._ref_count = 0

    # -- aggregate refresh math ----------------------------------------------

    def locked_fraction(self) -> float:
        """Fraction of wall-clock time the rank is locked (~8% at 32 ms)."""
        return self.trfc_ns / self.trefi_ns

    def lock_time_per_retention_ms(self) -> float:
        """Total locked time per retention interval, in ms (~2.46 ms)."""
        return self.refs_per_retention * self.trfc_ns / 1e6

    def windows_between(self, start_ns: float, end_ns: float) -> List[RefreshWindow]:
        """All refresh windows starting in ``[start_ns, end_ns)``."""
        first = max(0, int(-(-start_ns // self.trefi_ns)))
        out: List[RefreshWindow] = []
        index = first
        while index * self.trefi_ns < end_ns:
            out.append(self.window(index))
            index += 1
        return out
