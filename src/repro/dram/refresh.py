"""Refresh scheduling (§2.2) and the XFM access windows (§5).

The memory controller spreads 8192 REF commands across the retention
interval; how each tREFI's refresh work is granulated is a pluggable
:class:`~repro.dram.refresh_policy.RefreshPolicy` — the default
:class:`~repro.dram.refresh_policy.AllBankRefreshPolicy` locks the
whole rank for tRFC and refreshes ``rows_refreshed_per_trfc`` rows *in
every bank* (one row per subarray in parallel, Table 1);
:class:`~repro.dram.refresh_policy.PerBankRefreshPolicy` splits the
same work into staggered per-bank windows. :class:`RefreshScheduler`
exposes the REF mapping both ways — which rows a given REF refreshes,
and which REF will next refresh a given row — which is exactly what
XFM's conditional-access scheduling needs, and it can publish its
window stream as events on a :class:`repro.sim.EventScheduler` so
consumers react to windows instead of deriving them arithmetically.

Target Row Refresh (TRR) slots ride on each REF; when unused by
Rowhammer mitigation they are available to XFM for *random* accesses
(§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.dram.device import DramDeviceConfig
from repro.dram.refresh_policy import (
    AllBankRefreshPolicy,
    RefreshPolicy,
    RefreshWindow,
    make_refresh_policy,
)
from repro.dram.timing import REF_COMMANDS_PER_RETENTION, DramTimings
from repro.errors import ConfigError
from repro.sim import EventScheduler, ns_to_ticks
from repro.telemetry import trace as _trace

__all__ = [
    "AllBankRefreshPolicy",
    "RefreshPolicy",
    "RefreshScheduler",
    "RefreshWindow",
    "make_refresh_policy",
]


@dataclass
class RefreshScheduler:
    """Per-rank refresh bookkeeping shared by the CPU and NMA sides.

    The REF-slot <-> row mapping below is retention-schedule math and is
    policy-independent; window geometry (starts, durations, bank scope)
    delegates to ``policy`` (default: all-bank tRFC, the paper's
    baseline — behavior-identical to the pre-policy scheduler).
    """

    device: DramDeviceConfig
    timings: DramTimings
    #: Unused-TRR slots per REF usable for XFM random accesses.
    random_slots_per_ref: int = 1
    #: Window-granulation policy; None selects the process default
    #: (all-bank unless ``REPRO_REFRESH_POLICY`` says otherwise).
    policy: Optional[RefreshPolicy] = None
    _ref_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.random_slots_per_ref < 0:
            raise ConfigError("random_slots_per_ref must be >= 0")
        if self.policy is None:
            self.policy = make_refresh_policy(
                None, self.device, self.timings
            )

    @property
    def rows_per_ref(self) -> int:
        return self.device.rows_refreshed_per_trfc

    @property
    def refs_per_retention(self) -> int:
        return REF_COMMANDS_PER_RETENTION

    @property
    def trefi_ns(self) -> float:
        return self.timings.trefi_ns

    @property
    def trfc_ns(self) -> float:
        return self.timings.trfc_ns

    # -- REF index <-> rows ------------------------------------------------

    def rows_refreshed(self, ref_index: int) -> range:
        """Rows (in each covered bank) refreshed by the ``ref_index``-th
        REF slot."""
        slot = ref_index % self.refs_per_retention
        start = slot * self.rows_per_ref
        return range(start, start + self.rows_per_ref)

    def window(self, index: int) -> RefreshWindow:
        """Full description of one refresh window (policy-defined)."""
        return self.policy.window(index)

    def ref_slot_for_row(self, row: int) -> int:
        """Which REF slot (0..8191 within a retention cycle) refreshes
        ``row``."""
        if not 0 <= row < self.device.rows_per_bank:
            raise ConfigError(f"row {row} out of range")
        return row // self.rows_per_ref

    def next_ref_for_row(self, row: int, current_ref: int) -> int:
        """First REF index >= ``current_ref`` whose window covers ``row``."""
        slot = self.ref_slot_for_row(row)
        cycle, cur_slot = divmod(current_ref, self.refs_per_retention)
        if slot < cur_slot:
            cycle += 1
        return cycle * self.refs_per_retention + slot

    def wait_refs_for_row(self, row: int, current_ref: int) -> int:
        """REF commands until ``row``'s conditional window (0 = this one)."""
        return self.next_ref_for_row(row, current_ref) - current_ref

    def is_conditional(self, row: int, ref_index: int) -> bool:
        """True if accessing ``row`` during REF ``ref_index`` is conditional
        (the row is in the set being refreshed, §5)."""
        return row in self.rows_refreshed(ref_index)

    # -- subarray-conflict rule (§5, Fig. 7) --------------------------------

    def random_access_allowed(self, row: int, ref_index: int) -> bool:
        """A random access must not target a subarray that is busy
        refreshing one of this window's rows.

        With one refreshed row per subarray (Table 1: rows/REF is far below
        subarrays/bank), the conflict set is the subarrays of the refreshed
        rows; XFM reorders pending accesses around conflicts.
        """
        busy = {
            self.device.subarray_of_row(r)
            for r in self.rows_refreshed(ref_index)
        }
        return self.device.subarray_of_row(row) not in busy

    def random_allowed_in_window(
        self, row: int, window: RefreshWindow
    ) -> bool:
        """Window-scoped form of :meth:`random_access_allowed`: the busy
        subarrays are exactly the window's refreshing rows (identical
        for all-bank windows; per-bank windows only occupy one bank's
        subarrays, but the conservative rank-wide rule is kept so the
        reorder logic never depends on bank mapping)."""
        busy = {self.device.subarray_of_row(r) for r in window.rows}
        return self.device.subarray_of_row(row) not in busy

    # -- stateful iteration --------------------------------------------------

    @property
    def refs_issued(self) -> int:
        return self._ref_count

    def tick(self) -> RefreshWindow:
        """Advance to the next window and return it."""
        window = self.window(self._ref_count)
        self._ref_count += 1
        self.trace_window(window.ref_index, window=window)
        return window

    def trace_window(
        self,
        ref_index: Optional[int] = None,
        channel: int = 0,
        window: Optional[RefreshWindow] = None,
    ) -> None:
        """Emit the per-window timeline span.

        No-op unless tracing is enabled; pure emission, never touches
        scheduler state (the validation oracles drive this class too).
        """
        if not _trace.tracing_enabled():
            return
        if window is None:
            window = self.window(ref_index)
        args = {
            "ref_index": window.ref_index,
            "row_start": window.rows.start,
            "row_stop": window.rows.stop,
        }
        if window.bank is not None:
            args["bank"] = window.bank
        _trace.complete(
            "ref_window",
            _trace.refresh_track(channel),
            window.start_ns,
            window.duration_ns
            if window.duration_ns is not None
            else self.trfc_ns,
            args=args,
        )

    def reset(self) -> None:
        self._ref_count = 0

    # -- windows as scheduled events -----------------------------------------

    def schedule_windows(
        self,
        events: EventScheduler,
        until_ns: float,
        on_window: Callable[[RefreshWindow], None],
        start_index: int = 0,
        channel: int = 0,
    ) -> int:
        """Publish the window stream onto ``events``: each window fires as
        a scheduled event at its exact tick start, traces itself, and
        hands the :class:`RefreshWindow` to ``on_window``. Windows chain
        lazily (each event schedules its successor) so the heap stays
        O(1) regardless of horizon length. Returns the number of windows
        that will fire in ``[start, until_ns)``."""
        policy = self.policy
        end_ticks = ns_to_ticks(until_ns)
        if policy.start_ticks(start_index) >= end_ticks:
            return 0

        def fire(index: int) -> None:
            # Chain the successor *before* running the consumer: the
            # refresh stream owns this timeline, so even if the consumer
            # advances the shared clock past the next window start (span
            # emission inside the body), the already-scheduled event
            # snaps the clock back to the exact window tick.
            succ = index + 1
            succ_ticks = policy.start_ticks(succ)
            if succ_ticks < end_ticks:
                events.schedule_at_ticks(succ_ticks, lambda: fire(succ))
            window = policy.window(index)
            self.trace_window(window=window, channel=channel)
            on_window(window)

        events.schedule_at_ticks(
            policy.start_ticks(start_index), lambda: fire(start_index)
        )
        count = 0
        index = start_index
        while policy.start_ticks(index) < end_ticks:
            count += 1
            index += 1
        return count

    # -- aggregate refresh math ----------------------------------------------

    def locked_fraction(self) -> float:
        """Fraction of wall-clock time the rank is locked (~8% at 32 ms
        under all-bank refresh)."""
        return (
            self.policy.duration_ns
            * self.policy.windows_per_trefi
            / self.trefi_ns
        )

    def lock_time_per_retention_ms(self) -> float:
        """Total locked time per retention interval, in ms (~2.46 ms)."""
        return (
            self.refs_per_retention
            * self.policy.windows_per_trefi
            * self.policy.duration_ns
            / 1e6
        )

    def windows_between(
        self, start_ns: float, end_ns: float
    ) -> List[RefreshWindow]:
        """All refresh windows starting in ``[start_ns, end_ns)``."""
        policy = self.policy
        index = policy.first_index_at_or_after(max(0.0, start_ns))
        end_ticks = ns_to_ticks(end_ns)
        out: List[RefreshWindow] = []
        while policy.start_ticks(index) < end_ticks:
            out.append(policy.window(index))
            index += 1
        return out
