"""DRAM access-energy model.

Calibrated to the constants the paper itself uses:

* an on-DIMM (DB-to-RCD PCB track) serial link costs 1.17 pJ/bit
  (Wilson et al., cited in §4.1);
* moving data over the DDR channel to the CPU instead costs ~3.8 pJ/bit, so
  near-memory movement "cuts the overall data movement energy by 69%"
  (§4.3: 1 - 1.17/3.8 = 0.69);
* a conditional access rides the refresh's own row activation, so a random
  access pays an extra rank-wide activate + precharge; with the default
  activation energy this makes conditional accesses ~10% cheaper, matching
  §8's "conditional accesses reduce the NMA access energy by 10.1%".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class AccessEnergyModel:
    """Per-operation DRAM energy constants (joules)."""

    #: DDR channel I/O energy, CPU <-> DRAM.
    ddr_io_pj_per_bit: float = 3.8
    #: On-DIMM PCB link energy, NMA <-> DRAM chips.
    on_dimm_io_pj_per_bit: float = 1.17
    #: Rank-wide row activate + precharge pair. Calibrated so a random
    #: 4 KiB NMA access (2 extra activations) costs ~10.1% more than a
    #: conditional one, the saving §8 reports.
    activate_nj: float = 3.07
    #: Array column access (read or write) per bit, inside the chip.
    array_pj_per_bit: float = 0.5
    #: One all-bank REF command for one rank.
    refresh_nj_per_ref: float = 60.0
    #: Static power per DIMM, watts (the cost model's 4 W idle DIMM).
    idle_dimm_w: float = 4.0

    def __post_init__(self) -> None:
        if self.on_dimm_io_pj_per_bit >= self.ddr_io_pj_per_bit:
            raise ConfigError(
                "on-DIMM link must be cheaper than the DDR channel"
            )

    # -- data movement ------------------------------------------------------

    def cpu_transfer_j(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` over the DDR channel."""
        return num_bytes * 8 * self.ddr_io_pj_per_bit * 1e-12

    def nma_transfer_j(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` over the on-DIMM link."""
        return num_bytes * 8 * self.on_dimm_io_pj_per_bit * 1e-12

    def data_movement_saving(self) -> float:
        """Fractional I/O energy saved by staying on-DIMM (~0.69, §4.3)."""
        return 1.0 - self.on_dimm_io_pj_per_bit / self.ddr_io_pj_per_bit

    # -- page-granular accesses ----------------------------------------------

    def _array_j(self, num_bytes: int) -> float:
        return num_bytes * 8 * self.array_pj_per_bit * 1e-12

    def cpu_page_access_j(self, num_bytes: int, row_activations: int = 2) -> float:
        """CPU-side page read/write: activations + array + DDR channel."""
        return (
            row_activations * self.activate_nj * 1e-9
            + self._array_j(num_bytes)
            + self.cpu_transfer_j(num_bytes)
        )

    def nma_page_access_j(
        self, num_bytes: int, conditional: bool, row_activations: int = 2
    ) -> float:
        """NMA-side page access during a refresh window.

        A *conditional* access reuses the activation the refresh performs
        anyway, so only array + link energy is charged; a *random* access
        pays its own activations.
        """
        energy = self._array_j(num_bytes) + self.nma_transfer_j(num_bytes)
        if not conditional:
            energy += row_activations * self.activate_nj * 1e-9
        return energy

    def conditional_saving(self, num_bytes: int = 4096) -> float:
        """Fractional energy saved by a conditional vs random access."""
        random_j = self.nma_page_access_j(num_bytes, conditional=False)
        conditional_j = self.nma_page_access_j(num_bytes, conditional=True)
        return 1.0 - conditional_j / random_j

    # -- background ----------------------------------------------------------

    def refresh_energy_j_per_s(self, refs_per_s: float) -> float:
        """Refresh energy rate for one rank."""
        return refs_per_s * self.refresh_nj_per_ref * 1e-9
