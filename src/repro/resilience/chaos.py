"""Seeded chaos campaigns over the 3-tier pipeline.

``python -m repro chaos`` drives the canonical CPU-zswap -> XFM -> DFM
:class:`~repro.tiering.pipeline.TierPipeline` through a store/load/
promote mix while a :class:`~repro.resilience.faults.FaultInjector`
fires faults at every device-model injection site. A shadow copy of
every stored page is kept host-side, so the campaign can prove the
resilience layer's core claim: **no silent corruption** — every
injected corruption is either detected-and-recovered or surfaced as an
explicit poison/data-loss event, never returned as wrong bytes.

Everything is deterministic in the campaign seed (op mix, page
contents, fault schedule, simulated clock), so the emitted
``chaos_report.json`` is byte-identical across runs with the same
arguments — the report itself is a regression artifact.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ConfigError,
    CorruptedBlobError,
    SfmError,
    TierUnavailableError,
)
from repro.resilience import faults as _faults
from repro.resilience.breaker import BreakerConfig
from repro.telemetry import flightrec as _flightrec
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec
from repro.sfm.page import PAGE_SIZE
from repro.sim import CLOCK as _sim_clock
from repro.telemetry import trace as _trace
from repro.telemetry.session import TelemetrySession
from repro.tiering.pipeline import TierPipeline
from repro.tiering.policy import LruDemotion
from repro.validation.hooks import validation

#: Simulated nanoseconds between workload operations (keeps trace
#: timestamps, and therefore reports, deterministic).
_OP_TICK_NS = 1_000.0

#: Recoverable-only schedule: every fault here must be healed by
#: retry/fallback with zero data loss (the CI smoke gate).
TRANSIENT_PROFILE: Tuple[FaultSpec, ...] = (
    FaultSpec(_faults.DFM_LINK_ERROR, probability=0.05),
    FaultSpec(_faults.DFM_LATENCY_SPIKE, probability=0.03, magnitude=8.0),
    FaultSpec(_faults.NMA_TIMEOUT, probability=0.03),
    FaultSpec(_faults.NMA_DROP_COMPLETION, probability=0.02),
    FaultSpec(_faults.DRIVER_LOST_DOORBELL, probability=0.02),
    FaultSpec(_faults.DRIVER_REG_CORRUPTION, probability=0.01),
    FaultSpec(_faults.DRIVER_SPM_FULL, probability=0.03),
    FaultSpec(_faults.DRIVER_QUEUE_FULL, probability=0.03),
    FaultSpec(_faults.SPM_READ_FLIP, probability=0.02),
    FaultSpec(_faults.ZPOOL_READ_CORRUPTION, probability=0.03),
)

#: Full schedule: adds persistent media corruption, so poison/data-loss
#: events are expected — but every one must still be *detected*.
FULL_PROFILE: Tuple[FaultSpec, ...] = TRANSIENT_PROFILE + (
    FaultSpec(_faults.ZPOOL_MEDIA_CORRUPTION, probability=0.02),
)

PROFILES: Dict[str, Tuple[FaultSpec, ...]] = {
    "transient": TRANSIENT_PROFILE,
    "full": FULL_PROFILE,
}


def fault_plan_for(profile: str, seed: int = 0) -> FaultPlan:
    """Seeded :class:`FaultPlan` for a named profile (shared by the
    chaos campaign and the scenario replayer's chaos-replay mode)."""
    if profile not in PROFILES:
        raise ConfigError(
            f"unknown chaos profile {profile!r}; have {sorted(PROFILES)}"
        )
    return FaultPlan(seed=seed, specs=PROFILES[profile])


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's knobs (all deterministic inputs)."""

    seed: int = 0
    ops: int = 400
    profile: str = "transient"
    #: Tier capacities sized so demotion cascades + DFM traffic happen.
    cpu_capacity_bytes: int = 16 * 1024
    xfm_capacity_bytes: int = 16 * 1024
    dfm_capacity_bytes: int = 256 * 1024
    #: Check breaker states / drain quarantined tiers every N ops.
    health_check_every: int = 32
    validate: bool = False

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigError(
                f"unknown chaos profile {self.profile!r}; "
                f"have {sorted(PROFILES)}"
            )
        if self.ops <= 0:
            raise ConfigError("ops must be positive")


def _page_for(seed: int, key: int) -> bytes:
    """Deterministic page content: compressible pattern keyed by
    (seed, key), with every 5th page incompressible noise so stores
    exercise the fall-through path."""
    if key % 5 == 4:
        state = ((seed * 1_000_003 + key) * 2654435761 + 1) & 0xFFFFFFFF
        out = bytearray(PAGE_SIZE)
        for i in range(PAGE_SIZE):
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            out[i] = state & 0xFF
        return bytes(out)
    unit = bytes([(seed + key * 7 + j) % 251 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def run_chaos(
    config: ChaosConfig,
    out_dir: Optional[object] = None,
) -> Dict[str, object]:
    """Run one seeded campaign; returns the (JSON-ready) report dict.

    When ``out_dir`` is set, the telemetry session writes
    ``trace.json``/``metrics.json`` there and the report lands next to
    them as ``chaos_report.json``.
    """
    plan = fault_plan_for(config.profile, config.seed)
    injector = FaultInjector(plan)
    session = TelemetrySession(out_dir=out_dir)
    with session, validation(config.validate), \
            _faults.fault_injection(injector):
        report = _drive_campaign(config, injector, session)
    if out_dir is not None:
        path = Path(out_dir) / "chaos_report.json"
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


def _drive_campaign(
    config: ChaosConfig,
    injector: FaultInjector,
    session: TelemetrySession,
) -> Dict[str, object]:
    #: Pages no tier would hold fall back to the "real swap device".
    swap_device: Dict[int, bytes] = {}

    pipeline = TierPipeline.build(
        cpu_capacity_bytes=config.cpu_capacity_bytes,
        xfm_capacity_bytes=config.xfm_capacity_bytes,
        dfm_capacity_bytes=config.dfm_capacity_bytes,
        registry=session.registry,
        demotion=LruDemotion(watermark_fraction=0.5),
        spill=lambda vaddr, data: swap_device.__setitem__(vaddr, data),
        breaker_config=BreakerConfig(),
    )

    #: Host-side shadow of every page the pipeline accepted — ground
    #: truth for the silent-corruption check.
    shadow: Dict[int, bytes] = {}
    rng = random.Random(config.seed)

    counters = {
        "stores": 0,
        "stores_accepted": 0,
        "stores_rejected": 0,
        "loads": 0,
        "loads_ok": 0,
        "loads_from_spill": 0,
        "promotes": 0,
        "tier_unavailable_errors": 0,
        "data_loss_errors": 0,
        "silent_corruptions": 0,
        "drains_triggered": 0,
    }
    next_key = 0

    def do_store() -> None:
        nonlocal next_key
        key = next_key
        next_key += 1
        data = _page_for(config.seed, key)
        counters["stores"] += 1
        if pipeline.store(key, data):
            shadow[key] = data
            counters["stores_accepted"] += 1
        else:
            counters["stores_rejected"] += 1

    def do_load() -> None:
        if not shadow:
            return
        key = rng.choice(sorted(shadow))
        expect = shadow.pop(key)
        counters["loads"] += 1
        try:
            data = pipeline.load(key)
        except TierUnavailableError:
            # Transient: the key is still mapped; retry next time.
            shadow[key] = expect
            counters["tier_unavailable_errors"] += 1
            return
        except CorruptedBlobError:
            # Explicit, detected loss — the opposite of silent.
            counters["data_loss_errors"] += 1
            return
        except SfmError:
            # The page was spilled to the backing device mid-cascade.
            data = swap_device.get(key * PAGE_SIZE)
            counters["loads_from_spill"] += 1
        if data == expect:
            counters["loads_ok"] += 1
        else:
            counters["silent_corruptions"] += 1
            _flightrec.trigger(
                _flightrec.REASON_CHAOS_LOSS, {"key": key, "phase": "load"}
            )

    def do_promote() -> None:
        if not shadow:
            return
        key = rng.choice(sorted(shadow))
        counters["promotes"] += 1
        try:
            pipeline.promote_key(key)
        except CorruptedBlobError:
            shadow.pop(key, None)
            counters["data_loss_errors"] += 1

    for op in range(config.ops):
        _sim_clock.advance_ns(_OP_TICK_NS)
        roll = rng.random()
        if roll < 0.55:
            do_store()
        elif roll < 0.9:
            do_load()
        else:
            do_promote()
        if (op + 1) % config.health_check_every == 0:
            for name, state in pipeline.breaker_states().items():
                if state == "open":
                    counters["drains_triggered"] += 1
                    pipeline.drain_tier(name, limit=8)

    # Final sweep: everything the shadow says we own must come back
    # intact or fail *loudly*.
    for key in sorted(shadow):
        expect = shadow[key]
        counters["loads"] += 1
        try:
            data = pipeline.load(key)
        except TierUnavailableError:
            counters["tier_unavailable_errors"] += 1
            continue
        except CorruptedBlobError:
            counters["data_loss_errors"] += 1
            continue
        except SfmError:
            data = swap_device.get(key * PAGE_SIZE)
            counters["loads_from_spill"] += 1
        if data == expect:
            counters["loads_ok"] += 1
        else:
            counters["silent_corruptions"] += 1
            _flightrec.trigger(
                _flightrec.REASON_CHAOS_LOSS,
                {"key": key, "phase": "final_sweep"},
            )

    for name, tier in pipeline.tiers_by_name().items():
        session.add_stats(f"tier.{name}", tier.stats)
    session.add_stats("pipeline", pipeline.pipeline_stats)

    merged = pipeline.stats
    pstats = pipeline.pipeline_stats
    detected = merged.corruptions_detected
    recovered = merged.corruptions_recovered
    report: Dict[str, object] = {
        "schema": 1,
        "config": {
            "seed": config.seed,
            "ops": config.ops,
            "profile": config.profile,
            "validation": config.validate,
        },
        "faults": {
            "total_fires": injector.total_fires,
            "by_site": injector.summary(),
        },
        "workload": dict(sorted(counters.items())),
        "recovery": {
            "corruptions_detected": detected,
            "corruptions_recovered": recovered,
            "poison_pages": merged.poison_pages,
            "device_faults": merged.device_faults,
            "transient_retries": merged.transient_retries,
            "cpu_fallbacks_device_fault": merged.fallbacks_device_fault,
            "data_loss_events": pstats.data_loss_events,
            "quarantine_skips": pstats.quarantine_skips,
            "tier_errors": pstats.tier_errors,
            "drained_pages": pstats.drained_pages,
            "spill_callback_errors": pstats.spill_callback_errors,
        },
        "breakers": {
            name: breaker.snapshot()
            for name, breaker in zip(pipeline.tier_names, pipeline.breakers)
        },
        "verdict": {
            "silent_corruptions": counters["silent_corruptions"],
            # Every detection must be accounted for: recovered, or
            # surfaced as an explicit poison/loss.
            "all_detections_accounted": bool(
                detected
                <= recovered + merged.poison_pages + pstats.data_loss_events
            ),
            "clean": bool(counters["silent_corruptions"] == 0),
        },
        # Black-box dumps the campaign triggered (breaker-open, poison,
        # chaos-loss); filenames only so the report stays byte-stable
        # regardless of out_dir.
        "flight_records": list(session.flight.dump_names),
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of a campaign report for the CLI."""
    lines: List[str] = []
    cfg = report["config"]
    lines.append(
        f"chaos campaign: seed={cfg['seed']} ops={cfg['ops']} "
        f"profile={cfg['profile']}"
    )
    faults = report["faults"]
    lines.append(f"  faults fired: {faults['total_fires']}")
    for site, count in faults["by_site"].items():
        lines.append(f"    {site:24s}: {count}")
    for section in ("workload", "recovery"):
        lines.append(f"  {section}:")
        for key, value in report[section].items():
            lines.append(f"    {key:24s}: {value}")
    lines.append("  breakers:")
    for name, snap in report["breakers"].items():
        lines.append(
            f"    {name:12s}: state={snap['state']} "
            f"error_rate={snap['error_rate']} "
            f"transitions={snap['transitions']}"
        )
    verdict = report["verdict"]
    lines.append(
        f"  verdict: clean={verdict['clean']} "
        f"silent_corruptions={verdict['silent_corruptions']} "
        f"all_detections_accounted={verdict['all_detections_accounted']}"
    )
    return "\n".join(lines)
