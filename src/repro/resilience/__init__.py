"""Deterministic fault injection and the machinery that survives it.

The package mirrors the layering of :mod:`repro.validation`:

- :mod:`repro.resilience.faults` — zero-cost-when-disabled injection
  hooks (`injection_enabled()` / `fire()`) with seeded per-site
  schedules so campaigns replay exactly.
- :mod:`repro.resilience.retry` — bounded retry with simulated-time
  backoff for transient :class:`~repro.errors.DeviceFault` conditions.
- :mod:`repro.resilience.integrity` — per-blob content digests backing
  verified recovery on swap-in.
- :mod:`repro.resilience.breaker` — the per-tier closed/open/half-open
  circuit breaker used by :class:`~repro.tiering.pipeline.TierPipeline`.
- :mod:`repro.resilience.chaos` — the ``python -m repro chaos`` campaign
  harness (imported lazily; it pulls in the tiering stack).
"""

from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_bytes,
    fault_injection,
    fire,
    injection_enabled,
    set_injector,
)
from repro.resilience.integrity import BlobRecord, content_digest
from repro.resilience.retry import BackoffPolicy, retry_with_backoff

__all__ = [
    "BackoffPolicy",
    "BlobRecord",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "content_digest",
    "corrupt_bytes",
    "fault_injection",
    "fire",
    "injection_enabled",
    "retry_with_backoff",
    "set_injector",
]
