"""Per-tier circuit breaker: closed / open / half-open.

The classic pattern (Nygard, *Release It!*), adapted for a simulated
stack: the cool-down is measured in **pipeline operations** by default,
so campaigns are deterministic regardless of host speed. Configs may
instead set ``cooldown_ns`` to cool down on the shared simulated clock
(:data:`repro.sim.CLOCK`) — the wall-of-sim-time variant: an OPEN tier
re-probes once the timeline (advanced by backoff charges, chaos op
ticks, replay timestamps) passes the deadline, which is still fully
deterministic because the clock itself is.

::

                    failures reach threshold
         +--------+ ------------------------> +------+
         | CLOSED |                           | OPEN |<----+
         +--------+ <----+                    +------+     |
              ^          | probe successes        | cooldown ops elapse
              |          | reach probes_to_close  v          |
              |          +----------------- +-----------+    |
              +---------------------------- | HALF_OPEN | ---+
                                            +-----------+  probe fails

While OPEN the owner routes work around the tier; every routed-around
operation ticks the cool-down. HALF_OPEN admits a limited number of
probe operations: enough consecutive successes close the breaker, any
failure re-opens it (and restarts the cool-down).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.errors import ConfigError
from repro.sim import CLOCK as _sim_clock


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs; defaults sized for the 3-tier chaos workload."""

    #: Consecutive failures that trip the breaker outright.
    failure_threshold: int = 3
    #: Sliding outcome window for the error-rate trigger.
    window: int = 32
    #: Error rate over a full window that trips the breaker.
    error_rate_threshold: float = 0.5
    #: Operations routed around an OPEN tier before probing again.
    cooldown_ops: int = 64
    #: Consecutive HALF_OPEN probe successes required to close.
    probes_to_close: int = 2
    #: When set, cool down on the shared simulated clock instead of the
    #: op count: an OPEN breaker re-probes once ``repro.sim.CLOCK`` has
    #: advanced ``cooldown_ns`` past the moment it opened.
    cooldown_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.failure_threshold < 1 or self.window < 1:
            raise ConfigError("breaker thresholds must be >= 1")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ConfigError("error_rate_threshold must be in (0, 1]")
        if self.cooldown_ops < 1 or self.probes_to_close < 1:
            raise ConfigError("cooldown/probe counts must be >= 1")
        if self.cooldown_ns is not None and self.cooldown_ns <= 0:
            raise ConfigError("cooldown_ns must be positive when set")


class CircuitBreaker:
    """Error-rate tracker + state machine for one tier.

    The owner calls :meth:`allow` before each operation (ticks the
    cool-down while OPEN) and :meth:`record_success` /
    :meth:`record_failure` after. ``on_transition(breaker, old, new)``
    fires on every state change so the owner can trace/count it;
    ``on_probe(breaker, ok)`` fires on every HALF_OPEN probe outcome so
    the owner can export probe success/failure counters.
    """

    def __init__(
        self,
        name: str,
        config: Optional[BreakerConfig] = None,
        on_transition: Optional[
            Callable[["CircuitBreaker", BreakerState, BreakerState], None]
        ] = None,
        on_probe: Optional[Callable[["CircuitBreaker", bool], None]] = None,
    ) -> None:
        self.name = name
        self.config = config or BreakerConfig()
        self.on_transition = on_transition
        self.on_probe = on_probe
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.probe_successes = 0
        #: Lifetime HALF_OPEN probe outcomes (never reset on transition,
        #: unlike ``probe_successes`` which tracks the current streak).
        self.probe_successes_total = 0
        self.probe_failures_total = 0
        self._cooldown_remaining = 0
        self._cooldown_until_ns = 0.0
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        #: state-name -> number of entries into that state.
        self.transitions: Dict[str, int] = {
            BreakerState.OPEN.value: 0,
            BreakerState.HALF_OPEN.value: 0,
            BreakerState.CLOSED.value: 0,
        }

    # -- queries -----------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    def error_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(1 for ok in self._outcomes if not ok) / len(self._outcomes)

    # -- state machine -----------------------------------------------------

    def allow(self) -> bool:
        """Whether the tier may serve the next operation.

        While OPEN: with the default op-count cool-down each call ticks
        it down; with ``cooldown_ns`` the simulated-clock deadline is
        checked instead. Either way, once the cool-down elapses the
        breaker goes HALF_OPEN and that call is admitted as a probe.
        """
        if self.state is BreakerState.OPEN:
            if self.config.cooldown_ns is not None:
                if _sim_clock.now_ns() >= self._cooldown_until_ns:
                    self._transition(BreakerState.HALF_OPEN)
                    return True
                return False
            self._cooldown_remaining -= 1
            if self._cooldown_remaining <= 0:
                self._transition(BreakerState.HALF_OPEN)
                return True
            return False
        return True

    def record_success(self) -> None:
        self._outcomes.append(True)
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probe_successes += 1
            self.probe_successes_total += 1
            if self.on_probe is not None:
                self.on_probe(self, True)
            if self.probe_successes >= self.config.probes_to_close:
                self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._outcomes.append(False)
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.probe_failures_total += 1
            if self.on_probe is not None:
                self.on_probe(self, False)
            self._transition(BreakerState.OPEN)
            return
        if self.state is BreakerState.CLOSED and self._should_trip():
            self._transition(BreakerState.OPEN)

    def _should_trip(self) -> bool:
        if self.consecutive_failures >= self.config.failure_threshold:
            return True
        window_full = len(self._outcomes) == self.config.window
        return (
            window_full
            and self.error_rate() >= self.config.error_rate_threshold
        )

    def _transition(self, new: BreakerState) -> None:
        old = self.state
        if old is new:
            return
        self.state = new
        self.transitions[new.value] += 1
        if new is BreakerState.OPEN:
            self._cooldown_remaining = self.config.cooldown_ops
            if self.config.cooldown_ns is not None:
                self._cooldown_until_ns = (
                    _sim_clock.now_ns() + self.config.cooldown_ns
                )
            self.probe_successes = 0
        elif new is BreakerState.HALF_OPEN:
            self.probe_successes = 0
        else:  # CLOSED
            self.consecutive_failures = 0
            self._outcomes.clear()
        if self.on_transition is not None:
            self.on_transition(self, old, new)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state dump for health reports."""
        return {
            "state": self.state.value,
            "error_rate": round(self.error_rate(), 4),
            "consecutive_failures": self.consecutive_failures,
            "transitions": dict(self.transitions),
            "probe_successes_total": self.probe_successes_total,
            "probe_failures_total": self.probe_failures_total,
        }
