"""Per-blob integrity digests backing verified recovery.

The SFM backend records a :class:`BlobRecord` for every stored page:
the digest of the compressed blob as written, and the digest of the
original page contents. On swap-in the blob digest is checked before
decompression (catches media/read corruption without relying on the
codec to notice) and the page digest after (catches anything the codec
silently tolerated, e.g. a bit flip in a literal run).

Digests are 8-byte blake2b — the same size/primitive as the digest page
cache in :mod:`repro.sfm.backend`, a few microseconds per 4 KiB page
against millisecond-scale Python codec work.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def content_digest(data: bytes) -> bytes:
    """8-byte blake2b digest of ``data``."""
    return hashlib.blake2b(bytes(data), digest_size=8).digest()


@dataclass(frozen=True)
class BlobRecord:
    """Integrity record for one stored page."""

    #: Digest of the compressed blob exactly as handed to the pool.
    blob_digest: bytes
    #: Digest of the original (uncompressed) page contents.
    page_digest: bytes

    def blob_ok(self, blob: bytes) -> bool:
        return content_digest(blob) == self.blob_digest

    def page_ok(self, page: bytes) -> bool:
        return content_digest(page) == self.page_digest
