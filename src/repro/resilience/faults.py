"""Seeded, zero-cost-when-disabled fault injection.

Hot paths across the device models call::

    if _faults.injection_enabled():
        event = _faults.fire(_faults.SPM_READ_FLIP)
        if event is not None:
            ...  # apply the fault

When no injector is installed (the default) the guard is a single
module-global boolean read — the same pattern as
:mod:`repro.validation.hooks` and :mod:`repro.telemetry.trace`, cheap
enough to leave in the swap hot paths. When an injector is installed
(``with fault_injection(plan):``), each call site draws from a per-site
RNG derived from the plan seed, so a campaign with the same seed fires
the same faults at the same call indices every run.

Fault *application* is the call site's job; this module only decides
*whether* a site fires and hands back a :class:`FaultEvent` whose
``salt`` deterministically parameterises the fault (which bit to flip,
how large a latency spike, ...). :func:`corrupt_bytes` is the shared
deterministic corruption primitive.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigError

# -- injection sites -------------------------------------------------------

#: SPM: a bit flip observed when reading a staged payload back.
SPM_READ_FLIP = "spm.read_flip"
#: NMA: a (de)compression operation stalls past its deadline.
NMA_TIMEOUT = "nma.timeout"
#: NMA: a completed operation's completion is dropped (entry stays PENDING).
NMA_DROP_COMPLETION = "nma.drop_completion"
#: Driver: a doorbell write is lost before the device sees it.
DRIVER_LOST_DOORBELL = "driver.lost_doorbell"
#: Driver: an MMIO register read returns a corrupted value.
DRIVER_REG_CORRUPTION = "driver.reg_corruption"
#: Driver: forced SPM-exhaustion on submit (capacity-independent).
DRIVER_SPM_FULL = "driver.spm_full"
#: Driver: forced request-queue exhaustion on submit.
DRIVER_QUEUE_FULL = "driver.queue_full"
#: Zpool: a load returns a corrupted copy (media is intact; retry heals).
ZPOOL_READ_CORRUPTION = "zpool.read_corruption"
#: Zpool: the backing slab itself is corrupted (persistent; page is lost).
ZPOOL_MEDIA_CORRUPTION = "zpool.media_corruption"
#: DFM: a transient link error aborts the transfer.
DFM_LINK_ERROR = "dfm.link_error"
#: DFM: a latency spike multiplies the transfer time.
DFM_LATENCY_SPIKE = "dfm.latency_spike"

ALL_SITES: Tuple[str, ...] = (
    SPM_READ_FLIP,
    NMA_TIMEOUT,
    NMA_DROP_COMPLETION,
    DRIVER_LOST_DOORBELL,
    DRIVER_REG_CORRUPTION,
    DRIVER_SPM_FULL,
    DRIVER_QUEUE_FULL,
    ZPOOL_READ_CORRUPTION,
    ZPOOL_MEDIA_CORRUPTION,
    DFM_LINK_ERROR,
    DFM_LATENCY_SPIKE,
)


# -- plan / schedule -------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """Schedule for one injection site.

    ``probability`` is the per-call chance of firing once the site is
    eligible; ``skip_calls`` makes the first N calls immune (lets a
    workload warm up before faults start); ``max_fires`` bounds the
    total number of fires (0 = unbounded); ``magnitude`` is a free
    site-interpreted parameter (e.g. the latency-spike multiplier).
    """

    site: str
    probability: float = 0.0
    skip_calls: int = 0
    max_fires: int = 0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ConfigError(f"unknown injection site {self.site!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.skip_calls < 0 or self.max_fires < 0:
            raise ConfigError("skip_calls/max_fires must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus one :class:`FaultSpec` per targeted site."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        sites = [spec.site for spec in self.specs]
        if len(sites) != len(set(sites)):
            raise ConfigError("FaultPlan has duplicate sites")

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: which site, the per-site fire ordinal, the
    deterministic salt parameterising the fault, and its spec."""

    site: str
    seq: int
    salt: int
    spec: FaultSpec


def _site_seed(seed: int, site: str) -> int:
    digest = hashlib.blake2b(
        f"{seed}:{site}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _event_salt(seed: int, site: str, seq: int) -> int:
    digest = hashlib.blake2b(
        f"{seed}:{site}:{seq}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Evaluates a :class:`FaultPlan`: one independent seeded RNG per
    site, so adding a site to a plan never perturbs another site's
    schedule, and the same (seed, site, call index) always yields the
    same decision."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rngs: Dict[str, random.Random] = {}
        self._specs: Dict[str, FaultSpec] = {}
        for spec in plan.specs:
            self._rngs[spec.site] = random.Random(
                _site_seed(plan.seed, spec.site)
            )
            self._specs[spec.site] = spec
        #: site -> number of times the site was evaluated.
        self.calls: Dict[str, int] = {site: 0 for site in self._specs}
        #: site -> number of times the site fired.
        self.fires: Dict[str, int] = {site: 0 for site in self._specs}
        #: every fired event, in firing order (feeds the chaos report).
        self.log: List[FaultEvent] = []

    def evaluate(self, site: str) -> Optional[FaultEvent]:
        spec = self._specs.get(site)
        if spec is None:
            return None
        index = self.calls[site]
        self.calls[site] = index + 1
        # Draw unconditionally so a spec tweak (skip_calls/max_fires)
        # never shifts the random stream of later calls.
        draw = self._rngs[site].random()
        if index < spec.skip_calls:
            return None
        if spec.max_fires and self.fires[site] >= spec.max_fires:
            return None
        if draw >= spec.probability:
            return None
        seq = self.fires[site]
        self.fires[site] = seq + 1
        event = FaultEvent(
            site=site,
            seq=seq,
            salt=_event_salt(self.plan.seed, site, seq),
            spec=spec,
        )
        self.log.append(event)
        return event

    @property
    def total_fires(self) -> int:
        return sum(self.fires.values())

    def summary(self) -> Dict[str, int]:
        """Fired-count per site, only sites that fired (stable keys)."""
        return {
            site: count
            for site, count in sorted(self.fires.items())
            if count
        }


# -- global switch (the validation.hooks pattern) --------------------------

_injector: Optional[FaultInjector] = None
_enabled: bool = False


def injection_enabled() -> bool:
    """Whether fault injection is active (the hot-path guard)."""
    return _enabled


def current_injector() -> Optional[FaultInjector]:
    return _injector


def set_injector(
    injector: Optional[FaultInjector],
) -> Optional[FaultInjector]:
    """Install/remove the active injector; returns the previous one."""
    global _injector, _enabled
    previous = _injector
    _injector = injector
    _enabled = injector is not None
    return previous


def fire(site: str) -> Optional[FaultEvent]:
    """Evaluate ``site`` against the active schedule.

    Returns the :class:`FaultEvent` when the site fires, else ``None``.
    Callers on hot paths should guard with :func:`injection_enabled`
    first so the disabled cost is one boolean read.
    """
    injector = _injector
    if injector is None:
        return None
    return injector.evaluate(site)


@contextmanager
def fault_injection(
    plan_or_injector: Union[FaultPlan, FaultInjector],
) -> Iterator[FaultInjector]:
    """Scoped injection; yields the active :class:`FaultInjector`."""
    if isinstance(plan_or_injector, FaultPlan):
        injector = FaultInjector(plan_or_injector)
    else:
        injector = plan_or_injector
    previous = set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(previous)


# -- deterministic corruption primitive ------------------------------------

def corrupt_bytes(data: bytes, salt: int) -> bytes:
    """Flip one bit of ``data`` at a position derived from ``salt``.

    Deterministic: the same (data length, salt) flips the same bit, so a
    replayed campaign corrupts identically. Empty input is returned
    unchanged (there is no bit to flip).
    """
    if not data:
        return data
    bit = salt % (len(data) * 8)
    byte_index, bit_index = divmod(bit, 8)
    corrupted = bytearray(data)
    corrupted[byte_index] ^= 1 << bit_index
    return bytes(corrupted)
