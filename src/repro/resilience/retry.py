"""Bounded retry with simulated-time backoff.

Transient :class:`~repro.errors.DeviceFault` conditions (lost doorbells,
link errors, NMA stalls) are retried a bounded number of times; between
attempts the backoff delay is charged to the shared simulated clock
(:data:`repro.sim.CLOCK`) — no wall-clock sleeps, so tests and chaos
campaigns stay fast and deterministic, and the charge is visible to
every other consumer of the timeline (trace timestamps, sim-time
breaker cool-downs).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ConfigError, DeviceFault
from repro.sim import CLOCK as _sim_clock

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: attempt N waits ``base_delay_ns *
    multiplier**(N-1)`` simulated nanoseconds before retrying.

    ``jitter`` desynchronizes retries across shards: a fraction in
    ``[0, 1)`` of the nominal delay that is *subtracted* by a uniform
    draw from the caller-supplied RNG (decorrelated retries never wait
    longer than the nominal backoff, so worst-case latency bounds are
    unchanged). With ``jitter == 0`` — or no RNG supplied — the delay
    is the bare exponential formula, bit-identical to the historical
    behavior.
    """

    max_attempts: int = 3
    base_delay_ns: float = 1_000.0
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_ns < 0 or self.multiplier < 1.0:
            raise ConfigError("backoff delay/multiplier out of range")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")

    def delay_ns(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> float:
        """Backoff charged after failed attempt ``attempt`` (1-based).

        Deterministic for a given seeded ``rng``; exact (no jitter)
        when ``rng`` is omitted or ``jitter`` is zero.
        """
        nominal = self.base_delay_ns * self.multiplier ** (attempt - 1)
        if self.jitter == 0.0 or rng is None:
            return nominal
        return nominal * (1.0 - self.jitter * rng.random())


DEFAULT_POLICY = BackoffPolicy()


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    policy: BackoffPolicy = DEFAULT_POLICY,
    retry_on: Tuple[Type[BaseException], ...] = (DeviceFault,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    rng: Optional[random.Random] = None,
) -> T:
    """Call ``fn`` up to ``policy.max_attempts`` times.

    Exceptions matching ``retry_on`` trigger a retry after advancing the
    simulated clock by the policy's backoff; anything else propagates
    immediately. ``on_retry(attempt, exc)`` is invoked before each
    retry (attempt is the 1-based attempt that just failed) so callers
    can count transient retries. The final failure re-raises.

    ``rng`` (a seeded :class:`random.Random`) enables the policy's
    jitter; without it — or with ``policy.jitter == 0`` — the charged
    delays are bit-identical to the jitter-free formula.
    """
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            _sim_clock.advance_ns(policy.delay_ns(attempt, rng))
