"""The shared simulated clock: one timeline for the whole stack.

Every layer that used to keep its own notion of simulated time — the
telemetry trace clock, the scenario replayer's per-event clock swap,
resilience backoff charging, the DRAM refresh cadence — now reads and
writes this one :class:`SimClock` instance (:data:`CLOCK`). The
telemetry shims (:func:`repro.telemetry.trace.clock_ns` and friends)
delegate here, so existing call sites keep working unchanged.

Representation: integer **femtosecond ticks** (:data:`TICKS_PER_NS`
ticks per nanosecond). Integers never accumulate rounding error, so a
billion backoff charges land exactly where the sum says they should;
and because 1 ns = 10^6 ticks is a power of (2x5), every short-decimal
nanosecond value the repo uses (0.0, 1000.0, 3906.25 for tREFI, 2.5
for tBURST) round-trips *exactly* through :meth:`SimClock.now_ns` —
which is what keeps the committed golden traces and shipped scenario
fingerprints byte-identical across the refactor.

Ownership rules (see DESIGN.md §11):

* **Advance** (:meth:`SimClock.advance_ns`) is monotonic — negative
  deltas raise. Components charging modeled costs (backends, retry
  backoff, chaos op ticks) only ever advance.
* **Set** (:meth:`SimClock.set_ns`) is reserved for timeline *owners*:
  the emulator's event loop, the trace replayer, a workload's window
  loop. Owners that borrow the clock must scope themselves with
  :meth:`SimClock.scoped` (or save/restore) so nesting composes —
  ``TelemetrySession`` and ``TraceReplayer`` both do.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ConfigError

#: Clock ticks per nanosecond (1 tick = 1 femtosecond).
TICKS_PER_NS = 1_000_000


def ns_to_ticks(t_ns: float) -> int:
    """Convert float nanoseconds to integer ticks (nearest femtosecond)."""
    return round(t_ns * TICKS_PER_NS)


def ticks_to_ns(ticks: int) -> float:
    """Convert integer ticks back to float nanoseconds."""
    return ticks / TICKS_PER_NS


class SimClock:
    """Integer-tick simulated clock with save/restore scoping."""

    __slots__ = ("_ticks",)

    def __init__(self, start_ns: float = 0.0) -> None:
        self._ticks = ns_to_ticks(start_ns)

    # -- reads ---------------------------------------------------------------

    def now_ns(self) -> float:
        """Current simulated time in nanoseconds (float-facing API)."""
        return self._ticks / TICKS_PER_NS

    def now_ticks(self) -> int:
        """Current simulated time in integer ticks (exact)."""
        return self._ticks

    # -- writes --------------------------------------------------------------

    def set_ns(self, t_ns: float) -> None:
        """Jump the clock to ``t_ns`` (timeline owners only; see module
        docstring). Borrowers must pair this with :meth:`scoped` or
        save/restore so the outer timeline resumes intact."""
        self._ticks = ns_to_ticks(t_ns)

    def set_ticks(self, ticks: int) -> None:
        """Exact-tick variant of :meth:`set_ns` (the event scheduler and
        the refresh policies use this to avoid any float round-trip)."""
        self._ticks = int(ticks)

    def advance_ns(self, dt_ns: float) -> float:
        """Advance by ``dt_ns`` >= 0; returns the new time in ns."""
        if dt_ns < 0:
            raise ConfigError(
                f"simulated clock only advances forward, got dt={dt_ns} ns"
            )
        self._ticks += ns_to_ticks(dt_ns)
        return self._ticks / TICKS_PER_NS

    def advance_ticks(self, dticks: int) -> int:
        if dticks < 0:
            raise ConfigError(
                f"simulated clock only advances forward, got {dticks} ticks"
            )
        self._ticks += dticks
        return self._ticks

    # -- scoping -------------------------------------------------------------

    def save(self) -> int:
        """Opaque state token for :meth:`restore` (the exact tick count)."""
        return self._ticks

    def restore(self, state: int) -> None:
        """Return to a previously saved state; restores may rewind — this
        is the one sanctioned way time goes backwards (ending a borrowed
        timeline, not travelling within one)."""
        self._ticks = int(state)

    @contextmanager
    def scoped(self, start_ns: Optional[float] = None) -> Iterator["SimClock"]:
        """Save the clock, optionally jump to ``start_ns``, and restore
        the saved time on exit — nested scopes compose like a stack."""
        saved = self._ticks
        if start_ns is not None:
            self.set_ns(start_ns)
        try:
            yield self
        finally:
            self._ticks = saved


#: The process-wide shared clock every subsystem schedules against.
CLOCK = SimClock()
