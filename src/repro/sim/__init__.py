"""repro.sim: the shared discrete-event simulation core.

One :class:`SimClock` (:data:`CLOCK`) drives DRAM refresh cadence, NMA
window scheduling, telemetry timestamps, replay timelines, and
resilience backoff; one :class:`EventScheduler` turns "derive the next
window arithmetically" into "consume the next scheduled event". All
simulated-time state in ``src/repro`` lives here — the error-hygiene
lint forbids ad-hoc clock globals and wall-clock reads everywhere else.
"""

from repro.sim.clock import (
    CLOCK,
    TICKS_PER_NS,
    SimClock,
    ns_to_ticks,
    ticks_to_ns,
)
from repro.sim.events import Event, EventScheduler

__all__ = [
    "CLOCK",
    "Event",
    "EventScheduler",
    "SimClock",
    "TICKS_PER_NS",
    "ns_to_ticks",
    "ticks_to_ns",
]
