"""Deterministic discrete-event scheduler over the shared SimClock.

A minimal DES core: a binary heap of timestamped events with **stable
tie-breaking** — events scheduled for the same instant fire in the
order they were scheduled (a monotone sequence number breaks heap
ties), so a run is a pure function of the schedule regardless of heap
internals or hash order.

Event lifecycle (see DESIGN.md §11):

1. ``schedule(t_ns, fn)`` / ``schedule_after(dt_ns, fn)`` enqueue a
   callback; scheduling strictly in the past raises.
2. ``step()`` pops the earliest event, sets the clock **to the event's
   timestamp**, then runs the callback. Callbacks may schedule further
   events (self-rescheduling handlers are the idiom the refresh
   policies use to emit their window streams). A callback that
   *advances* the shared clock past later events is fine: the
   scheduler owns the timeline, so the next ``step()`` snaps the clock
   back to that event's exact tick — chain successors *before* doing
   clock-advancing work (see ``RefreshScheduler.schedule_windows``).
3. ``run_until(t_ns)`` drains events up to a horizon; ``cancel()``
   marks an event dead without disturbing the heap (lazy deletion).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import ConfigError
from repro.sim.clock import CLOCK, SimClock, ns_to_ticks, ticks_to_ns


class Event:
    """One scheduled callback; returned by ``schedule*`` for cancelling."""

    __slots__ = ("ticks", "seq", "fn", "cancelled")

    def __init__(self, ticks: int, seq: int, fn: Callable[[], None]) -> None:
        self.ticks = ticks
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    @property
    def t_ns(self) -> float:
        return ticks_to_ns(self.ticks)

    def __lt__(self, other: "Event") -> bool:
        # Stable ordering: time first, then schedule order.
        return (self.ticks, self.seq) < (other.ticks, other.seq)


class EventScheduler:
    """Heap of timestamped events draining against a :class:`SimClock`."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else CLOCK
        self._heap: List[Event] = []
        self._seq = 0
        self.fired = 0

    # -- enqueue -------------------------------------------------------------

    def schedule_at_ticks(
        self, ticks: int, fn: Callable[[], None]
    ) -> Event:
        """Exact-tick scheduling (refresh policies compute integer window
        starts and must not round-trip them through floats)."""
        if ticks < self.clock.now_ticks():
            raise ConfigError(
                f"cannot schedule event in the past: t={ticks_to_ns(ticks)}"
                f" ns < now={self.clock.now_ns()} ns"
            )
        event = Event(ticks, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, t_ns: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute simulated time ``t_ns``."""
        return self.schedule_at_ticks(ns_to_ticks(t_ns), fn)

    def schedule_after(self, dt_ns: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at ``now + dt_ns`` (dt >= 0)."""
        if dt_ns < 0:
            raise ConfigError(f"schedule_after needs dt >= 0, got {dt_ns}")
        return self.schedule_at_ticks(
            self.clock.now_ticks() + ns_to_ticks(dt_ns), fn
        )

    def cancel(self, event: Event) -> None:
        """Mark ``event`` dead; it is skipped when it reaches the top."""
        event.cancelled = True

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_ns(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        self._drop_cancelled()
        return self._heap[0].t_ns if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    # -- drain ---------------------------------------------------------------

    def step(self) -> bool:
        """Run the earliest event (clock jumps to its timestamp); returns
        False when no live events remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.set_ticks(event.ticks)
        self.fired += 1
        event.fn()
        return True

    def run_until(self, t_ns: float, inclusive: bool = True) -> int:
        """Drain events with timestamp <= ``t_ns`` (or strictly < when
        ``inclusive=False``); returns how many fired. The clock is left
        at the last fired event, not pushed to the horizon — callers
        that need the horizon time advance explicitly."""
        limit = ns_to_ticks(t_ns)
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap:
                break
            head = self._heap[0].ticks
            if head > limit or (not inclusive and head >= limit):
                break
            self.step()
            fired += 1
        return fired

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the whole heap (bounded by ``max_events`` if given)."""
        fired = 0
        while (max_events is None or fired < max_events) and self.step():
            fired += 1
        return fired
