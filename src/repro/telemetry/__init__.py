"""Unified telemetry: metrics registry, structured tracing, export.

Three layers (see DESIGN.md "Telemetry"):

* :mod:`repro.telemetry.registry` — named counters / gauges /
  fixed-bucket histograms with labels, collector callbacks, JSON/CSV
  snapshots; the home of every statistic the stack keeps.
* :mod:`repro.telemetry.trace` — zero-cost-when-disabled span/instant
  events with simulated-time timestamps, buffered in a bounded ring and
  exportable as Chrome trace-event JSON (Perfetto / ``about:tracing``),
  one track per actor (CPU, NMA, driver, per-channel refresh).
* :mod:`repro.telemetry.session` — :class:`TelemetrySession`, the
  per-run bundle that writes ``trace.json`` + ``metrics.json``.

``python -m repro trace <workload>`` runs an instrumented workload and
exports both files; see :mod:`repro.telemetry.runner`.
"""

from repro.telemetry import reasons
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.session import TelemetrySession
from repro.telemetry.stats import StatsFacade
from repro.telemetry.trace import (
    TRACK_CPU,
    TRACK_DRIVER,
    TRACK_NMA,
    TraceEvent,
    TraceRing,
    advance_clock_ns,
    clock_ns,
    complete,
    emit,
    fallback,
    instant,
    refresh_track,
    set_clock_ns,
    set_tracing,
    to_chrome_trace,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsFacade",
    "TelemetrySession",
    "TraceEvent",
    "TraceRing",
    "TRACK_CPU",
    "TRACK_DRIVER",
    "TRACK_NMA",
    "advance_clock_ns",
    "clock_ns",
    "complete",
    "default_registry",
    "emit",
    "fallback",
    "instant",
    "reasons",
    "refresh_track",
    "set_clock_ns",
    "set_tracing",
    "to_chrome_trace",
    "tracing",
    "tracing_enabled",
]
