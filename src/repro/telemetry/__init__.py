"""Unified telemetry: metrics registry, structured tracing, export.

The layers (see DESIGN.md "Telemetry"):

* :mod:`repro.telemetry.registry` — named counters / gauges /
  fixed-bucket histograms / quantile histograms with labels, collector
  callbacks, JSON/CSV snapshots; the home of every statistic the stack
  keeps.
* :mod:`repro.telemetry.trace` — zero-cost-when-disabled span/instant
  events with simulated-time timestamps, buffered in a bounded ring and
  exportable as Chrome trace-event JSON (Perfetto / ``about:tracing``),
  one track per actor (CPU, NMA, driver, per-channel refresh).
* :mod:`repro.telemetry.spans` — nested spans with parent/child
  causality ids over the trace ring, so one pipeline store exports as a
  tree with its demotions, offloads, and fallbacks.
* :mod:`repro.telemetry.quantiles` — HDR-style log-bucketed quantile
  histograms (bounded relative error, mergeable) behind
  ``MetricsRegistry.quantile``; the substrate for p50/p99/p999 tables.
* :mod:`repro.telemetry.slo` — declarative latency/availability
  objectives evaluated over simulated-time windows with burn rates
  (``python -m repro slo``).
* :mod:`repro.telemetry.flightrec` — a bounded black-box recorder that
  dumps ``flight_<reason>.json`` on breaker-open / poison / chaos-loss
  triggers.
* :mod:`repro.telemetry.session` — :class:`TelemetrySession`, the
  per-run bundle that writes ``trace.json`` + ``metrics.json`` (+ any
  flight records).

``python -m repro trace <workload>`` runs an instrumented workload and
exports both files; see :mod:`repro.telemetry.runner`.
"""

from repro.telemetry import flightrec, reasons, spans
from repro.telemetry.flightrec import FlightRecorder
from repro.telemetry.quantiles import STANDARD_QUANTILES, QuantileHistogram
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.telemetry.session import TelemetrySession
from repro.telemetry.slo import (
    AvailabilityObjective,
    LatencyObjective,
    SloEngine,
)
from repro.telemetry.stats import StatsFacade
from repro.telemetry.trace import (
    TRACK_CPU,
    TRACK_DRIVER,
    TRACK_NMA,
    TraceEvent,
    TraceRing,
    advance_clock_ns,
    clock_ns,
    complete,
    emit,
    fallback,
    instant,
    refresh_track,
    set_clock_ns,
    set_tracing,
    to_chrome_trace,
    tracing,
    tracing_enabled,
)

__all__ = [
    "AvailabilityObjective",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyObjective",
    "MetricsRegistry",
    "QuantileHistogram",
    "STANDARD_QUANTILES",
    "SloEngine",
    "StatsFacade",
    "TelemetrySession",
    "TraceEvent",
    "TraceRing",
    "TRACK_CPU",
    "TRACK_DRIVER",
    "TRACK_NMA",
    "advance_clock_ns",
    "clock_ns",
    "complete",
    "default_registry",
    "emit",
    "fallback",
    "flightrec",
    "instant",
    "reasons",
    "refresh_track",
    "set_clock_ns",
    "set_tracing",
    "spans",
    "to_chrome_trace",
    "tracing",
    "tracing_enabled",
]
