"""Machine-readable reason codes for CPU-fallback trace events.

Every ``cpu_fallback`` instant event carries exactly one of these codes
in its ``args["reason"]`` so a trace can be reconciled against the
``SwapStats`` per-reason fallback counters without string-guessing.
"""

from __future__ import annotations

#: ScratchPad Memory could not hold the staging buffer (Fig. 12's
#: dominant failure mode at small SPM sizes).
SPM_FULL = "spm_full"

#: Compress_Request_Queue had no free slot (queue overflow).
QUEUE_FULL = "queue_full"

#: The per-tRFC access budget left no window slot (emulator pipelines
#: that starve the scheduler rather than the queue).
BUDGET_EXHAUSTED = "budget_exhausted"

#: Demand-fault decompression on the CPU path *by design* (§6): not a
#: resource failure, but it lands on the same counter family so traces
#: and ``SwapStats.cpu_fallback_decompressions`` reconcile exactly.
DEMAND_FAULT = "demand_fault"

#: The device path failed outright (lost doorbell, NMA stall, SPM
#: readback corruption) and bounded retries were exhausted — the CPU
#: path is the recovery, not just the overflow valve.
DEVICE_FAULT = "device_fault"

#: Every code a fallback event may carry.
ALL_REASONS = (SPM_FULL, QUEUE_FULL, BUDGET_EXHAUSTED, DEMAND_FAULT,
               DEVICE_FAULT)
