"""Nested operation spans: causality trees over the trace ring.

The flat :mod:`repro.telemetry.trace` events answer *what happened
when*; spans answer *why*. A span is a Chrome ``X`` (complete) event
carrying two extra args — ``span`` (its own id) and ``parent`` (the id
of the span that was open when it began) — so one pipeline ``store``
exports with its tier rejects, batched demotion rounds, NMA offload
windows, and CPU fallbacks hanging off it as a tree. Perfetto renders
the nesting by timestamp on each track; the ids make the causality
exact even across tracks (a ``cpu_compress`` on the ``cpu`` track knows
which ``tier_store`` on the ``tiering`` track caused it).

Zero-cost discipline is the same as the rest of the telemetry layer:
every call site guards behind :func:`repro.telemetry.trace.tracing_enabled`,
and this module keeps no state beyond an id counter and the open-span
stack, both plain module globals.

Timestamps are simulated time — :func:`repro.telemetry.trace.clock_ns`
is a shim over the shared :data:`repro.sim.CLOCK` — so a span's
duration is however far the simulated clock advanced between
:func:`begin` and :func:`end` — i.e. the modeled cost of the work done
inside it, not wall time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.telemetry import trace as _trace

_next_id: int = 1
_stack: List[int] = []


def reset() -> None:
    """Restart ids and drop any open spans (session entry calls this so
    span ids are deterministic per run)."""
    global _next_id
    _next_id = 1
    del _stack[:]


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, or None outside any span."""
    return _stack[-1] if _stack else None


class SpanHandle:
    """An open span; pass back to :func:`end` to close and emit it."""

    __slots__ = ("span_id", "parent_id", "name", "track", "start_ns", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        track: str,
        start_ns: float,
        args: Optional[Dict[str, object]],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.track = track
        self.start_ns = start_ns
        self.args = args


def begin(
    name: str, track: str, args: Optional[Dict[str, object]] = None
) -> SpanHandle:
    """Open a span at the current simulated time under the innermost
    open span (if any) and push it on the stack."""
    global _next_id
    span_id = _next_id
    _next_id += 1
    handle = SpanHandle(
        span_id=span_id,
        parent_id=_stack[-1] if _stack else None,
        name=name,
        track=track,
        start_ns=_trace.clock_ns(),
        args=args,
    )
    _stack.append(span_id)
    return handle


def end(
    handle: SpanHandle, extra: Optional[Dict[str, object]] = None
) -> float:
    """Close ``handle``, emit it as a complete event, return duration.

    Spans close innermost-first; if callers leak an inner span the stack
    is unwound to the handle being closed so the tree stays consistent.
    """
    while _stack and _stack[-1] != handle.span_id:
        _stack.pop()
    if _stack:
        _stack.pop()
    end_ns = _trace.clock_ns()
    dur_ns = end_ns - handle.start_ns
    args: Dict[str, object] = {"span": handle.span_id}
    if handle.parent_id is not None:
        args["parent"] = handle.parent_id
    if handle.args:
        args.update(handle.args)
    if extra:
        args.update(extra)
    _trace.complete(
        handle.name, handle.track, handle.start_ns, dur_ns, args=args
    )
    return dur_ns


@contextmanager
def span(
    name: str, track: str, args: Optional[Dict[str, object]] = None
) -> Iterator[SpanHandle]:
    """Scoped span; closes (and emits) on exit, including on error."""
    handle = begin(name, track, args)
    try:
        yield handle
    finally:
        end(handle)


def emit_under(
    name: str,
    track: str,
    start_ns: float,
    dur_ns: float,
    args: Optional[Dict[str, object]] = None,
) -> int:
    """Stamp a leaf complete-event with a fresh span id parented to the
    innermost open span.

    This is how the backends' existing device events (``cpu_compress``,
    ``nma_compress``, DFM link transfers) join the tree without
    restructuring their emission sites: same event, plus causality ids.
    Returns the allocated span id.
    """
    global _next_id
    span_id = _next_id
    _next_id += 1
    full: Dict[str, object] = {"span": span_id}
    if _stack:
        full["parent"] = _stack[-1]
    if args:
        full.update(args)
    _trace.complete(name, track, start_ns, dur_ns, args=full)
    return span_id


def instant_under(
    name: str,
    track: str,
    ts_ns: Optional[float] = None,
    args: Optional[Dict[str, object]] = None,
) -> None:
    """Emit an instant tagged with the innermost open span's id."""
    full: Dict[str, object] = {}
    if _stack:
        full["parent"] = _stack[-1]
    if args:
        full.update(args)
    _trace.instant(name, track, ts_ns=ts_ns, args=full or None)
