"""Flight recorder: a bounded black box that dumps on failure.

Trace rings answer questions you knew to ask before the run; the flight
recorder answers the one you didn't — *what were the last N things that
happened before it broke?* While installed (``TelemetrySession`` does
this automatically) it shadows every trace emission into a small bounded
deque, and when a failure trigger fires — a circuit breaker opening, a
``CorruptedBlobError`` poisoning a page, the chaos oracle detecting
loss — it writes ``flight_<reason>.json`` containing the recent events,
the simulated time of the trigger, and the delta of every registry
counter since the recorder was installed. Repeat triggers get numbered
files (``flight_breaker_open_2.json``) so a cascading failure keeps
every snapshot.

Trigger sites call :func:`trigger`, which is a no-op (one global read)
when no recorder is installed, so the failure paths stay dependency-free
and cost nothing outside a session.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.errors import ConfigError
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import TraceEvent

#: Canonical trigger reason codes.
REASON_BREAKER_OPEN = "breaker_open"
REASON_POISON = "poison"
REASON_CHAOS_LOSS = "chaos_loss"
REASON_SLO_BURN = "slo_burn"

FLIGHT_SCHEMA_VERSION = 1


def _event_dict(event: TraceEvent) -> Dict[str, object]:
    record: Dict[str, object] = {
        "name": event.name,
        "ph": event.ph,
        "ts_ns": event.ts_ns,
        "track": event.track,
    }
    if event.dur_ns is not None:
        record["dur_ns"] = event.dur_ns
    if event.args:
        record["args"] = dict(event.args)
    return record


def _numeric_snapshot(registry: MetricsRegistry) -> Dict[str, float]:
    """Scalar metrics only — histogram dicts don't delta cleanly."""
    return {
        key: float(value)
        for key, value in registry.snapshot().items()
        if isinstance(value, (int, float))
    }


class FlightRecorder:
    """Bounded recorder of recent trace events plus metric deltas."""

    def __init__(
        self,
        capacity: int = 512,
        registry: Optional[MetricsRegistry] = None,
        out_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.registry = registry
        self.out_dir = out_dir
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque()
        self._baseline: Dict[str, float] = (
            _numeric_snapshot(registry) if registry is not None else {}
        )
        #: reason -> number of dumps written for it so far.
        self._dump_counts: Dict[str, int] = {}
        #: paths of every dump file written (empty when out_dir is unset).
        self.dumps: List[str] = []
        #: filenames of every dump, whether or not it reached disk.
        self.dump_names: List[str] = []
        #: every dump document, whether or not it reached disk.
        self.documents: List[Dict[str, object]] = []

    # -- recording (called from trace.emit via the module hook) ------------

    def record(self, event: TraceEvent) -> None:
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    # -- dumping -----------------------------------------------------------

    def metric_deltas(self) -> Dict[str, float]:
        if self.registry is None:
            return {}
        deltas: Dict[str, float] = {}
        for key, value in _numeric_snapshot(self.registry).items():
            delta = value - self._baseline.get(key, 0.0)
            if delta:
                deltas[key] = delta
        return deltas

    def document(
        self, reason: str, detail: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        return {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "detail": dict(detail) if detail else {},
            "t_ns": _trace.clock_ns(),
            "events_recorded": len(self._events),
            "events_dropped": self.dropped,
            "events": [_event_dict(e) for e in self._events],
            "metric_deltas": self.metric_deltas(),
        }

    def trigger(
        self, reason: str, detail: Optional[Dict[str, object]] = None
    ) -> str:
        """Capture a dump; write ``flight_<reason>.json`` when an
        ``out_dir`` is configured. Returns the dump filename."""
        n = self._dump_counts.get(reason, 0) + 1
        self._dump_counts[reason] = n
        filename = (
            f"flight_{reason}.json" if n == 1 else f"flight_{reason}_{n}.json"
        )
        doc = self.document(reason, detail)
        self.documents.append(doc)
        self.dump_names.append(filename)
        if self.out_dir:
            os.makedirs(self.out_dir, exist_ok=True)
            path = os.path.join(self.out_dir, filename)
            with open(path, "w") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
            self.dumps.append(path)
        return filename


# -- module-level installation (the trace._flight hook feeds us) -----------

_recorder: Optional[FlightRecorder] = None


def current_recorder() -> Optional[FlightRecorder]:
    return _recorder


def install(recorder: FlightRecorder) -> Optional[FlightRecorder]:
    """Make ``recorder`` the active flight recorder; returns previous."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    _trace.set_flight_sink(recorder.record)
    return previous


def uninstall() -> Optional[FlightRecorder]:
    global _recorder
    previous = _recorder
    _recorder = None
    _trace.set_flight_sink(None)
    return previous


def trigger(
    reason: str, detail: Optional[Dict[str, object]] = None
) -> Optional[str]:
    """Fire a failure trigger; no-op when no recorder is installed.

    Failure paths (breaker transitions, page poisoning, the chaos
    oracle) call this unconditionally — the disabled cost is one module
    global read on paths that are already rare.
    """
    recorder = _recorder
    if recorder is None:
        return None
    return recorder.trigger(reason, detail)
