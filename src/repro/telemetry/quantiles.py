"""Log-bucketed quantile histograms with bounded relative error.

The fixed-bucket :class:`~repro.telemetry.registry.Histogram` needs its
bounds chosen up front, which is hopeless for latency tails that span
five decades (a zswap store is ~10 us of simulated time, a DFM link
round-trip ~100x that, and a demotion cascade worse still). This module
adds the HDR-histogram idea: geometric buckets whose width grows by a
fixed ratio ``g = 1 + 2 * relative_error``, stored sparsely, so any
recorded value is reported with at most ``relative_error`` error and an
empty histogram costs a dict and five scalars.

Two histograms with the same ``(min_value, relative_error)`` config are
mergeable bucket-by-bucket (used when :class:`MetricsRegistry.merge`
folds per-tier registries into the pipeline's); merging histograms with
different configs raises :class:`~repro.errors.ConfigError` rather than
silently misfolding.

Quantile queries walk the sparse buckets in index order and report the
geometric midpoint of the bucket holding the target rank, which is what
bounds the relative error. ``p50/p90/p99/p999`` come pre-packaged via
:meth:`QuantileHistogram.percentiles` for the latency tables.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from repro.errors import ConfigError

LabelKey = Tuple[Tuple[str, str], ...]

#: The percentile set every latency table reports.
STANDARD_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)


class QuantileHistogram:
    """Sparse geometric-bucket histogram (HDR-style).

    ``min_value`` is the resolution floor: observations at or below it
    share bucket 0. Above it, bucket ``i`` covers
    ``(min_value * g**(i-1), min_value * g**i]`` with
    ``g = 1 + 2 * relative_error``, so the geometric midpoint of any
    bucket is within ``relative_error`` of every value in it.
    """

    __slots__ = (
        "name",
        "labels",
        "min_value",
        "relative_error",
        "growth",
        "_inv_log_g",
        "counts",
        "total",
        "sum",
        "min",
        "max",
    )

    kind = "quantile"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        min_value: float = 1.0,
        relative_error: float = 0.01,
    ) -> None:
        if min_value <= 0:
            raise ConfigError(
                f"quantile min_value must be > 0, got {min_value}"
            )
        if not 0 < relative_error < 1:
            raise ConfigError(
                "quantile relative_error must be in (0, 1), got "
                f"{relative_error}"
            )
        self.name = name
        self.labels = labels
        self.min_value = float(min_value)
        self.relative_error = float(relative_error)
        self.growth = 1.0 + 2.0 * float(relative_error)
        self._inv_log_g = 1.0 / math.log(self.growth)
        #: sparse bucket index -> observation count
        self.counts: Dict[int, int] = {}
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ---------------------------------------------------------

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) * self._inv_log_g)

    def _upper_bound(self, index: int) -> float:
        return self.min_value * self.growth ** index

    def _representative(self, index: int) -> float:
        if index == 0:
            return self.min_value
        # Geometric midpoint of (min * g**(i-1), min * g**i].
        return self.min_value * self.growth ** (index - 0.5)

    def observe(self, value: float) -> None:
        idx = self._index(value)
        self.counts[idx] = self.counts.get(idx, 0) + 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def value_at_quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within relative_error."""
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.total)))
        cumulative = 0
        for idx in sorted(self.counts):
            cumulative += self.counts[idx]
            if cumulative >= rank:
                value = self._representative(idx)
                # The true extremes are tracked exactly; clamp so p0/p100
                # never report outside the observed range.
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches total

    def percentiles(self) -> Dict[str, float]:
        return {
            label: self.value_at_quantile(q)
            for label, q in STANDARD_QUANTILES
        }

    def count_below(self, threshold: float) -> int:
        """Observations at or below ``threshold`` (within relative_error).

        The SLO engine's attainment math: a bucket counts as "good" when
        its representative is within the threshold.
        """
        good = 0
        for idx, count in self.counts.items():
            if self._representative(idx) <= threshold:
                good += count
        return good

    # -- export / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": "quantile",
            "count": self.total,
            "sum": self.sum,
            "min": self.min if self.total else 0.0,
            "max": self.max if self.total else 0.0,
            "quantiles": self.percentiles(),
        }

    def merge_from(self, other: "QuantileHistogram") -> None:
        if (self.min_value, self.relative_error) != (
            other.min_value,
            other.relative_error,
        ):
            raise ConfigError(
                f"quantile histogram {self.name!r} config differs: "
                f"(min_value={self.min_value}, "
                f"relative_error={self.relative_error}) vs "
                f"(min_value={other.min_value}, "
                f"relative_error={other.relative_error})"
            )
        for idx, count in other.counts.items():
            self.counts[idx] = self.counts.get(idx, 0) + count
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


def observe_many(hist: QuantileHistogram, values: Iterable[float]) -> None:
    """Bulk-record helper for replay post-processing."""
    for value in values:
        hist.observe(value)


def collect_percentiles(registry, metric: str = "op_latency_ns") -> list:
    """Flatten every non-empty quantile series named ``metric`` in a
    :class:`~repro.telemetry.registry.MetricsRegistry` into rows keyed
    by their ``op``/``tier`` labels — the latency-table feed for replay
    reports and the ``repro slo`` CLI. (Duck-typed on ``.metrics()`` to
    keep this module import-free of the registry.)"""
    rows = []
    for m in registry.metrics():
        if not isinstance(m, QuantileHistogram):
            continue
        if m.name != metric or not m.total:
            continue
        labels = dict(m.labels)
        row = {
            "op": labels.get("op", "?"),
            "tier": labels.get("tier", "?"),
            "count": m.total,
            "mean": m.mean,
        }
        row.update(m.percentiles())
        rows.append(row)
    rows.sort(key=lambda r: (r["op"], r["tier"]))
    return rows
