"""Declarative SLOs evaluated over simulated-time windows.

An SLO here is the hyperscale framing from the CXL-adoption and TMTS
papers: a latency objective per operation class ("99% of pipeline
stores complete within 50 us of simulated time") or an availability
objective over the failure counters ("99.9% of operations neither
error nor lose data"), each evaluated per fixed window of *simulated*
time so a replayed trace produces the same burn report on every run.

The engine reads — never writes — a :class:`MetricsRegistry`: latency
attainment comes from the per-op-class quantile histograms
(:meth:`QuantileHistogram.count_below` on the cumulative counts, diffed
per window), availability from counter deltas. For each closed window it
records attainment and the **burn rate**, the standard error-budget
measure::

    burn = (1 - attainment) / (1 - target)

burn < 1 means the window spent less than its error budget; burn = 10
on a 99.9% objective means failures arrived 10x faster than the budget
allows. The summary reports overall attainment plus the worst window
burn per objective, which is what a paging policy would key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.telemetry.quantiles import QuantileHistogram
from repro.telemetry.registry import Counter, MetricsRegistry

SLO_SCHEMA_VERSION = 1

#: Default metric the latency objectives read, as recorded by the
#: pipeline/backends: ``op_latency_ns{op=...,tier=...}``.
LATENCY_METRIC = "op_latency_ns"


@dataclass(frozen=True)
class LatencyObjective:
    """``target`` fraction of ``op`` on ``tier`` within ``threshold_ns``."""

    name: str
    op: str
    tier: str
    threshold_ns: float
    target: float
    metric: str = LATENCY_METRIC

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.threshold_ns <= 0:
            raise ConfigError(
                f"SLO threshold_ns must be > 0, got {self.threshold_ns}"
            )


@dataclass(frozen=True)
class AvailabilityObjective:
    """``target`` fraction of total ops not counted as bad.

    ``bad_metrics``/``total_metrics`` name registry counters; all label
    variants of each name are summed, so ``tier_pipeline.tier_errors``
    covers every tier at once.
    """

    name: str
    target: float
    bad_metrics: Tuple[str, ...]
    total_metrics: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ConfigError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if not self.bad_metrics or not self.total_metrics:
            raise ConfigError(
                "availability objective needs bad_metrics and total_metrics"
            )


@dataclass
class WindowResult:
    index: int
    start_ns: float
    end_ns: float
    objective: str
    total: int
    bad: int

    @property
    def attainment(self) -> float:
        return 1.0 - self.bad / self.total if self.total else 1.0

    def burn_rate(self, target: float) -> float:
        if self.total == 0:
            return 0.0
        return (self.bad / self.total) / (1.0 - target)

    def as_dict(self, target: float) -> Dict[str, object]:
        return {
            "window": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "objective": self.objective,
            "total": self.total,
            "bad": self.bad,
            "attainment": self.attainment,
            "burn_rate": self.burn_rate(target),
            "met": self.attainment >= target,
        }


@dataclass
class _Cumulative:
    """Last-seen cumulative (total, bad) per objective, so each window
    closes on deltas against monotone counters."""

    total: int = 0
    bad: int = 0


class SloEngine:
    """Evaluates objectives against a registry at window boundaries.

    Drive it with :meth:`tick` as simulated time advances (the replayer
    ticks per trace event); call :meth:`finalize` to close the trailing
    partial window.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: List[object],
        window_ns: float,
        start_ns: float = 0.0,
    ) -> None:
        if window_ns <= 0:
            raise ConfigError(f"window_ns must be > 0, got {window_ns}")
        if not objectives:
            raise ConfigError("SLO engine needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate SLO objective names: {names}")
        self.registry = registry
        self.objectives = list(objectives)
        self.window_ns = float(window_ns)
        self._window_start = float(start_ns)
        self._window_index = 0
        self._cumulative: Dict[str, _Cumulative] = {
            o.name: _Cumulative() for o in self.objectives
        }
        self.windows: List[WindowResult] = []
        self._finalized = False

    # -- cumulative reads --------------------------------------------------

    def _latency_counts(self, obj: LatencyObjective) -> Tuple[int, int]:
        total = 0
        good = 0
        for metric in self.registry.metrics():
            if not isinstance(metric, QuantileHistogram):
                continue
            if metric.name != obj.metric:
                continue
            labels = dict(metric.labels)
            if labels.get("op") != obj.op or labels.get("tier") != obj.tier:
                continue
            total += metric.total
            good += metric.count_below(obj.threshold_ns)
        return total, total - good

    def _counter_sum(self, names: Tuple[str, ...]) -> int:
        value = 0.0
        wanted = set(names)
        for metric in self.registry.metrics():
            if isinstance(metric, Counter) and metric.name in wanted:
                value += metric.value
        return int(value)

    def _availability_counts(
        self, obj: AvailabilityObjective
    ) -> Tuple[int, int]:
        total = self._counter_sum(obj.total_metrics)
        bad = self._counter_sum(obj.bad_metrics)
        return total, min(bad, total)

    def _read(self, obj: object) -> Tuple[int, int]:
        if isinstance(obj, LatencyObjective):
            return self._latency_counts(obj)
        if isinstance(obj, AvailabilityObjective):
            return self._availability_counts(obj)
        raise ConfigError(f"unknown objective type: {type(obj).__name__}")

    # -- windowing ---------------------------------------------------------

    def _close_window(self, end_ns: float) -> None:
        for obj in self.objectives:
            total, bad = self._read(obj)
            seen = self._cumulative[obj.name]
            self.windows.append(
                WindowResult(
                    index=self._window_index,
                    start_ns=self._window_start,
                    end_ns=end_ns,
                    objective=obj.name,
                    total=total - seen.total,
                    bad=max(0, bad - seen.bad),
                )
            )
            seen.total, seen.bad = total, bad
        self._window_index += 1
        self._window_start = end_ns

    def tick(self, now_ns: float) -> None:
        """Close every whole window the clock has passed."""
        while now_ns >= self._window_start + self.window_ns:
            self._close_window(self._window_start + self.window_ns)

    def finalize(self, now_ns: Optional[float] = None) -> None:
        """Close the trailing partial window (idempotent)."""
        if self._finalized:
            return
        if now_ns is not None:
            self.tick(now_ns)
        end = now_ns if now_ns is not None else self._window_start
        # Close a final partial window if any ops landed after the last
        # boundary — otherwise the tail of the run would vanish.
        pending = any(
            self._read(obj) != (seen.total, seen.bad)
            for obj, seen in (
                (o, self._cumulative[o.name]) for o in self.objectives
            )
        )
        if pending:
            self._close_window(max(end, self._window_start))
        self._finalized = True

    # -- reporting ---------------------------------------------------------

    def _target_for(self, name: str) -> float:
        for obj in self.objectives:
            if obj.name == name:
                return obj.target
        raise ConfigError(f"unknown objective {name!r}")

    def summary(self) -> Dict[str, Dict[str, object]]:
        out: Dict[str, Dict[str, object]] = {}
        for obj in self.objectives:
            windows = [w for w in self.windows if w.objective == obj.name]
            total = sum(w.total for w in windows)
            bad = sum(w.bad for w in windows)
            attainment = 1.0 - bad / total if total else 1.0
            burns = [w.burn_rate(obj.target) for w in windows]
            out[obj.name] = {
                "target": obj.target,
                "total": total,
                "bad": bad,
                "attainment": attainment,
                "met": attainment >= obj.target,
                "worst_burn": max(burns) if burns else 0.0,
                "windows": len(windows),
                "windows_violated": sum(
                    1 for w in windows if w.attainment < obj.target
                ),
            }
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SLO_SCHEMA_VERSION,
            "window_ns": self.window_ns,
            "objectives": [
                {
                    "name": o.name,
                    "kind": (
                        "latency"
                        if isinstance(o, LatencyObjective)
                        else "availability"
                    ),
                    "target": o.target,
                    **(
                        {
                            "op": o.op,
                            "tier": o.tier,
                            "threshold_ns": o.threshold_ns,
                        }
                        if isinstance(o, LatencyObjective)
                        else {
                            "bad_metrics": list(o.bad_metrics),
                            "total_metrics": list(o.total_metrics),
                        }
                    ),
                }
                for o in self.objectives
            ],
            "windows": [
                w.as_dict(self._target_for(w.objective))
                for w in self.windows
            ],
            "summary": self.summary(),
        }
