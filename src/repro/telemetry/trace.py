"""Structured trace events: zero-cost when disabled, Perfetto when on.

The tracing layer follows the :mod:`repro.validation.hooks` pattern: hot
paths guard every emission site behind :func:`tracing_enabled`, which is
a single module-global boolean read when tracing is off — cheap enough
to leave in the swap store path and the emulator's per-REF loop. When a
ring is installed (``with tracing():`` or via
:class:`~repro.telemetry.session.TelemetrySession`), events are appended
to a bounded ring buffer and can be exported as Chrome trace-event JSON,
loadable in Perfetto / ``about:tracing``.

Timestamps are **simulated time** in nanoseconds, read from the shared
:data:`repro.sim.CLOCK`. Components that own a timeline (the emulator's
event loop, the functional workloads' window loop) publish it through
:func:`set_clock_ns` / :func:`advance_clock_ns` — thin shims over the
:class:`repro.sim.SimClock`, kept because they are the public API every
emission site already uses; emission sites that have no better
timestamp read :func:`clock_ns`.

Tracks map to Chrome's pid/tid pairs: one track per actor — ``cpu``
(fallback + host swap work), ``nma`` (window-multiplexed accelerator
work), ``driver`` (MMIO/doorbells), and one ``refresh/ch<N>`` track per
channel. Track names become thread names via ``M`` metadata events.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import ConfigError
from repro.sim.clock import CLOCK as _clock

#: Chrome trace-event phase codes used here.
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_METADATA = "M"

#: Well-known track names (tids assigned on first use; these sort first).
TRACK_CPU = "cpu"
TRACK_NMA = "nma"
TRACK_DRIVER = "driver"


def refresh_track(channel: int = 0) -> str:
    """Per-channel refresh-window track name."""
    return f"refresh/ch{channel}"


class TraceEvent:
    """One trace event; converts 1:1 to a Chrome trace-event dict."""

    __slots__ = ("name", "ph", "ts_ns", "track", "dur_ns", "args")

    def __init__(
        self,
        name: str,
        ph: str,
        ts_ns: float,
        track: str,
        dur_ns: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.ph = ph
        self.ts_ns = ts_ns
        self.track = track
        self.dur_ns = dur_ns
        self.args = args


class TraceRing:
    """Bounded event ring: overflow drops the *oldest* events and counts
    them, so a long run keeps its tail (the part being diagnosed) and
    the export records how much history was shed."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ConfigError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque()

    def append(self, event: TraceEvent) -> None:
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


# -- global switch (the validation.hooks pattern) ---------------------------
# The clock itself lives in repro.sim; only the enable flag, the ring and
# the flight sink are telemetry state.

_enabled: bool = False
_ring: Optional[TraceRing] = None
#: Optional secondary sink fed every emitted event — the flight
#: recorder's record callback (see :mod:`repro.telemetry.flightrec`).
_flight = None


def tracing_enabled() -> bool:
    """Whether trace emission is active (the hot-path guard)."""
    return _enabled


def current_ring() -> Optional[TraceRing]:
    return _ring


def set_tracing(
    enabled: bool, ring: Optional[TraceRing] = None
) -> Optional[TraceRing]:
    """Install/remove the active ring; returns the previous ring."""
    global _enabled, _ring
    previous = _ring
    if enabled:
        _ring = ring if ring is not None else TraceRing()
        _enabled = True
    else:
        _enabled = False
        _ring = None
    return previous


@contextmanager
def tracing(ring: Optional[TraceRing] = None) -> Iterator[TraceRing]:
    """Scoped tracing; yields the active ring."""
    global _enabled, _ring
    prev_enabled, prev_ring = _enabled, _ring
    active = ring if ring is not None else TraceRing()
    _ring = active
    _enabled = True
    try:
        yield active
    finally:
        _enabled, _ring = prev_enabled, prev_ring


def set_flight_sink(sink) -> None:
    """Install/remove the flight-recorder event sink (a callable taking
    one :class:`TraceEvent`, or None). Installed sinks see every event
    the ring sees; they also see events emitted while no ring is active,
    which is what makes the flight recorder "always on" inside a
    session even if the ring is swapped out."""
    global _flight
    _flight = sink


def clock_ns() -> float:
    """Current simulated-time timestamp (``repro.sim.CLOCK``)."""
    return _clock.now_ns()


def set_clock_ns(t_ns: float) -> None:
    """Jump the shared simulated clock (timeline owners only)."""
    _clock.set_ns(t_ns)


def advance_clock_ns(dt_ns: float) -> float:
    """Advance the shared simulated clock; returns the new time."""
    return _clock.advance_ns(dt_ns)


# -- emission --------------------------------------------------------------

def emit(
    name: str,
    ph: str,
    track: str,
    ts_ns: Optional[float] = None,
    dur_ns: Optional[float] = None,
    args: Optional[Dict[str, object]] = None,
) -> None:
    """Append one event to the active ring (no-op when tracing is off).

    Callers on hot paths should guard with :func:`tracing_enabled` so the
    disabled cost is one boolean read rather than argument packing.
    """
    ring = _ring
    flight = _flight
    if ring is None and flight is None:
        return
    event = TraceEvent(
        name=name,
        ph=ph,
        ts_ns=_clock.now_ns() if ts_ns is None else ts_ns,
        track=track,
        dur_ns=dur_ns,
        args=args,
    )
    if ring is not None:
        ring.append(event)
    if flight is not None:
        flight(event)


def instant(
    name: str,
    track: str,
    ts_ns: Optional[float] = None,
    args: Optional[Dict[str, object]] = None,
) -> None:
    emit(name, PH_INSTANT, track, ts_ns=ts_ns, args=args)


def complete(
    name: str,
    track: str,
    start_ns: float,
    dur_ns: float,
    args: Optional[Dict[str, object]] = None,
) -> None:
    emit(name, PH_COMPLETE, track, ts_ns=start_ns, dur_ns=dur_ns, args=args)


def fallback(
    reason: str,
    op: str,
    ts_ns: Optional[float] = None,
    **extra: object,
) -> None:
    """The canonical CPU-fallback instant: ``cpu_fallback`` on the CPU
    track with a machine-readable ``reason`` code (see
    :mod:`repro.telemetry.reasons`) and the op kind
    (``compress``/``decompress``)."""
    args: Dict[str, object] = {"reason": reason, "op": op}
    if extra:
        args.update(extra)
    emit("cpu_fallback", PH_INSTANT, TRACK_CPU, ts_ns=ts_ns, args=args)


# -- Chrome trace-event export ---------------------------------------------

#: Stable tids for the well-known tracks; others assigned from 100.
_FIXED_TIDS = {TRACK_CPU: 1, TRACK_NMA: 2, TRACK_DRIVER: 3}
TRACE_PID = 1


def to_chrome_trace(ring: TraceRing) -> Dict[str, object]:
    """Render the ring as a Chrome trace-event JSON document.

    One process (pid 1, named after the reproduction) with one thread
    per track; ``ts``/``dur`` are microseconds per the trace-event spec.
    """
    tids: Dict[str, int] = {}
    next_dynamic = 100
    events: List[Dict[str, object]] = []
    for event in ring.events():
        tid = tids.get(event.track)
        if tid is None:
            tid = _FIXED_TIDS.get(event.track)
            if tid is None:
                tid = next_dynamic
                next_dynamic += 1
            tids[event.track] = tid
        record: Dict[str, object] = {
            "name": event.name,
            "ph": event.ph,
            "ts": event.ts_ns / 1e3,
            "pid": TRACE_PID,
            "tid": tid,
        }
        if event.ph == PH_COMPLETE:
            record["dur"] = (event.dur_ns or 0.0) / 1e3
        if event.ph == PH_INSTANT:
            record["s"] = "t"  # thread-scoped instant
        if event.args:
            record["args"] = dict(event.args)
        events.append(record)

    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": PH_METADATA,
            "ts": 0.0,
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "xfm-repro"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": PH_METADATA,
                "ts": 0.0,
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ns",
        "otherData": {"dropped_events": ring.dropped},
    }
