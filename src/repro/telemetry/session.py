"""TelemetrySession: one run's trace ring + metrics registry + export.

The session is the user-facing bundle: entering it turns tracing on
(with a bounded ring), attaches a fresh metrics registry, and resets the
simulated clock; exiting turns tracing off. ``write()`` — called
automatically on exit when ``out_dir`` is set — produces

* ``trace.json``  — Chrome trace-event JSON (open in Perfetto or
  ``about:tracing``), and
* ``metrics.json`` — the registry snapshot plus every stats facade
  attached with :meth:`add_stats`.

The benchmark harness wraps measured runs in a session so
``BENCH_perf.json`` runs can optionally attach traces; the ``python -m
repro trace`` subcommand uses it for its workloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import StatsFacade
from repro.telemetry.trace import (
    TraceRing,
    set_clock_ns,
    set_tracing,
    to_chrome_trace,
    tracing_enabled,
)


class TelemetrySession:
    """Context manager owning one run's trace ring and registry."""

    def __init__(
        self,
        out_dir: Optional[object] = None,
        ring_capacity: int = 65536,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.ring = TraceRing(ring_capacity)
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._stats: Dict[str, StatsFacade] = {}
        self._annotations: Dict[str, object] = {}
        self._was_enabled = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        self._was_enabled = tracing_enabled()
        set_tracing(True, self.ring)
        set_clock_ns(0.0)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracing(False)
        if self.out_dir is not None and exc_type is None:
            self.write(self.out_dir)

    # -- metrics attachment ------------------------------------------------

    def add_stats(self, name: str, stats: StatsFacade) -> None:
        """Include a stats facade in ``metrics.json`` under ``name``."""
        self._stats[name] = stats

    def annotate(self, key: str, value: object) -> None:
        """Attach a free-form JSON-serialisable block to
        ``metrics.json`` under ``annotations.<key>`` (replay reports,
        campaign verdicts, run provenance, ...)."""
        self._annotations[key] = value

    def metrics_document(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "schema": 1,
            "registry": self.registry.snapshot(),
            "stats": {
                name: stats.as_dict() for name, stats in self._stats.items()
            },
        }
        if self._annotations:
            doc["annotations"] = dict(self._annotations)
        doc["trace"] = {
            "events": len(self.ring),
            "dropped": self.ring.dropped,
        }
        return doc

    # -- export ------------------------------------------------------------

    def write(self, out_dir: object) -> Tuple[Path, Path]:
        """Write ``trace.json`` + ``metrics.json``; returns their paths."""
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        trace_path = target / "trace.json"
        metrics_path = target / "metrics.json"
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(self.ring), fh, indent=1)
            fh.write("\n")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics_document(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return trace_path, metrics_path
